use crate::{Sail, SailError, MAX_CHUNKS};
#[cfg(feature = "proptest")] // the oracle is only used by the gated proptests
use poptrie_rib::LinearLpm;
use poptrie_rib::{Lpm, Prefix, RadixTree};
use poptrie_rng::prelude::*;

fn p4(s: &str) -> Prefix<u32> {
    s.parse().unwrap()
}

fn rib_from(routes: &[(&str, u16)]) -> RadixTree<u32, u16> {
    RadixTree::from_routes(routes.iter().map(|&(p, nh)| (p4(p), nh)))
}

#[test]
fn empty_table() {
    let rib: RadixTree<u32, u16> = RadixTree::new();
    let s = Sail::from_rib(&rib).unwrap();
    assert_eq!(s.lookup(0), None);
    assert_eq!(s.lookup(u32::MAX), None);
    assert_eq!(s.chunk_counts(), (0, 0));
}

#[test]
fn level_pushing_across_boundaries() {
    let rib = rib_from(&[
        ("0.0.0.0/0", 9),     // pushed to /16 everywhere
        ("10.0.0.0/8", 1),    // pushed to /16
        ("10.1.0.0/16", 2),   // exactly /16
        ("10.1.2.0/24", 3),   // exactly /24 (level-2 chunk)
        ("10.1.2.128/26", 4), // pushed to /32 (level-3 chunk)
        ("10.1.2.130/32", 5), // exactly /32
    ]);
    let s = Sail::from_rib(&rib).unwrap();
    assert_eq!(s.lookup(0xDEAD_BEEF), Some(9));
    assert_eq!(s.lookup(0x0A02_0000), Some(1));
    assert_eq!(s.lookup(0x0A01_0300), Some(2));
    assert_eq!(s.lookup(0x0A01_0201), Some(3));
    assert_eq!(s.lookup(0x0A01_0281), Some(4));
    assert_eq!(s.lookup(0x0A01_0282), Some(5));
    let (c24, c32) = s.chunk_counts();
    assert_eq!(c24, 1, "only 10.1/16 holds longer prefixes");
    assert_eq!(c32, 1, "only 10.1.2/24 holds longer prefixes");
}

#[test]
fn prefix_shorter_than_16_fills_range() {
    let rib = rib_from(&[("10.0.0.0/8", 7)]);
    let s = Sail::from_rib(&rib).unwrap();
    assert_eq!(s.lookup(0x0A00_0000), Some(7));
    assert_eq!(s.lookup(0x0AFF_FFFF), Some(7));
    assert_eq!(s.lookup(0x0B00_0000), None);
    assert_eq!(s.lookup(0x09FF_FFFF), None);
}

#[test]
fn exhaustive_u32_slice_against_radix() {
    let mut rng = StdRng::seed_from_u64(31);
    let mut rib: RadixTree<u32, u16> = RadixTree::new();
    rib.insert(p4("10.1.0.0/16"), 1);
    for _ in 0..300 {
        let addr = 0x0A01_0000 | (rng.gen::<u32>() & 0xFFFF);
        rib.insert(
            Prefix::new(addr, rng.gen_range(17..=32)),
            rng.gen_range(1..=200),
        );
    }
    let s = Sail::from_rib(&rib).unwrap();
    for low in 0..=0xFFFFu32 {
        let key = 0x0A01_0000 | low;
        assert_eq!(s.lookup(key), rib.lookup(key).copied(), "key={key:#010x}");
    }
}

#[test]
fn random_u32_against_radix() {
    let mut rng = StdRng::seed_from_u64(32);
    let mut rib: RadixTree<u32, u16> = RadixTree::new();
    for _ in 0..5000 {
        let len = *[8u8, 12, 16, 20, 24, 28, 32].choose(&mut rng).unwrap();
        rib.insert(Prefix::new(rng.gen(), len), rng.gen_range(1..=64));
    }
    let s = Sail::from_rib(&rib).unwrap();
    for _ in 0..50_000 {
        let key: u32 = rng.gen();
        assert_eq!(s.lookup(key), rib.lookup(key).copied());
    }
}

#[test]
fn chunk_overflow_reported() {
    // More than 2^15 /16 blocks containing longer-than-/16 prefixes: the
    // level-24 chunk ids overflow their 15-bit field (§4.8 / Table 5).
    let mut rib: RadixTree<u32, u16> = RadixTree::new();
    for i in 0..(MAX_CHUNKS as u32 + 8) {
        rib.insert(Prefix::new(i << 16, 24), 1);
    }
    let err = Sail::from_rib(&rib).unwrap_err();
    assert!(
        matches!(err, SailError::ChunkOverflow { level: 24, needed } if needed == MAX_CHUNKS + 1),
        "{err:?}"
    );
}

#[test]
fn level32_chunk_overflow_reported() {
    // More than 2^15 /24 blocks holding longer-than-/24 prefixes: the
    // level-32 chunk ids overflow. Spread the /25s across distinct /16s
    // and /24s inside them (256 per /16 keeps the level-24 chunks low).
    // 200 /16 blocks (level-24 chunks stay far under the limit), each with
    // 170 distinct /24 blocks holding a /25: 34,000 level-32 chunks.
    let mut rib: RadixTree<u32, u16> = RadixTree::new();
    for hi in 0..200u32 {
        for mid in 0..170u32 {
            rib.insert(Prefix::new((10 << 24) | (hi << 16) | (mid << 8), 25), 1);
        }
    }
    const _: () = assert!(200 * 170 > MAX_CHUNKS);
    let err = Sail::from_rib(&rib).unwrap_err();
    assert!(
        matches!(err, SailError::ChunkOverflow { level: 32, .. }),
        "{err:?}"
    );
}

#[test]
fn max_next_hop_boundary() {
    // 32767 is the largest next hop that fits beside the chunk flag.
    let rib = rib_from(&[("10.0.0.0/8", 0x7FFF)]);
    let s = Sail::from_rib(&rib).unwrap();
    assert_eq!(s.lookup(0x0A00_0001), Some(0x7FFF));
}

#[test]
fn default_route_fills_entire_n16() {
    let rib = rib_from(&[("0.0.0.0/0", 5)]);
    let s = Sail::from_rib(&rib).unwrap();
    assert_eq!(s.lookup(0), Some(5));
    assert_eq!(s.lookup(u32::MAX), Some(5));
    assert_eq!(s.chunk_counts(), (0, 0));
}

#[test]
fn deep_chain_pushes_through_both_levels() {
    // /18 pushed to 24, /26 and /31 pushed to 32, inside one /16.
    let rib = rib_from(&[("10.1.0.0/18", 1), ("10.1.2.0/26", 2), ("10.1.2.16/31", 3)]);
    let s = Sail::from_rib(&rib).unwrap();
    assert_eq!(s.lookup(0x0A01_0201), Some(2));
    assert_eq!(s.lookup(0x0A01_0210), Some(3));
    assert_eq!(s.lookup(0x0A01_0211), Some(3));
    assert_eq!(s.lookup(0x0A01_0212), Some(2));
    assert_eq!(s.lookup(0x0A01_0301), Some(1));
    assert_eq!(s.lookup(0x0A01_8001), None); // outside the /18
    let (c24, c32) = s.chunk_counts();
    assert_eq!((c24, c32), (1, 1));
}

#[test]
fn next_hop_overflow_reported() {
    let rib = rib_from(&[("10.0.0.0/8", 0x8000)]);
    assert_eq!(
        Sail::from_rib(&rib).unwrap_err(),
        SailError::NextHopOverflow
    );
}

#[test]
fn memory_accounting() {
    let rib = rib_from(&[("10.1.2.0/24", 1), ("10.1.2.128/25", 2)]);
    let s = Sail::from_rib(&rib).unwrap();
    // N16 (2^16) + one level-24 chunk + one level-32 chunk, 2 bytes each.
    assert_eq!(Lpm::memory_bytes(&s), ((1 << 16) + 256 + 256) * 2);
    assert_eq!(Lpm::name(&s), "SAIL");
}

#[cfg(feature = "proptest")] // needs the proptest dev-dependency (see Cargo.toml)
mod prop {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn sail_matches_oracle(
            routes in proptest::collection::vec((any::<u32>(), 0u8..=32, 1u16..=500), 0..50),
            keys in proptest::collection::vec(any::<u32>(), 128),
        ) {
            let routes: Vec<(Prefix<u32>, u16)> = routes
                .into_iter()
                .map(|(a, l, n)| (Prefix::new(a, l), n))
                .collect();
            let rib = RadixTree::from_routes(routes.clone());
            let lin = LinearLpm::new(rib.to_routes());
            let s = Sail::from_rib(&rib).unwrap();
            for key in keys {
                prop_assert_eq!(s.lookup(key), Lpm::lookup(&lin, key));
            }
        }
    }
}

// The cross-crate Lpm conformance contract (rib crate).
poptrie_rib::lpm_contract_tests!(sail_contract_v4, u32, |rib: &RadixTree<u32, u16>| {
    Sail::from_rib(rib).unwrap()
});
