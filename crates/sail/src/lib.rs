//! SAIL — the level-split baseline of the Poptrie evaluation.
//!
//! Yang, Xie, Li, Fu, Liu, Li and Mathy, *Guarantee IP Lookup Performance
//! with FIB Explosion*, SIGCOMM 2014 — reference \[36\] of the Poptrie paper
//! and its strongest cache-locality competitor. This implements the
//! lookup-oriented variant the paper benchmarks as **SAIL_L**: prefixes are
//! *level-pushed* to lengths 16, 24 and 32, and lookup is at most three
//! plain array accesses with no arithmetic beyond index formation:
//!
//! ```text
//! v = N16[addr >> 16]            // 2^16 entries
//! if v is a next hop -> done     // prefixes <= /16
//! v = N24[(chunk(v) << 8) | byte2]
//! if v is a next hop -> done     // prefixes <= /24
//! N32[(chunk(v) << 8) | byte3]   // prefixes <= /32
//! ```
//!
//! Each entry is 16 bits: the top bit flags "descend into a chunk" and the
//! low 15 bits carry either the next hop or the chunk id — the encoding
//! the Poptrie paper pins SAIL's structural limit on (§4.8: "C16\[i\] in
//! SAIL is encoded in the 15 bits of BCN\[i\], but it exceeds 2^15 for these
//! datasets"). Compiling a table that needs more than 32767 chunks at a
//! level therefore returns [`SailError::ChunkOverflow`], reproducing the
//! `N/A` cells of Table 5.
//!
//! The flat arrays are also why SAIL's memory footprint (tens of MiB,
//! Table 3) exceeds the L3 cache: its speed depends on the traffic's
//! destination locality, the effect Figures 10–12 dissect.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use poptrie_bitops::BATCH_LANES;
use poptrie_rib::radix::Node as RadixNode;
use poptrie_rib::{Lpm, NextHop, RadixTree, NO_ROUTE};

/// Entry flag: descend into a chunk at the next level.
const CHUNK_FLAG: u16 = 1 << 15;

/// Maximum chunks per level: chunk ids live in 15 bits.
pub const MAX_CHUNKS: usize = 1 << 15;

/// SAIL compilation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SailError {
    /// A level needs more chunks than the 15-bit id can address — the
    /// structural limit of §4.8 / Table 5.
    ChunkOverflow {
        /// The level (24 or 32) that overflowed.
        level: u8,
        /// Chunks the table needs at that level.
        needed: usize,
    },
    /// A next hop collides with the chunk flag (must be < 2^15).
    NextHopOverflow,
}

impl core::fmt::Display for SailError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SailError::ChunkOverflow { level, needed } => write!(
                f,
                "level {level} needs {needed} chunks, 15-bit ids allow {MAX_CHUNKS}"
            ),
            SailError::NextHopOverflow => write!(f, "next hop exceeds 15 bits"),
        }
    }
}

impl std::error::Error for SailError {}

/// A compiled SAIL_L lookup structure (IPv4; SAIL as published "does not
/// support more specific routes than /64" for IPv6 — §4.10 — so, like the
/// paper, we evaluate it on IPv4 only).
///
/// ```
/// use poptrie_sail::Sail;
/// use poptrie_rib::RadixTree;
///
/// let mut rib: RadixTree<u32, u16> = RadixTree::new();
/// rib.insert("10.0.0.0/8".parse().unwrap(), 1);
/// rib.insert("10.1.2.0/24".parse().unwrap(), 2);
/// let s = Sail::from_rib(&rib).unwrap();
/// assert_eq!(s.lookup(0x0A01_0203), Some(2));
/// assert_eq!(s.lookup(0x0A01_0303), Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct Sail {
    /// Level 16: `2^16` entries.
    n16: Vec<u16>,
    /// Level 24: one 256-entry block per level-24 chunk.
    n24: Vec<u16>,
    /// Level 32: one 256-entry block per level-32 chunk (plain next hops).
    n32: Vec<u16>,
}

impl Sail {
    /// Compile from a RIB radix tree.
    pub fn from_rib(rib: &RadixTree<u32, NextHop>) -> Result<Self, SailError> {
        let mut s = Sail {
            n16: vec![0; 1 << 16],
            n24: Vec::new(),
            n32: Vec::new(),
        };
        s.fill16(rib.root(), NO_ROUTE, 0, 0)?;
        Ok(s)
    }

    /// Compile from a route list.
    pub fn from_routes<I: IntoIterator<Item = (poptrie_rib::Prefix<u32>, NextHop)>>(
        routes: I,
    ) -> Result<Self, SailError> {
        Self::from_rib(&RadixTree::from_routes(routes))
    }

    /// Level-16 fill: `node` is `depth` bits deep, covering N16 entries
    /// `[base << (16 - depth), (base + 1) << (16 - depth))`.
    fn fill16(
        &mut self,
        node: Option<&RadixNode<NextHop>>,
        inherited: NextHop,
        depth: u32,
        base: usize,
    ) -> Result<(), SailError> {
        let Some(n) = node else {
            let width = 1usize << (16 - depth);
            self.n16[base * width..(base + 1) * width].fill(encode_nh(inherited)?);
            return Ok(());
        };
        if depth == 16 {
            let inh = n.value().copied().unwrap_or(inherited);
            if n.has_children() {
                let chunk = self.n24.len() / 256;
                if chunk >= MAX_CHUNKS {
                    return Err(SailError::ChunkOverflow {
                        level: 24,
                        needed: chunk + 1,
                    });
                }
                self.n24.resize(self.n24.len() + 256, 0);
                self.n16[base] = CHUNK_FLAG | chunk as u16;
                self.fill24(Some(n), inh, 0, chunk * 256)?;
            } else {
                self.n16[base] = encode_nh(inh)?;
            }
            return Ok(());
        }
        let inh = n.value().copied().unwrap_or(inherited);
        self.fill16(n.child(false), inh, depth + 1, base << 1)?;
        self.fill16(n.child(true), inh, depth + 1, (base << 1) | 1)
    }

    /// Level-24 fill within one chunk: `node` is `depth` bits below the
    /// /16 boundary, covering `chunk_base + [base << (8 - depth), ...)`.
    /// `inherited` already includes the value at the /16 node itself.
    fn fill24(
        &mut self,
        node: Option<&RadixNode<NextHop>>,
        inherited: NextHop,
        depth: u32,
        slot: usize,
    ) -> Result<(), SailError> {
        let Some(n) = node else {
            let width = 1usize << (8 - depth);
            self.n24[slot..slot + width].fill(encode_nh(inherited)?);
            return Ok(());
        };
        let inh = if depth == 0 {
            inherited // value at the /16 node was applied by the caller
        } else {
            n.value().copied().unwrap_or(inherited)
        };
        if depth == 8 {
            if n.has_children() {
                let chunk = self.n32.len() / 256;
                if chunk >= MAX_CHUNKS {
                    return Err(SailError::ChunkOverflow {
                        level: 32,
                        needed: chunk + 1,
                    });
                }
                self.n32.resize(self.n32.len() + 256, 0);
                self.n24[slot] = CHUNK_FLAG | chunk as u16;
                self.fill32(Some(n), inh, 0, chunk * 256)?;
            } else {
                self.n24[slot] = encode_nh(inh)?;
            }
            return Ok(());
        }
        let width = 1usize << (8 - depth - 1);
        self.fill24(n.child(false), inh, depth + 1, slot)?;
        self.fill24(n.child(true), inh, depth + 1, slot + width)
    }

    /// Level-32 fill within one chunk: plain next hops, no further levels.
    fn fill32(
        &mut self,
        node: Option<&RadixNode<NextHop>>,
        inherited: NextHop,
        depth: u32,
        slot: usize,
    ) -> Result<(), SailError> {
        let Some(n) = node else {
            let width = 1usize << (8 - depth);
            self.n32[slot..slot + width].fill(encode_nh(inherited)?);
            return Ok(());
        };
        let inh = if depth == 0 {
            inherited
        } else {
            n.value().copied().unwrap_or(inherited)
        };
        if depth == 8 {
            self.n32[slot] = encode_nh(inh)?;
            return Ok(());
        }
        let width = 1usize << (8 - depth - 1);
        self.fill32(n.child(false), inh, depth + 1, slot)?;
        self.fill32(n.child(true), inh, depth + 1, slot + width)
    }

    /// Longest-prefix-match lookup: at most three array reads.
    pub fn lookup(&self, key: u32) -> Option<NextHop> {
        let nh = self.lookup_raw(key);
        (nh != NO_ROUTE).then_some(nh)
    }

    /// Raw lookup returning [`NO_ROUTE`] (0) on a miss.
    ///
    /// Uses unchecked indexing like the paper's C implementation: `n16`
    /// spans the full 2^16 index space, and every stored chunk id points
    /// at a fully allocated 256-entry block by construction.
    #[inline]
    pub fn lookup_raw(&self, key: u32) -> NextHop {
        // SAFETY: `key >> 16 < 2^16 == n16.len()`.
        let v = unsafe { *self.n16.get_unchecked((key >> 16) as usize) };
        if v & CHUNK_FLAG == 0 {
            return v;
        }
        let j = (((v & !CHUNK_FLAG) as usize) << 8) | ((key >> 8) & 0xFF) as usize;
        debug_assert!(j < self.n24.len());
        // SAFETY: chunk ids stored in n16 index fully-allocated 256-entry
        // blocks of n24.
        let v = unsafe { *self.n24.get_unchecked(j) };
        if v & CHUNK_FLAG == 0 {
            return v;
        }
        let k = (((v & !CHUNK_FLAG) as usize) << 8) | (key & 0xFF) as usize;
        debug_assert!(k < self.n32.len());
        // SAFETY: chunk ids stored in n24 index fully-allocated 256-entry
        // blocks of n32.
        unsafe { *self.n32.get_unchecked(k) }
    }

    /// Batched lookup: `keys[i]` resolves into `out[i]` ([`NO_ROUTE`] on a
    /// miss). SAIL has at most three dependent reads per key, so the batch
    /// runs level by level over [`BATCH_LANES`]-key chunks: all lanes'
    /// level-16 lines are prefetched before any is read, lanes that
    /// descend prefetch their level-24 line while the remaining lanes are
    /// still being classified, and likewise for level 32. Per-key
    /// semantics are exactly those of [`Sail::lookup_raw`].
    ///
    /// # Panics
    /// If `keys.len() != out.len()`.
    pub fn lookup_batch(&self, keys: &[u32], out: &mut [NextHop]) {
        assert_eq!(keys.len(), out.len(), "keys/out length mismatch");
        for (keys, out) in keys.chunks(BATCH_LANES).zip(out.chunks_mut(BATCH_LANES)) {
            self.lookup_batch_chunk(keys, out);
        }
    }

    fn lookup_batch_chunk(&self, keys: &[u32], out: &mut [NextHop]) {
        debug_assert!(keys.len() <= BATCH_LANES && keys.len() == out.len());
        let n = keys.len();
        let mut idx = [0usize; BATCH_LANES];
        // Level 16: hint every lane's line, then read.
        for (i, &k) in keys.iter().enumerate() {
            idx[i] = (k >> 16) as usize;
            poptrie_bitops::prefetch_index(&self.n16, idx[i]);
        }
        let mut pending: u32 = 0; // lanes descending to the next level
        for i in 0..n {
            // SAFETY: `key >> 16 < 2^16 == n16.len()`.
            let v = unsafe { *self.n16.get_unchecked(idx[i]) };
            if v & CHUNK_FLAG == 0 {
                out[i] = v;
            } else {
                let j = (((v & !CHUNK_FLAG) as usize) << 8) | ((keys[i] >> 8) & 0xFF) as usize;
                idx[i] = j;
                pending |= 1 << i;
                poptrie_bitops::prefetch_index(&self.n24, j);
            }
        }
        // Level 24.
        let mut m = pending;
        pending = 0;
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            m &= m - 1;
            debug_assert!(idx[i] < self.n24.len());
            // SAFETY: chunk ids stored in n16 index fully-allocated
            // 256-entry blocks of n24.
            let v = unsafe { *self.n24.get_unchecked(idx[i]) };
            if v & CHUNK_FLAG == 0 {
                out[i] = v;
            } else {
                let k = (((v & !CHUNK_FLAG) as usize) << 8) | (keys[i] & 0xFF) as usize;
                idx[i] = k;
                pending |= 1 << i;
                poptrie_bitops::prefetch_index(&self.n32, k);
            }
        }
        // Level 32.
        let mut m = pending;
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            m &= m - 1;
            debug_assert!(idx[i] < self.n32.len());
            // SAFETY: chunk ids stored in n24 index fully-allocated
            // 256-entry blocks of n32.
            out[i] = unsafe { *self.n32.get_unchecked(idx[i]) };
        }
    }

    /// Chunk counts at levels 24 and 32 (bounded by [`MAX_CHUNKS`]).
    pub fn chunk_counts(&self) -> (usize, usize) {
        (self.n24.len() / 256, self.n32.len() / 256)
    }
}

/// Validate that a next hop fits the 15-bit field next to the chunk flag.
#[inline]
fn encode_nh(nh: NextHop) -> Result<u16, SailError> {
    if nh & CHUNK_FLAG != 0 {
        Err(SailError::NextHopOverflow)
    } else {
        Ok(nh)
    }
}

impl Lpm<u32> for Sail {
    fn lookup(&self, key: u32) -> Option<NextHop> {
        Sail::lookup(self, key)
    }

    fn lookup_batch(&self, keys: &[u32], out: &mut [NextHop]) {
        Sail::lookup_batch(self, keys, out)
    }

    fn memory_bytes(&self) -> usize {
        (self.n16.len() + self.n24.len() + self.n32.len()) * 2
    }

    fn name(&self) -> String {
        "SAIL".into()
    }
}

#[cfg(test)]
mod tests;
