//! Marsaglia xorshift generators (reference \[22\] of the paper).
//!
//! The generators themselves live in `poptrie-rng` so the dataset
//! synthesizer and the per-crate test suites can use them without a
//! dependency cycle (this crate depends on `poptrie-tablegen` for the
//! real-trace synthesis); they are re-exported here because traffic
//! generation is where the paper introduces them ("each random number …
//! just before the lookup routine using the xorshift, which allocates
//! only four 32-bit variables", §4.2).

pub use poptrie_rng::{Xorshift128, Xorshift32};
