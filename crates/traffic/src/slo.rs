//! Adversarial traffic mixes for the tail-latency SLO harness.
//!
//! Throughput means hide the regime the paper actually argues about:
//! bounded lookup work per packet. The tail only moves when traffic
//! defeats the memory hierarchy, so this module provides the three mixes
//! the `repro slo` matrix sweeps:
//!
//! * **Zipf flow mixes** ([`ZipfFlows`]) — a fixed population of flows
//!   replayed with exact Zipf(α) rank frequencies, from the heavy-hitter
//!   skew of transit links (α ≈ 1) to near-uniform scans (α → 0). The
//!   sampler is inverse-CDF over a precomputed rank table, so the rank
//!   distribution is exactly the normalized `1/rank^α` law — the
//!   chi-squared goodness-of-fit test in `tests.rs` holds it to that.
//! * **Microburst schedules** ([`MicroburstSchedule`]) — a deterministic
//!   on/off gate the feeder consults, turning a steady offered load into
//!   short line-rate bursts separated by quiet gaps. Queues drain between
//!   bursts, so the latency distribution separates queueing delay from
//!   service time instead of measuring a saturated queue's depth.
//! * **Worst-depth streams** ([`WorstDepth`]) — addresses synthesized
//!   from the *installed table's* longest-match chains: for every route
//!   the binary-radix descent depth of its first address is measured
//!   against the table itself, and the stream replays the deepest pool.
//!   This is the anti-locality, maximum-work-per-packet adversary; the
//!   telemetry depth histogram must show the trie's maximum descent
//!   depth under it (the regression test in `tests/slo.rs`).
//!
//! All generators are seeded, deterministic, and allocation-free on the
//! hot path (the `fill` calls), like the §4.2 patterns in
//! [`patterns`](crate::patterns).

use std::time::Duration;

use poptrie_bitops::Bits;
use poptrie_rib::{NextHop, Prefix, RadixTree};

use crate::xorshift::Xorshift128;

// ------------------------------------------------------------------ Zipf

/// The Zipf(α) rank distribution over `n` ranks: rank `r` (0-based) has
/// probability proportional to `1 / (r + 1)^α`. Holds the cumulative
/// table; sampling is a binary search.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// `cdf[r]` = P(rank <= r); `cdf[n - 1]` is 1.0 by construction.
    cdf: Vec<f64>,
    alpha: f64,
}

impl Zipf {
    /// The Zipf(α) distribution over `n >= 1` ranks. `alpha = 0` is the
    /// uniform distribution; larger α concentrates mass on low ranks.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n >= 1, "Zipf needs at least one rank");
        assert!(
            alpha >= 0.0 && alpha.is_finite(),
            "alpha must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating-point shortfall at the top rank.
        *cdf.last_mut().expect("n >= 1") = 1.0;
        Zipf { cdf, alpha }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.cdf.len()
    }

    /// The skew parameter α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Exact probability of 0-based `rank` (for goodness-of-fit tests).
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }

    /// Draw one 0-based rank using `rng`.
    #[inline]
    pub fn sample(&self, rng: &mut Xorshift128) -> usize {
        // Uniform in (0, 1]: the partition_point picks the first rank
        // whose cumulative probability reaches u.
        let u = (rng.next_u32() as f64 + 1.0) / (u32::MAX as f64 + 1.0);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// A Zipf-popularity flow mix: a fixed population of destination
/// addresses replayed with [`Zipf`] rank frequencies. Rank 0 is the
/// heaviest hitter.
#[derive(Debug, Clone)]
pub struct ZipfFlows<K: Bits> {
    flows: Vec<K>,
    zipf: Zipf,
    rng: Xorshift128,
}

impl ZipfFlows<u32> {
    /// `flows` random IPv4 destinations with Zipf(α) popularity.
    pub fn random(flows: usize, alpha: f64, seed: u32) -> Self {
        let mut rng = Xorshift128::new(seed);
        let dests = (0..flows.max(1)).map(|_| rng.next_u32()).collect();
        Self::over(dests, alpha, seed ^ 0x51F0_0001)
    }
}

impl<K: Bits> ZipfFlows<K> {
    /// Zipf(α) popularity over an explicit destination population;
    /// `destinations[0]` becomes the heaviest hitter. The population is
    /// used as given (synthesize it from a table for depth-biased mixes).
    pub fn over(destinations: Vec<K>, alpha: f64, seed: u32) -> Self {
        assert!(
            !destinations.is_empty(),
            "flow population must be non-empty"
        );
        let zipf = Zipf::new(destinations.len(), alpha);
        ZipfFlows {
            flows: destinations,
            zipf,
            rng: Xorshift128::new(seed),
        }
    }

    /// The flow population size.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// The underlying rank distribution.
    pub fn zipf(&self) -> &Zipf {
        &self.zipf
    }

    /// Fill `out` with the next `out.len()` destinations of the stream.
    pub fn fill(&mut self, out: &mut [K]) {
        for k in out {
            *k = self.flows[self.zipf.sample(&mut self.rng)];
        }
    }
}

// ------------------------------------------------------------ microburst

/// A deterministic on/off offered-load gate: each period opens with a
/// burst window and closes with a quiet gap. The feeder submits at line
/// rate while [`gain`](MicroburstSchedule::gain) is 1.0 and idles (or
/// trickles) while it is the off-gain.
#[derive(Debug, Clone, Copy)]
pub struct MicroburstSchedule {
    period: Duration,
    burst_fraction: f64,
    off_gain: f64,
}

impl MicroburstSchedule {
    /// Bursts of `burst_fraction` of each `period` (clamped to
    /// `(0, 1]`), fully quiet between bursts.
    pub fn new(period: Duration, burst_fraction: f64) -> Self {
        assert!(!period.is_zero(), "period must be non-zero");
        MicroburstSchedule {
            period,
            burst_fraction: burst_fraction.clamp(f64::EPSILON, 1.0),
            off_gain: 0.0,
        }
    }

    /// Keep a trickle of `gain` (clamped to `[0, 1]`) flowing between
    /// bursts instead of full quiet.
    pub fn off_gain(mut self, gain: f64) -> Self {
        self.off_gain = gain.clamp(0.0, 1.0);
        self
    }

    /// The schedule period.
    pub fn period(&self) -> Duration {
        self.period
    }

    /// Whether `elapsed` (time since the run started) falls inside a
    /// burst window.
    pub fn is_on(&self, elapsed: Duration) -> bool {
        let phase = elapsed.as_secs_f64() % self.period.as_secs_f64();
        phase < self.burst_fraction * self.period.as_secs_f64()
    }

    /// Offered-load multiplier at `elapsed`: 1.0 inside a burst, the
    /// off-gain otherwise.
    pub fn gain(&self, elapsed: Duration) -> f64 {
        if self.is_on(elapsed) {
            1.0
        } else {
            self.off_gain
        }
    }
}

// ------------------------------------------------------------ worst depth

/// The worst-depth adversarial stream: replays the addresses whose
/// binary-radix descent through the *installed table* is deepest — the
/// longest-match chains — so every packet costs the maximum trie work
/// the table can demand.
#[derive(Debug, Clone)]
pub struct WorstDepth<K: Bits> {
    pool: Vec<K>,
    max_chain_depth: u32,
    rng: Xorshift128,
}

impl<K: Bits> WorstDepth<K> {
    /// Synthesize from the table's routes: measure the radix descent
    /// depth of every route's first address against the table itself,
    /// keep the deepest `pool` addresses (every address tied with the
    /// maximum always survives), and replay them uniformly at random.
    ///
    /// An empty table degenerates to the all-zeros address at depth 0.
    pub fn synthesize(routes: &[(Prefix<K>, NextHop)], pool: usize, seed: u32) -> Self {
        let pool = pool.max(1);
        let rng = Xorshift128::new(seed);
        if routes.is_empty() {
            return WorstDepth {
                pool: vec![K::ZERO],
                max_chain_depth: 0,
                rng,
            };
        }
        let table: RadixTree<K, NextHop> = RadixTree::from_routes(routes.iter().copied());
        // One probe per route: the first address of a deep route walks
        // its whole ancestor chain (and any longer prefix covering it).
        let mut probed: Vec<(u32, K)> = routes
            .iter()
            .map(|&(p, _)| {
                let addr = p.first_addr();
                let (_, depth, _) = table.lookup_with_depth(addr);
                (depth, addr)
            })
            .collect();
        probed.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        probed.dedup_by_key(|e| e.1);
        let max_chain_depth = probed.first().map(|e| e.0).unwrap_or(0);
        // Keep the deepest `pool` addresses, but never cut a tie with
        // the maximum: the stream must be able to hit every deepest
        // chain, not just whichever sorted first.
        let mut cut = pool.min(probed.len());
        while cut < probed.len() && probed[cut].0 == max_chain_depth {
            cut += 1;
        }
        probed.truncate(cut);
        WorstDepth {
            pool: probed.into_iter().map(|(_, a)| a).collect(),
            max_chain_depth,
            rng,
        }
    }

    /// The deepest binary-radix descent the pool reaches.
    pub fn max_chain_depth(&self) -> u32 {
        self.max_chain_depth
    }

    /// The adversarial address pool, deepest chains first.
    pub fn pool(&self) -> &[K] {
        &self.pool
    }

    /// Fill `out` with the next `out.len()` addresses of the stream
    /// (uniform over the pool).
    pub fn fill(&mut self, out: &mut [K]) {
        for k in out {
            *k = self.pool[(self.rng.next_u32() as usize) % self.pool.len()];
        }
    }
}
