use crate::patterns::{random_v4, random_v6_in_2000, repeated_v4, sequential_v4};
use crate::slo::{MicroburstSchedule, WorstDepth, Zipf, ZipfFlows};
use crate::trace::{RealTrace, TraceConfig};
use crate::xorshift::{Xorshift128, Xorshift32};

mod xorshift {
    use super::*;

    #[test]
    fn xorshift32_known_sequence() {
        // Marsaglia (13, 17, 5) from seed 1.
        let mut x = Xorshift32::new(1);
        assert_eq!(x.next_u32(), 270_369);
        assert_eq!(x.next_u32(), 67_634_689);
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut x = Xorshift32::new(0);
        assert_ne!(x.next_u32(), 0);
        let mut y = Xorshift128::new(0);
        // Must not get stuck.
        let a = y.next_u32();
        let b = y.next_u32();
        assert!(a != 0 || b != 0);
    }

    #[test]
    fn xorshift128_is_deterministic_and_spread() {
        let a: Vec<u32> = Xorshift128::new(42).take(1000).collect();
        let b: Vec<u32> = Xorshift128::new(42).take(1000).collect();
        assert_eq!(a, b);
        let c: Vec<u32> = Xorshift128::new(43).take(1000).collect();
        assert_ne!(a, c);
        // Crude uniformity: top bit roughly balanced.
        let ones = a.iter().filter(|v| *v >> 31 == 1).count();
        assert!((350..=650).contains(&ones), "{ones}");
    }

    #[test]
    fn u128_uses_four_draws() {
        let mut a = Xorshift128::new(7);
        let mut b = Xorshift128::new(7);
        let wide = a.next_u128();
        let parts = [b.next_u32(), b.next_u32(), b.next_u32(), b.next_u32()];
        let expect = (parts[0] as u128) << 96
            | (parts[1] as u128) << 64
            | (parts[2] as u128) << 32
            | parts[3] as u128;
        assert_eq!(wide, expect);
    }
}

mod patterns {
    use super::*;

    #[test]
    fn random_count_and_determinism() {
        let a: Vec<u32> = random_v4(1, 100).collect();
        let b: Vec<u32> = random_v4(1, 100).collect();
        assert_eq!(a.len(), 100);
        assert_eq!(a, b);
    }

    #[test]
    fn sequential_wraps() {
        let v: Vec<u32> = sequential_v4(u32::MAX - 1, 4).collect();
        assert_eq!(v, vec![u32::MAX - 1, u32::MAX, 0, 1]);
    }

    #[test]
    fn repeated_runs_of_16() {
        let v: Vec<u32> = repeated_v4(9, 64, 16).collect();
        for chunk in v.chunks(16) {
            assert!(chunk.iter().all(|&x| x == chunk[0]));
        }
        assert_ne!(v[0], v[16], "distinct random values between runs");
    }

    #[test]
    fn v6_random_stays_in_2000_slash_8() {
        for addr in random_v6_in_2000(3, 1000) {
            assert_eq!(addr >> 120, 0x20);
        }
    }
}

mod slo {
    use super::*;
    use std::time::Duration;

    use poptrie_rib::{NextHop, Prefix, RadixTree};

    /// Approximate upper critical value of the chi-squared distribution
    /// at p ≈ 0.001 for `df` degrees of freedom (Wilson–Hilferty cube
    /// approximation; z_0.999 = 3.09). The test is seeded, so this only
    /// needs to separate "correct sampler" from "broken sampler" — a
    /// wrong CDF or biased inversion overshoots this by orders of
    /// magnitude.
    fn chi2_crit(df: f64) -> f64 {
        let z = 3.09;
        df * (1.0 - 2.0 / (9.0 * df) + z * (2.0 / (9.0 * df)).sqrt()).powi(3)
    }

    #[test]
    fn zipf_pmf_is_normalized_and_monotone() {
        for &alpha in &[0.0, 0.5, 1.0, 1.5] {
            let z = Zipf::new(100, alpha);
            let total: f64 = (0..100).map(|r| z.pmf(r)).sum();
            assert!(
                (total - 1.0).abs() < 1e-9,
                "alpha {alpha}: pmf sums to {total}"
            );
            for r in 1..100 {
                assert!(
                    z.pmf(r) <= z.pmf(r - 1) + 1e-12,
                    "alpha {alpha}: pmf not monotone at rank {r}"
                );
            }
        }
        // alpha = 0 is uniform.
        let u = Zipf::new(10, 0.0);
        for r in 0..10 {
            assert!((u.pmf(r) - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn zipf_sampler_passes_chi_squared_gof() {
        // Seeded and deterministic: rank frequencies from the
        // inverse-CDF sampler must fit the exact pmf at every skew the
        // SLO matrix uses.
        const RANKS: usize = 64;
        const DRAWS: usize = 200_000;
        for (i, &alpha) in [0.0, 0.5, 1.0, 1.5].iter().enumerate() {
            let z = Zipf::new(RANKS, alpha);
            let mut rng = Xorshift128::new(0xC41_0000 + i as u32);
            let mut obs = [0u64; RANKS];
            for _ in 0..DRAWS {
                obs[z.sample(&mut rng)] += 1;
            }
            let mut chi2 = 0.0f64;
            for (r, &seen) in obs.iter().enumerate() {
                let exp = z.pmf(r) * DRAWS as f64;
                assert!(
                    exp >= 5.0,
                    "alpha {alpha}: rank {r} expected count {exp} too small for chi-squared"
                );
                let d = seen as f64 - exp;
                chi2 += d * d / exp;
            }
            let crit = chi2_crit((RANKS - 1) as f64);
            assert!(
                chi2 < crit,
                "alpha {alpha}: chi2 {chi2:.1} exceeds critical {crit:.1}"
            );
        }
    }

    #[test]
    fn zipf_flows_rank_zero_is_heaviest() {
        let mut flows = ZipfFlows::random(256, 1.0, 7);
        assert_eq!(flows.flow_count(), 256);
        assert_eq!(flows.zipf().ranks(), 256);
        let mut out = vec![0u32; 100_000];
        flows.fill(&mut out);
        let mut counts: std::collections::HashMap<u32, usize> = Default::default();
        for &d in &out {
            *counts.entry(d).or_default() += 1;
        }
        // Heavy hitter: far above the uniform share of ~390.
        let max = *counts.values().max().unwrap();
        assert!(max > 10_000, "heaviest flow seen {max} times");
        // Deterministic replay.
        let mut again = ZipfFlows::random(256, 1.0, 7);
        let mut out2 = vec![0u32; 100_000];
        again.fill(&mut out2);
        assert_eq!(out, out2);
    }

    #[test]
    fn microburst_gate_follows_the_schedule() {
        let s = MicroburstSchedule::new(Duration::from_millis(10), 0.3);
        assert!(s.is_on(Duration::ZERO));
        assert!(s.is_on(Duration::from_micros(2_900)));
        assert!(!s.is_on(Duration::from_micros(3_100)));
        assert!(!s.is_on(Duration::from_micros(9_900)));
        assert!(s.is_on(Duration::from_micros(10_100)), "periodic");
        assert_eq!(s.gain(Duration::ZERO), 1.0);
        assert_eq!(s.gain(Duration::from_millis(5)), 0.0);
        let trickle = MicroburstSchedule::new(Duration::from_millis(10), 0.3).off_gain(0.25);
        assert_eq!(trickle.gain(Duration::from_millis(5)), 0.25);
    }

    #[test]
    fn worst_depth_pool_hits_the_deepest_chain() {
        // A nested longest-match chain under 10.0.0.0/8 plus shallow
        // decoys: the pool must come from the chain, not the decoys.
        let addr = 0x0AFF_FFFFu32; // 10.255.255.255
        let mut routes: Vec<(Prefix<u32>, NextHop)> = (8..=24)
            .map(|len| {
                (
                    Prefix::new(addr & (!0u32 << (32 - len)), len),
                    len as NextHop,
                )
            })
            .collect();
        routes.push(("192.0.0.0/8".parse().unwrap(), 99));
        routes.push(("193.0.0.0/8".parse().unwrap(), 98));

        let wd = WorstDepth::synthesize(&routes, 4, 1);
        let table: RadixTree<u32, NextHop> = RadixTree::from_routes(routes.iter().copied());
        let probe_depth = |a: u32| table.lookup_with_depth(a).1;
        let shallow = probe_depth(0xC000_0001);
        assert!(
            wd.max_chain_depth() > shallow,
            "chain depth {} not deeper than decoy {}",
            wd.max_chain_depth(),
            shallow
        );
        // Every pool address reaches a depth far beyond the decoys, and
        // at least one hits the maximum.
        assert!(!wd.pool().is_empty());
        let depths: Vec<u32> = wd.pool().iter().map(|&a| probe_depth(a)).collect();
        assert!(depths.iter().all(|&d| d > shallow), "{depths:?}");
        assert!(depths.contains(&wd.max_chain_depth()));
        // The stream only emits pool addresses.
        let mut wd = wd;
        let pool: std::collections::HashSet<u32> = wd.pool().iter().copied().collect();
        let mut out = vec![0u32; 4096];
        wd.fill(&mut out);
        assert!(out.iter().all(|a| pool.contains(a)));
    }

    #[test]
    fn worst_depth_empty_table_degenerates() {
        let wd = WorstDepth::<u32>::synthesize(&[], 8, 3);
        assert_eq!(wd.max_chain_depth(), 0);
        assert_eq!(wd.pool(), &[0u32]);
    }

    #[test]
    fn worst_depth_keeps_every_max_tie() {
        // Two disjoint chains of identical depth: a pool cut of 1 must
        // still keep both maximum-depth addresses.
        let mut routes: Vec<(Prefix<u32>, NextHop)> = Vec::new();
        for base in [0x0A00_0000u32, 0x1400_0000] {
            for len in [8u8, 16, 24] {
                routes.push((Prefix::new(base & (!0u32 << (32 - len as u32)), len), 1));
            }
        }
        let wd = WorstDepth::synthesize(&routes, 1, 5);
        assert!(
            wd.pool().len() >= 2,
            "tied maxima must both survive the cut: {:?}",
            wd.pool()
        );
    }
}

mod trace {
    use super::*;
    use poptrie_tablegen::{TableKind, TableSpec};

    fn small_real_table() -> poptrie_tablegen::Dataset {
        TableSpec {
            name: "trace-test".into(),
            prefixes: 20_000,
            next_hops: 16,
            kind: TableKind::Real,
        }
        .generate()
    }

    #[test]
    fn destinations_count_and_determinism() {
        let table = small_real_table();
        let cfg = TraceConfig {
            destinations: 10_000,
            ..TraceConfig::default()
        };
        let a = RealTrace::synthesize(&table, cfg);
        let b = RealTrace::synthesize(&table, cfg);
        assert_eq!(a.destinations.len(), 10_000);
        assert_eq!(a.destinations, b.destinations);
    }

    #[test]
    fn trace_is_depth_biased() {
        // The paper's headline trace property: packets hit deep routes far
        // more often than uniform traffic would.
        let table = small_real_table();
        let rib = table.to_rib();
        let trace = RealTrace::synthesize(
            &table,
            TraceConfig {
                destinations: 20_000,
                ..TraceConfig::default()
            },
        );
        let deep = trace
            .destinations
            .iter()
            .filter(|&&d| rib.lookup_with_depth(d).1 > 18)
            .count();
        let frac = deep as f64 / trace.destinations.len() as f64;
        assert!(frac > 0.25, "deep-depth fraction {frac}");
    }

    #[test]
    fn packets_have_temporal_locality() {
        let table = small_real_table();
        let trace = RealTrace::synthesize(
            &table,
            TraceConfig {
                destinations: 10_000,
                ..TraceConfig::default()
            },
        );
        let pkts = trace.packet_array(50_000);
        assert_eq!(pkts.len(), 50_000);
        // Zipf replay: the most popular destination must appear far more
        // often than 1/N of the time.
        let mut counts: std::collections::HashMap<u32, usize> = Default::default();
        for &p in &pkts {
            *counts.entry(p).or_default() += 1;
        }
        let max = *counts.values().max().unwrap();
        assert!(max > 50, "heavy hitter count {max}");
        // All packets resolve to real destinations.
        let set: std::collections::HashSet<u32> = trace.destinations.iter().copied().collect();
        assert!(pkts.iter().all(|p| set.contains(p)));
    }
}
