use crate::patterns::{random_v4, random_v6_in_2000, repeated_v4, sequential_v4};
use crate::trace::{RealTrace, TraceConfig};
use crate::xorshift::{Xorshift128, Xorshift32};

mod xorshift {
    use super::*;

    #[test]
    fn xorshift32_known_sequence() {
        // Marsaglia (13, 17, 5) from seed 1.
        let mut x = Xorshift32::new(1);
        assert_eq!(x.next_u32(), 270_369);
        assert_eq!(x.next_u32(), 67_634_689);
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut x = Xorshift32::new(0);
        assert_ne!(x.next_u32(), 0);
        let mut y = Xorshift128::new(0);
        // Must not get stuck.
        let a = y.next_u32();
        let b = y.next_u32();
        assert!(a != 0 || b != 0);
    }

    #[test]
    fn xorshift128_is_deterministic_and_spread() {
        let a: Vec<u32> = Xorshift128::new(42).take(1000).collect();
        let b: Vec<u32> = Xorshift128::new(42).take(1000).collect();
        assert_eq!(a, b);
        let c: Vec<u32> = Xorshift128::new(43).take(1000).collect();
        assert_ne!(a, c);
        // Crude uniformity: top bit roughly balanced.
        let ones = a.iter().filter(|v| *v >> 31 == 1).count();
        assert!((350..=650).contains(&ones), "{ones}");
    }

    #[test]
    fn u128_uses_four_draws() {
        let mut a = Xorshift128::new(7);
        let mut b = Xorshift128::new(7);
        let wide = a.next_u128();
        let parts = [b.next_u32(), b.next_u32(), b.next_u32(), b.next_u32()];
        let expect = (parts[0] as u128) << 96
            | (parts[1] as u128) << 64
            | (parts[2] as u128) << 32
            | parts[3] as u128;
        assert_eq!(wide, expect);
    }
}

mod patterns {
    use super::*;

    #[test]
    fn random_count_and_determinism() {
        let a: Vec<u32> = random_v4(1, 100).collect();
        let b: Vec<u32> = random_v4(1, 100).collect();
        assert_eq!(a.len(), 100);
        assert_eq!(a, b);
    }

    #[test]
    fn sequential_wraps() {
        let v: Vec<u32> = sequential_v4(u32::MAX - 1, 4).collect();
        assert_eq!(v, vec![u32::MAX - 1, u32::MAX, 0, 1]);
    }

    #[test]
    fn repeated_runs_of_16() {
        let v: Vec<u32> = repeated_v4(9, 64, 16).collect();
        for chunk in v.chunks(16) {
            assert!(chunk.iter().all(|&x| x == chunk[0]));
        }
        assert_ne!(v[0], v[16], "distinct random values between runs");
    }

    #[test]
    fn v6_random_stays_in_2000_slash_8() {
        for addr in random_v6_in_2000(3, 1000) {
            assert_eq!(addr >> 120, 0x20);
        }
    }
}

mod trace {
    use super::*;
    use poptrie_tablegen::{TableKind, TableSpec};

    fn small_real_table() -> poptrie_tablegen::Dataset {
        TableSpec {
            name: "trace-test".into(),
            prefixes: 20_000,
            next_hops: 16,
            kind: TableKind::Real,
        }
        .generate()
    }

    #[test]
    fn destinations_count_and_determinism() {
        let table = small_real_table();
        let cfg = TraceConfig {
            destinations: 10_000,
            ..TraceConfig::default()
        };
        let a = RealTrace::synthesize(&table, cfg);
        let b = RealTrace::synthesize(&table, cfg);
        assert_eq!(a.destinations.len(), 10_000);
        assert_eq!(a.destinations, b.destinations);
    }

    #[test]
    fn trace_is_depth_biased() {
        // The paper's headline trace property: packets hit deep routes far
        // more often than uniform traffic would.
        let table = small_real_table();
        let rib = table.to_rib();
        let trace = RealTrace::synthesize(
            &table,
            TraceConfig {
                destinations: 20_000,
                ..TraceConfig::default()
            },
        );
        let deep = trace
            .destinations
            .iter()
            .filter(|&&d| rib.lookup_with_depth(d).1 > 18)
            .count();
        let frac = deep as f64 / trace.destinations.len() as f64;
        assert!(frac > 0.25, "deep-depth fraction {frac}");
    }

    #[test]
    fn packets_have_temporal_locality() {
        let table = small_real_table();
        let trace = RealTrace::synthesize(
            &table,
            TraceConfig {
                destinations: 10_000,
                ..TraceConfig::default()
            },
        );
        let pkts = trace.packet_array(50_000);
        assert_eq!(pkts.len(), 50_000);
        // Zipf replay: the most popular destination must appear far more
        // often than 1/N of the time.
        let mut counts: std::collections::HashMap<u32, usize> = Default::default();
        for &p in &pkts {
            *counts.entry(p).or_default() += 1;
        }
        let max = *counts.values().max().unwrap();
        assert!(max > 50, "heavy hitter count {max}");
        // All packets resolve to real destinations.
        let set: std::collections::HashSet<u32> = trace.destinations.iter().copied().collect();
        assert!(pkts.iter().all(|p| set.contains(p)));
    }
}
