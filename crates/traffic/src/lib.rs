//! Traffic patterns for the lookup benchmarks (§4.2 of the paper).
//!
//! Four patterns drive the evaluation:
//!
//! * **random** — addresses from a Marsaglia xorshift generator, produced
//!   *inside* the measurement loop so the pattern state never pollutes the
//!   cache (the paper measures the ~1.2 ns generator overhead and leaves
//!   it in the results; so do we).
//! * **sequential** — `0.0.0.0` through `255.255.255.255` in order:
//!   maximal spatial and temporal locality.
//! * **repeated** — each random address issued 16 times: high temporal
//!   locality.
//! * **real-trace** — a synthetic stand-in for the MAWI trace of §4.2 /
//!   §4.7 (see DESIGN.md substitution 3): 644,790 distinct destinations
//!   biased toward deep (IGP) routes, replayed with Zipf-like popularity.
//!
//! The [`slo`] module adds the adversarial mixes the tail-latency SLO
//! harness sweeps (DESIGN.md §9): exact Zipf(α) flow mixes, microburst
//! schedules, and worst-depth streams synthesized from the installed
//! table's longest-match chains.
//!
//! All generators are deterministic and allocation-free on the hot path.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod patterns;
pub mod slo;
pub mod trace;
pub mod xorshift;

pub use patterns::{fill, random_v4, random_v6_in_2000, repeated_v4, sequential_v4};
pub use slo::{MicroburstSchedule, WorstDepth, Zipf, ZipfFlows};
pub use trace::{RealTrace, TraceConfig};
pub use xorshift::{Xorshift128, Xorshift32};

#[cfg(test)]
mod tests;
