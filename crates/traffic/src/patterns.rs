//! The synthetic query patterns: random, sequential, repeated.

use crate::xorshift::Xorshift128;

/// `count` random IPv4 addresses from xorshift128 (the paper's *random*
/// pattern; the full run uses `count = 2^32`).
pub fn random_v4(seed: u32, count: u64) -> impl Iterator<Item = u32> {
    let mut rng = Xorshift128::new(seed);
    (0..count).map(move |_| rng.next_u32())
}

/// The *sequential* pattern: all addresses from `start`, in order,
/// wrapping at the top of the address space.
pub fn sequential_v4(start: u32, count: u64) -> impl Iterator<Item = u32> {
    (0..count).map(move |i| start.wrapping_add(i as u32))
}

/// The *repeated* pattern: random addresses, each issued `times` times
/// consecutively (the paper uses `times = 16` for "traffic with high
/// temporal locality").
pub fn repeated_v4(seed: u32, count: u64, times: u32) -> impl Iterator<Item = u32> {
    assert!(times > 0);
    let mut rng = Xorshift128::new(seed);
    let mut current = rng.next_u32();
    let mut remaining = times;
    (0..count).map(move |_| {
        if remaining == 0 {
            current = rng.next_u32();
            remaining = times;
        }
        remaining -= 1;
        current
    })
}

/// `count` random IPv6 addresses within `2000::/8`, four 32-bit xorshift
/// draws each — the §4.10 IPv6 random pattern.
pub fn random_v6_in_2000(seed: u32, count: u64) -> impl Iterator<Item = u128> {
    let mut rng = Xorshift128::new(seed);
    (0..count).map(move |_| (0x20u128 << 120) | (rng.next_u128() >> 8))
}
