//! The synthetic query patterns: random, sequential, repeated.

use crate::xorshift::Xorshift128;

/// `count` random IPv4 addresses from xorshift128 (the paper's *random*
/// pattern; the full run uses `count = 2^32`).
pub fn random_v4(seed: u32, count: u64) -> impl Iterator<Item = u32> {
    let mut rng = Xorshift128::new(seed);
    (0..count).map(move |_| rng.next_u32())
}

/// The *sequential* pattern: all addresses from `start`, in order,
/// wrapping at the top of the address space.
pub fn sequential_v4(start: u32, count: u64) -> impl Iterator<Item = u32> {
    (0..count).map(move |i| start.wrapping_add(i as u32))
}

/// The *repeated* pattern: random addresses, each issued `times` times
/// consecutively (the paper uses `times = 16` for "traffic with high
/// temporal locality").
pub fn repeated_v4(seed: u32, count: u64, times: u32) -> impl Iterator<Item = u32> {
    assert!(times > 0);
    let mut rng = Xorshift128::new(seed);
    let mut current = rng.next_u32();
    let mut remaining = times;
    (0..count).map(move |_| {
        if remaining == 0 {
            current = rng.next_u32();
            remaining = times;
        }
        remaining -= 1;
        current
    })
}

/// `count` random IPv6 addresses within `2000::/8`, four 32-bit xorshift
/// draws each — the §4.10 IPv6 random pattern.
pub fn random_v6_in_2000(seed: u32, count: u64) -> impl Iterator<Item = u128> {
    let mut rng = Xorshift128::new(seed);
    (0..count).map(move |_| (0x20u128 << 120) | (rng.next_u128() >> 8))
}

/// Resumable slice fillers for the batched measurement loops: the bench
/// harness refills one reusable key buffer per batch instead of
/// materializing the full pattern, so the generator has to carry its
/// state across calls. Each pattern's `fill` produces exactly the same
/// key sequence as its iterator counterpart above.
pub mod fill {
    use crate::xorshift::Xorshift128;

    /// Streaming source of the *random* IPv4 pattern ([`random_v4`]).
    ///
    /// [`random_v4`]: super::random_v4
    #[derive(Debug, Clone)]
    pub struct RandomV4(Xorshift128);

    impl RandomV4 {
        /// Start the stream that [`random_v4`](super::random_v4) yields
        /// for `seed`.
        pub fn new(seed: u32) -> Self {
            RandomV4(Xorshift128::new(seed))
        }

        /// Fill `out` with the next `out.len()` keys of the stream.
        pub fn fill(&mut self, out: &mut [u32]) {
            for k in out {
                *k = self.0.next_u32();
            }
        }
    }

    /// Streaming source of the *sequential* pattern ([`sequential_v4`]).
    ///
    /// [`sequential_v4`]: super::sequential_v4
    #[derive(Debug, Clone)]
    pub struct SequentialV4(u32);

    impl SequentialV4 {
        /// Start at `start`, wrapping at the top of the address space.
        pub fn new(start: u32) -> Self {
            SequentialV4(start)
        }

        /// Fill `out` with the next `out.len()` addresses.
        pub fn fill(&mut self, out: &mut [u32]) {
            for k in out {
                *k = self.0;
                self.0 = self.0.wrapping_add(1);
            }
        }
    }

    /// Streaming source of the *repeated* pattern ([`repeated_v4`]).
    ///
    /// [`repeated_v4`]: super::repeated_v4
    #[derive(Debug, Clone)]
    pub struct RepeatedV4 {
        rng: Xorshift128,
        current: u32,
        remaining: u32,
        times: u32,
    }

    impl RepeatedV4 {
        /// Random addresses, each issued `times` times consecutively.
        pub fn new(seed: u32, times: u32) -> Self {
            assert!(times > 0);
            let mut rng = Xorshift128::new(seed);
            let current = rng.next_u32();
            RepeatedV4 {
                rng,
                current,
                remaining: times,
                times,
            }
        }

        /// Fill `out` with the next `out.len()` addresses.
        pub fn fill(&mut self, out: &mut [u32]) {
            for k in out {
                if self.remaining == 0 {
                    self.current = self.rng.next_u32();
                    self.remaining = self.times;
                }
                self.remaining -= 1;
                *k = self.current;
            }
        }
    }

    /// Streaming source of the IPv6 random pattern
    /// ([`random_v6_in_2000`]).
    ///
    /// [`random_v6_in_2000`]: super::random_v6_in_2000
    #[derive(Debug, Clone)]
    pub struct RandomV6In2000(Xorshift128);

    impl RandomV6In2000 {
        /// Start the stream that
        /// [`random_v6_in_2000`](super::random_v6_in_2000) yields for
        /// `seed`.
        pub fn new(seed: u32) -> Self {
            RandomV6In2000(Xorshift128::new(seed))
        }

        /// Fill `out` with the next `out.len()` addresses.
        pub fn fill(&mut self, out: &mut [u128]) {
            for k in out {
                *k = (0x20u128 << 120) | (self.0.next_u128() >> 8);
            }
        }
    }
}
