//! The synthetic real-trace (DESIGN.md substitution 3).
//!
//! §4.2/§4.7 of the paper replay a 15-minute MAWI transit-link capture
//! against REAL-RENET: 97,126,495 IPv4 packets over 644,790 distinct
//! destinations, with two properties the paper pins its Figure 12
//! analysis on:
//!
//! * **depth bias** — "32.5% of the packets … have the binary radix depth
//!   more than 18" and "21.8% … more than 24": real traffic
//!   disproportionately hits the deep IGP routes;
//! * **temporal locality** — "sequences of packets with the identical
//!   destination IP address", which is what lets SAIL ride its caches.
//!
//! [`RealTrace`] reproduces both: destinations are drawn inside the
//! table's routes with extra weight on long prefixes, and the replay picks
//! destinations with a Zipf-like popularity law. Like the paper, the
//! destination array is materialized in memory in advance and queried in
//! sequence.

use poptrie_rib::Prefix;
use poptrie_tablegen::Dataset;

use crate::xorshift::Xorshift128;

/// Parameters for trace synthesis; defaults reproduce the paper's trace
/// statistics (scaled packet count).
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Number of distinct destination addresses (paper: 644,790).
    pub destinations: usize,
    /// Fraction of destinations inside prefixes longer than /18.
    pub deep18_fraction: f64,
    /// Fraction of destinations inside prefixes longer than /24 (subset of
    /// the above, the IGP tail).
    pub deep24_fraction: f64,
    /// Seed for destination selection and replay.
    pub seed: u32,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            destinations: 644_790,
            deep18_fraction: 0.325,
            deep24_fraction: 0.218,
            seed: 0x7ACE,
        }
    }
}

/// A materialized synthetic trace.
#[derive(Debug, Clone)]
pub struct RealTrace {
    /// The distinct destination addresses.
    pub destinations: Vec<u32>,
}

impl RealTrace {
    /// Synthesize a trace against `table` (the paper pairs the MAWI trace
    /// with REAL-RENET, the RIB of the same border router).
    pub fn synthesize(table: &Dataset, cfg: TraceConfig) -> Self {
        let mut rng = Xorshift128::new(cfg.seed);
        // Partition routes by depth class.
        let mut deep24: Vec<Prefix<u32>> = Vec::new();
        let mut deep18: Vec<Prefix<u32>> = Vec::new();
        let mut shallow: Vec<Prefix<u32>> = Vec::new();
        for &(p, _) in &table.routes {
            if p.len() > 24 {
                deep24.push(p);
            } else if p.len() > 18 {
                deep18.push(p);
            } else {
                shallow.push(p);
            }
        }
        let pick = |pool: &[Prefix<u32>], rng: &mut Xorshift128| -> u32 {
            let p = pool[(rng.next_u32() as usize) % pool.len()];
            let host_bits = 32 - p.len() as u32;
            let noise = if host_bits == 0 {
                0
            } else {
                rng.next_u32() & (u32::MAX >> (32 - host_bits))
            };
            p.addr() | noise
        };
        let mut destinations = Vec::with_capacity(cfg.destinations);
        for i in 0..cfg.destinations {
            let f = i as f64 / cfg.destinations as f64;
            let addr = if f < cfg.deep24_fraction && !deep24.is_empty() {
                pick(&deep24, &mut rng)
            } else if f < cfg.deep18_fraction && !deep18.is_empty() {
                pick(&deep18, &mut rng)
            } else if !shallow.is_empty() {
                pick(&shallow, &mut rng)
            } else {
                rng.next_u32()
            };
            destinations.push(addr);
        }
        // Shuffle so popularity rank (index-based Zipf below) is not
        // correlated with depth class.
        for i in (1..destinations.len()).rev() {
            let j = (rng.next_u32() as usize) % (i + 1);
            destinations.swap(i, j);
        }
        RealTrace { destinations }
    }

    /// Replay `count` packets: each draws a destination with Zipf-like
    /// (log-uniform rank) popularity, giving the heavy-hitter temporal
    /// locality of real transit traffic.
    pub fn packets(&self, count: u64) -> impl Iterator<Item = u32> + '_ {
        let n = self.destinations.len() as f64;
        let mut rng = Xorshift128::new(0x9ACE_7001);
        (0..count).map(move |_| {
            let u = (rng.next_u32() as f64 + 1.0) / (u32::MAX as f64 + 2.0);
            let rank = (n.powf(u) - 1.0) as usize; // log-uniform in [0, n)
            self.destinations[rank.min(self.destinations.len() - 1)]
        })
    }

    /// Materialize a packet array (the paper loads "all the destination IP
    /// addresses of real-trace into an array in memory in advance").
    pub fn packet_array(&self, count: usize) -> Vec<u32> {
        self.packets(count as u64).collect()
    }
}
