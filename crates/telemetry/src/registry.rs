//! Metric exposition: a materialized registry that renders as Prometheus
//! text format or flat JSON.
//!
//! The registry is a *snapshot*, not a live subscription: the instrumented
//! crate reads its static counters at scrape time, pushes the values here,
//! and renders. That keeps this crate free of any registration machinery
//! (and of any dependency), at the cost of the caller enumerating its
//! metrics explicitly — which it must do anyway to document them.

/// The value of a single metric sample.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A monotonically increasing total.
    Counter(u64),
    /// A point-in-time value.
    Gauge(f64),
    /// A distribution, rendered as Prometheus cumulative buckets.
    Histogram {
        /// `(upper_bound, cumulative_count)` pairs, sorted by bound. The
        /// implicit `+Inf` bucket (== `count`) is appended at render time.
        buckets: Vec<(f64, u64)>,
        /// Total number of observations.
        count: u64,
        /// Sum of all observed values.
        sum: f64,
    },
}

/// One metric sample: family name, help text, optional labels, value.
#[derive(Debug, Clone)]
pub struct Metric {
    /// Prometheus family name, e.g. `app_requests_total`.
    pub name: String,
    /// One-line help text emitted as `# HELP`.
    pub help: String,
    /// Label pairs, e.g. `[("mode", "scalar")]`.
    pub labels: Vec<(String, String)>,
    /// The sampled value.
    pub value: MetricValue,
}

/// An ordered collection of metric samples with Prometheus-text and JSON
/// renderers.
#[derive(Debug, Clone, Default)]
pub struct TelemetryRegistry {
    metrics: Vec<Metric>,
}

impl TelemetryRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Push a counter sample.
    pub fn counter(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        value: u64,
    ) -> &mut Self {
        self.push(name, help, labels, MetricValue::Counter(value))
    }

    /// Push a gauge sample.
    pub fn gauge(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        value: f64,
    ) -> &mut Self {
        self.push(name, help, labels, MetricValue::Gauge(value))
    }

    /// Push a histogram sample from per-bucket (non-cumulative) counts and
    /// their inclusive upper bounds.
    pub fn histogram(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds_and_counts: &[(f64, u64)],
        sum: f64,
    ) -> &mut Self {
        let mut cumulative = 0u64;
        let buckets: Vec<(f64, u64)> = bounds_and_counts
            .iter()
            .map(|&(bound, n)| {
                cumulative += n;
                (bound, cumulative)
            })
            .collect();
        self.push(
            name,
            help,
            labels,
            MetricValue::Histogram {
                buckets,
                count: cumulative,
                sum,
            },
        )
    }

    fn push(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        value: MetricValue,
    ) -> &mut Self {
        self.metrics.push(Metric {
            name: name.to_string(),
            help: help.to_string(),
            labels: labels
                .iter()
                .map(|&(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            value,
        });
        self
    }

    /// The samples, in insertion order.
    pub fn metrics(&self) -> &[Metric] {
        &self.metrics
    }

    /// Append every sample of `other`, preserving its order after this
    /// registry's own samples. This is how the stack unifies its export:
    /// the core FIB, the engine, the BGP session and the trace recorder
    /// each build their own registry slice, and one scrape merges them
    /// into a single exposition.
    pub fn merge(&mut self, other: TelemetryRegistry) -> &mut Self {
        self.metrics.extend(other.metrics);
        self
    }

    /// Render as Prometheus text exposition format (version 0.0.4).
    /// `# HELP`/`# TYPE` lines are emitted once per family, on the first
    /// sample of that family.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut seen: Vec<&str> = Vec::new();
        for m in &self.metrics {
            if !seen.contains(&m.name.as_str()) {
                seen.push(&m.name);
                out.push_str(&format!("# HELP {} {}\n", m.name, m.help));
                let ty = match m.value {
                    MetricValue::Counter(_) => "counter",
                    MetricValue::Gauge(_) => "gauge",
                    MetricValue::Histogram { .. } => "histogram",
                };
                out.push_str(&format!("# TYPE {} {}\n", m.name, ty));
            }
            match &m.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("{}{} {}\n", m.name, label_set(&m.labels, None), v));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        m.name,
                        label_set(&m.labels, None),
                        fmt_f64(*v)
                    ));
                }
                MetricValue::Histogram {
                    buckets,
                    count,
                    sum,
                } => {
                    for &(bound, cumulative) in buckets {
                        out.push_str(&format!(
                            "{}_bucket{} {}\n",
                            m.name,
                            label_set(&m.labels, Some(&fmt_f64(bound))),
                            cumulative
                        ));
                    }
                    out.push_str(&format!(
                        "{}_bucket{} {}\n",
                        m.name,
                        label_set(&m.labels, Some("+Inf")),
                        count
                    ));
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        m.name,
                        label_set(&m.labels, None),
                        fmt_f64(*sum)
                    ));
                    out.push_str(&format!(
                        "{}_count{} {}\n",
                        m.name,
                        label_set(&m.labels, None),
                        count
                    ));
                }
            }
        }
        out
    }

    /// Render as a flat JSON object: one key per sample, labels folded
    /// into the key as `name{k=v,...}`; histograms become objects with
    /// `buckets` (upper bound → cumulative count), `count` and `sum`.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        for (i, m) in self.metrics.iter().enumerate() {
            let mut key = m.name.clone();
            if !m.labels.is_empty() {
                key.push('{');
                for (j, (k, v)) in m.labels.iter().enumerate() {
                    if j > 0 {
                        key.push(',');
                    }
                    key.push_str(&format!("{}={}", k, v));
                }
                key.push('}');
            }
            out.push_str(&format!("  \"{}\": ", json_escape(&key)));
            match &m.value {
                MetricValue::Counter(v) => out.push_str(&v.to_string()),
                MetricValue::Gauge(v) => out.push_str(&fmt_f64(*v)),
                MetricValue::Histogram {
                    buckets,
                    count,
                    sum,
                } => {
                    out.push_str("{ \"buckets\": {");
                    for (j, &(bound, cumulative)) in buckets.iter().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        out.push_str(&format!(
                            "\"{}\": {}",
                            json_escape(&fmt_f64(bound)),
                            cumulative
                        ));
                    }
                    out.push_str(&format!(
                        "}}, \"count\": {}, \"sum\": {} }}",
                        count,
                        fmt_f64(*sum)
                    ));
                }
            }
            if i + 1 < self.metrics.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("}\n");
        out
    }
}

/// Format a label set, optionally with an extra `le` label (for histogram
/// buckets). Returns the empty string when there are no labels at all.
fn label_set(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("{}=\"{}\"", k, prom_escape(v)));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        out.push_str(&format!("le=\"{}\"", le));
    }
    out.push('}');
    out
}

/// Format an f64 the way Prometheus expects: integers without a trailing
/// `.0`, everything else via the shortest round-trip representation.
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{}", v)
    }
}

/// Escape a Prometheus label value (backslash, double quote, newline).
fn prom_escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Escape a JSON string value.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
