use super::*;

#[test]
fn counter_sums_across_threads() {
    static C: Counter = Counter::new();
    std::thread::scope(|s| {
        for _ in 0..8 {
            s.spawn(|| {
                for _ in 0..10_000 {
                    C.inc();
                }
            });
        }
    });
    assert_eq!(C.get(), 80_000);
    C.reset();
    assert_eq!(C.get(), 0);
}

#[test]
fn counter_add_accumulates() {
    let c = Counter::new();
    c.add(3);
    c.add(4);
    assert_eq!(c.get(), 7);
}

#[test]
fn gauge_set_and_record_max() {
    let g = Gauge::new();
    g.set(10);
    assert_eq!(g.get(), 10);
    g.record_max(5);
    assert_eq!(g.get(), 10);
    g.record_max(42);
    assert_eq!(g.get(), 42);
    g.reset();
    assert_eq!(g.get(), 0);
}

#[test]
fn histogram_records_and_clamps() {
    let h: Histogram<4> = Histogram::new();
    h.record(0);
    h.record(1);
    h.record(1);
    h.record(3);
    h.record(99); // clamps into the last bucket
    assert_eq!(h.counts(), [1, 2, 0, 2]);
    assert_eq!(h.total(), 5);
    h.reset();
    assert_eq!(h.total(), 0);
}

#[test]
fn histogram_concurrent_mass_is_exact() {
    static H: Histogram<8> = Histogram::new();
    std::thread::scope(|s| {
        for t in 0..4 {
            s.spawn(move || {
                for i in 0..5_000 {
                    H.record((t + i) % 8);
                }
            });
        }
    });
    assert_eq!(H.total(), 20_000);
}

#[test]
fn log2_histogram_buckets_and_sum() {
    let h = Log2Histogram::new();
    h.record(0); // bucket 0
    h.record(1); // bucket 1
    h.record(2); // bucket 2
    h.record(3); // bucket 2
    h.record(1024); // bucket 11
    let counts = h.counts();
    assert_eq!(counts[0], 1);
    assert_eq!(counts[1], 1);
    assert_eq!(counts[2], 2);
    assert_eq!(counts[11], 1);
    assert_eq!(h.total(), 5);
    assert_eq!(h.sum(), 1 + 2 + 3 + 1024); // the recorded 0 adds nothing
    assert!((h.mean() - 206.0).abs() < 1e-9);
    assert_eq!(Log2Histogram::upper_bound(0), 0);
    assert_eq!(Log2Histogram::upper_bound(1), 1);
    assert_eq!(Log2Histogram::upper_bound(2), 3);
    assert_eq!(Log2Histogram::upper_bound(11), 2047);
}

/// Exact type-7 (linear interpolation) quantile of a sorted sample — the
/// reference the histogram estimator is held against.
fn exact_quantile(sorted: &[u64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] as f64 * (1.0 - frac) + sorted[hi] as f64 * frac
}

#[test]
fn log2_quantile_empty_is_none() {
    let h = Log2Histogram::new();
    assert_eq!(h.quantile(0.0), None);
    assert_eq!(h.quantile(0.5), None);
    assert_eq!(h.quantile(1.0), None);
}

#[test]
fn log2_quantile_one_sample_stays_in_its_bucket() {
    for v in [0u64, 1, 2, 5, 100, 1 << 20] {
        let h = Log2Histogram::new();
        h.record(v);
        let b = (u64::BITS - v.leading_zeros()) as usize;
        let (lo, hi) = (Log2Histogram::lower_bound(b), Log2Histogram::upper_bound(b));
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            let got = h.quantile(q).unwrap();
            assert!(
                got >= lo && got <= hi,
                "single sample {v}: q{q} = {got} escaped bucket [{lo}, {hi}]"
            );
        }
        // Midpoint convention: a lone sample must NOT collapse to the
        // bucket's lower edge (the interpolation bias the estimator
        // exists to avoid) — except bucket 0/1 where lo == midpoint.
        if hi > lo + 1 {
            assert!(
                h.quantile(0.5).unwrap() > lo,
                "single sample {v} collapsed to bucket lower edge"
            );
        }
    }
}

#[test]
fn log2_quantile_tracks_exact_reference_on_uniform() {
    // Uniform 1..=4096: every bucket it spans is fully populated, so the
    // within-bucket interpolation should land near the true quantile.
    let h = Log2Histogram::new();
    let sample: Vec<u64> = (1..=4096u64).collect();
    for &v in &sample {
        h.record(v);
    }
    for q in [0.5, 0.9, 0.99, 0.999] {
        let want = exact_quantile(&sample, q);
        let got = h.quantile(q).unwrap() as f64;
        let rel = (got - want).abs() / want;
        assert!(
            rel < 0.25,
            "uniform q{q}: histogram said {got}, exact is {want} (rel err {rel:.3})"
        );
    }
    // Extremes are bounded by the occupied buckets: the max sample 4096
    // sits alone in bucket [4096, 8191], so q=1.0 reconstructs within it.
    assert!(h.quantile(0.0).unwrap() >= 1);
    let p100 = h.quantile(1.0).unwrap();
    assert!((4096..=8191).contains(&p100), "p100 = {p100}");
}

#[test]
fn log2_quantile_tracks_exact_reference_on_skewed() {
    // A long-tailed mix like a latency distribution: mostly fast, a few
    // large outliers. p50 must sit in the body, p99.9 in the tail.
    let h = Log2Histogram::new();
    let mut sample = Vec::new();
    for i in 0..10_000u64 {
        sample.push(100 + i % 64); // body: [100, 163]
    }
    for i in 0..10u64 {
        sample.push(1_000_000 + i); // tail outliers
    }
    sample.sort_unstable();
    for &v in &sample {
        h.record(v);
    }
    let p50 = h.quantile(0.5).unwrap();
    assert!(
        (64..=255).contains(&p50),
        "p50 = {p50} left the body's buckets"
    );
    let p999 = h.quantile(0.999).unwrap();
    // 10 outliers in 10_010 samples: the 0.999 position (index ~9999) is
    // still in the body; 1.0 must reach the outlier bucket.
    assert!(p999 <= 255, "p99.9 = {p999} jumped to the tail too early");
    let p100 = h.quantile(1.0).unwrap();
    assert!(
        p100 >= (1 << 19),
        "max quantile {p100} missed the outlier bucket"
    );
}

#[test]
fn log2_quantile_is_monotone_in_q() {
    let h = Log2Histogram::new();
    let mut x = 0x2026_0808u64;
    for _ in 0..5_000 {
        // xorshift64 stand-in: deterministic spread over many buckets.
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        h.record(x % 100_000);
    }
    let mut prev = 0u64;
    for i in 0..=1000 {
        let q = i as f64 / 1000.0;
        let v = h.quantile(q).unwrap();
        assert!(v >= prev, "quantile not monotone at q={q}: {v} < {prev}");
        prev = v;
    }
}

#[test]
fn log2_quantile_of_counts_merges_workers() {
    // Two "workers" with disjoint distributions; merging their counts
    // must behave like one histogram over the union.
    let a = Log2Histogram::new();
    let b = Log2Histogram::new();
    for _ in 0..1000 {
        a.record(10);
        b.record(10_000);
    }
    let mut merged = a.counts();
    for (m, c) in merged.iter_mut().zip(b.counts().iter()) {
        *m += c;
    }
    let p25 = Log2Histogram::quantile_of_counts(&merged, 0.25).unwrap();
    let p75 = Log2Histogram::quantile_of_counts(&merged, 0.75).unwrap();
    assert!(p25 <= 15, "p25 = {p25} should come from the fast worker");
    assert!(p75 >= 8192, "p75 = {p75} should come from the slow worker");
    assert_eq!(
        Log2Histogram::quantile_of_counts(&[0; LOG2_BUCKETS], 0.5),
        None
    );
}

#[test]
fn registry_renders_prometheus_families_once() {
    let mut reg = TelemetryRegistry::new();
    reg.counter("demo_total", "A demo counter.", &[("mode", "scalar")], 7)
        .counter("demo_total", "A demo counter.", &[("mode", "batched")], 3)
        .gauge("demo_gauge", "A demo gauge.", &[], 1.5);
    let text = reg.render_prometheus();
    assert_eq!(text.matches("# HELP demo_total").count(), 1);
    assert_eq!(text.matches("# TYPE demo_total counter").count(), 1);
    assert!(text.contains("demo_total{mode=\"scalar\"} 7\n"));
    assert!(text.contains("demo_total{mode=\"batched\"} 3\n"));
    assert!(text.contains("demo_gauge 1.5\n"));
}

#[test]
fn registry_renders_cumulative_histogram() {
    let mut reg = TelemetryRegistry::new();
    reg.histogram(
        "depth",
        "Descent depth.",
        &[],
        &[(1.0, 5), (2.0, 3), (3.0, 0)],
        13.0,
    );
    let text = reg.render_prometheus();
    assert!(text.contains("# TYPE depth histogram"));
    assert!(text.contains("depth_bucket{le=\"1\"} 5\n"));
    assert!(text.contains("depth_bucket{le=\"2\"} 8\n"));
    assert!(text.contains("depth_bucket{le=\"3\"} 8\n"));
    assert!(text.contains("depth_bucket{le=\"+Inf\"} 8\n"));
    assert!(text.contains("depth_sum 13\n"));
    assert!(text.contains("depth_count 8\n"));
}

#[test]
fn registry_renders_json() {
    let mut reg = TelemetryRegistry::new();
    reg.counter("a_total", "h", &[("k", "v")], 2)
        .gauge("b", "h", &[], 0.5)
        .histogram("c", "h", &[], &[(1.0, 1), (2.0, 2)], 4.0);
    let json = reg.render_json();
    assert!(json.contains("\"a_total{k=v}\": 2"));
    assert!(json.contains("\"b\": 0.5"));
    assert!(json.contains("\"count\": 3"));
    assert!(json.contains("\"sum\": 4"));
    // Balanced braces as a cheap well-formedness check.
    assert_eq!(json.matches('{').count(), json.matches('}').count());
}

#[test]
fn prometheus_escapes_label_values() {
    let mut reg = TelemetryRegistry::new();
    reg.counter("e_total", "h", &[("k", "a\"b\\c")], 1);
    let text = reg.render_prometheus();
    assert!(text.contains("e_total{k=\"a\\\"b\\\\c\"} 1"));
}

#[test]
fn registry_merge_appends_in_order() {
    let mut core = TelemetryRegistry::new();
    core.counter("poptrie_lookups_total", "h", &[], 10);
    let mut engine = TelemetryRegistry::new();
    engine.counter("poptrie_engine_packets_total", "h", &[], 20);
    let mut bgp = TelemetryRegistry::new();
    bgp.counter("poptrie_bgp_updates_total", "h", &[], 30);
    core.merge(engine).merge(bgp);
    let names: Vec<&str> = core.metrics().iter().map(|m| m.name.as_str()).collect();
    assert_eq!(
        names,
        [
            "poptrie_lookups_total",
            "poptrie_engine_packets_total",
            "poptrie_bgp_updates_total"
        ]
    );
    let text = core.render_prometheus();
    assert!(text.contains("poptrie_lookups_total 10"));
    assert!(text.contains("poptrie_engine_packets_total 20"));
    assert!(text.contains("poptrie_bgp_updates_total 30"));
}
