use super::*;

#[test]
fn counter_sums_across_threads() {
    static C: Counter = Counter::new();
    std::thread::scope(|s| {
        for _ in 0..8 {
            s.spawn(|| {
                for _ in 0..10_000 {
                    C.inc();
                }
            });
        }
    });
    assert_eq!(C.get(), 80_000);
    C.reset();
    assert_eq!(C.get(), 0);
}

#[test]
fn counter_add_accumulates() {
    let c = Counter::new();
    c.add(3);
    c.add(4);
    assert_eq!(c.get(), 7);
}

#[test]
fn gauge_set_and_record_max() {
    let g = Gauge::new();
    g.set(10);
    assert_eq!(g.get(), 10);
    g.record_max(5);
    assert_eq!(g.get(), 10);
    g.record_max(42);
    assert_eq!(g.get(), 42);
    g.reset();
    assert_eq!(g.get(), 0);
}

#[test]
fn histogram_records_and_clamps() {
    let h: Histogram<4> = Histogram::new();
    h.record(0);
    h.record(1);
    h.record(1);
    h.record(3);
    h.record(99); // clamps into the last bucket
    assert_eq!(h.counts(), [1, 2, 0, 2]);
    assert_eq!(h.total(), 5);
    h.reset();
    assert_eq!(h.total(), 0);
}

#[test]
fn histogram_concurrent_mass_is_exact() {
    static H: Histogram<8> = Histogram::new();
    std::thread::scope(|s| {
        for t in 0..4 {
            s.spawn(move || {
                for i in 0..5_000 {
                    H.record((t + i) % 8);
                }
            });
        }
    });
    assert_eq!(H.total(), 20_000);
}

#[test]
fn log2_histogram_buckets_and_sum() {
    let h = Log2Histogram::new();
    h.record(0); // bucket 0
    h.record(1); // bucket 1
    h.record(2); // bucket 2
    h.record(3); // bucket 2
    h.record(1024); // bucket 11
    let counts = h.counts();
    assert_eq!(counts[0], 1);
    assert_eq!(counts[1], 1);
    assert_eq!(counts[2], 2);
    assert_eq!(counts[11], 1);
    assert_eq!(h.total(), 5);
    assert_eq!(h.sum(), 1 + 2 + 3 + 1024); // the recorded 0 adds nothing
    assert!((h.mean() - 206.0).abs() < 1e-9);
    assert_eq!(Log2Histogram::upper_bound(0), 0);
    assert_eq!(Log2Histogram::upper_bound(1), 1);
    assert_eq!(Log2Histogram::upper_bound(2), 3);
    assert_eq!(Log2Histogram::upper_bound(11), 2047);
}

#[test]
fn registry_renders_prometheus_families_once() {
    let mut reg = TelemetryRegistry::new();
    reg.counter("demo_total", "A demo counter.", &[("mode", "scalar")], 7)
        .counter("demo_total", "A demo counter.", &[("mode", "batched")], 3)
        .gauge("demo_gauge", "A demo gauge.", &[], 1.5);
    let text = reg.render_prometheus();
    assert_eq!(text.matches("# HELP demo_total").count(), 1);
    assert_eq!(text.matches("# TYPE demo_total counter").count(), 1);
    assert!(text.contains("demo_total{mode=\"scalar\"} 7\n"));
    assert!(text.contains("demo_total{mode=\"batched\"} 3\n"));
    assert!(text.contains("demo_gauge 1.5\n"));
}

#[test]
fn registry_renders_cumulative_histogram() {
    let mut reg = TelemetryRegistry::new();
    reg.histogram(
        "depth",
        "Descent depth.",
        &[],
        &[(1.0, 5), (2.0, 3), (3.0, 0)],
        13.0,
    );
    let text = reg.render_prometheus();
    assert!(text.contains("# TYPE depth histogram"));
    assert!(text.contains("depth_bucket{le=\"1\"} 5\n"));
    assert!(text.contains("depth_bucket{le=\"2\"} 8\n"));
    assert!(text.contains("depth_bucket{le=\"3\"} 8\n"));
    assert!(text.contains("depth_bucket{le=\"+Inf\"} 8\n"));
    assert!(text.contains("depth_sum 13\n"));
    assert!(text.contains("depth_count 8\n"));
}

#[test]
fn registry_renders_json() {
    let mut reg = TelemetryRegistry::new();
    reg.counter("a_total", "h", &[("k", "v")], 2)
        .gauge("b", "h", &[], 0.5)
        .histogram("c", "h", &[], &[(1.0, 1), (2.0, 2)], 4.0);
    let json = reg.render_json();
    assert!(json.contains("\"a_total{k=v}\": 2"));
    assert!(json.contains("\"b\": 0.5"));
    assert!(json.contains("\"count\": 3"));
    assert!(json.contains("\"sum\": 4"));
    // Balanced braces as a cheap well-formedness check.
    assert_eq!(json.matches('{').count(), json.matches('}').count());
}

#[test]
fn prometheus_escapes_label_values() {
    let mut reg = TelemetryRegistry::new();
    reg.counter("e_total", "h", &[("k", "a\"b\\c")], 1);
    let text = reg.render_prometheus();
    assert!(text.contains("e_total{k=\"a\\\"b\\\\c\"} 1"));
}
