//! Runtime telemetry primitives for the Poptrie reproduction.
//!
//! The paper's evaluation (§4, Tables 3–6, Figures 8–12) is entirely about
//! observing what the structure does: per-lookup cost, node/leaf counts,
//! memory footprint, incremental-update work. The `repro` harness measures
//! those offline; this crate supplies the primitives that let a *live*
//! FIB serving lookups under churn report the same signals continuously:
//!
//! * [`Counter`] — a monotonically increasing event count, sharded across
//!   cache-line-padded relaxed atomics so concurrent forwarding threads
//!   never contend on one line;
//! * [`Gauge`] — a point-in-time value with `set`/`record_max` semantics
//!   (peak tracking for outstanding RCU snapshots, fragmentation levels);
//! * [`Histogram`] — a fixed-bucket distribution (trie descent depth,
//!   batch-lane fill), sharded like [`Counter`];
//! * [`Log2Histogram`] — power-of-two buckets plus a sum, for latency
//!   distributions in TSC cycles (§4.9's update cost);
//! * [`TelemetryRegistry`] — a materialized snapshot of metric values that
//!   renders as Prometheus text exposition format or as flat JSON.
//!
//! The primitives know nothing about Poptrie: the instrumented crate
//! (`poptrie` under its `telemetry` feature) declares `static` metrics,
//! increments them from the hot paths, and flushes them into a
//! [`TelemetryRegistry`] on demand. With the feature off, none of this
//! crate is linked at all — the zero-cost path is the *absence* of code,
//! not a runtime branch.
//!
//! # Memory-ordering contract
//!
//! All writes are `Ordering::Relaxed`: a metric read concurrent with
//! writers sees a value that was current at some recent instant, not a
//! linearizable cut across all metrics. That is the standard contract of
//! Prometheus-style scraping and is what keeps the increment cheap enough
//! to put inside a ~20-cycle lookup.

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod counters;
mod registry;

pub use counters::{CachePadded, Counter, Gauge, Histogram, Log2Histogram, LOG2_BUCKETS, SHARDS};
pub use registry::{Metric, MetricValue, TelemetryRegistry};

#[cfg(test)]
mod tests;
