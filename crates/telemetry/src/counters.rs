//! Lock-free metric primitives: sharded relaxed-atomic counters, gauges
//! and histograms.
//!
//! The design goal is that an increment from the lookup hot path costs one
//! relaxed `fetch_add` on a cache line no other core is writing. Each
//! primitive therefore keeps [`SHARDS`] copies of its state, each padded
//! to 128 bytes (two lines, covering the adjacent-line prefetcher), and a
//! thread picks its shard once via a thread-local round-robin assignment.
//! Reads sum over the shards; they are scrape-time operations and may run
//! concurrently with writers (see the crate-level ordering contract).

use core::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Number of shards per metric. Sixteen covers the thread counts the
/// paper's Figure 8 scaling experiment uses (and then some) while keeping
/// a `Counter` at 2 KiB; threads beyond sixteen share shards round-robin,
/// which degrades to occasional line bouncing, never to incorrect counts.
pub const SHARDS: usize = 16;

/// Pads and aligns `T` to 128 bytes so neighbouring shards never share a
/// cache line (nor the adjacent line the hardware prefetcher pairs it
/// with).
#[derive(Debug)]
#[repr(align(128))]
pub struct CachePadded<T>(pub T);

/// The calling thread's shard index: assigned round-robin on first use so
/// the first [`SHARDS`] threads get private lines.
#[inline]
fn shard() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
    }
    SHARD.with(|s| *s)
}

/// A monotonically increasing event counter.
#[derive(Debug)]
pub struct Counter {
    shards: [CachePadded<AtomicU64>; SHARDS],
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

impl Counter {
    /// A zeroed counter, usable in `static` position.
    pub const fn new() -> Self {
        Counter {
            shards: [const { CachePadded(AtomicU64::new(0)) }; SHARDS],
        }
    }

    /// Add `n` to the calling thread's shard.
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[shard()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The total across all shards.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    /// Zero every shard. Concurrent increments may survive a reset; the
    /// caller serializes resets against the workload it wants to measure.
    pub fn reset(&self) {
        for s in &self.shards {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

/// A point-in-time value. Unsharded: gauges are written from slow paths
/// (publish, scrape), never per lookup.
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

impl Gauge {
    /// A zeroed gauge, usable in `static` position.
    pub const fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise the value to `v` if it exceeds the current one (peak
    /// tracking).
    #[inline]
    pub fn record_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Reset to zero.
    pub fn reset(&self) {
        self.set(0);
    }
}

/// A fixed-bucket histogram over `N` integer buckets; values at or past
/// the last bucket clamp into it. Sharded like [`Counter`].
#[derive(Debug)]
pub struct Histogram<const N: usize> {
    shards: [CachePadded<[AtomicU64; N]>; SHARDS],
}

impl<const N: usize> Default for Histogram<N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const N: usize> Histogram<N> {
    /// A zeroed histogram, usable in `static` position.
    pub const fn new() -> Self {
        Histogram {
            shards: [const { CachePadded([const { AtomicU64::new(0) }; N]) }; SHARDS],
        }
    }

    /// Count one observation in `bucket` (clamped to `N - 1`).
    #[inline]
    pub fn record(&self, bucket: usize) {
        let b = if bucket >= N { N - 1 } else { bucket };
        self.shards[shard()].0[b].fetch_add(1, Ordering::Relaxed);
    }

    /// Per-bucket totals across all shards.
    pub fn counts(&self) -> [u64; N] {
        let mut out = [0u64; N];
        for s in &self.shards {
            for (o, b) in out.iter_mut().zip(s.0.iter()) {
                *o += b.load(Ordering::Relaxed);
            }
        }
        out
    }

    /// Total observation count (the histogram's mass).
    pub fn total(&self) -> u64 {
        self.counts().iter().sum()
    }

    /// Zero every bucket in every shard.
    pub fn reset(&self) {
        for s in &self.shards {
            for b in &s.0 {
                b.store(0, Ordering::Relaxed);
            }
        }
    }
}

/// Number of buckets in a [`Log2Histogram`]: bucket 0 holds the value 0,
/// bucket `i` holds values in `[2^(i-1), 2^i)`. 48 buckets cover ~78 hours
/// at 1 cycle/ns — far beyond any per-event latency.
pub const LOG2_BUCKETS: usize = 48;

/// A power-of-two-bucket latency histogram with a running sum, for
/// distributions whose dynamic range spans several orders of magnitude
/// (per-update TSC cycles: a leaf-only §3.5 refresh is ~1 µs, a /8
/// announce refreshing 2^10 direct slots is ~1 ms).
#[derive(Debug, Default)]
pub struct Log2Histogram {
    hist: Histogram<LOG2_BUCKETS>,
    sum: Counter,
}

impl Log2Histogram {
    /// A zeroed histogram, usable in `static` position.
    pub const fn new() -> Self {
        Log2Histogram {
            hist: Histogram::new(),
            sum: Counter::new(),
        }
    }

    /// Record one observation of magnitude `v`.
    #[inline]
    pub fn record(&self, v: u64) {
        self.hist.record((u64::BITS - v.leading_zeros()) as usize);
        self.sum.add(v);
    }

    /// Per-bucket totals.
    pub fn counts(&self) -> [u64; LOG2_BUCKETS] {
        self.hist.counts()
    }

    /// Total observation count.
    pub fn total(&self) -> u64 {
        self.hist.total()
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.get()
    }

    /// Mean recorded value, or 0.0 with no observations.
    pub fn mean(&self) -> f64 {
        let n = self.total();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Inclusive upper bound of bucket `i`: 0, 1, 3, 7, …, `2^(i) - 1`.
    pub fn upper_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Inclusive lower bound of bucket `i`: 0, 1, 2, 4, …, `2^(i-1)`.
    pub fn lower_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Interpolated quantile `q` (clamped to `[0, 1]`) of this
    /// histogram's distribution, or `None` with no observations. See
    /// [`quantile_of_counts`](Self::quantile_of_counts) for the estimator.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        Self::quantile_of_counts(&self.counts(), q)
    }

    /// Interpolated quantile over an explicit bucket-count array — use
    /// this to merge several histograms (sum their [`counts`](Self::counts)
    /// element-wise) before extracting, e.g. a fleet-wide p99 from
    /// per-worker latency histograms.
    ///
    /// The estimator is the linear-interpolation quantile (type 7,
    /// `numpy` default) over reconstructed order statistics: the target
    /// position is `q * (n - 1)`, and the `j`-th of `m` observations in
    /// a bucket spanning `[lo, hi]` is placed at
    /// `lo + (hi - lo) * (j + 0.5) / m` — the midpoint convention, so a
    /// lone observation reconstructs to its bucket's midpoint rather
    /// than collapsing to the bucket edge (the interpolation bias a
    /// naive `lo + (hi - lo) * j / m` placement has). The result always
    /// lies within the value bounds of the buckets containing the
    /// bracketing order statistics; resolution is bounded by the log2
    /// bucket width.
    pub fn quantile_of_counts(counts: &[u64; LOG2_BUCKETS], q: f64) -> Option<u64> {
        let n: u64 = counts.iter().sum();
        if n == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let pos = q * (n - 1) as f64;
        let lo_idx = pos.floor() as u64;
        let hi_idx = pos.ceil() as u64;
        let frac = pos - lo_idx as f64;
        let v_lo = Self::order_statistic(counts, lo_idx);
        let v = if hi_idx == lo_idx {
            v_lo
        } else {
            let v_hi = Self::order_statistic(counts, hi_idx);
            v_lo * (1.0 - frac) + v_hi * frac
        };
        Some(v.round() as u64)
    }

    /// Reconstructed value of the 0-based `i`-th order statistic
    /// (midpoint convention within its bucket). `i` must be `< total`.
    fn order_statistic(counts: &[u64; LOG2_BUCKETS], i: u64) -> f64 {
        let mut before = 0u64;
        for (b, &m) in counts.iter().enumerate() {
            if m > 0 && i < before + m {
                let lo = Self::lower_bound(b) as f64;
                let hi = Self::upper_bound(b) as f64;
                let j = (i - before) as f64;
                return lo + (hi - lo) * ((j + 0.5) / m as f64);
            }
            before += m;
        }
        // Unreachable when i < total; clamp to the top bucket defensively.
        Self::upper_bound(LOG2_BUCKETS - 1) as f64
    }

    /// Zero the buckets and the sum.
    pub fn reset(&self) {
        self.hist.reset();
        self.sum.reset();
    }
}
