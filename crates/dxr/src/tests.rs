use crate::{Dxr, Dxr6, DxrConfig, DxrError};
#[cfg(feature = "proptest")] // the oracle is only used by the gated proptests
use poptrie_rib::LinearLpm;
use poptrie_rib::{Lpm, Prefix, RadixTree};
use poptrie_rng::prelude::*;

fn p4(s: &str) -> Prefix<u32> {
    s.parse().unwrap()
}

fn rib_from(routes: &[(&str, u16)]) -> RadixTree<u32, u16> {
    RadixTree::from_routes(routes.iter().map(|&(p, nh)| (p4(p), nh)))
}

#[test]
fn empty_table() {
    let rib: RadixTree<u32, u16> = RadixTree::new();
    for cfg in [DxrConfig::d16r(), DxrConfig::d18r()] {
        let d = Dxr::from_rib(&rib, cfg).unwrap();
        assert_eq!(d.lookup(0), None);
        assert_eq!(d.lookup(u32::MAX), None);
    }
}

#[test]
fn basic_routes_both_configs() {
    let rib = rib_from(&[
        ("0.0.0.0/0", 9),
        ("10.0.0.0/8", 1),
        ("10.1.0.0/16", 2),
        ("10.1.2.0/24", 3),
        ("10.1.2.42/32", 4),
    ]);
    for cfg in [
        DxrConfig::d16r(),
        DxrConfig::d18r(),
        DxrConfig {
            direct_bits: 18,
            extended_index: true,
        },
    ] {
        let d = Dxr::from_rib(&rib, cfg).unwrap();
        assert_eq!(d.lookup(0x0A01_022A), Some(4), "{cfg:?}");
        assert_eq!(d.lookup(0x0A01_022B), Some(3), "{cfg:?}");
        assert_eq!(d.lookup(0x0A01_0301), Some(2), "{cfg:?}");
        assert_eq!(d.lookup(0x0A02_0301), Some(1), "{cfg:?}");
        assert_eq!(d.lookup(0x0B02_0301), Some(9), "{cfg:?}");
    }
}

#[test]
fn range_boundaries_are_exact() {
    // A /31 creates range boundaries two addresses apart deep inside a
    // chunk — the worst case for off-by-one errors in the binary search.
    let rib = rib_from(&[("10.0.0.0/8", 1), ("10.0.0.4/31", 2)]);
    let d = Dxr::from_rib(&rib, DxrConfig::d18r()).unwrap();
    assert_eq!(d.lookup(0x0A00_0003), Some(1));
    assert_eq!(d.lookup(0x0A00_0004), Some(2));
    assert_eq!(d.lookup(0x0A00_0005), Some(2));
    assert_eq!(d.lookup(0x0A00_0006), Some(1));
}

#[test]
fn short_format_is_used_for_byte_aligned_chunks() {
    // /24s with small next hops inside one /16 chunk: short-format ranges.
    let rib = rib_from(&[("10.0.1.0/24", 2), ("10.0.2.0/24", 3)]);
    let d16 = Dxr::from_rib(&rib, DxrConfig::d16r()).unwrap();
    // Memory check: short entries are 2 bytes each. The chunk holding the
    // /24s must use them, so memory is strictly smaller than an all-long
    // encoding of the same table.
    let ext = Dxr::from_rib(
        &rib,
        DxrConfig {
            direct_bits: 16,
            extended_index: true,
        },
    )
    .unwrap();
    assert!(Lpm::memory_bytes(&d16) < Lpm::memory_bytes(&ext));
    assert_eq!(d16.lookup(0x0A00_0180), Some(2));
    assert_eq!(d16.lookup(0x0A00_0280), Some(3));
    assert_eq!(d16.lookup(0x0A00_0380), None);
}

#[test]
fn long_format_when_nexthop_wide() {
    // Next hop 300 does not fit the short format's 8-bit field.
    let rib = rib_from(&[("10.0.1.0/24", 300)]);
    let d = Dxr::from_rib(&rib, DxrConfig::d16r()).unwrap();
    assert_eq!(d.lookup(0x0A00_0101), Some(300));
}

#[test]
fn exhaustive_u32_slice_against_radix() {
    // Exhaustively check one /16 worth of addresses against the radix
    // tree, with dense unaligned routes inside it.
    let mut rng = StdRng::seed_from_u64(21);
    let mut rib: RadixTree<u32, u16> = RadixTree::new();
    rib.insert(p4("10.1.0.0/16"), 1);
    for _ in 0..300 {
        let addr = 0x0A01_0000 | (rng.gen::<u32>() & 0xFFFF);
        let len = rng.gen_range(17..=32u8);
        rib.insert(Prefix::new(addr, len), rng.gen_range(1..=500));
    }
    for cfg in [DxrConfig::d16r(), DxrConfig::d18r()] {
        let d = Dxr::from_rib(&rib, cfg).unwrap();
        for low in 0..=0xFFFFu32 {
            let key = 0x0A01_0000 | low;
            assert_eq!(d.lookup(key), rib.lookup(key).copied(), "key={key:#010x}");
        }
    }
}

#[test]
fn random_u32_against_radix() {
    let mut rng = StdRng::seed_from_u64(22);
    let mut rib: RadixTree<u32, u16> = RadixTree::new();
    for _ in 0..5000 {
        let len = *[8u8, 12, 16, 20, 24, 28, 32].choose(&mut rng).unwrap();
        rib.insert(Prefix::new(rng.gen(), len), rng.gen_range(1..=64));
    }
    for cfg in [DxrConfig::d16r(), DxrConfig::d18r()] {
        let d = Dxr::from_rib(&rib, cfg).unwrap();
        for _ in 0..50_000 {
            let key: u32 = rng.gen();
            assert_eq!(d.lookup(key), rib.lookup(key).copied());
        }
    }
}

#[test]
fn structural_limit_reported() {
    // Force > 2^19 ranges: alternating next hops on dense /24s prevent
    // merging, giving one range per route plus separators.
    let mut rib: RadixTree<u32, u16> = RadixTree::new();
    let mut count = 0u32;
    'outer: for hi in 0..=255u32 {
        for mid in 0..=255u32 {
            for lo in (0..=255u32).step_by(2) {
                rib.insert(
                    Prefix::new(hi << 24 | mid << 16 | lo << 8, 24),
                    ((lo % 2) + 1 + (count % 7)) as u16,
                );
                count += 1;
                if count > 300_000 {
                    break 'outer;
                }
            }
        }
    }
    let err = Dxr::from_rib(&rib, DxrConfig::d18r()).unwrap_err();
    assert!(
        matches!(err, DxrError::RangeIndexOverflow { limit, .. } if limit == 1 << 19),
        "{err:?}"
    );
    // The §4.8 modified encoding compiles the same table.
    let d = Dxr::from_rib(
        &rib,
        DxrConfig {
            direct_bits: 18,
            extended_index: true,
        },
    )
    .unwrap();
    assert!(d.range_count() > 1 << 19);
    assert_eq!(
        d.lookup(0x0000_0001),
        Some(rib.lookup(0x0000_0001).copied().unwrap())
    );
}

#[test]
fn chunk_range_overflow_reported() {
    // One /16 chunk with alternating-nexthop /32 hosts: > 4095 ranges in a
    // single D16R chunk overflows the 12-bit count field.
    let mut rib: RadixTree<u32, u16> = RadixTree::new();
    for i in 0..4200u32 {
        rib.insert(Prefix::new(0x0A01_0000 | (i * 2), 32), ((i % 2) + 1) as u16);
    }
    let err = Dxr::from_rib(&rib, DxrConfig::d16r()).unwrap_err();
    assert!(
        matches!(err, DxrError::ChunkRangeOverflow { limit: 4095, .. }),
        "{err:?}"
    );
}

#[test]
fn exactly_at_chunk_range_limit_compiles() {
    // 2047 hosts with gaps = 2047*2 + 1 = 4095 ranges: the maximum.
    let mut rib: RadixTree<u32, u16> = RadixTree::new();
    for i in 0..2047u32 {
        rib.insert(Prefix::new(0x0A01_0000 | (i * 4), 32), ((i % 7) + 1) as u16);
    }
    let d = Dxr::from_rib(&rib, DxrConfig::d16r()).unwrap();
    assert_eq!(d.lookup(0x0A01_0000), Some(1));
    assert_eq!(d.lookup(0x0A01_0001), None);
    assert_eq!(d.lookup(0x0A01_0004), Some(2));
}

#[test]
fn wide_next_hops_roundtrip() {
    // Next hops up to the full 16-bit FIB-index width.
    let rib = rib_from(&[("10.0.0.0/8", 65_535), ("10.1.0.0/16", 32_768)]);
    for cfg in [DxrConfig::d16r(), DxrConfig::d18r()] {
        let d = Dxr::from_rib(&rib, cfg).unwrap();
        assert_eq!(d.lookup(0x0A00_0001), Some(65_535));
        assert_eq!(d.lookup(0x0A01_0001), Some(32_768));
    }
}

#[test]
fn uniform_chunk_descriptors_are_shared() {
    // A single /8 covers 1024 D18R chunks; the uniform-chunk cache must
    // keep the range table tiny rather than 1024 copies.
    let rib = rib_from(&[("10.0.0.0/8", 1)]);
    let d = Dxr::from_rib(&rib, DxrConfig::d18r()).unwrap();
    assert!(d.range_count() < 16, "ranges: {}", d.range_count());
}

#[test]
fn names() {
    let rib: RadixTree<u32, u16> = RadixTree::new();
    assert_eq!(
        Lpm::name(&Dxr::from_rib(&rib, DxrConfig::d16r()).unwrap()),
        "D16R"
    );
    assert_eq!(
        Lpm::name(&Dxr::from_rib(&rib, DxrConfig::d18r()).unwrap()),
        "D18R"
    );
}

mod v6 {
    use super::*;

    fn p6(s: &str) -> Prefix<u128> {
        s.parse().unwrap()
    }

    #[test]
    fn basic_v6() {
        let mut rib: RadixTree<u128, u16> = RadixTree::new();
        rib.insert(p6("::/0"), 9);
        rib.insert(p6("2001:db8::/32"), 1);
        rib.insert(p6("2001:db8:0:1::/64"), 2);
        rib.insert(p6("2001:db8::42/128"), 3);
        for s in [16u8, 18] {
            let d = Dxr6::from_rib(&rib, s).unwrap();
            assert_eq!(d.lookup(0x2001_0db8_0000_0001u128 << 64 | 7), Some(2));
            assert_eq!(d.lookup(0x2001_0db8_ffff_0000u128 << 64), Some(1));
            assert_eq!(d.lookup(0x2001_0db8u128 << 96 | 0x42), Some(3));
            assert_eq!(d.lookup(0x3000u128 << 112), Some(9));
        }
    }

    #[test]
    fn random_v6_against_radix() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut rib: RadixTree<u128, u16> = RadixTree::new();
        for _ in 0..2000 {
            let len = *[32u8, 40, 48, 56, 64].choose(&mut rng).unwrap();
            let addr = 0x2000u128 << 112 | (rng.gen::<u128>() >> 8);
            rib.insert(Prefix::new(addr, len), rng.gen_range(1..=32));
        }
        let d = Dxr6::from_rib(&rib, 18).unwrap();
        for _ in 0..20_000 {
            let key = 0x2000u128 << 112 | (rng.gen::<u128>() >> 8);
            assert_eq!(d.lookup(key), rib.lookup(key).copied());
        }
    }

    #[test]
    fn v6_range_count_and_memory() {
        let mut rib: RadixTree<u128, u16> = RadixTree::new();
        rib.insert(p6("2001:db8::/32"), 1);
        let d = Dxr6::from_rib(&rib, 16).unwrap();
        assert!(d.range_count() >= 2, "miss + route + miss boundaries");
        assert!(Lpm::memory_bytes(&d) >= (1 << 16) * 4);
        assert_eq!(Lpm::name(&d), "D16R-IPv6");
    }
}

#[cfg(feature = "proptest")] // needs the proptest dev-dependency (see Cargo.toml)
mod prop {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn dxr_matches_oracle_on_dense_chunk(
            routes in proptest::collection::vec((0u32..=0xFFFF, 17u8..=32, 1u16..=300), 1..40),
            keys in proptest::collection::vec(0u32..=0xFFFF, 64),
        ) {
            // All routes inside 10.1.0.0/16 so chunk-internal logic is hit.
            let routes: Vec<(Prefix<u32>, u16)> = routes
                .into_iter()
                .map(|(low, len, nh)| (Prefix::new(0x0A01_0000 | low, len), nh))
                .collect();
            let rib = RadixTree::from_routes(routes.clone());
            let lin = LinearLpm::new(routes);
            for cfg in [DxrConfig::d16r(), DxrConfig::d18r()] {
                let d = Dxr::from_rib(&rib, cfg).unwrap();
                for &low in &keys {
                    let key = 0x0A01_0000 | low;
                    prop_assert_eq!(d.lookup(key), Lpm::lookup(&lin, key));
                }
            }
        }
    }
}

// The cross-crate Lpm conformance contract (rib crate), at both range
// granularities.
poptrie_rib::lpm_contract_tests!(dxr_contract_d16r, u32, |rib: &RadixTree<u32, u16>| {
    Dxr::from_rib(rib, DxrConfig::d16r()).unwrap()
});
poptrie_rib::lpm_contract_tests!(dxr_contract_d18r, u32, |rib: &RadixTree<u32, u16>| {
    Dxr::from_rib(rib, DxrConfig::d18r()).unwrap()
});
