//! The IPv6 DXR extension of §4.10.
//!
//! "For the comparison, we extend DXR to support IPv6 by disabling the
//! 'short' format and extending the size by one bit to allow up to 2^13
//! entries per chunk." Ranges carry the full 112/110-bit in-chunk
//! remainder, so a range entry is a `(u128, u16)` pair rather than the
//! packed 4-byte IPv4 format.

use poptrie_rib::radix::Node as RadixNode;
use poptrie_rib::{Lpm, NextHop, RadixTree, NO_ROUTE};

use crate::error::DxrError;

/// Directory entry layout for IPv6: 18-bit range index (bits 17..0),
/// 13-bit per-chunk count (bits 30..18) per the widened size field.
const V6_INDEX_BITS: u32 = 18;
const V6_COUNT_BITS: u32 = 13;

/// An IPv6 DXR lookup structure (D16R/D18R directory over the top bits of
/// the 128-bit address, long-format ranges only).
///
/// ```
/// use poptrie_dxr::Dxr6;
/// use poptrie_rib::RadixTree;
///
/// let mut rib: RadixTree<u128, u16> = RadixTree::new();
/// rib.insert("2001:db8::/32".parse().unwrap(), 1);
/// let d = Dxr6::from_rib(&rib, 18).unwrap();
/// assert_eq!(d.lookup(0x2001_0db8u128 << 96 | 1), Some(1));
/// assert_eq!(d.lookup(0x2002u128 << 112), None);
/// ```
#[derive(Debug, Clone)]
pub struct Dxr6 {
    direct_bits: u8,
    direct: Vec<u32>,
    /// `(in-chunk remainder start, next hop)`, grouped per chunk, each
    /// group sorted with its first entry at remainder 0.
    ranges: Vec<(u128, NextHop)>,
}

impl Dxr6 {
    /// Compile from an IPv6 RIB. `direct_bits` is 16 or 18 as in §4.10.
    pub fn from_rib(rib: &RadixTree<u128, NextHop>, direct_bits: u8) -> Result<Self, DxrError> {
        assert!(
            direct_bits == 16 || direct_bits == 18,
            "IPv6 DXR is evaluated at D16R/D18R"
        );
        let mut d = Dxr6 {
            direct_bits,
            direct: vec![0; 1usize << direct_bits],
            ranges: Vec::new(),
        };
        let mut uniform_cache: std::collections::HashMap<NextHop, u32> =
            std::collections::HashMap::new();
        d.fill(rib.root(), NO_ROUTE, 0, 0, &mut uniform_cache)?;
        Ok(d)
    }

    #[inline]
    fn rem_bits(&self) -> u32 {
        128 - self.direct_bits as u32
    }

    fn fill(
        &mut self,
        node: Option<&RadixNode<NextHop>>,
        inherited: NextHop,
        depth: u32,
        base: u32,
        uniform_cache: &mut std::collections::HashMap<NextHop, u32>,
    ) -> Result<(), DxrError> {
        let s = self.direct_bits as u32;
        let Some(n) = node else {
            let entry = match uniform_cache.get(&inherited) {
                Some(&e) => e,
                None => {
                    let e = self.encode_chunk(base << (s - depth), vec![(0, inherited)])?;
                    uniform_cache.insert(inherited, e);
                    e
                }
            };
            let width = 1usize << (s - depth);
            self.direct[(base as usize) * width..(base as usize + 1) * width].fill(entry);
            return Ok(());
        };
        if depth == s {
            let mut ranges = Vec::new();
            expand_ranges(Some(n), inherited, 0, 0, self.rem_bits(), &mut ranges);
            let entry = self.encode_chunk(base, ranges)?;
            self.direct[base as usize] = entry;
            return Ok(());
        }
        let inh = n.value().copied().unwrap_or(inherited);
        self.fill(n.child(false), inh, depth + 1, base << 1, uniform_cache)?;
        self.fill(
            n.child(true),
            inh,
            depth + 1,
            (base << 1) | 1,
            uniform_cache,
        )
    }

    fn encode_chunk(&mut self, chunk: u32, ranges: Vec<(u128, NextHop)>) -> Result<u32, DxrError> {
        debug_assert!(!ranges.is_empty() && ranges[0].0 == 0);
        let count = ranges.len();
        if count >= (1usize << V6_COUNT_BITS) {
            return Err(DxrError::ChunkRangeOverflow {
                chunk,
                needed: count,
                limit: (1 << V6_COUNT_BITS) - 1,
            });
        }
        let index = self.ranges.len();
        if index + count > (1usize << V6_INDEX_BITS) {
            return Err(DxrError::RangeIndexOverflow {
                needed: index + count,
                limit: 1 << V6_INDEX_BITS,
            });
        }
        self.ranges.extend(ranges);
        Ok(((count as u32) << V6_INDEX_BITS) | index as u32)
    }

    /// Longest-prefix-match lookup.
    pub fn lookup(&self, key: u128) -> Option<NextHop> {
        let nh = self.lookup_raw(key);
        (nh != NO_ROUTE).then_some(nh)
    }

    /// Raw lookup returning [`NO_ROUTE`] on a miss.
    #[inline]
    pub fn lookup_raw(&self, key: u128) -> NextHop {
        let rem_bits = self.rem_bits();
        let entry = self.direct[(key >> rem_bits) as usize];
        let rem = key & ((1u128 << rem_bits) - 1);
        let index = (entry & ((1 << V6_INDEX_BITS) - 1)) as usize;
        let count = ((entry >> V6_INDEX_BITS) & ((1 << V6_COUNT_BITS) - 1)) as usize;
        let slice = &self.ranges[index..index + count];
        let pos = slice.partition_point(|&(start, _)| start <= rem);
        slice[pos - 1].1
    }

    /// Total range entries.
    pub fn range_count(&self) -> usize {
        self.ranges.len()
    }
}

/// Expand a radix subtree into sorted, merged `(start, nh)` ranges over
/// the 110/112-bit chunk remainder space.
fn expand_ranges(
    node: Option<&RadixNode<NextHop>>,
    inherited: NextHop,
    depth: u32,
    start: u128,
    rem_bits: u32,
    out: &mut Vec<(u128, NextHop)>,
) {
    fn push(out: &mut Vec<(u128, NextHop)>, start: u128, nh: NextHop) {
        match out.last() {
            Some(&(_, last)) if last == nh => {}
            _ => out.push((start, nh)),
        }
    }
    let Some(n) = node else {
        push(out, start, inherited);
        return;
    };
    let inh = n.value().copied().unwrap_or(inherited);
    if depth == rem_bits {
        push(out, start, inh);
        return;
    }
    let half = 1u128 << (rem_bits - depth - 1);
    expand_ranges(n.child(false), inh, depth + 1, start, rem_bits, out);
    expand_ranges(n.child(true), inh, depth + 1, start + half, rem_bits, out);
}

impl Lpm<u128> for Dxr6 {
    fn lookup(&self, key: u128) -> Option<NextHop> {
        Dxr6::lookup(self, key)
    }

    fn memory_bytes(&self) -> usize {
        self.direct.len() * 4 + self.ranges.len() * core::mem::size_of::<(u128, NextHop)>()
    }

    fn name(&self) -> String {
        format!("D{}R-IPv6", self.direct_bits)
    }
}
