//! DXR — the range-search baseline of the Poptrie evaluation.
//!
//! Zec, Rizzo and Mikuc, *DXR: Towards a Billion Routing Lookups Per
//! Second in Software*, CCR 2012 — reference \[38\] of the Poptrie paper and
//! its fastest competitor (§4.5). DXR "transforms the prefixes in the
//! routing table into an array of address ranges, and searches the range
//! array based on the key address using the binary search", fronted by a
//! direct lookup table over the top `s` bits (16 for D16R, 18 for D18R).
//!
//! This crate reproduces:
//!
//! * [`Dxr`] — IPv4 D16R/D18R with the original *short* (2-byte) and
//!   *long* (4-byte) range formats and a 19-bit range index;
//! * the §4.8 *modified* DXR: [`DxrConfig::extended_index`] absorbs the
//!   short-format flag into the index, raising the structural limit from
//!   2^19 to 2^20 ranges (at the cost of the short format) — exactly the
//!   change the Poptrie authors made to let DXR compile the SYN2 tables of
//!   Table 5;
//! * [`Dxr6`] — the §4.10 IPv6 extension: short format disabled and the
//!   per-chunk size field widened by one bit to allow up to 2^13 ranges
//!   per chunk.
//!
//! Structural limits are surfaced as [`DxrError`]s rather than panics so
//! the Table 5 scalability experiment can report them the way the paper
//! does.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod v4;
mod v6;

pub use error::DxrError;
pub use v4::{Dxr, DxrConfig};
pub use v6::Dxr6;

#[cfg(test)]
mod tests;
