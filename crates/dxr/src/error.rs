//! Structural-limit errors.

use core::fmt;

/// DXR compilation failure: a structural limit of the encoding was hit.
///
/// §4.8 of the Poptrie paper: "The DXR also exceeds its structural
/// limitation of the number of ranges that is supported up to 2^19" — this
/// error is how that manifests here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DxrError {
    /// The global range array outgrew the bits available for the range
    /// index in a directory entry (2^19 standard, 2^20 extended, 2^18 for
    /// IPv6).
    RangeIndexOverflow {
        /// Ranges the table would need.
        needed: usize,
        /// Maximum the encoding supports.
        limit: usize,
    },
    /// A single chunk needs more ranges than its size field can express.
    ChunkRangeOverflow {
        /// The chunk (direct-table index).
        chunk: u32,
        /// Ranges the chunk would need.
        needed: usize,
        /// Maximum the encoding supports per chunk.
        limit: usize,
    },
    /// A next hop exceeds the 16-bit FIB-index width shared across the
    /// evaluation.
    NextHopOverflow,
}

impl fmt::Display for DxrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DxrError::RangeIndexOverflow { needed, limit } => write!(
                f,
                "range table needs {needed} entries, structural limit is {limit}"
            ),
            DxrError::ChunkRangeOverflow {
                chunk,
                needed,
                limit,
            } => write!(
                f,
                "chunk {chunk:#x} needs {needed} ranges, per-chunk limit is {limit}"
            ),
            DxrError::NextHopOverflow => write!(f, "next hop exceeds 16 bits"),
        }
    }
}

impl std::error::Error for DxrError {}
