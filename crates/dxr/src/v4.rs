//! IPv4 DXR: D16R and D18R.

use poptrie_bitops::BATCH_LANES;
use poptrie_rib::radix::Node as RadixNode;
use poptrie_rib::{Lpm, NextHop, RadixTree, NO_ROUTE};

use crate::error::DxrError;

/// Directory-entry layout constants (standard encoding).
///
/// ```text
/// bit 31      : short-format flag
/// bits 30..19 : range count (12 bits, up to 4095)
/// bits 18..0  : range index (19 bits, up to 524287)
/// ```
///
/// With [`DxrConfig::extended_index`] the flag bit is absorbed into the
/// index (§4.8): no short format, 12-bit count at bits 31..20, 20-bit
/// index at bits 19..0.
const STD_INDEX_BITS: u32 = 19;
const EXT_INDEX_BITS: u32 = 20;
const COUNT_BITS: u32 = 12;

/// DXR build options.
#[derive(Debug, Clone, Copy)]
pub struct DxrConfig {
    /// Direct-table bits: 16 for D16R, 18 for D18R.
    pub direct_bits: u8,
    /// The §4.8 modification: widen the range index to 2^20 entries by
    /// sacrificing the short-format flag bit.
    pub extended_index: bool,
}

impl Default for DxrConfig {
    fn default() -> Self {
        DxrConfig {
            direct_bits: 18,
            extended_index: false,
        }
    }
}

impl DxrConfig {
    /// The paper's D16R.
    pub fn d16r() -> Self {
        DxrConfig {
            direct_bits: 16,
            extended_index: false,
        }
    }

    /// The paper's D18R.
    pub fn d18r() -> Self {
        DxrConfig {
            direct_bits: 18,
            extended_index: false,
        }
    }
}

/// An IPv4 DXR lookup structure.
///
/// ```
/// use poptrie_dxr::{Dxr, DxrConfig};
/// use poptrie_rib::RadixTree;
///
/// let mut rib: RadixTree<u32, u16> = RadixTree::new();
/// rib.insert("10.0.0.0/8".parse().unwrap(), 1);
/// rib.insert("10.1.2.0/24".parse().unwrap(), 2);
/// let d = Dxr::from_rib(&rib, DxrConfig::d18r()).unwrap();
/// assert_eq!(d.lookup(0x0A01_0203), Some(2));
/// assert_eq!(d.lookup(0x0A01_0303), Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct Dxr {
    cfg: DxrConfig,
    /// Directory: one encoded entry per `2^direct_bits` chunk.
    direct: Vec<u32>,
    /// Short-format ranges: `(start_hi8 << 8) | nh8`.
    short: Vec<u16>,
    /// Long-format ranges: `(start << 16) | nh16`; `start` is the full
    /// in-chunk remainder (up to 16 bits).
    long: Vec<u32>,
}

/// One chunk's ranges before encoding: `(in-chunk start, next hop)`,
/// sorted by start, first entry always at start 0.
type Ranges = Vec<(u32, NextHop)>;

impl Dxr {
    /// Compile from a RIB radix tree.
    pub fn from_rib(rib: &RadixTree<u32, NextHop>, cfg: DxrConfig) -> Result<Self, DxrError> {
        assert!(
            cfg.direct_bits == 16 || cfg.direct_bits == 18,
            "DXR is specified for D16R and D18R"
        );
        let mut d = Dxr {
            cfg,
            direct: vec![0; 1usize << cfg.direct_bits],
            short: Vec::new(),
            long: Vec::new(),
        };
        // Reusable descriptor for uniform chunks, keyed by next hop: vast
        // stretches of the address space map to one route (or none), and
        // sharing their single-range fragments keeps the range array small.
        let mut uniform_cache: std::collections::HashMap<NextHop, u32> =
            std::collections::HashMap::new();
        d.fill(rib.root(), NO_ROUTE, 0, 0, &mut uniform_cache)?;
        Ok(d)
    }

    /// Compile from a route list.
    pub fn from_routes<I: IntoIterator<Item = (poptrie_rib::Prefix<u32>, NextHop)>>(
        routes: I,
        cfg: DxrConfig,
    ) -> Result<Self, DxrError> {
        Self::from_rib(&RadixTree::from_routes(routes), cfg)
    }

    /// Remainder width: the address bits below the directory index.
    #[inline]
    fn rem_bits(&self) -> u32 {
        32 - self.cfg.direct_bits as u32
    }

    /// Recursive directory fill, mirroring the radix tree walk of the
    /// Poptrie builder: `node` sits `depth` bits deep and covers chunks
    /// `[base << (s - depth), (base + 1) << (s - depth))`.
    fn fill(
        &mut self,
        node: Option<&RadixNode<NextHop>>,
        inherited: NextHop,
        depth: u32,
        base: u32,
        uniform_cache: &mut std::collections::HashMap<NextHop, u32>,
    ) -> Result<(), DxrError> {
        let s = self.cfg.direct_bits as u32;
        let Some(n) = node else {
            // Uniform region: every chunk shares one single-range fragment.
            let entry = match uniform_cache.get(&inherited) {
                Some(&e) => e,
                None => {
                    let e = self.encode_chunk(base << (s - depth), vec![(0, inherited)])?;
                    uniform_cache.insert(inherited, e);
                    e
                }
            };
            let width = 1usize << (s - depth);
            self.direct[(base as usize) * width..(base as usize + 1) * width].fill(entry);
            return Ok(());
        };
        if depth == s {
            let mut ranges: Ranges = Vec::new();
            expand_ranges(Some(n), inherited, 0, 0, self.rem_bits(), &mut ranges);
            let entry = self.encode_chunk(base, ranges)?;
            self.direct[base as usize] = entry;
            return Ok(());
        }
        let inh = n.value().copied().unwrap_or(inherited);
        self.fill(n.child(false), inh, depth + 1, base << 1, uniform_cache)?;
        self.fill(
            n.child(true),
            inh,
            depth + 1,
            (base << 1) | 1,
            uniform_cache,
        )
    }

    /// Append a chunk's ranges to the short or long array and encode its
    /// directory entry.
    fn encode_chunk(&mut self, chunk: u32, ranges: Ranges) -> Result<u32, DxrError> {
        debug_assert!(!ranges.is_empty() && ranges[0].0 == 0);
        let count = ranges.len();
        if count >= (1usize << COUNT_BITS) {
            return Err(DxrError::ChunkRangeOverflow {
                chunk,
                needed: count,
                limit: (1 << COUNT_BITS) - 1,
            });
        }
        let (index_bits, allow_short) = if self.cfg.extended_index {
            (EXT_INDEX_BITS, false)
        } else {
            (STD_INDEX_BITS, true)
        };
        let limit = 1usize << index_bits;
        // Short format: every start aligned to the top 8 remainder bits and
        // every next hop one byte wide.
        let shift = self.rem_bits() - 8;
        let short_ok = allow_short
            && self.rem_bits() >= 8
            && ranges
                .iter()
                .all(|&(start, nh)| start & ((1 << shift) - 1) == 0 && nh < 256);
        if short_ok {
            let index = self.short.len();
            if index + count > limit {
                return Err(DxrError::RangeIndexOverflow {
                    needed: index + count,
                    limit,
                });
            }
            for &(start, nh) in &ranges {
                self.short.push((((start >> shift) as u16) << 8) | nh);
            }
            Ok((1u32 << 31) | ((count as u32) << index_bits) | index as u32)
        } else {
            let index = self.long.len();
            if index + count > limit {
                return Err(DxrError::RangeIndexOverflow {
                    needed: index + count,
                    limit,
                });
            }
            for &(start, nh) in &ranges {
                debug_assert!(start < (1 << self.rem_bits()));
                self.long.push((start << 16) | nh as u32);
            }
            Ok(((count as u32) << index_bits) | index as u32)
        }
    }

    /// Longest-prefix-match lookup: one directory access plus a binary
    /// search over the chunk's range fragment.
    pub fn lookup(&self, key: u32) -> Option<NextHop> {
        let nh = self.lookup_raw(key);
        (nh != NO_ROUTE).then_some(nh)
    }

    /// Raw lookup returning [`NO_ROUTE`] on a miss.
    ///
    /// Uses unchecked slice formation like the paper's C implementations:
    /// every directory entry was encoded by `encode_chunk` with
    /// `index + count` inside the respective range array, and every chunk
    /// fragment starts at remainder 0 so the binary search always finds a
    /// predecessor.
    #[inline]
    pub fn lookup_raw(&self, key: u32) -> NextHop {
        let s = self.cfg.direct_bits as u32;
        let rem_bits = 32 - s;
        debug_assert!(((key >> rem_bits) as usize) < self.direct.len());
        // SAFETY: `key >> rem_bits` has `s` bits; `direct.len() == 1 << s`.
        let entry = unsafe { *self.direct.get_unchecked((key >> rem_bits) as usize) };
        let rem = key & ((1u32 << rem_bits) - 1);
        if self.cfg.extended_index {
            let index = (entry & ((1 << EXT_INDEX_BITS) - 1)) as usize;
            let count = (entry >> EXT_INDEX_BITS) as usize;
            debug_assert!(index + count <= self.long.len());
            // SAFETY: encode_chunk wrote `count` entries at `index`.
            let slice = unsafe { self.long.get_unchecked(index..index + count) };
            let pos = slice.partition_point(|&r| (r >> 16) <= rem);
            // SAFETY: the first entry has start 0 <= rem, so pos >= 1.
            (unsafe { *slice.get_unchecked(pos - 1) } & 0xFFFF) as NextHop
        } else if entry >> 31 != 0 {
            // Short format: compare on the top 8 remainder bits.
            let index = (entry & ((1 << STD_INDEX_BITS) - 1)) as usize;
            let count = ((entry >> STD_INDEX_BITS) & ((1 << COUNT_BITS) - 1)) as usize;
            let hi = (rem >> (rem_bits - 8)) as u16;
            debug_assert!(index + count <= self.short.len());
            // SAFETY: as above, for the short-format array.
            let slice = unsafe { self.short.get_unchecked(index..index + count) };
            let pos = slice.partition_point(|&r| (r >> 8) <= hi);
            // SAFETY: the first entry has start 0 <= hi, so pos >= 1.
            (unsafe { *slice.get_unchecked(pos - 1) } & 0xFF) as NextHop
        } else {
            let index = (entry & ((1 << STD_INDEX_BITS) - 1)) as usize;
            let count = ((entry >> STD_INDEX_BITS) & ((1 << COUNT_BITS) - 1)) as usize;
            debug_assert!(index + count <= self.long.len());
            // SAFETY: as above.
            let slice = unsafe { self.long.get_unchecked(index..index + count) };
            let pos = slice.partition_point(|&r| (r >> 16) <= rem);
            // SAFETY: the first entry has start 0 <= rem, so pos >= 1.
            (unsafe { *slice.get_unchecked(pos - 1) } & 0xFFFF) as NextHop
        }
    }

    /// Batched lookup: `keys[i]` resolves into `out[i]` ([`NO_ROUTE`] on
    /// a miss). DXR's two memory stages are interleaved over
    /// [`BATCH_LANES`]-key chunks: every lane's directory line is
    /// prefetched before any is read, then each lane decodes its entry
    /// and prefetches the first and middle lines of its range fragment —
    /// the cache lines a binary search touches first — before any lane
    /// runs its search. Per-key semantics are exactly those of
    /// [`Dxr::lookup_raw`].
    ///
    /// # Panics
    /// If `keys.len() != out.len()`.
    pub fn lookup_batch(&self, keys: &[u32], out: &mut [NextHop]) {
        assert_eq!(keys.len(), out.len(), "keys/out length mismatch");
        for (keys, out) in keys.chunks(BATCH_LANES).zip(out.chunks_mut(BATCH_LANES)) {
            self.lookup_batch_chunk(keys, out);
        }
    }

    fn lookup_batch_chunk(&self, keys: &[u32], out: &mut [NextHop]) {
        debug_assert!(keys.len() <= BATCH_LANES && keys.len() == out.len());
        let n = keys.len();
        let s = self.cfg.direct_bits as u32;
        let rem_bits = 32 - s;
        // Wave 1: directory lines.
        let mut di = [0usize; BATCH_LANES];
        for (i, &k) in keys.iter().enumerate() {
            di[i] = (k >> rem_bits) as usize;
            poptrie_bitops::prefetch_index(&self.direct, di[i]);
        }
        // Wave 2: decode entries and hint the range fragments.
        let mut index = [0usize; BATCH_LANES];
        let mut count = [0usize; BATCH_LANES];
        let mut short_fmt = [false; BATCH_LANES];
        for i in 0..n {
            debug_assert!(di[i] < self.direct.len());
            // SAFETY: `key >> rem_bits` has `s` bits; `direct.len() == 1 << s`.
            let entry = unsafe { *self.direct.get_unchecked(di[i]) };
            if self.cfg.extended_index {
                index[i] = (entry & ((1 << EXT_INDEX_BITS) - 1)) as usize;
                count[i] = (entry >> EXT_INDEX_BITS) as usize;
            } else {
                index[i] = (entry & ((1 << STD_INDEX_BITS) - 1)) as usize;
                count[i] = ((entry >> STD_INDEX_BITS) & ((1 << COUNT_BITS) - 1)) as usize;
                short_fmt[i] = entry >> 31 != 0;
            }
            if short_fmt[i] {
                poptrie_bitops::prefetch_index(&self.short, index[i]);
                poptrie_bitops::prefetch_index(&self.short, index[i] + count[i] / 2);
            } else {
                poptrie_bitops::prefetch_index(&self.long, index[i]);
                poptrie_bitops::prefetch_index(&self.long, index[i] + count[i] / 2);
            }
        }
        // Wave 3: per-lane binary search over the (now in-flight) ranges.
        for i in 0..n {
            let rem = keys[i] & ((1u32 << rem_bits) - 1);
            if short_fmt[i] {
                let hi = (rem >> (rem_bits - 8)) as u16;
                debug_assert!(index[i] + count[i] <= self.short.len());
                // SAFETY: encode_chunk wrote `count` entries at `index`.
                let slice = unsafe { self.short.get_unchecked(index[i]..index[i] + count[i]) };
                let pos = slice.partition_point(|&r| (r >> 8) <= hi);
                // SAFETY: the first entry has start 0 <= hi, so pos >= 1.
                out[i] = (unsafe { *slice.get_unchecked(pos - 1) } & 0xFF) as NextHop;
            } else {
                debug_assert!(index[i] + count[i] <= self.long.len());
                // SAFETY: as above, for the long-format array.
                let slice = unsafe { self.long.get_unchecked(index[i]..index[i] + count[i]) };
                let pos = slice.partition_point(|&r| (r >> 16) <= rem);
                // SAFETY: the first entry has start 0 <= rem, so pos >= 1.
                out[i] = (unsafe { *slice.get_unchecked(pos - 1) } & 0xFFFF) as NextHop;
            }
        }
    }

    /// Total range entries (short + long) — the quantity with the 2^19 /
    /// 2^20 structural limit.
    pub fn range_count(&self) -> usize {
        self.short.len() + self.long.len()
    }
}

/// Expand a radix subtree into sorted, merged `(start, nh)` ranges over
/// the chunk's remainder space.
fn expand_ranges(
    node: Option<&RadixNode<NextHop>>,
    inherited: NextHop,
    depth: u32,
    start: u32,
    rem_bits: u32,
    out: &mut Ranges,
) {
    fn push(out: &mut Ranges, start: u32, nh: NextHop) {
        match out.last() {
            Some(&(_, last)) if last == nh => {}
            _ => out.push((start, nh)),
        }
    }
    let Some(n) = node else {
        push(out, start, inherited);
        return;
    };
    let inh = n.value().copied().unwrap_or(inherited);
    if depth == rem_bits {
        push(out, start, inh);
        return;
    }
    let half = 1u32 << (rem_bits - depth - 1);
    expand_ranges(n.child(false), inh, depth + 1, start, rem_bits, out);
    expand_ranges(n.child(true), inh, depth + 1, start + half, rem_bits, out);
}

impl Lpm<u32> for Dxr {
    fn lookup(&self, key: u32) -> Option<NextHop> {
        Dxr::lookup(self, key)
    }

    fn lookup_batch(&self, keys: &[u32], out: &mut [NextHop]) {
        Dxr::lookup_batch(self, keys, out)
    }

    fn memory_bytes(&self) -> usize {
        self.direct.len() * 4 + self.short.len() * 2 + self.long.len() * 4
    }

    fn name(&self) -> String {
        let base = format!("D{}R", self.cfg.direct_bits);
        if self.cfg.extended_index {
            format!("{base} (modified)")
        } else {
            base
        }
    }
}
