//! The statistics the paper reports.

/// Percentile summary of a sample set — the columns of Table 4 (mean,
/// 50th, 75th, 95th, 99th).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (50th percentile).
    pub p50: u64,
    /// 75th percentile.
    pub p75: u64,
    /// 95th percentile — the paper's "worst case guarantee … except for
    /// corner cases".
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
}

/// Nearest-rank percentile of a sorted slice.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    debug_assert!(!sorted.is_empty());
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

impl Percentiles {
    /// Compute from raw samples. Returns `None` for an empty set.
    pub fn from_samples(samples: &[u64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        Some(Percentiles {
            mean: sorted.iter().sum::<u64>() as f64 / sorted.len() as f64,
            p50: percentile(&sorted, 50.0),
            p75: percentile(&sorted, 75.0),
            p95: percentile(&sorted, 95.0),
            p99: percentile(&sorted, 99.0),
        })
    }
}

/// An empirical CDF — Figure 10 ("CDF of CPU cycles per lookup").
#[derive(Debug, Clone)]
pub struct Cdf {
    sorted: Vec<u64>,
}

impl Cdf {
    /// Build from raw samples.
    pub fn from_samples(samples: &[u64]) -> Self {
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        Cdf { sorted }
    }

    /// `P(X <= x)`.
    pub fn at(&self, x: u64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let n = self.sorted.partition_point(|&v| v <= x);
        n as f64 / self.sorted.len() as f64
    }

    /// Evenly spaced `(x, F(x))` points for plotting, from the sample
    /// minimum to `x_max`.
    pub fn points(&self, x_max: u64, steps: usize) -> Vec<(u64, f64)> {
        let lo = self.sorted.first().copied().unwrap_or(0);
        let hi = x_max.max(lo + 1);
        (0..=steps)
            .map(|i| {
                let x = lo + (hi - lo) * i as u64 / steps as u64;
                (x, self.at(x))
            })
            .collect()
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }
}

/// A five-number summary — the candlesticks of Figure 11: "the wick …
/// represents 5th/95th percentile, the body represents the first and
/// third quartile values, and the internal bar represents the median".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candlestick {
    /// 5th percentile (lower wick).
    pub p5: u64,
    /// First quartile (body bottom).
    pub q1: u64,
    /// Median.
    pub median: u64,
    /// Third quartile (body top).
    pub q3: u64,
    /// 95th percentile (upper wick).
    pub p95: u64,
}

impl Candlestick {
    /// Compute from raw samples. Returns `None` for an empty set.
    pub fn from_samples(samples: &[u64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        Some(Candlestick {
            p5: percentile(&sorted, 5.0),
            q1: percentile(&sorted, 25.0),
            median: percentile(&sorted, 50.0),
            q3: percentile(&sorted, 75.0),
            p95: percentile(&sorted, 95.0),
        })
    }

    /// Render as a compact one-line figure for harness output.
    pub fn render(&self) -> String {
        format!(
            "5%={} q1={} med={} q3={} 95%={}",
            self.p5, self.q1, self.median, self.q3, self.p95
        )
    }
}
