//! Text heat maps with logarithmic intensity, for Figure 7.

/// A 2D counting grid rendered as text with log-scaled intensity
/// characters — the terminal equivalent of Figure 7's heat map of binary
/// radix depth versus matched prefix length.
#[derive(Debug, Clone)]
pub struct Heatmap {
    width: usize,
    height: usize,
    counts: Vec<u64>,
}

/// Intensity ramp: each step is one decade, matching the paper's
/// logarithmic colorbar (10^0 .. 10^9).
const RAMP: &[u8] = b" .:-=+*#%@";

impl Heatmap {
    /// A `width x height` grid of zero counts.
    pub fn new(width: usize, height: usize) -> Self {
        Heatmap {
            width,
            height,
            counts: vec![0; width * height],
        }
    }

    /// Add `n` observations at `(x, y)`. Out-of-range points are clamped
    /// to the border cell so totals are never silently dropped.
    pub fn add(&mut self, x: usize, y: usize, n: u64) {
        let x = x.min(self.width - 1);
        let y = y.min(self.height - 1);
        self.counts[y * self.width + x] += n;
    }

    /// The count at `(x, y)`.
    pub fn get(&self, x: usize, y: usize) -> u64 {
        self.counts[y * self.width + x]
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Render with `y = 0` at the bottom (the paper's axes), one character
    /// per cell plus axis labels.
    pub fn render(&self, x_label: &str, y_label: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("{y_label}\n"));
        for y in (0..self.height).rev() {
            out.push_str(&format!("{y:>3} |"));
            for x in 0..self.width {
                let c = self.get(x, y);
                let idx = if c == 0 {
                    0
                } else {
                    ((c as f64).log10().floor() as usize + 1).min(RAMP.len() - 1)
                };
                out.push(RAMP[idx] as char);
            }
            out.push('\n');
        }
        out.push_str(&format!("    +{}\n", "-".repeat(self.width)));
        // X axis ticks every 4 cells.
        out.push_str("     ");
        for x in 0..self.width {
            if x % 4 == 0 {
                let t = format!("{x:<4}");
                out.push_str(&t[..t.len().min(4)]);
            }
        }
        out.push('\n');
        out.push_str(&format!(
            "     {x_label}   (intensity: blank=0, then one step per decade)\n"
        ));
        out
    }
}
