//! Serialized time-stamp-counter reads.

/// Read the TSC with serialization against earlier and later instructions
/// (`LFENCE; RDTSC; LFENCE`), so the measured region cannot leak out of
/// the bracket. On non-x86 targets this falls back to a monotonic
/// nanosecond clock (cycle figures then mean "nanoseconds").
#[inline(always)]
pub fn rdtsc_serialized() -> u64 {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: LFENCE and RDTSC are available on every x86-64 CPU this
    // crate targets and have no memory-safety effects.
    unsafe {
        core::arch::x86_64::_mm_lfence();
        let t = core::arch::x86_64::_rdtsc();
        core::arch::x86_64::_mm_lfence();
        t
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        use std::sync::OnceLock;
        use std::time::Instant;
        static START: OnceLock<Instant> = OnceLock::new();
        START.get_or_init(Instant::now).elapsed().as_nanos() as u64
    }
}

/// The constant cost of one [`rdtsc_serialized`] bracket, calibrated once
/// per process — the analogue of the paper's "overhead to read a PMC is
/// constantly 83 cycles, and is excluded from the results".
pub fn overhead() -> u64 {
    use std::sync::OnceLock;
    static OVERHEAD: OnceLock<u64> = OnceLock::new();
    *OVERHEAD.get_or_init(|| {
        let mut best = u64::MAX;
        for _ in 0..10_000 {
            let a = rdtsc_serialized();
            let b = rdtsc_serialized();
            best = best.min(b - a);
        }
        best
    })
}

/// Estimated TSC frequency in cycles per second, calibrated once against
/// the monotonic clock (~50 ms spin). Used to convert cycle counts into
/// lookup rates.
pub fn cycles_per_second() -> f64 {
    use std::sync::OnceLock;
    static FREQ: OnceLock<f64> = OnceLock::new();
    *FREQ.get_or_init(|| {
        let wall = std::time::Instant::now();
        let t0 = rdtsc_serialized();
        while wall.elapsed() < std::time::Duration::from_millis(50) {
            std::hint::spin_loop();
        }
        let t1 = rdtsc_serialized();
        (t1 - t0) as f64 / wall.elapsed().as_secs_f64()
    })
}

/// TSC ticks per nanosecond, derived from [`cycles_per_second`] (and
/// cached with it). On non-x86 targets the "TSC" is already a
/// nanosecond clock, so this converges to ~1.0.
pub fn cycles_per_ns() -> f64 {
    cycles_per_second() / 1e9
}

/// Convert a cycle count to nanoseconds using the once-per-process
/// calibration. This is what lets latency reports carry both units:
/// cycles are comparable to the paper's per-lookup figures, nanoseconds
/// are comparable across hosts with different clock rates.
pub fn cycles_to_ns(cycles: u64) -> u64 {
    (cycles as f64 / cycles_per_ns()).round() as u64
}

/// Convert nanoseconds to TSC cycles using the once-per-process
/// calibration (the inverse of [`cycles_to_ns`]).
pub fn ns_to_cycles(ns: u64) -> u64 {
    (ns as f64 * cycles_per_ns()).round() as u64
}

/// Time `f` over one serialized bracket, returning elapsed cycles with the
/// bracket overhead subtracted (saturating at zero).
///
/// For per-operation distributions call this once per operation; for
/// throughput, wrap the whole batch.
#[inline]
pub fn measure_batch<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let start = rdtsc_serialized();
    let r = f();
    let end = rdtsc_serialized();
    ((end - start).saturating_sub(overhead()), r)
}
