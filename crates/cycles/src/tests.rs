use crate::heatmap::Heatmap;
use crate::stats::{Candlestick, Cdf, Percentiles};
use crate::tsc::{
    cycles_per_ns, cycles_per_second, cycles_to_ns, measure_batch, ns_to_cycles, overhead,
    rdtsc_serialized,
};

mod tsc {
    use super::*;

    #[test]
    fn tsc_is_monotonic() {
        let mut last = rdtsc_serialized();
        for _ in 0..1000 {
            let now = rdtsc_serialized();
            assert!(now >= last);
            last = now;
        }
    }

    #[test]
    fn overhead_is_small_and_stable() {
        let o1 = overhead();
        let o2 = overhead();
        assert_eq!(o1, o2, "calibrated once");
        assert!(o1 > 0);
        assert!(o1 < 10_000, "bracket overhead {o1} looks wrong");
    }

    #[test]
    fn frequency_is_plausible() {
        let f = cycles_per_second();
        // Anything from 100 MHz (ns fallback would be 1e9) to 10 GHz.
        assert!(f > 1e8 && f < 2e10, "freq {f}");
    }

    #[test]
    fn measure_batch_returns_value_and_cycles() {
        let (cycles, sum) = measure_batch(|| (0..10_000u64).sum::<u64>());
        assert_eq!(sum, 49_995_000);
        assert!(cycles > 0);
    }

    #[test]
    fn ns_calibration_round_trips() {
        let per_ns = cycles_per_ns();
        assert!(per_ns > 0.1 && per_ns < 20.0, "cycles/ns {per_ns}");
        assert_eq!(cycles_to_ns(0), 0);
        assert_eq!(ns_to_cycles(0), 0);
        // Round-tripping a µs-scale value loses at most rounding error.
        let ns = 1_000_000u64;
        let back = cycles_to_ns(ns_to_cycles(ns));
        let err = back.abs_diff(ns);
        assert!(err <= 2, "round trip {ns} -> {back}");
        // One second of cycles converts back to ~1e9 ns.
        let second = cycles_per_second() as u64;
        let ns_per_second = cycles_to_ns(second);
        assert!(ns_per_second.abs_diff(1_000_000_000) < 20_000_000);
    }
}

mod stats {
    use super::*;

    #[test]
    fn percentiles_of_known_data() {
        let samples: Vec<u64> = (1..=100).collect();
        let p = Percentiles::from_samples(&samples).unwrap();
        assert_eq!(p.mean, 50.5);
        assert_eq!(p.p50, 50);
        assert_eq!(p.p75, 75);
        assert_eq!(p.p95, 95);
        assert_eq!(p.p99, 99);
    }

    #[test]
    fn percentiles_edge_cases() {
        assert!(Percentiles::from_samples(&[]).is_none());
        let p = Percentiles::from_samples(&[7]).unwrap();
        assert_eq!((p.p50, p.p99), (7, 7));
        assert_eq!(p.mean, 7.0);
    }

    #[test]
    fn cdf_monotone_and_bounded() {
        let cdf = Cdf::from_samples(&[10, 20, 20, 30]);
        assert_eq!(cdf.at(9), 0.0);
        assert_eq!(cdf.at(10), 0.25);
        assert_eq!(cdf.at(20), 0.75);
        assert_eq!(cdf.at(30), 1.0);
        assert_eq!(cdf.at(u64::MAX), 1.0);
        let pts = cdf.points(40, 10);
        assert_eq!(pts.len(), 11);
        assert!(pts.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn candlestick_five_numbers() {
        let samples: Vec<u64> = (1..=100).collect();
        let c = Candlestick::from_samples(&samples).unwrap();
        assert_eq!(c.p5, 5);
        assert_eq!(c.q1, 25);
        assert_eq!(c.median, 50);
        assert_eq!(c.q3, 75);
        assert_eq!(c.p95, 95);
        assert!(c.render().contains("med=50"));
        assert!(Candlestick::from_samples(&[]).is_none());
    }
}

mod heatmap {
    use super::*;

    #[test]
    fn counts_and_total() {
        let mut h = Heatmap::new(33, 33);
        h.add(24, 24, 1000);
        h.add(8, 24, 5);
        assert_eq!(h.get(24, 24), 1000);
        assert_eq!(h.total(), 1005);
    }

    #[test]
    fn out_of_range_clamps() {
        let mut h = Heatmap::new(4, 4);
        h.add(100, 100, 3);
        assert_eq!(h.get(3, 3), 3);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn render_shows_intensity_decades() {
        let mut h = Heatmap::new(8, 4);
        h.add(0, 0, 1); // decade 0 -> '.'
        h.add(1, 0, 100); // decade 2 -> '-'
        h.add(2, 0, 1_000_000); // decade 6 -> '#'
        let s = h.render("x", "y");
        let bottom_row = s.lines().rev().nth(3).unwrap(); // row y=0
        assert!(bottom_row.contains('.'), "{s}");
        assert!(bottom_row.contains('-'), "{s}");
        assert!(bottom_row.contains('#'), "{s}");
        assert!(s.contains('x') && s.contains('y'));
    }
}
