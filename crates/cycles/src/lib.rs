//! CPU-cycle measurement and statistics (§4.6 of the paper).
//!
//! The paper measures per-lookup CPU cycles "with the performance
//! monitoring counters (PMCs)" on a single-task OS, subtracting the
//! constant 83-cycle PMC read overhead, and reports distributions
//! (Figure 10's CDF, Figure 11's per-depth candlesticks, Table 4's
//! percentiles). PMCs and a single-task OS are not available here
//! (DESIGN.md substitution 4); instead:
//!
//! * [`tsc`] reads the time-stamp counter with serializing fences
//!   (`RDTSC` bracketed by `LFENCE`), the standard user-space equivalent,
//!   and [`tsc::overhead`] calibrates and exposes the constant measurement
//!   cost so harnesses can subtract it like the paper does;
//! * [`stats`] computes the exact statistics the paper reports:
//!   [`stats::Percentiles`] (Table 4), [`stats::Cdf`] (Figure 10) and
//!   [`stats::Candlestick`] (Figure 11);
//! * [`heatmap`] renders the Figure 7 binary-radix-depth heat map as text
//!   with logarithmic intensity buckets.
//!
//! Absolute cycle counts will differ from the paper's 3.9 GHz Haswell;
//! the distribution *shapes* are the reproduction target.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod heatmap;
pub mod stats;
pub mod tsc;

pub use heatmap::Heatmap;
pub use stats::{Candlestick, Cdf, Percentiles};
pub use tsc::{cycles_per_second, measure_batch, overhead, rdtsc_serialized};

#[cfg(test)]
mod tests;
