//! # poptrie-trace
//!
//! A flight recorder for the Poptrie forwarding stack. Aggregate
//! counters (`poptrie-telemetry`) say *how much*; this crate says
//! *where and when*: which batch waited, which dispatch tier served it,
//! which snapshot version a worker adopted, and how one BGP UPDATE
//! flowed through the engine writer to every NUMA replica and to the
//! first lookup served against the published state.
//!
//! Design constraints, in order:
//!
//! 1. **Zero cost when absent.** Consumers gate every call site behind
//!    a `trace` cargo feature (the same technique as `telemetry`), so
//!    the default build contains no recorder code at all — CI greps the
//!    release artifacts to prove it.
//! 2. **Cheap enough to leave on.** One SPSC ring per recording thread
//!    ([`Recorder::register`]), fixed 32-byte binary events, a
//!    deterministic 1-in-N sampling gate ([`RingWriter::tick`]), and
//!    bounded memory with overwrite-oldest semantics.
//! 3. **Explainable traces.** Span IDs thread one route update from BGP
//!    acceptance ([`EventKind::SpanAccept`]) through writer apply and
//!    per-replica publish to the first worker lookup on the new
//!    snapshot, turning `EngineReport` convergence percentiles into
//!    inspectable event chains.
//! 4. **Memory-hierarchy attribution.** [`PerfGroup`] wraps Linux
//!    `perf_event_open` (cycles, instructions, L1d/LLC read misses,
//!    branch misses) behind a graceful fallback, so `repro trace` can
//!    attribute counter deltas to lookup phases per dispatch tier.
//!
//! Drained rings export as Chrome trace-event JSON
//! ([`chrome_trace_json`]) loadable in Perfetto, and the recorder's own
//! counters join the shared `TelemetryRegistry` export path
//! ([`Recorder::registry`]).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod chrome;
mod event;
mod perf;
mod ring;

pub use chrome::chrome_trace_json;
pub use event::{pack_worker_tier, unpack_worker_tier, EventKind, TraceEvent};
pub use perf::{PerfCounts, PerfGroup};
pub use ring::RingSnapshot;

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use poptrie_telemetry::TelemetryRegistry;

/// Recorder construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Events retained per ring (rounded up to a power of two, minimum
    /// 8). Memory per ring is `capacity × 40` bytes, fixed at
    /// registration.
    pub capacity: usize,
    /// Sampling rate: record 1 in `sample` batches (minimum 1 = record
    /// everything). The gate is a deterministic per-writer counter, so
    /// identical workloads sample identically.
    pub sample: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            capacity: 4096,
            sample: 1,
        }
    }
}

struct Shared {
    config: TraceConfig,
    epoch: Instant,
    rings: Mutex<Vec<Arc<ring::Ring>>>,
    next_span: AtomicU64,
}

/// The recorder: a registry of per-thread event rings sharing one
/// epoch, one sampling rate, and one span-ID allocator. Clones are
/// shallow — every handle sees the same rings.
#[derive(Clone)]
pub struct Recorder {
    shared: Arc<Shared>,
}

impl core::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Recorder")
            .field("config", &self.shared.config)
            .finish_non_exhaustive()
    }
}

impl Recorder {
    /// A recorder with the given ring capacity and sampling rate.
    pub fn new(config: TraceConfig) -> Self {
        Recorder {
            shared: Arc::new(Shared {
                config: TraceConfig {
                    capacity: config.capacity,
                    sample: config.sample.max(1),
                },
                epoch: Instant::now(),
                rings: Mutex::new(Vec::new()),
                next_span: AtomicU64::new(1),
            }),
        }
    }

    /// A recorder with default capacity (4096 events/ring) recording
    /// every event (sample = 1).
    pub fn with_defaults() -> Self {
        Self::new(TraceConfig::default())
    }

    /// The configured 1-in-N sampling rate.
    pub fn sample(&self) -> u64 {
        self.shared.config.sample
    }

    /// Register a new ring named `name` and return its single-producer
    /// writer. Each recording thread registers its own ring; the
    /// returned handle deliberately does not implement `Sync`, so the
    /// SPSC contract is enforced at compile time.
    pub fn register(&self, name: &str) -> RingWriter {
        let ring = Arc::new(ring::Ring::new(name, self.shared.config.capacity));
        match self.shared.rings.lock() {
            Ok(mut g) => g.push(Arc::clone(&ring)),
            Err(poisoned) => poisoned.into_inner().push(Arc::clone(&ring)),
        }
        RingWriter {
            ring,
            shared: Arc::clone(&self.shared),
            count: Cell::new(0),
        }
    }

    /// Nanoseconds since the recorder epoch.
    pub fn now_ns(&self) -> u64 {
        self.shared.epoch.elapsed().as_nanos() as u64
    }

    /// Convert an [`Instant`] captured elsewhere (an ingress stamp, a
    /// control-send stamp) to recorder-epoch nanoseconds.
    pub fn instant_ns(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.shared.epoch).as_nanos() as u64
    }

    /// Allocate a fresh convergence span ID (monotonic from 1; 0 means
    /// "no span" everywhere).
    pub fn next_span(&self) -> u64 {
        self.shared.next_span.fetch_add(1, Ordering::Relaxed)
    }

    /// Snapshot every registered ring, in registration order. Safe to
    /// call while writers are recording: slots mid-overwrite are
    /// skipped, never surfaced torn.
    pub fn drain(&self) -> Vec<RingSnapshot> {
        let rings = match self.shared.rings.lock() {
            Ok(g) => g.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        };
        rings.iter().map(ring::snapshot_of).collect()
    }

    /// The recorder's own counters as a `poptrie_trace_*` registry
    /// slice, so traces and metrics share one export path.
    pub fn registry(&self) -> TelemetryRegistry {
        let snaps = self.drain();
        let mut reg = TelemetryRegistry::new();
        reg.gauge(
            "poptrie_trace_rings",
            "Event rings registered with the recorder.",
            &[],
            snaps.len() as f64,
        );
        reg.gauge(
            "poptrie_trace_sample",
            "Configured 1-in-N sampling rate.",
            &[],
            self.sample() as f64,
        );
        reg.counter(
            "poptrie_trace_events_total",
            "Events recorded across all rings (monotonic, pre-overwrite).",
            &[],
            snaps.iter().map(|s| s.recorded).sum(),
        );
        reg.counter(
            "poptrie_trace_overwritten_total",
            "Events lost to ring overwrite across all rings.",
            &[],
            snaps.iter().map(|s| s.overwritten).sum(),
        );
        reg.counter(
            "poptrie_trace_sampled_out_total",
            "Events suppressed by the sampling gate across all rings.",
            &[],
            snaps.iter().map(|s| s.sampled_out).sum(),
        );
        reg
    }
}

/// The single-producer handle to one ring. Not `Sync` (the sampling
/// counter is a [`Cell`]), so two threads can never share one — each
/// recording thread registers its own ring.
pub struct RingWriter {
    ring: Arc<ring::Ring>,
    shared: Arc<Shared>,
    count: Cell<u64>,
}

impl core::fmt::Debug for RingWriter {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("RingWriter")
            .field("ring", &self.ring.name)
            .finish_non_exhaustive()
    }
}

impl RingWriter {
    /// The deterministic sampling gate: returns `true` on the 1st,
    /// `N+1`th, `2N+1`th… call (for sampling rate `N`). Call once per
    /// *unit of work* (a batch, a burst) and record all of that unit's
    /// events when it passes, so sampled traces stay internally
    /// coherent instead of mixing events from different batches.
    pub fn tick(&self) -> bool {
        let c = self.count.get();
        self.count.set(c + 1);
        if c.is_multiple_of(self.shared.config.sample) {
            true
        } else {
            self.ring.sampled_out.fetch_add(1, Ordering::Relaxed);
            false
        }
    }

    /// Record an event stamped with the current time. Unconditional —
    /// pair with [`RingWriter::tick`] for sampled recording.
    pub fn record(&self, kind: EventKind, span: u64, arg: u64, aux: u32) {
        self.record_at(
            self.shared.epoch.elapsed().as_nanos() as u64,
            kind,
            span,
            arg,
            aux,
        );
    }

    /// Record an event with an explicit recorder-epoch timestamp (for
    /// events whose true time was captured earlier, like ingress
    /// stamps; see [`Recorder::instant_ns`]).
    pub fn record_at(&self, ts_ns: u64, kind: EventKind, span: u64, arg: u64, aux: u32) {
        self.ring.push(TraceEvent::new(ts_ns, kind, span, arg, aux));
    }

    /// Nanoseconds since the recorder epoch (same clock as
    /// [`Recorder::now_ns`]).
    pub fn now_ns(&self) -> u64 {
        self.shared.epoch.elapsed().as_nanos() as u64
    }

    /// Convert an [`Instant`] to recorder-epoch nanoseconds (same
    /// conversion as [`Recorder::instant_ns`]).
    pub fn instant_ns(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.shared.epoch).as_nanos() as u64
    }
}

#[cfg(test)]
mod tests;
