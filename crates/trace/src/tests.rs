//! Recorder unit tests: event wire format, ring overwrite semantics,
//! drainer-vs-writer racing, sampling determinism, export shapes.

use super::*;

#[test]
fn event_words_round_trip() {
    let ev = TraceEvent::new(
        0x0123_4567_89AB_CDEF,
        EventKind::SnapshotAdopt,
        42,
        u64::MAX - 7,
        pack_worker_tier(3, 2),
    );
    let back = TraceEvent::from_words(ev.to_words());
    assert_eq!(back, ev);
    assert_eq!(back.event_kind(), Some(EventKind::SnapshotAdopt));
    assert_eq!(unpack_worker_tier(back.aux), (3, 2));
}

#[test]
fn unknown_kind_decodes_to_none() {
    let ev = TraceEvent {
        kind: 9999,
        ..TraceEvent::default()
    };
    assert_eq!(ev.event_kind(), None);
}

#[test]
fn ring_records_in_order_below_capacity() {
    let rec = Recorder::new(TraceConfig {
        capacity: 64,
        sample: 1,
    });
    let w = rec.register("t");
    for i in 0..50u64 {
        w.record(EventKind::WriterBurst, 0, i, 0);
    }
    let snaps = rec.drain();
    assert_eq!(snaps.len(), 1);
    assert_eq!(snaps[0].name, "t");
    assert_eq!(snaps[0].recorded, 50);
    assert_eq!(snaps[0].overwritten, 0);
    let args: Vec<u64> = snaps[0].events.iter().map(|e| e.arg).collect();
    assert_eq!(args, (0..50).collect::<Vec<_>>());
    let ts: Vec<u64> = snaps[0].events.iter().map(|e| e.ts_ns).collect();
    assert!(ts.windows(2).all(|w| w[0] <= w[1]), "timestamps monotonic");
}

#[test]
fn ring_wraparound_keeps_newest_events() {
    let cap = 64usize; // already a power of two
    let rec = Recorder::new(TraceConfig {
        capacity: cap,
        sample: 1,
    });
    let w = rec.register("wrap");
    let total = 10 * cap as u64 + 17;
    for i in 0..total {
        w.record(EventKind::WriterBurst, 0, i, 0);
    }
    let snap = &rec.drain()[0];
    assert_eq!(snap.recorded, total);
    assert_eq!(snap.overwritten, total - cap as u64);
    // Overwrite-oldest: exactly the last `cap` events survive, in order.
    let args: Vec<u64> = snap.events.iter().map(|e| e.arg).collect();
    assert_eq!(args, (total - cap as u64..total).collect::<Vec<_>>());
}

/// The satellite-required race test: a writer wrapping the ring many
/// times over while a drainer snapshots concurrently. Every drained
/// event must be **whole** — its words consistent with a single push —
/// and in record order; torn slots must be skipped, not surfaced.
#[test]
fn ring_drain_races_writer_without_tearing() {
    let rec = Recorder::new(TraceConfig {
        capacity: 32,
        sample: 1,
    });
    let w = rec.register("race");
    let total: u64 = 200_000;
    let writer = std::thread::spawn(move || {
        for i in 0..total {
            // Every word derived from i: a torn event (words from two
            // different pushes) is detectable by cross-checking.
            w.record_at(i, EventKind::UpdateApply, i.wrapping_mul(3), i, i as u32);
        }
    });
    let mut drains = 0u64;
    let mut seen = 0u64;
    // Race drains against the writer, then always drain once more after
    // it finishes — a release-mode writer can complete before the first
    // racing drain lands, and the final pass deterministically holds the
    // last `capacity` events.
    loop {
        let finished = writer.is_finished();
        for snap in rec.drain() {
            let mut last = None;
            for ev in &snap.events {
                assert_eq!(ev.span, ev.ts_ns.wrapping_mul(3), "torn event surfaced");
                assert_eq!(ev.arg, ev.ts_ns, "torn event surfaced");
                assert_eq!(ev.aux, ev.ts_ns as u32, "torn event surfaced");
                assert_eq!(ev.event_kind(), Some(EventKind::UpdateApply));
                if let Some(prev) = last {
                    assert!(ev.ts_ns > prev, "drained events out of order");
                }
                last = Some(ev.ts_ns);
                seen += 1;
            }
        }
        drains += 1;
        if finished {
            break;
        }
    }
    writer.join().unwrap();
    assert!(seen >= 32, "drainer never observed a completed event");
    assert!(drains > 0);
    // Quiescent drain sees exactly the last `capacity` events.
    let snap = &rec.drain()[0];
    assert_eq!(snap.events.len(), 32);
    assert_eq!(snap.events.last().unwrap().ts_ns, total - 1);
}

#[test]
fn sampling_gate_is_deterministic() {
    for (n, offered, expect) in [
        (1u64, 100u64, 100u64),
        (4, 103, 26),
        (64, 64, 1),
        (64, 65, 2),
    ] {
        let rec = Recorder::new(TraceConfig {
            capacity: 256,
            sample: n,
        });
        let w = rec.register("s");
        let mut recorded = 0u64;
        for _ in 0..offered {
            if w.tick() {
                w.record(EventKind::WriterBurst, 0, 0, 0);
                recorded += 1;
            }
        }
        assert_eq!(recorded, expect, "sample 1-in-{n} over {offered}");
        let snap = &rec.drain()[0];
        assert_eq!(snap.recorded, expect);
        assert_eq!(snap.sampled_out, offered - expect);
    }
}

#[test]
fn span_ids_start_at_one_and_increase() {
    let rec = Recorder::with_defaults();
    assert_eq!(rec.next_span(), 1);
    assert_eq!(rec.next_span(), 2);
    let clone = rec.clone();
    assert_eq!(clone.next_span(), 3, "clones share the allocator");
}

#[test]
fn chrome_export_folds_lookup_slices() {
    let rec = Recorder::with_defaults();
    let w = rec.register("worker0");
    w.record_at(1_000, EventKind::IngressEnqueue, 0, 32, 0);
    w.record_at(2_000, EventKind::BatchDequeue, 0, 1_000, 0);
    w.record_at(2_100, EventKind::LookupStart, 0, 32, pack_worker_tier(0, 1));
    w.record_at(
        3_100,
        EventKind::LookupEnd,
        0,
        1_000,
        pack_worker_tier(0, 1),
    );
    w.record_at(
        4_000,
        EventKind::SnapshotAdopt,
        0,
        7,
        pack_worker_tier(0, 0),
    );
    let json = chrome_trace_json(&rec.drain());
    assert!(json.starts_with('{') && json.ends_with('}'));
    assert!(json.contains("\"traceEvents\":["));
    assert!(json.contains("trace/lookup_batch"));
    assert!(json.contains("\"ph\":\"X\""), "slice event present");
    assert!(json.contains("\"dur\":1.000"), "1000ns = 1.000us duration");
    assert!(json.contains("\"cat\":\"avx2\""));
    assert!(json.contains("trace/snapshot_adopt"));
    assert!(json.contains("\"name\":\"worker0\""), "thread metadata");
    // Bracket balance — the repro harness validates the real file the
    // same way.
    let opens = json.matches(['{', '[']).count();
    let closes = json.matches(['}', ']']).count();
    assert_eq!(opens, closes);
}

#[test]
fn recorder_registry_exports_trace_families() {
    let rec = Recorder::new(TraceConfig {
        capacity: 16,
        sample: 2,
    });
    let w = rec.register("r");
    for _ in 0..10 {
        if w.tick() {
            w.record(EventKind::WriterBurst, 0, 0, 0);
        }
    }
    let text = rec.registry().render_prometheus();
    assert!(text.contains("poptrie_trace_events_total 5"));
    assert!(text.contains("poptrie_trace_sampled_out_total 5"));
    assert!(text.contains("poptrie_trace_sample 2"));
    assert!(text.contains("poptrie_trace_rings 1"));
}

#[test]
fn perf_group_degrades_gracefully() {
    // The group may or may not open (kernel policy, container seccomp,
    // non-Linux hosts). Both outcomes must be well-formed.
    match PerfGroup::open() {
        None => {
            let ((), counts) = PerfGroup::measure(|| ());
            assert!(counts.is_none());
        }
        Some(group) => {
            group.enable();
            let mut acc = 0u64;
            for i in 0..100_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            std::hint::black_box(acc);
            group.disable();
            let counts = group.read();
            let cycles = counts.cycles.unwrap_or(0);
            assert!(cycles > 0, "an open group must count cycles");
            let later = group.read();
            assert!(later.delta(&counts).cycles.unwrap_or(u64::MAX) < cycles);
        }
    }
}
