//! The fixed-size binary event record.
//!
//! Every event is exactly four 64-bit words — small enough that a
//! recording thread writes a handful of relaxed atomic stores per event,
//! and fixed-size so the ring buffer needs no allocation, no length
//! prefix, and no torn variable-length records. The words are:
//!
//! | word | field   | meaning                                          |
//! |------|---------|--------------------------------------------------|
//! | 0    | `ts_ns` | nanoseconds since the recorder epoch             |
//! | 1    | `span`  | convergence span ID (0 = not part of a span)     |
//! | 2    | `arg`   | kind-specific payload (version, packets, nanos…) |
//! | 3    | `kind` + `aux` | event kind (low 32) and small payload (high 32) |

/// What happened. The discriminants are stable wire values: they appear
/// verbatim in drained events and in `results/trace.json`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum EventKind {
    /// A packet batch was accepted into a worker queue. Recorded by the
    /// worker at pop time from the batch's ingress timestamp, so the
    /// event carries the true enqueue instant without instrumenting the
    /// feeder threads. `arg` = packets in the batch, `aux` = worker.
    IngressEnqueue = 1,
    /// A worker popped a batch off its queue. `arg` = queue-wait
    /// nanoseconds, `aux` = worker.
    BatchDequeue = 2,
    /// `lookup_batch` began. `arg` = keys in the batch, `aux` = worker
    /// in the low 24 bits, dispatch tier in the high 8
    /// (see [`pack_worker_tier`]).
    LookupStart = 3,
    /// `lookup_batch` returned. `arg` = service nanoseconds, `aux` as
    /// [`EventKind::LookupStart`].
    LookupEnd = 4,
    /// The control-plane writer drained one burst. `arg` = events
    /// drained, `aux` = events coalesced away.
    WriterBurst = 5,
    /// One spanned route update was applied and published on the
    /// primary replica. `span` = the update's span, `arg` = the
    /// published snapshot version.
    UpdateApply = 6,
    /// The writer converged one replica to a burst. `arg` = the
    /// published snapshot version, `aux` = replica index.
    ReplicaPublish = 7,
    /// A worker's per-batch snapshot acquisition first observed a new
    /// snapshot version — the first lookup served against that
    /// published state. `arg` = the adopted version, `aux` = worker in
    /// the low 24 bits, replica in the high 8.
    SnapshotAdopt = 8,
    /// A BGP UPDATE was accepted in Established and its route events
    /// handed to the control plane. `span` = the span allocated for the
    /// update, `arg` = route events it carried.
    SpanAccept = 9,
    /// A BGP session FSM transition. `arg` = state entered, `aux` =
    /// state left (both as [`crate::event::EventKind`]-independent
    /// small codes chosen by the driver).
    BgpTransition = 10,
}

impl EventKind {
    /// Decode a wire discriminant; `None` for an unknown value (a torn
    /// or corrupt slot can never panic the drainer).
    pub fn from_u32(v: u32) -> Option<EventKind> {
        Some(match v {
            1 => EventKind::IngressEnqueue,
            2 => EventKind::BatchDequeue,
            3 => EventKind::LookupStart,
            4 => EventKind::LookupEnd,
            5 => EventKind::WriterBurst,
            6 => EventKind::UpdateApply,
            7 => EventKind::ReplicaPublish,
            8 => EventKind::SnapshotAdopt,
            9 => EventKind::SpanAccept,
            10 => EventKind::BgpTransition,
            _ => return None,
        })
    }
}

/// Pack a worker index and a dispatch-tier code into an `aux` word
/// (worker in the low 24 bits, tier in the high 8).
pub fn pack_worker_tier(worker: u32, tier: u32) -> u32 {
    (worker & 0x00FF_FFFF) | (tier << 24)
}

/// Invert [`pack_worker_tier`]: `(worker, tier)`.
pub fn unpack_worker_tier(aux: u32) -> (u32, u32) {
    (aux & 0x00FF_FFFF, aux >> 24)
}

/// One recorded event. See the module docs for the wire layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceEvent {
    /// Nanoseconds since the recorder epoch.
    pub ts_ns: u64,
    /// Convergence span this event belongs to (0 = none).
    pub span: u64,
    /// Kind-specific payload (see [`EventKind`]).
    pub arg: u64,
    /// Event kind discriminant ([`EventKind`] wire value).
    pub kind: u32,
    /// Kind-specific small payload (worker, replica, tier…).
    pub aux: u32,
}

impl TraceEvent {
    /// Construct an event of `kind`.
    pub fn new(ts_ns: u64, kind: EventKind, span: u64, arg: u64, aux: u32) -> Self {
        TraceEvent {
            ts_ns,
            span,
            arg,
            kind: kind as u32,
            aux,
        }
    }

    /// The decoded kind, if the discriminant is known.
    pub fn event_kind(&self) -> Option<EventKind> {
        EventKind::from_u32(self.kind)
    }

    /// Encode into the ring's four-word slot format.
    pub fn to_words(&self) -> [u64; 4] {
        [
            self.ts_ns,
            self.span,
            self.arg,
            (self.kind as u64) | ((self.aux as u64) << 32),
        ]
    }

    /// Decode from the ring's four-word slot format.
    pub fn from_words(w: [u64; 4]) -> Self {
        TraceEvent {
            ts_ns: w[0],
            span: w[1],
            arg: w[2],
            kind: w[3] as u32,
            aux: (w[3] >> 32) as u32,
        }
    }
}
