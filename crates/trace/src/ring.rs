//! The lock-free SPSC event ring with overwrite semantics.
//!
//! One ring per recording thread (workers, the control-plane writer,
//! the driver feeding BGP updates), each with exactly one producer — so
//! the write path is a monotonically advancing cursor plus a per-slot
//! sequence word, no CAS loops, no contention. Memory is bounded at
//! construction: when the ring is full the writer **overwrites the
//! oldest slot** instead of dropping the newest event or growing — a
//! flight recorder wants the most recent history, and an always-on
//! recorder must never allocate on the hot path.
//!
//! A drainer may race the writer. Each slot is a miniature seqlock: the
//! writer bumps the slot's sequence to an odd in-progress value, stores
//! the four event words, then publishes the even `2·index + 2`
//! generation stamp. The drainer accepts a slot only when the sequence
//! reads as the expected completed generation both before and after
//! copying the words; a slot mid-overwrite fails one of the two checks
//! and is skipped, never surfaced torn. The event words themselves are
//! relaxed atomics, so the race is well-defined — no `unsafe` anywhere
//! in the recorder.

use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::Arc;

use crate::event::TraceEvent;

/// One ring slot: the seqlock word plus the four event words.
struct Slot {
    seq: AtomicU64,
    words: [AtomicU64; 4],
}

impl Slot {
    fn new() -> Self {
        Slot {
            seq: AtomicU64::new(0),
            words: [
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
            ],
        }
    }
}

/// The shared ring state. Writers hold it through
/// [`RingWriter`](crate::RingWriter); the recorder keeps a second
/// `Arc` for draining.
pub(crate) struct Ring {
    pub(crate) name: String,
    slots: Box<[Slot]>,
    mask: u64,
    /// Logical write cursor: total events ever pushed. Slot for event
    /// `i` is `i & mask`; the ring holds the last `capacity` events.
    head: AtomicU64,
    /// Events the writer's sampling gate let through but did not record
    /// (see [`RingWriter::tick`](crate::RingWriter::tick)): the
    /// complement of `head` against the offered stream.
    pub(crate) sampled_out: AtomicU64,
}

impl Ring {
    /// A ring holding `capacity` events (rounded up to a power of two,
    /// minimum 8).
    pub(crate) fn new(name: &str, capacity: usize) -> Self {
        let cap = capacity.max(8).next_power_of_two();
        Ring {
            name: name.to_string(),
            slots: (0..cap).map(|_| Slot::new()).collect(),
            mask: (cap - 1) as u64,
            head: AtomicU64::new(0),
            sampled_out: AtomicU64::new(0),
        }
    }

    /// Capacity in events.
    pub(crate) fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded (monotonic; exceeds `capacity` once
    /// the ring has wrapped).
    pub(crate) fn recorded(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Events lost to overwrite so far.
    pub(crate) fn overwritten(&self) -> u64 {
        self.recorded().saturating_sub(self.capacity() as u64)
    }

    /// Single-producer push. Callers must guarantee exclusivity —
    /// [`RingWriter`](crate::RingWriter) does, by being the only handle
    /// and refusing `Sync`.
    pub(crate) fn push(&self, ev: TraceEvent) {
        let h = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(h & self.mask) as usize];
        // Odd = write in progress. The release fence keeps the word
        // stores from becoming visible before the in-progress mark.
        slot.seq.store(2 * h + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        let w = ev.to_words();
        for (dst, src) in slot.words.iter().zip(w) {
            dst.store(src, Ordering::Relaxed);
        }
        // Even generation stamp: `2·h + 2` identifies both "complete"
        // and *which* logical event completed, so a drainer can tell a
        // slot that was overwritten from one that still holds event `h`.
        slot.seq.store(2 * h + 2, Ordering::Release);
        self.head.store(h + 1, Ordering::Release);
    }

    /// Snapshot the ring's current contents, oldest first. Runs
    /// concurrently with the writer; slots mid-overwrite are skipped.
    pub(crate) fn drain(&self) -> Vec<TraceEvent> {
        let head = self.head.load(Ordering::Acquire);
        let start = head.saturating_sub(self.slots.len() as u64);
        let mut out = Vec::with_capacity((head - start) as usize);
        for j in start..head {
            let slot = &self.slots[(j & self.mask) as usize];
            let expect = 2 * j + 2;
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 != expect {
                continue; // overwritten past us, or mid-write
            }
            let mut w = [0u64; 4];
            for (dst, src) in w.iter_mut().zip(&slot.words) {
                *dst = src.load(Ordering::Relaxed);
            }
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != expect {
                continue; // the writer lapped us mid-copy
            }
            out.push(TraceEvent::from_words(w));
        }
        out
    }
}

/// A drained ring: its registered name and its events, oldest first.
#[derive(Debug, Clone)]
pub struct RingSnapshot {
    /// The name passed to [`Recorder::register`](crate::Recorder::register).
    pub name: String,
    /// The surviving events, in record order.
    pub events: Vec<TraceEvent>,
    /// Total events ever recorded into this ring (monotonic).
    pub recorded: u64,
    /// Events lost to ring overwrite before this drain.
    pub overwritten: u64,
    /// Events suppressed by the 1-in-N sampling gate.
    pub sampled_out: u64,
}

pub(crate) fn snapshot_of(ring: &Arc<Ring>) -> RingSnapshot {
    RingSnapshot {
        name: ring.name.clone(),
        events: ring.drain(),
        recorded: ring.recorded(),
        overwritten: ring.overwritten(),
        sampled_out: ring.sampled_out.load(Ordering::Relaxed),
    }
}
