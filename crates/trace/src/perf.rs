//! Hardware performance counters via `perf_event_open(2)`, no libc.
//!
//! The workspace carries no external dependencies, so the syscalls are
//! issued directly with inline assembly on x86_64 Linux (`syscall`
//! numbers 298/16/0/3 for `perf_event_open`/`ioctl`/`read`/`close`).
//! Everything degrades gracefully: on another OS or architecture, or
//! when the kernel refuses (`perf_event_paranoid`, seccomp, missing
//! PMU in a VM), [`PerfGroup::open`] returns `None` and callers fall
//! back to TSC-only measurements.
//!
//! The five counters the paper's memory-hierarchy argument needs are
//! opened as one group (cycles leads; instructions, L1d read misses,
//! LLC read misses, branch misses follow), so one `read` returns a
//! consistent simultaneous sample of all of them. Counters the PMU
//! cannot schedule are dropped individually — a partial group still
//! reports what it has.

/// One consistent sample of the group's counters. A `None` field means
/// that counter could not be scheduled on this host.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PerfCounts {
    /// CPU cycles (user-space only).
    pub cycles: Option<u64>,
    /// Retired instructions.
    pub instructions: Option<u64>,
    /// L1 data-cache read misses.
    pub l1d_misses: Option<u64>,
    /// Last-level-cache read misses.
    pub llc_misses: Option<u64>,
    /// Mispredicted branches.
    pub branch_misses: Option<u64>,
}

impl PerfCounts {
    /// Counter-wise difference `self - earlier`, for before/after
    /// bracketing of a measured region. Fields absent on either side
    /// stay `None`.
    pub fn delta(&self, earlier: &PerfCounts) -> PerfCounts {
        fn d(a: Option<u64>, b: Option<u64>) -> Option<u64> {
            match (a, b) {
                (Some(a), Some(b)) => Some(a.saturating_sub(b)),
                _ => None,
            }
        }
        PerfCounts {
            cycles: d(self.cycles, earlier.cycles),
            instructions: d(self.instructions, earlier.instructions),
            l1d_misses: d(self.l1d_misses, earlier.l1d_misses),
            llc_misses: d(self.llc_misses, earlier.llc_misses),
            branch_misses: d(self.branch_misses, earlier.branch_misses),
        }
    }
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod sys {
    use super::PerfCounts;

    const SYS_READ: u64 = 0;
    const SYS_CLOSE: u64 = 3;
    const SYS_IOCTL: u64 = 16;
    const SYS_PERF_EVENT_OPEN: u64 = 298;

    const PERF_TYPE_HARDWARE: u32 = 0;
    const PERF_TYPE_HW_CACHE: u32 = 3;
    const PERF_COUNT_HW_CPU_CYCLES: u64 = 0;
    const PERF_COUNT_HW_INSTRUCTIONS: u64 = 1;
    const PERF_COUNT_HW_BRANCH_MISSES: u64 = 5;
    /// `L1D | (READ << 8) | (MISS << 16)`.
    const CACHE_L1D_READ_MISS: u64 = 0x1_0000;
    /// `LL | (READ << 8) | (MISS << 16)`.
    const CACHE_LL_READ_MISS: u64 = 0x1_0002;

    const PERF_FORMAT_GROUP: u64 = 1 << 3;
    /// Attr flag bits: disabled, exclude_kernel, exclude_hv.
    const FLAG_DISABLED: u64 = 1;
    const FLAG_EXCLUDE_KERNEL: u64 = 1 << 5;
    const FLAG_EXCLUDE_HV: u64 = 1 << 6;

    const IOC_ENABLE: u64 = 0x2400;
    const IOC_DISABLE: u64 = 0x2401;
    const IOC_RESET: u64 = 0x2403;
    const IOC_FLAG_GROUP: u64 = 1;

    const PERF_FLAG_FD_CLOEXEC: u64 = 1 << 3;

    /// `perf_event_attr`, first 64 bytes (`PERF_ATTR_SIZE_VER0`) — all
    /// this group needs. Later kernel revisions only append fields.
    #[repr(C)]
    struct PerfEventAttr {
        type_: u32,
        size: u32,
        config: u64,
        sample_period: u64,
        sample_type: u64,
        read_format: u64,
        flags: u64,
        wakeup_events: u32,
        bp_type: u32,
        config1: u64,
    }

    unsafe fn syscall5(n: u64, a: u64, b: u64, c: u64, d: u64, e: u64) -> i64 {
        let ret: i64;
        core::arch::asm!(
            "syscall",
            inlateout("rax") n as i64 => ret,
            in("rdi") a,
            in("rsi") b,
            in("rdx") c,
            in("r10") d,
            in("r8") e,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    fn perf_event_open(attr: &PerfEventAttr, group_fd: i64) -> i64 {
        // pid = 0 (this process), cpu = -1 (any CPU the thread runs on).
        unsafe {
            syscall5(
                SYS_PERF_EVENT_OPEN,
                attr as *const PerfEventAttr as u64,
                0,
                (-1i64) as u64,
                group_fd as u64,
                PERF_FLAG_FD_CLOEXEC,
            )
        }
    }

    fn ioctl(fd: i64, req: u64, arg: u64) -> i64 {
        unsafe { syscall5(SYS_IOCTL, fd as u64, req, arg, 0, 0) }
    }

    /// Counter slots, in group-open order.
    const SLOTS: [(u32, u64); 5] = [
        (PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES),
        (PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS),
        (PERF_TYPE_HW_CACHE, CACHE_L1D_READ_MISS),
        (PERF_TYPE_HW_CACHE, CACHE_LL_READ_MISS),
        (PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES),
    ];

    /// The open counter group. Closes its fds on drop.
    #[derive(Debug)]
    pub struct PerfGroup {
        leader: i64,
        fds: Vec<i64>,
        /// `present[i]` = slot `i` of [`SLOTS`] opened successfully;
        /// read values map to present slots in order.
        present: [bool; 5],
    }

    impl PerfGroup {
        /// Open the counter group for the calling thread. The cycles
        /// counter is mandatory (returns `None` without PMU access —
        /// common in containers); the other four are best-effort.
        pub fn open() -> Option<PerfGroup> {
            let mut fds = Vec::with_capacity(SLOTS.len());
            let mut present = [false; 5];
            let mut leader = -1i64;
            for (i, &(type_, config)) in SLOTS.iter().enumerate() {
                let attr = PerfEventAttr {
                    type_,
                    size: core::mem::size_of::<PerfEventAttr>() as u32,
                    config,
                    sample_period: 0,
                    sample_type: 0,
                    read_format: PERF_FORMAT_GROUP,
                    flags: FLAG_EXCLUDE_KERNEL
                        | FLAG_EXCLUDE_HV
                        | if leader < 0 { FLAG_DISABLED } else { 0 },
                    wakeup_events: 0,
                    bp_type: 0,
                    config1: 0,
                };
                let fd = perf_event_open(&attr, leader);
                if fd >= 0 {
                    if leader < 0 {
                        leader = fd;
                    }
                    present[i] = true;
                    fds.push(fd);
                } else if i == 0 {
                    return None; // no cycles counter: no PMU access at all
                }
            }
            Some(PerfGroup {
                leader,
                fds,
                present,
            })
        }

        /// Zero and start the whole group (one ioctl on the leader).
        pub fn enable(&self) {
            ioctl(self.leader, IOC_RESET, IOC_FLAG_GROUP);
            ioctl(self.leader, IOC_ENABLE, IOC_FLAG_GROUP);
        }

        /// Stop the whole group; counts freeze until re-enabled.
        pub fn disable(&self) {
            ioctl(self.leader, IOC_DISABLE, IOC_FLAG_GROUP);
        }

        /// Read the group's current counts. Absent slots stay `None`.
        pub fn read(&self) -> PerfCounts {
            // PERF_FORMAT_GROUP layout: u64 nr, then nr values.
            let mut buf = [0u64; 8];
            let want = (1 + self.fds.len()) * 8;
            let got = unsafe {
                syscall5(
                    SYS_READ,
                    self.leader as u64,
                    buf.as_mut_ptr() as u64,
                    want as u64,
                    0,
                    0,
                )
            };
            let mut counts = PerfCounts::default();
            if got < 16 {
                return counts;
            }
            let nr = buf[0] as usize;
            let values = &buf[1..=nr.min(self.fds.len())];
            let mut vi = 0usize;
            for (slot, &here) in self.present.iter().enumerate() {
                if !here {
                    continue;
                }
                let v = values.get(vi).copied();
                vi += 1;
                match slot {
                    0 => counts.cycles = v,
                    1 => counts.instructions = v,
                    2 => counts.l1d_misses = v,
                    3 => counts.llc_misses = v,
                    _ => counts.branch_misses = v,
                }
            }
            counts
        }
    }

    impl Drop for PerfGroup {
        fn drop(&mut self) {
            for &fd in &self.fds {
                unsafe {
                    syscall5(SYS_CLOSE, fd as u64, 0, 0, 0, 0);
                }
            }
        }
    }
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
mod sys {
    use super::PerfCounts;

    /// Stub on platforms without `perf_event_open`: [`PerfGroup::open`]
    /// always reports the facility unavailable.
    #[derive(Debug)]
    pub struct PerfGroup {
        never: core::convert::Infallible,
    }

    impl PerfGroup {
        /// Always `None`: no `perf_event_open` on this platform.
        pub fn open() -> Option<PerfGroup> {
            None
        }

        /// Unreachable (the type is uninhabited).
        pub fn enable(&self) {
            match self.never {}
        }

        /// Unreachable (the type is uninhabited).
        pub fn disable(&self) {
            match self.never {}
        }

        /// Unreachable (the type is uninhabited).
        pub fn read(&self) -> PerfCounts {
            match self.never {}
        }
    }
}

pub use sys::PerfGroup;

impl PerfGroup {
    /// Run `f` with the group counting and return the counter deltas it
    /// accumulated. `None` everywhere but Linux/x86_64 or when the
    /// kernel refuses PMU access — callers measure with the TSC alone
    /// in that case.
    pub fn measure<R>(f: impl FnOnce() -> R) -> (R, Option<PerfCounts>) {
        match PerfGroup::open() {
            Some(group) => {
                group.enable();
                let r = f();
                group.disable();
                (r, Some(group.read()))
            }
            None => (f(), None),
        }
    }
}
