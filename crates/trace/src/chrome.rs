//! Chrome trace-event JSON export (Perfetto-loadable).
//!
//! The drained rings become one JSON object in the [Trace Event
//! Format]: each ring is a synthetic thread (`tid` = ring order,
//! named by a metadata event), `LookupStart`/`LookupEnd` pairs fold
//! into complete (`"ph":"X"`) slices with real durations, and every
//! other event is an instant (`"ph":"i"`). Span IDs, snapshot
//! versions and counts ride in `args`, so following one convergence
//! span in the Perfetto UI is a query on `args.span`.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//!
//! Timestamps are microseconds (the format's unit) with nanosecond
//! decimals preserved.

use crate::event::{unpack_worker_tier, EventKind, TraceEvent};
use crate::ring::RingSnapshot;

/// Human names for the dispatch-tier codes packed into lookup events.
fn tier_name(tier: u32) -> &'static str {
    match tier {
        1 => "avx2",
        2 => "avx512",
        _ => "scalar",
    }
}

fn push_common(out: &mut String, name: &str, ph: char, tid: usize, ts_ns: u64) {
    out.push_str("{\"name\":\"");
    out.push_str(name);
    out.push_str("\",\"ph\":\"");
    out.push(ph);
    out.push_str("\",\"pid\":1,\"tid\":");
    out.push_str(&tid.to_string());
    out.push_str(",\"ts\":");
    out.push_str(&format!("{:.3}", ts_ns as f64 / 1_000.0));
}

fn push_args(out: &mut String, pairs: &[(&str, u64)]) {
    out.push_str(",\"args\":{");
    for (i, (k, v)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(k);
        out.push_str("\":");
        out.push_str(&v.to_string());
    }
    out.push('}');
}

/// The event name emitted for each kind. These literals exist only in
/// this crate, so the CI gate can grep release artifacts for
/// `trace/lookup_batch` to prove a default (trace-disabled) build
/// links no recorder code.
fn kind_name(kind: EventKind) -> &'static str {
    match kind {
        EventKind::IngressEnqueue => "trace/ingress_enqueue",
        EventKind::BatchDequeue => "trace/batch_dequeue",
        EventKind::LookupStart | EventKind::LookupEnd => "trace/lookup_batch",
        EventKind::WriterBurst => "trace/writer_burst",
        EventKind::UpdateApply => "trace/update_apply",
        EventKind::ReplicaPublish => "trace/replica_publish",
        EventKind::SnapshotAdopt => "trace/snapshot_adopt",
        EventKind::SpanAccept => "trace/span_accept",
        EventKind::BgpTransition => "trace/bgp_transition",
    }
}

fn emit_instant(out: &mut String, ev: &TraceEvent, kind: EventKind, tid: usize) {
    push_common(out, kind_name(kind), 'i', tid, ev.ts_ns);
    out.push_str(",\"s\":\"t\"");
    match kind {
        EventKind::IngressEnqueue => {
            let (worker, _) = unpack_worker_tier(ev.aux);
            push_args(out, &[("packets", ev.arg), ("worker", worker as u64)]);
        }
        EventKind::BatchDequeue => {
            let (worker, _) = unpack_worker_tier(ev.aux);
            push_args(out, &[("wait_ns", ev.arg), ("worker", worker as u64)]);
        }
        EventKind::WriterBurst => {
            push_args(out, &[("events", ev.arg), ("coalesced", ev.aux as u64)]);
        }
        EventKind::UpdateApply => {
            push_args(out, &[("span", ev.span), ("version", ev.arg)]);
        }
        EventKind::ReplicaPublish => {
            push_args(out, &[("version", ev.arg), ("replica", ev.aux as u64)]);
        }
        EventKind::SnapshotAdopt => {
            let (worker, replica) = unpack_worker_tier(ev.aux);
            push_args(
                out,
                &[
                    ("version", ev.arg),
                    ("worker", worker as u64),
                    ("replica", replica as u64),
                ],
            );
        }
        EventKind::SpanAccept => {
            push_args(out, &[("span", ev.span), ("routes", ev.arg)]);
        }
        EventKind::BgpTransition => {
            push_args(out, &[("to", ev.arg), ("from", ev.aux as u64)]);
        }
        EventKind::LookupStart | EventKind::LookupEnd => unreachable!("folded into slices"),
    }
    out.push('}');
}

/// Render drained rings as one Chrome trace-event JSON document.
pub fn chrome_trace_json(rings: &[RingSnapshot]) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push(',');
        }
    };
    for (tid, ring) in rings.iter().enumerate() {
        let tid = tid + 1;
        sep(&mut out);
        out.push_str(&format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            ring.name
        ));
        // Fold Start/End pairs into complete slices; a Start without
        // its End (overwritten, or sampling raced the drain) degrades
        // to an instant-free skip rather than a malformed slice.
        let mut pending_start: Option<&TraceEvent> = None;
        for ev in &ring.events {
            let Some(kind) = ev.event_kind() else {
                continue;
            };
            match kind {
                EventKind::LookupStart => pending_start = Some(ev),
                EventKind::LookupEnd => {
                    if let Some(start) = pending_start.take() {
                        let (worker, tier) = unpack_worker_tier(ev.aux);
                        sep(&mut out);
                        push_common(&mut out, kind_name(kind), 'X', tid, start.ts_ns);
                        out.push_str(&format!(
                            ",\"dur\":{:.3},\"cat\":\"{}\"",
                            ev.ts_ns.saturating_sub(start.ts_ns) as f64 / 1_000.0,
                            tier_name(tier)
                        ));
                        push_args(
                            &mut out,
                            &[
                                ("keys", start.arg),
                                ("service_ns", ev.arg),
                                ("worker", worker as u64),
                                ("tier", tier as u64),
                            ],
                        );
                        out.push('}');
                    }
                }
                other => {
                    sep(&mut out);
                    emit_instant(&mut out, ev, other, tid);
                }
            }
        }
    }
    out.push_str("]}");
    out
}
