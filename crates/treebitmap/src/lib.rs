//! Tree BitMap — the multibit-trie baseline of the Poptrie evaluation.
//!
//! Eatherton, Varghese and Dittia, *Tree Bitmap: Hardware/Software IP
//! Lookups with Incremental Updates*, CCR 2004 — reference \[11\] of the
//! Poptrie paper and one of its three head-to-head baselines (§4.5,
//! Table 3, Figure 9).
//!
//! A Tree BitMap node of stride `S` covers `S` levels of the binary trie
//! with two bitmaps:
//!
//! * an **internal** bitmap of `2^S - 1` bits, one per prefix of relative
//!   length `0..S` inside the node (bit `(1 << r) - 1 + v` stands for the
//!   `r`-bit value `v`);
//! * an **external** bitmap of `2^S` bits, one per possible child.
//!
//! Children and results are stored in contiguous blocks addressed by one
//! pointer plus a population count — the same indirect-indexing idea
//! Poptrie applies to its leaves. The crucial difference the paper calls
//! out (§4.5): finding the longest matching prefix *within* a node scans
//! the internal bitmap once per relative length, `O(S)` work per node,
//! while Poptrie's leafvec resolves a leaf in `O(1)`. That is why even the
//! 64-ary Tree BitMap trails the other modern algorithms in every test.
//!
//! Following the paper's methodology, this implementation uses the
//! `popcnt` instruction (`u64::count_ones`) rather than the rank lookup
//! table of the original hardware design, and provides both the original
//! 16-ary (stride 4, [`TreeBitmap4`]) and the 64-ary (stride 6,
//! [`TreeBitmap64`]) variants of Table 3.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use poptrie_bitops::{Bits, BATCH_LANES};
use poptrie_rib::radix::Node as RadixNode;
use poptrie_rib::{Lpm, NextHop, RadixTree, NO_ROUTE};

/// A Tree BitMap with compile-time stride `S` (4 or 6 in the paper).
///
/// ```
/// use poptrie_treebitmap::TreeBitmap64;
/// use poptrie_rib::RadixTree;
///
/// let mut rib: RadixTree<u32, u16> = RadixTree::new();
/// rib.insert("10.0.0.0/8".parse().unwrap(), 1);
/// rib.insert("10.1.0.0/16".parse().unwrap(), 2);
/// let t = TreeBitmap64::from_rib(&rib);
/// assert_eq!(t.lookup(0x0A01_0001), Some(2));
/// assert_eq!(t.lookup(0x0A02_0001), Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct TreeBitmap<K: Bits, const S: u32> {
    nodes: Vec<Node>,
    results: Vec<NextHop>,
    _key: core::marker::PhantomData<K>,
}

/// The original 16-ary Tree BitMap (stride 4).
pub type TreeBitmap4<K = u32> = TreeBitmap<K, 4>;

/// The 64-ary popcnt variant of Table 3 (stride 6).
pub type TreeBitmap64<K = u32> = TreeBitmap<K, 6>;

/// One Tree BitMap node. For stride 6 the internal bitmap uses 63 of the
/// 64 bits and the external bitmap all 64; stride 4 uses 15 and 16.
#[derive(Debug, Clone, Copy, Default)]
struct Node {
    internal: u64,
    external: u64,
    child_base: u32,
    result_base: u32,
}

/// Bit position of relative prefix `(r, v)` in the internal bitmap:
/// `(1 << r) - 1 + v` — prefixes ordered by length, then value.
#[inline(always)]
fn internal_bit(r: u32, v: u32) -> u32 {
    (1u32 << r) - 1 + v
}

impl<K: Bits, const S: u32> TreeBitmap<K, S> {
    /// Compile from a RIB radix tree.
    pub fn from_rib(rib: &RadixTree<K, NextHop>) -> Self {
        assert!(S >= 1 && S <= 6, "stride must be 1..=6");
        let mut t = TreeBitmap {
            nodes: vec![Node::default()],
            results: Vec::new(),
            _key: core::marker::PhantomData,
        };
        t.fill(0, rib.root());
        t
    }

    /// Compile from a route list.
    pub fn from_routes<I: IntoIterator<Item = (poptrie_rib::Prefix<K>, NextHop)>>(
        routes: I,
    ) -> Self {
        Self::from_rib(&RadixTree::from_routes(routes))
    }

    /// Build node `idx` from the radix subtree at `radix`, then recurse
    /// into the children (kept contiguous by allocating the whole sibling
    /// block before descending).
    fn fill(&mut self, idx: usize, radix: Option<&RadixNode<NextHop>>) {
        // Gather the node's own prefixes and its children from S levels of
        // the radix tree, in bitmap order.
        let mut prefixes: Vec<(u32, NextHop)> = Vec::new(); // (internal bit, nh)
        let mut children: Vec<(u32, *const RadixNode<NextHop>)> = Vec::new();

        fn walk(
            node: Option<&RadixNode<NextHop>>,
            r: u32,
            v: u32,
            stride: u32,
            prefixes: &mut Vec<(u32, NextHop)>,
            children: &mut Vec<(u32, *const RadixNode<NextHop>)>,
        ) {
            let Some(n) = node else { return };
            if r == stride {
                children.push((v, n as *const _));
                return;
            }
            if let Some(&nh) = n.value() {
                prefixes.push((internal_bit(r, v), nh));
            }
            walk(n.child(false), r + 1, v << 1, stride, prefixes, children);
            walk(
                n.child(true),
                r + 1,
                (v << 1) | 1,
                stride,
                prefixes,
                children,
            );
        }
        walk(radix, 0, 0, S, &mut prefixes, &mut children);
        prefixes.sort_unstable_by_key(|&(bit, _)| bit);
        children.sort_unstable_by_key(|&(v, _)| v);

        let mut internal = 0u64;
        let result_base = self.results.len() as u32;
        for &(bit, nh) in &prefixes {
            internal |= 1u64 << bit;
            self.results.push(nh);
        }
        let mut external = 0u64;
        let child_base = self.nodes.len() as u32;
        for &(v, _) in &children {
            external |= 1u64 << v;
        }
        self.nodes
            .resize(self.nodes.len() + children.len(), Node::default());
        self.nodes[idx] = Node {
            internal,
            external,
            child_base,
            result_base,
        };
        for (i, &(_, ptr)) in children.iter().enumerate() {
            // SAFETY: the pointers were created from live references into
            // `rib`, which outlives this whole build; raw pointers only
            // sidestep holding `&'a` borrows across the `&mut self` calls.
            let child = unsafe { &*ptr };
            self.fill(child_base as usize + i, Some(child));
        }
    }

    /// Longest-prefix-match lookup.
    ///
    /// Walks down while external bits match, remembering the deepest node
    /// holding an internal match, then resolves that match — the standard
    /// Tree BitMap search with deferred backtracking.
    pub fn lookup(&self, key: K) -> Option<NextHop> {
        let mut idx = 0u32;
        let mut offset = 0u32;
        let mut best: Option<(u32, u32)> = None; // (node index, internal bit)
        loop {
            debug_assert!((idx as usize) < self.nodes.len());
            // SAFETY: idx is 0 (the root always exists) or
            // `child_base + rank - 1` of a node whose child block was
            // fully allocated by `fill` before descending.
            let node = unsafe { self.nodes.get_unchecked(idx as usize) };
            let v = key.extract(offset, S);
            // O(S) scan for the longest internal prefix covering v — the
            // per-node cost the Poptrie paper contrasts with its O(1).
            let mut r = S;
            while r > 0 {
                r -= 1;
                let bit = internal_bit(r, v >> (S - r));
                if node.internal & (1u64 << bit) != 0 {
                    best = Some((idx, bit));
                    break;
                }
            }
            if node.external & (1u64 << v) != 0 {
                let rank = (node.external & (u64::MAX >> (63 - v))).count_ones();
                idx = node.child_base + rank - 1;
                offset += S;
            } else {
                break;
            }
        }
        let (nidx, bit) = best?;
        let node = &self.nodes[nidx as usize];
        let below = if bit == 0 {
            0
        } else {
            (node.internal & ((1u64 << bit) - 1)).count_ones()
        };
        let nh = self.results[(node.result_base + below) as usize];
        debug_assert_ne!(nh, NO_ROUTE);
        Some(nh)
    }

    /// Batched lookup: `keys[i]` resolves into `out[i]` (`NO_ROUTE` on a
    /// miss), interleaving up to [`BATCH_LANES`] keys so their
    /// dependent-load chains overlap, with a software prefetch issued for
    /// each lane's next node one round before it is read. Per-key
    /// semantics are exactly those of [`TreeBitmap::lookup`].
    ///
    /// # Panics
    /// If `keys.len() != out.len()`.
    pub fn lookup_batch(&self, keys: &[K], out: &mut [NextHop]) {
        assert_eq!(keys.len(), out.len(), "keys/out length mismatch");
        for (keys, out) in keys.chunks(BATCH_LANES).zip(out.chunks_mut(BATCH_LANES)) {
            self.lookup_batch_chunk(keys, out);
        }
    }

    fn lookup_batch_chunk(&self, keys: &[K], out: &mut [NextHop]) {
        debug_assert!(keys.len() <= BATCH_LANES && keys.len() == out.len());
        let n = keys.len();
        let mut idx = [0u32; BATCH_LANES];
        let mut offset = [0u32; BATCH_LANES];
        // (node index, internal bit) of the deepest match per lane;
        // u32::MAX marks "no match yet".
        let mut best = [(u32::MAX, 0u32); BATCH_LANES];
        let mut live: u32 = (1u32 << n) - 1;
        poptrie_bitops::prefetch_index(&self.nodes, 0);

        while live != 0 {
            let mut m = live;
            while m != 0 {
                let i = m.trailing_zeros() as usize;
                m &= m - 1;
                debug_assert!((idx[i] as usize) < self.nodes.len());
                // SAFETY: as in `lookup`: index 0 or `child_base + rank - 1`
                // of a fully allocated child block.
                let node = unsafe { self.nodes.get_unchecked(idx[i] as usize) };
                let v = keys[i].extract(offset[i], S);
                let mut r = S;
                while r > 0 {
                    r -= 1;
                    let bit = internal_bit(r, v >> (S - r));
                    if node.internal & (1u64 << bit) != 0 {
                        best[i] = (idx[i], bit);
                        break;
                    }
                }
                if node.external & (1u64 << v) != 0 {
                    let rank = (node.external & (u64::MAX >> (63 - v))).count_ones();
                    let next = node.child_base + rank - 1;
                    idx[i] = next;
                    offset[i] += S;
                    poptrie_bitops::prefetch_index(&self.nodes, next as usize);
                } else {
                    live &= !(1 << i);
                    // The best-match node is hot if it is this node; if the
                    // match was levels up its line may have been evicted —
                    // hint it back before the resolution pass below.
                    if best[i].0 != u32::MAX && best[i].0 != idx[i] {
                        poptrie_bitops::prefetch_index(&self.nodes, best[i].0 as usize);
                    }
                }
            }
        }

        // Resolution: compute each lane's result index, prefetch the
        // result lines as a group, then read them.
        let mut ri = [u32::MAX; BATCH_LANES];
        for i in 0..n {
            let (nidx, bit) = best[i];
            if nidx == u32::MAX {
                out[i] = NO_ROUTE;
                continue;
            }
            let node = &self.nodes[nidx as usize];
            let below = if bit == 0 {
                0
            } else {
                (node.internal & ((1u64 << bit) - 1)).count_ones()
            };
            ri[i] = node.result_base + below;
            poptrie_bitops::prefetch_index(&self.results, ri[i] as usize);
        }
        for i in 0..n {
            if ri[i] != u32::MAX {
                out[i] = self.results[ri[i] as usize];
                debug_assert_ne!(out[i], NO_ROUTE);
            }
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of stored results.
    pub fn result_count(&self) -> usize {
        self.results.len()
    }
}

impl<K: Bits, const S: u32> Lpm<K> for TreeBitmap<K, S> {
    fn lookup(&self, key: K) -> Option<NextHop> {
        TreeBitmap::lookup(self, key)
    }

    fn lookup_batch(&self, keys: &[K], out: &mut [NextHop]) {
        TreeBitmap::lookup_batch(self, keys, out)
    }

    fn memory_bytes(&self) -> usize {
        self.nodes.len() * core::mem::size_of::<Node>()
            + self.results.len() * core::mem::size_of::<NextHop>()
    }

    fn name(&self) -> String {
        match S {
            6 => "Tree BitMap (64-ary)".into(),
            4 => "Tree BitMap".into(),
            _ => format!("Tree BitMap (stride {S})"),
        }
    }
}

#[cfg(test)]
mod tests;
