use crate::{internal_bit, TreeBitmap, TreeBitmap4, TreeBitmap64};
#[cfg(feature = "proptest")] // the oracle is only used by the gated proptests
use poptrie_rib::LinearLpm;
use poptrie_rib::{Lpm, Prefix, RadixTree};
use poptrie_rng::prelude::*;

fn p4(s: &str) -> Prefix<u32> {
    s.parse().unwrap()
}

#[test]
fn internal_bit_layout() {
    // Length-ordered, then value-ordered: the canonical Tree BitMap order.
    assert_eq!(internal_bit(0, 0), 0);
    assert_eq!(internal_bit(1, 0), 1);
    assert_eq!(internal_bit(1, 1), 2);
    assert_eq!(internal_bit(2, 0), 3);
    assert_eq!(internal_bit(5, 31), 62); // last bit of a stride-6 node
}

#[test]
fn empty_table() {
    let rib: RadixTree<u32, u16> = RadixTree::new();
    let t = TreeBitmap64::from_rib(&rib);
    assert_eq!(t.lookup(0), None);
    assert_eq!(t.lookup(u32::MAX), None);
    assert_eq!(t.node_count(), 1);
}

#[test]
fn basic_routes_both_strides() {
    let mut rib: RadixTree<u32, u16> = RadixTree::new();
    rib.insert(p4("0.0.0.0/0"), 9);
    rib.insert(p4("10.0.0.0/8"), 1);
    rib.insert(p4("10.1.0.0/16"), 2);
    rib.insert(p4("10.1.128.0/17"), 3);
    rib.insert(p4("192.0.2.1/32"), 4);

    fn check<const S: u32>(t: &TreeBitmap<u32, S>) {
        assert_eq!(t.lookup(0x0A01_8001), Some(3));
        assert_eq!(t.lookup(0x0A01_0001), Some(2));
        assert_eq!(t.lookup(0x0A02_0001), Some(1));
        assert_eq!(t.lookup(0x0B00_0001), Some(9));
        assert_eq!(t.lookup(0xC000_0201), Some(4));
        assert_eq!(t.lookup(0xC000_0202), Some(9));
    }
    check(&TreeBitmap4::from_rib(&rib));
    check(&TreeBitmap64::from_rib(&rib));
}

#[test]
fn prefix_at_stride_boundary() {
    // A /6 and /12 sit exactly on stride-6 node boundaries; their values
    // land in the child node's internal bit (r = 0).
    let mut rib: RadixTree<u32, u16> = RadixTree::new();
    rib.insert(p4("4.0.0.0/6"), 1);
    rib.insert(p4("4.16.0.0/12"), 2);
    let t = TreeBitmap64::from_rib(&rib);
    assert_eq!(t.lookup(0x0410_0001), Some(2));
    assert_eq!(t.lookup(0x0420_0001), Some(1));
    assert_eq!(t.lookup(0x0800_0001), None);
}

#[test]
fn exhaustive_u16_against_radix() {
    let mut rng = StdRng::seed_from_u64(11);
    for _ in 0..25 {
        let mut rib: RadixTree<u16, u16> = RadixTree::new();
        for _ in 0..50 {
            rib.insert(
                Prefix::new(rng.gen::<u16>(), rng.gen_range(0..=16)),
                rng.gen_range(1..=9),
            );
        }
        let t4: TreeBitmap4<u16> = TreeBitmap::from_rib(&rib);
        let t6: TreeBitmap64<u16> = TreeBitmap::from_rib(&rib);
        for key in 0..=u16::MAX {
            let want = rib.lookup(key).copied();
            assert_eq!(t4.lookup(key), want, "stride4 key={key:#06x}");
            assert_eq!(t6.lookup(key), want, "stride6 key={key:#06x}");
        }
    }
}

#[test]
fn random_u32_against_radix() {
    let mut rng = StdRng::seed_from_u64(12);
    let mut rib: RadixTree<u32, u16> = RadixTree::new();
    for _ in 0..5000 {
        let len = *[8u8, 12, 16, 20, 24, 28, 32].choose(&mut rng).unwrap();
        rib.insert(Prefix::new(rng.gen(), len), rng.gen_range(1..=64));
    }
    let t = TreeBitmap64::from_rib(&rib);
    for _ in 0..50_000 {
        let key: u32 = rng.gen();
        assert_eq!(t.lookup(key), rib.lookup(key).copied());
    }
    for (p, _) in rib.iter() {
        assert_eq!(t.lookup(p.addr()), rib.lookup(p.addr()).copied());
    }
}

#[test]
fn ipv6_lookup() {
    let mut rib: RadixTree<u128, u16> = RadixTree::new();
    rib.insert("2001:db8::/32".parse().unwrap(), 1);
    rib.insert("2001:db8:0:1::/64".parse().unwrap(), 2);
    let t: TreeBitmap64<u128> = TreeBitmap::from_rib(&rib);
    assert_eq!(t.lookup(0x2001_0db8_0000_0001u128 << 64 | 5), Some(2));
    assert_eq!(t.lookup(0x2001_0db8_ffff_0000u128 << 64 | 5), Some(1));
    assert_eq!(t.lookup(1u128), None);
}

#[test]
fn memory_and_name() {
    let mut rib: RadixTree<u32, u16> = RadixTree::new();
    rib.insert(p4("10.0.0.0/8"), 1);
    let t = TreeBitmap64::from_rib(&rib);
    assert!(Lpm::<u32>::memory_bytes(&t) > 0);
    assert_eq!(Lpm::<u32>::name(&t), "Tree BitMap (64-ary)");
    let t = TreeBitmap4::from_rib(&rib);
    assert_eq!(Lpm::<u32>::name(&t), "Tree BitMap");
}

#[cfg(feature = "proptest")] // needs the proptest dev-dependency (see Cargo.toml)
mod prop {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn agrees_with_linear_oracle(
            routes in proptest::collection::vec((any::<u16>(), 0u8..=16, 1u16..=20), 0..60),
            keys in proptest::collection::vec(any::<u16>(), 128),
        ) {
            let routes: Vec<(Prefix<u16>, u16)> = routes
                .into_iter()
                .map(|(a, l, n)| (Prefix::new(a, l), n))
                .collect();
            let rib: RadixTree<u16, u16> = RadixTree::from_routes(routes.clone());
            let lin = LinearLpm::new(rib.to_routes());
            let t4: TreeBitmap4<u16> = TreeBitmap::from_rib(&rib);
            let t6: TreeBitmap64<u16> = TreeBitmap::from_rib(&rib);
            for key in keys {
                let want = Lpm::lookup(&lin, key);
                prop_assert_eq!(t4.lookup(key), want);
                prop_assert_eq!(t6.lookup(key), want);
            }
        }
    }
}

// The cross-crate Lpm conformance contract (rib crate), over both stride
// variants and the IPv6 key width.
poptrie_rib::lpm_contract_tests!(treebitmap_contract_v4, u32, |rib: &RadixTree<u32, u16>| {
    TreeBitmap64::<u32>::from_rib(rib)
});
poptrie_rib::lpm_contract_tests!(treebitmap_contract_s4, u32, |rib: &RadixTree<u32, u16>| {
    TreeBitmap4::<u32>::from_rib(rib)
});
poptrie_rib::lpm_contract_tests!(treebitmap_contract_v6, u128, |rib: &RadixTree<
    u128,
    u16,
>| {
    TreeBitmap64::<u128>::from_rib(rib)
});
