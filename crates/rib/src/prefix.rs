//! CIDR prefixes over arbitrary key widths.

use core::cmp::Ordering;
use core::fmt;
use core::str::FromStr;
use std::net::{Ipv4Addr, Ipv6Addr};

use poptrie_bitops::Bits;

/// A CIDR prefix: a key of width `K::BITS` of which only the `len` most
/// significant bits are meaningful.
///
/// The address is kept canonical — bits beyond `len` are always zero — so
/// `Prefix` supports `Eq`/`Hash` directly.
///
/// ```
/// use poptrie_rib::Prefix;
///
/// let p: Prefix<u32> = "192.0.2.0/24".parse().unwrap();
/// assert_eq!(p.len(), 24);
/// assert!(p.contains(0xC000_0201)); // 192.0.2.1
/// assert!(!p.contains(0xC000_0301)); // 192.0.3.1
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Prefix<K: Bits> {
    addr: K,
    len: u8,
}

impl<K: Bits> Prefix<K> {
    /// The zero-length prefix matching every address (the default route).
    pub const DEFAULT: Self = Prefix {
        addr: K::ZERO,
        len: 0,
    };

    /// Create a prefix, masking `addr` down to its `len` significant bits.
    ///
    /// # Panics
    ///
    /// Panics when `len > K::BITS`.
    pub fn new(addr: K, len: u8) -> Self {
        assert!(
            (len as u32) <= K::BITS,
            "prefix length {len} exceeds key width {}",
            K::BITS
        );
        Prefix {
            addr: addr.and(K::prefix_mask(len as u32)),
            len,
        }
    }

    /// Create a prefix without the silent canonicalization of
    /// [`Prefix::new`]: the length must fit the key width and `addr` must
    /// already be canonical (no bits set below `len`). Wire-format route
    /// parsers use this so a malformed update is rejected instead of being
    /// quietly re-masked onto a different prefix.
    ///
    /// ```
    /// use poptrie_rib::{Prefix, PrefixError};
    ///
    /// assert!(Prefix::<u32>::try_new(0x0A00_0000, 8).is_ok());
    /// assert_eq!(
    ///     Prefix::<u32>::try_new(0x0A00_0001, 8),
    ///     Err(PrefixError::NonCanonical { len: 8 })
    /// );
    /// assert_eq!(
    ///     Prefix::<u32>::try_new(0, 33),
    ///     Err(PrefixError::TooLong { len: 33, width: 32 })
    /// );
    /// ```
    pub fn try_new(addr: K, len: u8) -> Result<Self, PrefixError> {
        if (len as u32) > K::BITS {
            return Err(PrefixError::TooLong {
                len,
                width: K::BITS,
            });
        }
        if addr.and(K::prefix_mask(len as u32)) != addr {
            return Err(PrefixError::NonCanonical { len });
        }
        Ok(Prefix { addr, len })
    }

    /// The canonical (masked) address.
    #[inline]
    pub fn addr(&self) -> K {
        self.addr
    }

    /// The prefix length in bits.
    #[inline]
    #[allow(clippy::len_without_is_empty)] // a prefix length is not a container size
    pub fn len(&self) -> u8 {
        self.len
    }

    /// True for the zero-length (default-route) prefix.
    #[inline]
    pub fn is_default(&self) -> bool {
        self.len == 0
    }

    /// The lowest address covered by the prefix (the canonical address
    /// itself). Together with [`Prefix::last_addr`] this bounds the
    /// covered range — oracle-driven fuzzers probe both ends plus their
    /// outside neighbours to catch off-by-one range refreshes.
    #[inline]
    pub fn first_addr(&self) -> K {
        self.addr
    }

    /// The highest address covered by the prefix: the address with every
    /// bit below `len` set.
    #[inline]
    pub fn last_addr(&self) -> K {
        let mask = K::prefix_mask(self.len as u32).to_u128();
        K::from_u128(self.addr.to_u128() | (mask ^ K::ONES.to_u128()))
    }

    /// Whether `key` falls inside this prefix.
    #[inline]
    pub fn contains(&self, key: K) -> bool {
        key.and(K::prefix_mask(self.len as u32)) == self.addr
    }

    /// Whether `other` is equal to or more specific than `self`.
    #[inline]
    pub fn covers(&self, other: &Self) -> bool {
        other.len >= self.len && self.contains(other.addr)
    }

    /// The bit of the address at MSB-first position `i` (`i < len`).
    #[inline]
    pub fn bit(&self, i: u32) -> bool {
        debug_assert!(i < self.len as u32);
        self.addr.bit(i)
    }

    /// Extend the prefix by one bit (`0` or `1`), producing one of its two
    /// halves. Used by split-based table synthesis (SYN1/SYN2 datasets).
    pub fn child(&self, bit: bool) -> Self {
        assert!((self.len as u32) < K::BITS, "cannot extend a host prefix");
        let mut addr = self.addr;
        if bit {
            addr = addr.or(K::single_bit(self.len as u32));
        }
        Prefix {
            addr,
            len: self.len + 1,
        }
    }

    /// Split into `2^extra` sub-prefixes of length `len + extra`, in address
    /// order. The SYN1/SYN2 synthetic tables of §4.1 are built this way.
    pub fn split(&self, extra: u8) -> impl Iterator<Item = Self> + '_ {
        let new_len = self.len as u32 + extra as u32;
        assert!(new_len <= K::BITS, "split beyond key width");
        let base = self.addr;
        let len = self.len as u32;
        (0u32..(1u32 << extra)).map(move |i| {
            // Place the i counter right below the original prefix bits.
            let lowered = if extra == 0 {
                K::ZERO
            } else {
                K::from_high_bits(i, extra as u32)
            };
            // Shift `lowered` down by `len` bits: rebuild via u128 math to
            // stay generic; split() is construction-time code, not hot path.
            let shifted = K::from_u128(lowered.to_u128() >> len);
            Prefix {
                addr: base.or(shifted),
                len: new_len as u8,
            }
        })
    }
}

impl<K: Bits> PartialOrd for Prefix<K> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<K: Bits> Ord for Prefix<K> {
    /// Order by address, then by length — the natural trie pre-order.
    fn cmp(&self, other: &Self) -> Ordering {
        self.addr
            .cmp(&other.addr)
            .then_with(|| self.len.cmp(&other.len))
    }
}

/// Error constructing a [`Prefix`] from raw parts via
/// [`Prefix::try_new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefixError {
    /// The length exceeds the key width.
    TooLong {
        /// The requested prefix length.
        len: u8,
        /// The key width in bits.
        width: u32,
    },
    /// The address has host bits set below the prefix length.
    NonCanonical {
        /// The requested prefix length.
        len: u8,
    },
}

impl fmt::Display for PrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrefixError::TooLong { len, width } => {
                write!(f, "prefix length {len} exceeds key width {width}")
            }
            PrefixError::NonCanonical { len } => {
                write!(f, "address has host bits set below prefix length {len}")
            }
        }
    }
}

impl std::error::Error for PrefixError {}

/// Error parsing a textual prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParsePrefixError {
    /// Missing `/` separator.
    MissingSlash,
    /// The address part did not parse.
    BadAddress,
    /// The length part did not parse or exceeds the key width.
    BadLength,
}

impl fmt::Display for ParsePrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParsePrefixError::MissingSlash => write!(f, "missing '/' in prefix"),
            ParsePrefixError::BadAddress => write!(f, "invalid address in prefix"),
            ParsePrefixError::BadLength => write!(f, "invalid prefix length"),
        }
    }
}

impl std::error::Error for ParsePrefixError {}

impl FromStr for Prefix<u32> {
    type Err = ParsePrefixError;

    /// Parse IPv4 CIDR notation, e.g. `"10.0.0.0/8"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s.split_once('/').ok_or(ParsePrefixError::MissingSlash)?;
        let addr: Ipv4Addr = addr.parse().map_err(|_| ParsePrefixError::BadAddress)?;
        let len: u8 = len.parse().map_err(|_| ParsePrefixError::BadLength)?;
        if len > 32 {
            return Err(ParsePrefixError::BadLength);
        }
        Ok(Prefix::new(u32::from(addr), len))
    }
}

impl FromStr for Prefix<u128> {
    type Err = ParsePrefixError;

    /// Parse IPv6 CIDR notation, e.g. `"2001:db8::/32"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s.split_once('/').ok_or(ParsePrefixError::MissingSlash)?;
        let addr: Ipv6Addr = addr.parse().map_err(|_| ParsePrefixError::BadAddress)?;
        let len: u8 = len.parse().map_err(|_| ParsePrefixError::BadLength)?;
        if len > 128 {
            return Err(ParsePrefixError::BadLength);
        }
        Ok(Prefix::new(u128::from(addr), len))
    }
}

impl fmt::Display for Prefix<u32> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", Ipv4Addr::from(self.addr), self.len)
    }
}

impl fmt::Display for Prefix<u128> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", Ipv6Addr::from(self.addr), self.len)
    }
}

impl<K: Bits> fmt::Debug for Prefix<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Prefix({:0width$b}/{})",
            self.addr.to_u128(),
            self.len,
            width = K::BITS as usize
        )
    }
}
