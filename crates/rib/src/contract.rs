//! The [`Lpm`](crate::Lpm) conformance contract, as a test-generating
//! macro.
//!
//! Every lookup structure in the workspace promises the same observable
//! behavior at the trait boundary: the default route matches everything, a
//! more-specific prefix wins over its covering route, an uncovered key is
//! a miss (`None`), and [`Lpm::lookup_batch`](crate::Lpm::lookup_batch) is
//! observationally identical to the scalar loop. Rather than each crate
//! re-asserting a subset of that by hand,
//! [`lpm_contract_tests!`](crate::lpm_contract_tests) stamps
//! out the whole contract once per implementation — the macro is the
//! single place the contract is written down, and every baseline crate
//! (radix, Poptrie, Tree BitMap, DXR, SAIL, Lulea, DIR-24-8) instantiates
//! it in its `#[cfg(test)]` module.

/// Generate the [`Lpm`](crate::Lpm) conformance test suite for one lookup
/// structure.
///
/// Arguments: a module name for the generated tests, the key type, and an
/// expression evaluating to a `Fn(&RadixTree<K, NextHop>) -> impl Lpm<K>`
/// build closure (compile the structure under test from a RIB).
///
/// ```
/// // In a crate's #[cfg(test)] module:
/// mod tests {
///     use poptrie_rib::RadixTree;
///
///     poptrie_rib::lpm_contract_tests!(radix_contract, u32, |rib: &RadixTree<u32, u16>| {
///         rib.clone()
///     });
/// }
/// # fn main() {}
/// ```
#[macro_export]
macro_rules! lpm_contract_tests {
    ($name:ident, $K:ty, $build:expr) => {
        mod $name {
            #[allow(unused_imports)]
            use super::*;
            use $crate::{Bits, Lpm, NextHop, Prefix, RadixTree, NO_ROUTE};

            fn build(rib: &RadixTree<$K, NextHop>) -> impl Lpm<$K> {
                #[allow(clippy::redundant_closure_call)]
                ($build)(rib)
            }

            fn key(v: u128) -> $K {
                <$K as Bits>::from_u128(v & <$K as Bits>::ONES.to_u128())
            }

            /// A tiny deterministic generator (xorshift64*), so the batch
            /// differential runs on the same keys everywhere.
            fn keys(seed: u64, n: usize) -> Vec<$K> {
                let mut x = seed | 1;
                (0..n)
                    .map(|_| {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        key((x.wrapping_mul(0x2545_F491_4F6C_DD1D) as u128) << 64 | x as u128)
                    })
                    .collect()
            }

            /// A nested fixture: default route, an /8-equivalent covering
            /// route, and a more specific route inside it. Lengths are
            /// scaled into the key width so the same contract runs on any
            /// `K`.
            fn fixture() -> RadixTree<$K, NextHop> {
                let mut rib: RadixTree<$K, NextHop> = RadixTree::new();
                rib.insert(Prefix::DEFAULT, 1);
                rib.insert(Prefix::new(key(0x0A << (<$K as Bits>::BITS - 8)), 8), 2);
                rib.insert(Prefix::new(key(0x0A40 << (<$K as Bits>::BITS - 16)), 16), 3);
                rib
            }

            #[test]
            fn default_route_matches_everything() {
                let mut rib: RadixTree<$K, NextHop> = RadixTree::new();
                rib.insert(Prefix::DEFAULT, 7);
                let fib = build(&rib);
                for k in keys(0xC0117AC7, 64) {
                    assert_eq!(fib.lookup(k), Some(7), "key {:#x}", k.to_u128());
                }
                assert_eq!(fib.lookup(key(0)), Some(7));
                assert_eq!(fib.lookup(<$K as Bits>::ONES), Some(7));
            }

            #[test]
            fn more_specific_wins_over_covering_route() {
                let fib = build(&fixture());
                // Inside the /16-equivalent: the longest match.
                assert_eq!(
                    fib.lookup(key(0x0A40 << (<$K as Bits>::BITS - 16) | 1)),
                    Some(3)
                );
                // Inside the /8-equivalent but outside the /16.
                assert_eq!(
                    fib.lookup(key(0x0A01 << (<$K as Bits>::BITS - 16))),
                    Some(2)
                );
                // Outside both: the default route.
                assert_eq!(fib.lookup(key(0x0B << (<$K as Bits>::BITS - 8))), Some(1));
            }

            #[test]
            fn miss_reports_none_without_default_route() {
                let mut rib: RadixTree<$K, NextHop> = RadixTree::new();
                rib.insert(Prefix::new(key(0x0A << (<$K as Bits>::BITS - 8)), 8), 2);
                let fib = build(&rib);
                assert_eq!(fib.lookup(key(0x0B << (<$K as Bits>::BITS - 8))), None);
                assert_eq!(fib.lookup(key(0x0A << (<$K as Bits>::BITS - 8))), Some(2));
            }

            #[test]
            fn batch_is_observationally_equal_to_scalar() {
                // A denser table than the fixture, so batches cross many
                // prefixes: 64 pseudorandom /12- and /20-equivalents on
                // top of the nested fixture.
                let mut rib = fixture();
                let mut x = 0x5EEDu64;
                for i in 0..64u16 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let len = if i % 2 == 0 { 12 } else { 20 };
                    // Place the 64 random bits at the top of the key width.
                    let addr = key(((x as u128) << 64) >> (128 - <$K as Bits>::BITS));
                    let p = Prefix::new(addr, len);
                    rib.insert(p, 4 + i % 9);
                }
                let fib = build(&rib);
                let ks = keys(0xBA7C4, 513); // odd length: exercises tail lanes
                let mut batched = vec![NO_ROUTE; ks.len()];
                fib.lookup_batch(&ks, &mut batched);
                for (k, &got) in ks.iter().zip(&batched) {
                    let want = fib.lookup(*k).unwrap_or(NO_ROUTE);
                    assert_eq!(got, want, "key {:#x}", k.to_u128());
                }
            }

            #[test]
            #[should_panic(expected = "length mismatch")]
            fn batch_rejects_mismatched_lengths() {
                let fib = build(&fixture());
                let ks = keys(1, 8);
                let mut out = vec![NO_ROUTE; 7];
                fib.lookup_batch(&ks, &mut out);
            }
        }
    };
}
