//! A path-compressed binary trie (Patricia / BSD radix).
//!
//! The paper cites Patricia tries (Morrison 1968 \[24\], Sklower 1991 \[30\])
//! as the other classic RIB structure next to the plain radix tree. Unlike
//! [`RadixTree`](crate::RadixTree), chains of single-child nodes are
//! collapsed: each node carries the full prefix it represents, and an edge
//! may skip many bits. Lookups are therefore `O(length of the matched
//! path)` in *nodes* rather than in *bits*, at the cost of a bit-comparison
//! per node.
//!
//! In this workspace the Patricia trie serves as an independent second RIB
//! implementation: property tests check it agrees with the radix tree, and
//! it gives users a drop-in with better insert-heavy behaviour on sparse
//! tables.

use poptrie_bitops::Bits;

use crate::prefix::Prefix;
use crate::traits::{Lpm, NextHop};

#[derive(Debug, Clone)]
struct PNode<K: Bits, V> {
    /// The full prefix this node stands for.
    prefix: Prefix<K>,
    /// Value when a route ends exactly here.
    value: Option<V>,
    /// Children; a child's prefix strictly extends ours.
    children: [Option<Box<PNode<K, V>>>; 2],
}

impl<K: Bits, V> PNode<K, V> {
    fn leaf(prefix: Prefix<K>, value: Option<V>) -> Box<Self> {
        Box::new(PNode {
            prefix,
            value,
            children: [None, None],
        })
    }
}

/// Length of the longest common prefix of two prefixes' address bits.
fn common_len<K: Bits>(a: &Prefix<K>, b: &Prefix<K>) -> u8 {
    let max = a.len().min(b.len()) as u32;
    let mut i = 0;
    while i < max && a.addr().bit(i) == b.addr().bit(i) {
        i += 1;
    }
    i as u8
}

/// A path-compressed trie mapping [`Prefix`]es to values.
///
/// ```
/// use poptrie_rib::{Patricia, Prefix};
///
/// let mut t: Patricia<u32, u16> = Patricia::new();
/// t.insert("192.0.2.0/24".parse().unwrap(), 7);
/// assert_eq!(t.lookup(0xC000_0242), Some(&7));
/// assert_eq!(t.lookup(0xC000_0342), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Patricia<K: Bits, V> {
    root: Option<Box<PNode<K, V>>>,
    len: usize,
}

impl<K: Bits, V> Patricia<K, V> {
    /// An empty trie.
    pub fn new() -> Self {
        Patricia { root: None, len: 0 }
    }

    /// Number of stored prefixes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no prefix is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert `prefix -> value`, returning any previous value.
    pub fn insert(&mut self, prefix: Prefix<K>, value: V) -> Option<V> {
        let slot = &mut self.root;
        let old = Self::insert_at(slot, prefix, value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    fn insert_at(slot: &mut Option<Box<PNode<K, V>>>, prefix: Prefix<K>, value: V) -> Option<V> {
        let Some(node) = slot.as_deref_mut() else {
            *slot = Some(PNode::leaf(prefix, Some(value)));
            return None;
        };
        let common = common_len(&node.prefix, &prefix);
        if common == node.prefix.len() {
            if prefix.len() == node.prefix.len() {
                // Exact node.
                return node.value.replace(value);
            }
            // `prefix` extends this node: descend on the next bit.
            let bit = prefix.bit(common as u32) as usize;
            return Self::insert_at(&mut node.children[bit], prefix, value);
        }
        // Split: make a fork at the common prefix.
        let fork_prefix = Prefix::new(node.prefix.addr(), common);
        let taken = slot.take().expect("checked above");
        let old_bit = taken.prefix.bit(common as u32) as usize;
        let mut fork = PNode::leaf(fork_prefix, None);
        fork.children[old_bit] = Some(taken);
        if prefix.len() == common {
            fork.value = Some(value);
        } else {
            let new_bit = prefix.bit(common as u32) as usize;
            debug_assert_ne!(new_bit, old_bit);
            fork.children[new_bit] = Some(PNode::leaf(prefix, Some(value)));
        }
        *slot = Some(fork);
        None
    }

    /// Remove `prefix`, returning its value. Collapses pass-through nodes.
    pub fn remove(&mut self, prefix: Prefix<K>) -> Option<V> {
        fn rec<K: Bits, V>(slot: &mut Option<Box<PNode<K, V>>>, prefix: Prefix<K>) -> Option<V> {
            let node = slot.as_deref_mut()?;
            let removed = if node.prefix == prefix {
                node.value.take()
            } else if node.prefix.covers(&prefix) {
                let bit = prefix.bit(node.prefix.len() as u32) as usize;
                rec(&mut node.children[bit], prefix)
            } else {
                None
            };
            // Collapse: valueless node with <= 1 child disappears.
            if node.value.is_none() {
                let kids =
                    node.children[0].is_some() as usize + node.children[1].is_some() as usize;
                if kids == 0 {
                    *slot = None;
                } else if kids == 1 {
                    let child = node.children[0].take().or_else(|| node.children[1].take());
                    *slot = child;
                }
            }
            removed
        }
        let removed = rec(&mut self.root, prefix);
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    /// The value stored at exactly `prefix`.
    pub fn get(&self, prefix: Prefix<K>) -> Option<&V> {
        let mut node = self.root.as_deref()?;
        loop {
            if node.prefix == prefix {
                return node.value.as_ref();
            }
            if !node.prefix.covers(&prefix) {
                return None;
            }
            node = node.children[prefix.bit(node.prefix.len() as u32) as usize].as_deref()?;
        }
    }

    /// Longest-prefix-match lookup.
    pub fn lookup(&self, key: K) -> Option<&V> {
        let mut node = self.root.as_deref()?;
        let mut best = None;
        loop {
            if !node.prefix.contains(key) {
                return best;
            }
            if node.value.is_some() {
                best = node.value.as_ref();
            }
            if node.prefix.len() as u32 >= K::BITS {
                return best;
            }
            match node.children[key.bit(node.prefix.len() as u32) as usize].as_deref() {
                Some(c) => node = c,
                None => return best,
            }
        }
    }

    /// Iterate over all `(prefix, &value)` pairs, address order.
    pub fn iter(&self) -> impl Iterator<Item = (Prefix<K>, &V)> {
        let mut stack: Vec<&PNode<K, V>> = Vec::new();
        if let Some(r) = self.root.as_deref() {
            stack.push(r);
        }
        core::iter::from_fn(move || {
            while let Some(node) = stack.pop() {
                if let Some(c) = node.children[1].as_deref() {
                    stack.push(c);
                }
                if let Some(c) = node.children[0].as_deref() {
                    stack.push(c);
                }
                if let Some(v) = node.value.as_ref() {
                    return Some((node.prefix, v));
                }
            }
            None
        })
    }
}

impl<K: Bits> Lpm<K> for Patricia<K, NextHop> {
    fn lookup(&self, key: K) -> Option<NextHop> {
        Patricia::lookup(self, key).copied()
    }

    fn memory_bytes(&self) -> usize {
        fn count<K: Bits, V>(node: Option<&PNode<K, V>>) -> usize {
            match node {
                None => 0,
                Some(n) => 1 + count(n.children[0].as_deref()) + count(n.children[1].as_deref()),
            }
        }
        count(self.root.as_deref()) * core::mem::size_of::<PNode<K, NextHop>>()
    }

    fn name(&self) -> String {
        "Patricia".into()
    }
}
