//! A deliberately naive linear-scan longest-prefix-match oracle.
//!
//! Every optimized structure in this workspace — Poptrie, Tree BitMap, DXR,
//! SAIL, the radix and Patricia tries — is validated against this oracle in
//! property tests, mirroring the paper's methodology of cross-checking all
//! algorithms "for each address of the whole IPv4 space" (§4). Its only
//! virtue is being obviously correct.

use poptrie_bitops::Bits;

use crate::prefix::Prefix;
use crate::traits::{Lpm, NextHop};

/// Ground-truth LPM: scans every route, keeps the longest match.
#[derive(Debug, Clone, Default)]
pub struct LinearLpm<K: Bits> {
    routes: Vec<(Prefix<K>, NextHop)>,
}

impl<K: Bits> LinearLpm<K> {
    /// Build from routes. Later duplicates of the same prefix override
    /// earlier ones, matching `RadixTree::insert` semantics.
    pub fn new<I: IntoIterator<Item = (Prefix<K>, NextHop)>>(routes: I) -> Self {
        let mut out = LinearLpm { routes: Vec::new() };
        for (p, nh) in routes {
            out.insert(p, nh);
        }
        out
    }

    /// Insert or replace a route.
    pub fn insert(&mut self, prefix: Prefix<K>, nh: NextHop) {
        match self.routes.iter_mut().find(|(p, _)| *p == prefix) {
            Some(slot) => slot.1 = nh,
            None => self.routes.push((prefix, nh)),
        }
    }

    /// Remove a route by prefix.
    pub fn remove(&mut self, prefix: Prefix<K>) -> Option<NextHop> {
        let idx = self.routes.iter().position(|(p, _)| *p == prefix)?;
        Some(self.routes.swap_remove(idx).1)
    }

    /// Number of routes.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }
}

impl<K: Bits> Lpm<K> for LinearLpm<K> {
    fn lookup(&self, key: K) -> Option<NextHop> {
        self.routes
            .iter()
            .filter(|(p, _)| p.contains(key))
            .max_by_key(|(p, _)| p.len())
            .map(|&(_, nh)| nh)
    }

    fn memory_bytes(&self) -> usize {
        self.routes.capacity() * core::mem::size_of::<(Prefix<K>, NextHop)>()
    }

    fn name(&self) -> String {
        "LinearScan".into()
    }
}
