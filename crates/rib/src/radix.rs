//! The binary radix tree: RIB substrate and `Radix` baseline.
//!
//! One bit of the key per level, no path compression. This is the structure
//! the paper compiles Poptrie from (§3.5) and the `Radix` row of Table 3 /
//! Figure 9. It also answers the *binary radix depth* question behind
//! Figure 7 and Figure 11: how many bits must be examined before the
//! longest matching prefix is decided.

use poptrie_bitops::Bits;

use crate::prefix::Prefix;
use crate::traits::{Lpm, NextHop};

/// A node of the binary radix tree.
///
/// Exposed read-only (through [`RadixTree::root`] and [`Node::child`]) so
/// that FIB compilers — the Poptrie builder in particular — can walk the
/// RIB without intermediate materialization.
#[derive(Debug, Clone)]
pub struct Node<V> {
    children: [Option<Box<Node<V>>>; 2],
    value: Option<V>,
}

impl<V> Default for Node<V> {
    fn default() -> Self {
        Node {
            children: [None, None],
            value: None,
        }
    }
}

impl<V> Node<V> {
    /// The child on the `0` (false) or `1` (true) side.
    #[inline]
    pub fn child(&self, bit: bool) -> Option<&Node<V>> {
        self.children[bit as usize].as_deref()
    }

    /// The value (next hop) stored at this exact prefix, if any.
    #[inline]
    pub fn value(&self) -> Option<&V> {
        self.value.as_ref()
    }

    /// True when the node has at least one child.
    #[inline]
    pub fn has_children(&self) -> bool {
        self.children[0].is_some() || self.children[1].is_some()
    }

    fn is_dead(&self) -> bool {
        self.value.is_none() && !self.has_children()
    }
}

/// A binary radix tree mapping [`Prefix`]es to values.
///
/// The tree maintains the invariant that every node either stores a value
/// or has a descendant that does, so `child(..).is_some()` implies a more
/// specific route exists below — the exact test the Poptrie builder uses to
/// decide between an internal node and a leaf.
///
/// ```
/// use poptrie_rib::{Prefix, RadixTree};
///
/// let mut rib: RadixTree<u32, u16> = RadixTree::new();
/// rib.insert("10.0.0.0/8".parse().unwrap(), 1);
/// rib.insert("10.1.0.0/16".parse().unwrap(), 2);
/// assert_eq!(rib.lookup(0x0A01_0001), Some(&2)); // 10.1.0.1
/// assert_eq!(rib.lookup(0x0A02_0001), Some(&1)); // 10.2.0.1
/// assert_eq!(rib.lookup(0x0B00_0001), None);     // 11.0.0.1
/// ```
#[derive(Debug, Clone)]
pub struct RadixTree<K: Bits, V> {
    root: Option<Box<Node<V>>>,
    len: usize,
    _key: core::marker::PhantomData<K>,
}

impl<K: Bits, V> Default for RadixTree<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Bits, V> RadixTree<K, V> {
    /// An empty tree.
    pub fn new() -> Self {
        RadixTree {
            root: None,
            len: 0,
            _key: core::marker::PhantomData,
        }
    }

    /// Number of stored prefixes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no prefix is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read-only access to the root node, for FIB compilers.
    pub fn root(&self) -> Option<&Node<V>> {
        self.root.as_deref()
    }

    /// Insert `prefix -> value`, returning the previous value if the prefix
    /// was already present.
    pub fn insert(&mut self, prefix: Prefix<K>, value: V) -> Option<V> {
        let mut node = self.root.get_or_insert_with(Default::default);
        for i in 0..prefix.len() as u32 {
            let bit = prefix.bit(i) as usize;
            node = node.children[bit].get_or_insert_with(Default::default);
        }
        let old = node.value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Remove `prefix`, returning its value if present. Dead interior nodes
    /// are pruned so the "every node leads to a value" invariant holds.
    pub fn remove(&mut self, prefix: Prefix<K>) -> Option<V> {
        fn rec<V>(node: &mut Option<Box<Node<V>>>, bits: &[bool]) -> (Option<V>, bool) {
            let Some(n) = node.as_deref_mut() else {
                return (None, false);
            };
            let removed = match bits.split_first() {
                None => n.value.take(),
                Some((&bit, rest)) => {
                    let (removed, _) = rec(&mut n.children[bit as usize], rest);
                    removed
                }
            };
            if n.is_dead() {
                *node = None;
            }
            (removed, node.is_none())
        }

        let bits: Vec<bool> = (0..prefix.len() as u32).map(|i| prefix.bit(i)).collect();
        let (removed, _) = rec(&mut self.root, &bits);
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    /// The value stored at exactly `prefix`, if any.
    pub fn get(&self, prefix: Prefix<K>) -> Option<&V> {
        let mut node = self.root.as_deref()?;
        for i in 0..prefix.len() as u32 {
            node = node.child(prefix.bit(i))?;
        }
        node.value()
    }

    /// Longest-prefix-match lookup: the value of the most specific prefix
    /// containing `key`.
    pub fn lookup(&self, key: K) -> Option<&V> {
        let mut node = self.root.as_deref()?;
        let mut best = node.value();
        let mut i = 0;
        while i < K::BITS {
            match node.child(key.bit(i)) {
                Some(next) => {
                    node = next;
                    if node.value.is_some() {
                        best = node.value();
                    }
                    i += 1;
                }
                None => break,
            }
        }
        best
    }

    /// Longest-prefix-match together with the *binary radix depth*: the
    /// number of bits that had to be examined before the answer was decided
    /// (the depth of the deepest existing node on the key's path). This is
    /// the quantity on the y-axis of Figure 7 and the x-axis of Figure 11,
    /// and it can exceed the matched prefix's own length when longer
    /// prefixes punch holes nearby.
    ///
    /// Also returns the length of the matched prefix (x-axis of Figure 7),
    /// or `None` if nothing matched.
    pub fn lookup_with_depth(&self, key: K) -> (Option<&V>, u32, Option<u8>) {
        let Some(mut node) = self.root.as_deref() else {
            return (None, 0, None);
        };
        let mut best = node.value();
        let mut best_len: Option<u8> = node.value().map(|_| 0);
        let mut depth = 0;
        while depth < K::BITS {
            match node.child(key.bit(depth)) {
                Some(next) => {
                    node = next;
                    depth += 1;
                    if next.value.is_some() {
                        best = next.value();
                        best_len = Some(depth as u8);
                    }
                }
                None => break,
            }
        }
        (best, depth, best.and(best_len))
    }

    /// Verify the tree's own structural invariants, for use as a trusted
    /// oracle in the churn-fuzz harness: every node either stores a value
    /// or leads to one (no dead interior nodes survive
    /// [`RadixTree::remove`]'s pruning), no node sits deeper than the key
    /// width, and the stored route count matches a full traversal.
    pub fn check_invariants(&self) -> Result<(), String> {
        fn rec<V>(node: &Node<V>, depth: u32, max: u32, values: &mut usize) -> Result<(), String> {
            if depth > max {
                return Err(format!("node at depth {depth} exceeds key width {max}"));
            }
            if node.value().is_some() {
                *values += 1;
            } else if !node.has_children() {
                return Err(format!(
                    "dead node (no value, no children) at depth {depth}"
                ));
            }
            for bit in [false, true] {
                if let Some(c) = node.child(bit) {
                    rec(c, depth + 1, max, values)?;
                }
            }
            Ok(())
        }
        let mut values = 0usize;
        if let Some(root) = self.root() {
            rec(root, 0, K::BITS, &mut values)?;
        }
        if values != self.len {
            return Err(format!(
                "route count mismatch: traversal found {values}, len records {}",
                self.len
            ));
        }
        Ok(())
    }

    /// Iterate over all `(prefix, &value)` pairs in trie pre-order
    /// (address order, shorter prefixes first at equal address).
    pub fn iter(&self) -> Iter<'_, K, V> {
        let mut stack = Vec::new();
        if let Some(root) = self.root.as_deref() {
            stack.push((root, Prefix::DEFAULT));
        }
        Iter { stack }
    }
}

impl<K: Bits, V: Clone> RadixTree<K, V> {
    /// Bulk-build from an iterator of routes.
    pub fn from_routes<I: IntoIterator<Item = (Prefix<K>, V)>>(routes: I) -> Self {
        let mut t = Self::new();
        for (p, v) in routes {
            t.insert(p, v);
        }
        t
    }

    /// All routes as a sorted vector.
    pub fn to_routes(&self) -> Vec<(Prefix<K>, V)> {
        self.iter().map(|(p, v)| (p, v.clone())).collect()
    }
}

/// The route-level difference between two tables, as produced by
/// [`RadixTree::diff`]: the update batch that turns `self` into `newer`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteDiff<K: Bits, V> {
    /// Prefixes present only in the newer table.
    pub added: Vec<(Prefix<K>, V)>,
    /// Prefixes present only in the older table.
    pub removed: Vec<(Prefix<K>, V)>,
    /// Prefixes in both with different values: `(prefix, old, new)`.
    pub changed: Vec<(Prefix<K>, V, V)>,
}

impl<K: Bits, V> Default for RouteDiff<K, V> {
    fn default() -> Self {
        RouteDiff {
            added: Vec::new(),
            removed: Vec::new(),
            changed: Vec::new(),
        }
    }
}

impl<K: Bits, V> RouteDiff<K, V> {
    /// Total number of differing prefixes.
    pub fn len(&self) -> usize {
        self.added.len() + self.removed.len() + self.changed.len()
    }

    /// True when the tables are route-identical.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K: Bits, V: Clone + Eq> RadixTree<K, V> {
    /// Compute the route-level difference from `self` (the older table)
    /// to `newer` — the minimal announce/withdraw/change batch a BGP
    /// speaker would need to converge one onto the other. Both trees are
    /// walked in order, so this is `O(|self| + |newer|)`.
    pub fn diff(&self, newer: &Self) -> RouteDiff<K, V> {
        let mut out = RouteDiff::default();
        let mut old_it = self.iter().peekable();
        let mut new_it = newer.iter().peekable();
        loop {
            match (old_it.peek(), new_it.peek()) {
                (Some(&(op, ov)), Some(&(np, nv))) => {
                    use core::cmp::Ordering::*;
                    match op.cmp(&np) {
                        Less => {
                            out.removed.push((op, ov.clone()));
                            old_it.next();
                        }
                        Greater => {
                            out.added.push((np, nv.clone()));
                            new_it.next();
                        }
                        Equal => {
                            if ov != nv {
                                out.changed.push((op, ov.clone(), nv.clone()));
                            }
                            old_it.next();
                            new_it.next();
                        }
                    }
                }
                (Some(&(op, ov)), None) => {
                    out.removed.push((op, ov.clone()));
                    old_it.next();
                }
                (None, Some(&(np, nv))) => {
                    out.added.push((np, nv.clone()));
                    new_it.next();
                }
                (None, None) => break,
            }
        }
        out
    }
}

impl<K: Bits, V: Clone + Eq> RadixTree<K, V> {
    /// The route aggregation of §3 of the paper: produce an equivalent,
    /// usually smaller tree by (a) dropping prefixes whose value equals the
    /// value already inherited from their closest enclosing prefix and
    /// (b) merging sets of prefixes with identical values that fill a
    /// subtree without a gap into the single covering prefix.
    ///
    /// Lookup results are preserved for **every** key, including keys that
    /// match no route (aggregation never invents coverage for unrouted
    /// space).
    pub fn aggregated(&self) -> Self {
        // For each subtree, compute its replacement together with its
        // "uniform" status: Some(u) when every address below resolves to
        // `u` (which is itself an Option: uniform no-route counts).
        #[allow(clippy::type_complexity)]
        fn rec<V: Clone + Eq>(
            node: Option<&Node<V>>,
            inherited: Option<&V>,
        ) -> (Option<Box<Node<V>>>, Option<Option<V>>) {
            let Some(n) = node else {
                // Empty subtree: uniformly the inherited value.
                return (None, Some(inherited.cloned()));
            };
            // Drop a value equal to what is inherited anyway (case a).
            let own = match (n.value(), inherited) {
                (Some(v), Some(inh)) if v == inh => None,
                (v, _) => v.cloned(),
            };
            let effective = own.as_ref().or(inherited);
            let (l, ul) = rec(n.child(false), effective);
            let (r, ur) = rec(n.child(true), effective);
            // Case b: both halves uniform with the same resolution — the
            // whole subtree collapses.
            if let (Some(a), Some(b)) = (&ul, &ur) {
                if a == b {
                    let u = a.clone();
                    let out = match &u {
                        // Uniformly the inherited value: the subtree is
                        // entirely redundant.
                        v if v.as_ref() == inherited => None,
                        Some(v) => Some(Box::new(Node {
                            children: [None, None],
                            value: Some(v.clone()),
                        })),
                        // Uniformly no-route but different from inherited:
                        // impossible — children cannot erase coverage.
                        None => None,
                    };
                    return (out, Some(u));
                }
            }
            let effective = effective.cloned();
            let new = Node {
                children: [l, r],
                value: own,
            };
            if new.is_dead() {
                (
                    None,
                    Some(Some(effective.expect("non-uniform subtree cannot be dead"))),
                )
            } else {
                (Some(Box::new(new)), None)
            }
        }

        let (root, _) = rec(self.root(), None);
        let mut out = RadixTree {
            root,
            len: 0,
            _key: core::marker::PhantomData,
        };
        out.len = out.iter().count();
        out
    }
}

/// Iterator over the routes of a [`RadixTree`], in trie pre-order.
pub struct Iter<'a, K: Bits, V> {
    stack: Vec<(&'a Node<V>, Prefix<K>)>,
}

impl<'a, K: Bits, V> core::fmt::Debug for Iter<'a, K, V> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Iter")
            .field("pending", &self.stack.len())
            .finish()
    }
}

impl<'a, K: Bits, V> Iterator for Iter<'a, K, V> {
    type Item = (Prefix<K>, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        while let Some((node, prefix)) = self.stack.pop() {
            // Push children right-first so the left (0) side pops first.
            if (prefix.len() as u32) < K::BITS {
                if let Some(c) = node.child(true) {
                    self.stack.push((c, prefix.child(true)));
                }
                if let Some(c) = node.child(false) {
                    self.stack.push((c, prefix.child(false)));
                }
            }
            if let Some(v) = node.value() {
                return Some((prefix, v));
            }
        }
        None
    }
}

impl<K: Bits> Lpm<K> for RadixTree<K, NextHop> {
    fn lookup(&self, key: K) -> Option<NextHop> {
        RadixTree::lookup(self, key).copied()
    }

    fn memory_bytes(&self) -> usize {
        // Count actual heap nodes: children pointers + value option.
        fn count<V>(node: Option<&Node<V>>) -> usize {
            match node {
                None => 0,
                Some(n) => 1 + count(n.child(false)) + count(n.child(true)),
            }
        }
        count(self.root()) * core::mem::size_of::<Node<NextHop>>()
    }

    fn name(&self) -> String {
        "Radix".into()
    }
}
