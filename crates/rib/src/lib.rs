//! Routing Information Base (RIB) substrate for the Poptrie reproduction.
//!
//! The Poptrie paper assumes (§3) that "the routes are preserved in a
//! separate routing table (RIB) such as radix or Patricia trie" from which
//! the compressed FIB is compiled. This crate provides that substrate and
//! the vocabulary shared by every lookup algorithm in the workspace:
//!
//! * [`Prefix`] — a CIDR prefix over any key width ([`Bits`]), with parsing
//!   and display for IPv4 (`u32`) and IPv6 (`u128`).
//! * [`RadixTree`] — the binary (one bit per level) radix tree. It is both
//!   the RIB from which Poptrie compiles and the paper's `Radix` baseline of
//!   Table 3 / Figure 9, and it answers the *binary radix depth* query that
//!   drives Figure 7 and Figure 11.
//! * [`Patricia`] — a path-compressed trie (Morrison 1968, Sklower 1991),
//!   the classic BSD RIB the paper cites.
//! * [`aggregate`](RadixTree::aggregated) — the route aggregation of §3:
//!   merging same-next-hop siblings that fill a subtree without a gap and
//!   dropping prefixes shadowed by an equal covering route.
//! * [`Lpm`] — the longest-prefix-match trait implemented by every
//!   algorithm crate (Poptrie, Tree BitMap, DXR, SAIL, Radix), which lets
//!   the benchmark harness and the cross-validation tests treat them
//!   uniformly.
//! * [`LinearLpm`] — a naive linear-scan oracle used as ground truth by the
//!   property tests.
//!
//! Next hops are represented as non-zero `u16` FIB indices ([`NextHop`]);
//! the paper's leaves are 16-bit for the same reason (§5, "the size of a
//! leaf node is 16 bits"). Zero is reserved as the internal no-route
//! sentinel so the hot paths stay branch-free; public APIs speak
//! `Option<NextHop>`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod contract;
pub mod linear;
pub mod patricia;
pub mod prefix;
pub mod radix;
pub mod traits;

pub use linear::LinearLpm;
pub use patricia::Patricia;
pub use poptrie_bitops::Bits;
pub use prefix::{ParsePrefixError, Prefix, PrefixError};
pub use radix::{RadixTree, RouteDiff};
pub use traits::{Lpm, NextHop, NO_ROUTE};

#[cfg(test)]
mod tests;
