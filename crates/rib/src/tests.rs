#[cfg(feature = "proptest")] // the oracle is only used by the gated proptests
use crate::LinearLpm;
use crate::{Lpm, Patricia, Prefix, RadixTree};

fn p4(s: &str) -> Prefix<u32> {
    s.parse().unwrap()
}

fn p6(s: &str) -> Prefix<u128> {
    s.parse().unwrap()
}

mod prefix {
    use super::*;

    #[test]
    fn parse_and_display_v4() {
        let p = p4("192.0.2.0/24");
        assert_eq!(p.addr(), 0xC000_0200);
        assert_eq!(p.len(), 24);
        assert_eq!(p.to_string(), "192.0.2.0/24");
    }

    #[test]
    fn parse_canonicalizes() {
        // Host bits beyond the mask are dropped.
        let p = p4("192.0.2.55/24");
        assert_eq!(p, p4("192.0.2.0/24"));
    }

    #[test]
    fn parse_errors() {
        assert!("192.0.2.0".parse::<Prefix<u32>>().is_err());
        assert!("300.0.2.0/8".parse::<Prefix<u32>>().is_err());
        assert!("192.0.2.0/33".parse::<Prefix<u32>>().is_err());
        assert!("192.0.2.0/x".parse::<Prefix<u32>>().is_err());
    }

    #[test]
    fn parse_and_display_v6() {
        let p = p6("2001:db8::/32");
        assert_eq!(p.len(), 32);
        assert_eq!(p.addr(), 0x2001_0db8u128 << 96);
        assert_eq!(p.to_string(), "2001:db8::/32");
        assert!("2001:db8::/129".parse::<Prefix<u128>>().is_err());
    }

    #[test]
    fn contains_and_covers() {
        let p = p4("10.0.0.0/8");
        assert!(p.contains(0x0A00_0001));
        assert!(p.contains(0x0AFF_FFFF));
        assert!(!p.contains(0x0B00_0000));
        assert!(p.covers(&p4("10.1.0.0/16")));
        assert!(p.covers(&p));
        assert!(!p.covers(&p4("0.0.0.0/0")));
        assert!(p4("0.0.0.0/0").covers(&p));
    }

    #[test]
    fn default_route() {
        let d = Prefix::<u32>::DEFAULT;
        assert!(d.is_default());
        assert!(d.contains(0));
        assert!(d.contains(u32::MAX));
    }

    #[test]
    fn child_extends() {
        let p = p4("10.0.0.0/8");
        assert_eq!(p.child(false), p4("10.0.0.0/9"));
        assert_eq!(p.child(true), p4("10.128.0.0/9"));
    }

    #[test]
    fn split_produces_ordered_children() {
        let p = p4("10.0.0.0/8");
        let kids: Vec<Prefix<u32>> = p.split(2).collect();
        assert_eq!(
            kids,
            vec![
                p4("10.0.0.0/10"),
                p4("10.64.0.0/10"),
                p4("10.128.0.0/10"),
                p4("10.192.0.0/10"),
            ]
        );
        // Splitting by zero reproduces the prefix itself.
        assert_eq!(p.split(0).collect::<Vec<_>>(), vec![p]);
    }

    #[test]
    fn split_covers_parent_exactly() {
        let p = p4("172.16.0.0/12");
        let kids: Vec<Prefix<u32>> = p.split(3).collect();
        assert_eq!(kids.len(), 8);
        for k in &kids {
            assert!(p.covers(k));
            assert_eq!(k.len(), 15);
        }
        // Children are disjoint and consecutive.
        for w in kids.windows(2) {
            assert!(w[0].addr() < w[1].addr());
            assert!(!w[0].covers(&w[1]));
        }
    }

    #[test]
    fn ordering_is_addr_then_len() {
        let mut v = vec![p4("10.0.0.0/16"), p4("9.0.0.0/8"), p4("10.0.0.0/8")];
        v.sort();
        assert_eq!(
            v,
            vec![p4("9.0.0.0/8"), p4("10.0.0.0/8"), p4("10.0.0.0/16")]
        );
    }
}

mod radix {
    use super::*;

    #[test]
    fn insert_lookup_remove() {
        let mut t: RadixTree<u32, u16> = RadixTree::new();
        assert!(t.is_empty());
        t.insert(p4("10.0.0.0/8"), 1);
        t.insert(p4("10.1.0.0/16"), 2);
        t.insert(p4("0.0.0.0/0"), 9);
        assert_eq!(t.len(), 3);
        assert_eq!(t.lookup(0x0A01_0203), Some(&2));
        assert_eq!(t.lookup(0x0A02_0203), Some(&1));
        assert_eq!(t.lookup(0x0B00_0000), Some(&9));
        assert_eq!(t.remove(p4("10.1.0.0/16")), Some(2));
        assert_eq!(t.lookup(0x0A01_0203), Some(&1));
        assert_eq!(t.remove(p4("10.1.0.0/16")), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn insert_replaces() {
        let mut t: RadixTree<u32, u16> = RadixTree::new();
        assert_eq!(t.insert(p4("10.0.0.0/8"), 1), None);
        assert_eq!(t.insert(p4("10.0.0.0/8"), 5), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(p4("10.0.0.0/8")), Some(&5));
    }

    #[test]
    fn host_routes() {
        let mut t: RadixTree<u32, u16> = RadixTree::new();
        t.insert(p4("192.0.2.1/32"), 7);
        assert_eq!(t.lookup(0xC000_0201), Some(&7));
        assert_eq!(t.lookup(0xC000_0202), None);
    }

    #[test]
    fn no_default_means_none() {
        let mut t: RadixTree<u32, u16> = RadixTree::new();
        t.insert(p4("128.0.0.0/1"), 3);
        assert_eq!(t.lookup(0x7FFF_FFFF), None);
        assert_eq!(t.lookup(0x8000_0000), Some(&3));
    }

    #[test]
    fn remove_prunes_dead_paths() {
        let mut t: RadixTree<u32, u16> = RadixTree::new();
        t.insert(p4("10.255.255.0/24"), 1);
        t.remove(p4("10.255.255.0/24"));
        assert!(t.root().is_none(), "pruning must remove the whole chain");
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let mut t: RadixTree<u32, u16> = RadixTree::new();
        let routes = [
            (p4("10.0.0.0/8"), 1u16),
            (p4("10.0.0.0/16"), 2),
            (p4("9.0.0.0/8"), 3),
            (p4("0.0.0.0/0"), 4),
            (p4("192.0.2.128/25"), 5),
        ];
        for (p, v) in routes {
            t.insert(p, v);
        }
        let got: Vec<(Prefix<u32>, u16)> = t.iter().map(|(p, v)| (p, *v)).collect();
        let mut want = routes.to_vec();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn lookup_with_depth_hole_punching() {
        // /8 route with a deep /24 hole: deciding that an address near the
        // hole matches only the /8 requires descending far past 8 bits.
        let mut t: RadixTree<u32, u16> = RadixTree::new();
        t.insert(p4("10.0.0.0/8"), 1);
        t.insert(p4("10.9.9.0/24"), 2);
        let (v, depth, plen) = t.lookup_with_depth(0x0A09_0901); // 10.9.9.1
        assert_eq!(v, Some(&2));
        assert_eq!(depth, 24);
        assert_eq!(plen, Some(24));
        // 10.9.8.1 shares 23 bits with the hole: depth 23, match /8.
        let (v, depth, plen) = t.lookup_with_depth(0x0A09_0801);
        assert_eq!(v, Some(&1));
        assert_eq!(depth, 23);
        assert_eq!(plen, Some(8));
        // 11.x: leaves the 10/8 subtree immediately at bit 7.
        let (v, depth, _) = t.lookup_with_depth(0x0B00_0000);
        assert_eq!(v, None);
        assert!(depth <= 8, "depth {depth}");
    }

    #[test]
    fn from_routes_roundtrip() {
        let routes = vec![(p4("10.0.0.0/8"), 1u16), (p4("10.128.0.0/9"), 2)];
        let t = RadixTree::from_routes(routes.clone());
        assert_eq!(t.to_routes(), routes);
    }

    #[test]
    fn works_for_u128() {
        let mut t: RadixTree<u128, u16> = RadixTree::new();
        t.insert(p6("2001:db8::/32"), 1);
        t.insert(p6("2001:db8:0:1::/64"), 2);
        let in_64 = 0x2001_0db8_0000_0001_0000_0000_0000_0001u128;
        let in_32 = 0x2001_0db8_ffff_0000_0000_0000_0000_0001u128;
        assert_eq!(t.lookup(in_64), Some(&2));
        assert_eq!(t.lookup(in_32), Some(&1));
        assert_eq!(t.lookup(0x2002u128 << 112), None);
    }
}

mod aggregate {
    use super::*;

    #[test]
    fn merges_sibling_halves() {
        // Two /9 halves of 10/8 with the same next hop collapse to 10/8.
        let t = RadixTree::from_routes(vec![(p4("10.0.0.0/9"), 1u16), (p4("10.128.0.0/9"), 1)]);
        let a = t.aggregated();
        assert_eq!(a.to_routes(), vec![(p4("10.0.0.0/8"), 1)]);
    }

    #[test]
    fn does_not_merge_with_gap() {
        // A /9 and a /10 do not fill the /8; nothing merges.
        let t = RadixTree::from_routes(vec![(p4("10.0.0.0/9"), 1u16), (p4("10.128.0.0/10"), 1)]);
        let a = t.aggregated();
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn drops_redundant_more_specific() {
        let t = RadixTree::from_routes(vec![
            (p4("10.0.0.0/8"), 1u16),
            (p4("10.1.0.0/16"), 1), // same next hop as covering /8
            (p4("10.2.0.0/16"), 2),
        ]);
        let a = t.aggregated();
        assert_eq!(
            a.to_routes(),
            vec![(p4("10.0.0.0/8"), 1), (p4("10.2.0.0/16"), 2)]
        );
    }

    #[test]
    fn recursive_collapse() {
        // Four /10s with one next hop collapse all the way to the /8.
        let t = RadixTree::from_routes(vec![
            (p4("10.0.0.0/10"), 3u16),
            (p4("10.64.0.0/10"), 3),
            (p4("10.128.0.0/10"), 3),
            (p4("10.192.0.0/10"), 3),
        ]);
        let a = t.aggregated();
        assert_eq!(a.to_routes(), vec![(p4("10.0.0.0/8"), 3)]);
    }

    #[test]
    fn never_invents_coverage() {
        // 0/1 with nh 1; aggregation must not extend it to 0/0.
        let t = RadixTree::from_routes(vec![(p4("0.0.0.0/1"), 1u16)]);
        let a = t.aggregated();
        assert_eq!(Lpm::lookup(&a, 0x8000_0000u32), None);
        assert_eq!(Lpm::lookup(&a, 0x0000_0000u32), Some(1));
    }

    #[test]
    fn preserves_semantics_exhaustively_u8() {
        // Dense random tables over an 8-bit space, checked for every key.
        use poptrie_rng::prelude::*;
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let n = rng.gen_range(0..40);
            let mut t: RadixTree<u8, u16> = RadixTree::new();
            for _ in 0..n {
                let len = rng.gen_range(0..=8u8);
                let addr: u8 = rng.gen();
                let nh = rng.gen_range(1..=4u16);
                t.insert(Prefix::new(addr, len), nh);
            }
            let a = t.aggregated();
            assert!(a.len() <= t.len(), "aggregation must not grow the table");
            for key in 0..=255u8 {
                assert_eq!(
                    t.lookup(key),
                    a.lookup(key),
                    "key {key:#04x} table {:?}",
                    t.to_routes()
                );
            }
        }
    }

    #[test]
    fn aggregating_empty_and_single() {
        let t: RadixTree<u32, u16> = RadixTree::new();
        assert_eq!(t.aggregated().len(), 0);
        let t = RadixTree::from_routes(vec![(p4("10.0.0.0/8"), 1u16)]);
        assert_eq!(t.aggregated().to_routes(), vec![(p4("10.0.0.0/8"), 1)]);
    }
}

mod patricia {
    use super::*;

    #[test]
    fn insert_lookup_basic() {
        let mut t: Patricia<u32, u16> = Patricia::new();
        t.insert(p4("10.0.0.0/8"), 1);
        t.insert(p4("10.1.0.0/16"), 2);
        t.insert(p4("192.0.2.0/24"), 3);
        assert_eq!(t.len(), 3);
        assert_eq!(t.lookup(0x0A01_0001), Some(&2));
        assert_eq!(t.lookup(0x0A02_0001), Some(&1));
        assert_eq!(t.lookup(0xC000_0201), Some(&3));
        assert_eq!(t.lookup(0xC000_0301), None);
    }

    #[test]
    fn split_on_divergence() {
        let mut t: Patricia<u32, u16> = Patricia::new();
        t.insert(p4("10.0.0.0/24"), 1);
        t.insert(p4("10.0.1.0/24"), 2); // shares 23 bits, forces a fork
        assert_eq!(t.lookup(0x0A00_0001), Some(&1));
        assert_eq!(t.lookup(0x0A00_0101), Some(&2));
        assert_eq!(t.lookup(0x0A00_0201), None);
    }

    #[test]
    fn fork_at_existing_value() {
        let mut t: Patricia<u32, u16> = Patricia::new();
        t.insert(p4("10.0.0.0/24"), 1);
        t.insert(p4("10.0.0.0/16"), 2); // shorter, becomes the fork itself
        assert_eq!(t.get(p4("10.0.0.0/16")), Some(&2));
        assert_eq!(t.get(p4("10.0.0.0/24")), Some(&1));
        assert_eq!(t.lookup(0x0A00_0001), Some(&1));
        assert_eq!(t.lookup(0x0A00_FF01), Some(&2));
    }

    #[test]
    fn remove_collapses() {
        let mut t: Patricia<u32, u16> = Patricia::new();
        t.insert(p4("10.0.0.0/24"), 1);
        t.insert(p4("10.0.1.0/24"), 2);
        assert_eq!(t.remove(p4("10.0.1.0/24")), Some(2));
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(0x0A00_0001), Some(&1));
        assert_eq!(t.remove(p4("10.0.0.0/24")), Some(1));
        assert!(t.is_empty());
        assert_eq!(t.remove(p4("10.0.0.0/24")), None);
    }

    #[test]
    fn default_route_patricia() {
        let mut t: Patricia<u32, u16> = Patricia::new();
        t.insert(Prefix::DEFAULT, 9);
        t.insert(p4("10.0.0.0/8"), 1);
        assert_eq!(t.lookup(0x0A000001), Some(&1));
        assert_eq!(t.lookup(0xDEAD_BEEF), Some(&9));
    }

    #[test]
    fn host_route_u128() {
        let mut t: Patricia<u128, u16> = Patricia::new();
        let host = p6("2001:db8::1/128");
        t.insert(host, 1);
        assert_eq!(t.lookup(0x2001_0db8u128 << 96 | 1), Some(&1));
        assert_eq!(t.lookup(0x2001_0db8u128 << 96 | 2), None);
    }

    #[test]
    fn iter_matches_inserts() {
        let routes = vec![
            (p4("10.0.0.0/8"), 1u16),
            (p4("10.0.0.0/16"), 2),
            (p4("172.16.0.0/12"), 3),
        ];
        let mut t: Patricia<u32, u16> = Patricia::new();
        for &(p, v) in &routes {
            t.insert(p, v);
        }
        let mut got: Vec<(Prefix<u32>, u16)> = t.iter().map(|(p, v)| (p, *v)).collect();
        got.sort();
        assert_eq!(got, routes);
    }
}

mod aggregate_more {
    use super::*;

    #[test]
    fn aggregation_is_idempotent() {
        use poptrie_rng::prelude::*;
        let mut rng = StdRng::seed_from_u64(41);
        for _ in 0..50 {
            let mut t: RadixTree<u16, u16> = RadixTree::new();
            for _ in 0..60 {
                t.insert(
                    Prefix::new(rng.gen::<u16>(), rng.gen_range(0..=16)),
                    rng.gen_range(1..=3),
                );
            }
            let once = t.aggregated();
            let twice = once.aggregated();
            assert_eq!(once.to_routes(), twice.to_routes());
        }
    }

    #[test]
    fn aggregates_nested_chain_to_single_route() {
        // A chain of nested prefixes all mapping to nh 1 collapses to the
        // shortest one.
        let t = RadixTree::from_routes(vec![
            (p4("10.0.0.0/8"), 1u16),
            (p4("10.0.0.0/16"), 1),
            (p4("10.0.0.0/24"), 1),
            (p4("10.0.0.0/32"), 1),
        ]);
        assert_eq!(t.aggregated().to_routes(), vec![(p4("10.0.0.0/8"), 1)]);
    }

    #[test]
    fn hole_punching_survives_aggregation() {
        // A different-nexthop hole must not be absorbed.
        let t = RadixTree::from_routes(vec![(p4("10.0.0.0/8"), 1u16), (p4("10.1.0.0/16"), 2)]);
        let a = t.aggregated();
        assert_eq!(a.len(), 2);
        assert_eq!(Lpm::lookup(&a, 0x0A01_0001u32), Some(2));
        assert_eq!(Lpm::lookup(&a, 0x0A02_0001u32), Some(1));
    }

    #[test]
    fn default_route_enables_whole_table_collapse() {
        // With a default route of the same nexthop, everything merges away.
        let t = RadixTree::from_routes(vec![
            (p4("0.0.0.0/0"), 1u16),
            (p4("10.0.0.0/8"), 1),
            (p4("192.0.2.0/24"), 1),
        ]);
        assert_eq!(t.aggregated().to_routes(), vec![(p4("0.0.0.0/0"), 1)]);
    }
}

mod depth {
    use super::*;
    use poptrie_rng::prelude::*;

    #[test]
    fn depth_lookup_agrees_with_plain_lookup() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut t: RadixTree<u32, u16> = RadixTree::new();
        for _ in 0..3000 {
            let len = *[8u8, 16, 24, 28, 32].choose(&mut rng).unwrap();
            t.insert(Prefix::new(rng.gen(), len), rng.gen_range(1..=9));
        }
        for _ in 0..50_000 {
            let key: u32 = rng.gen();
            let (v, depth, plen) = t.lookup_with_depth(key);
            assert_eq!(v, t.lookup(key));
            assert!(depth <= 32);
            if let Some(plen) = plen {
                assert!(
                    depth >= plen as u32,
                    "depth {depth} < matched length {plen}"
                );
                // The matched prefix really matches and has that length.
                let p = Prefix::new(key, plen);
                assert!(t.get(p).is_some(), "{p}");
            } else {
                assert_eq!(v, None);
            }
        }
    }

    #[test]
    fn depth_zero_on_empty_tree() {
        let t: RadixTree<u32, u16> = RadixTree::new();
        assert_eq!(t.lookup_with_depth(0xDEAD_BEEF), (None, 0, None));
    }

    #[test]
    fn default_route_matches_at_length_zero() {
        let mut t: RadixTree<u32, u16> = RadixTree::new();
        t.insert(Prefix::DEFAULT, 7);
        let (v, depth, plen) = t.lookup_with_depth(0xDEAD_BEEF);
        assert_eq!(v, Some(&7));
        assert_eq!(depth, 0);
        assert_eq!(plen, Some(0));
    }
}

mod diff {
    use super::*;

    #[test]
    fn diff_identifies_all_change_kinds() {
        let old = RadixTree::from_routes(vec![
            (p4("10.0.0.0/8"), 1u16),
            (p4("10.1.0.0/16"), 2),
            (p4("192.0.2.0/24"), 3),
        ]);
        let new = RadixTree::from_routes(vec![
            (p4("10.0.0.0/8"), 1u16),   // unchanged
            (p4("10.1.0.0/16"), 9),     // changed
            (p4("198.51.100.0/24"), 4), // added
        ]);
        let d = old.diff(&new);
        assert_eq!(d.added, vec![(p4("198.51.100.0/24"), 4)]);
        assert_eq!(d.removed, vec![(p4("192.0.2.0/24"), 3)]);
        assert_eq!(d.changed, vec![(p4("10.1.0.0/16"), 2, 9)]);
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
    }

    #[test]
    fn diff_of_identical_tables_is_empty() {
        let t = RadixTree::from_routes(vec![(p4("10.0.0.0/8"), 1u16)]);
        assert!(t.diff(&t.clone()).is_empty());
        let empty: RadixTree<u32, u16> = RadixTree::new();
        assert!(empty.diff(&RadixTree::new()).is_empty());
    }

    #[test]
    fn applying_a_diff_converges_the_tables() {
        use poptrie_rng::prelude::*;
        let mut rng = StdRng::seed_from_u64(44);
        for _ in 0..20 {
            let mut old: RadixTree<u16, u16> = RadixTree::new();
            let mut new: RadixTree<u16, u16> = RadixTree::new();
            for _ in 0..60 {
                let p = Prefix::new(rng.gen::<u16>(), rng.gen_range(0..=16));
                let v = rng.gen_range(1..=5);
                if rng.gen_bool(0.6) {
                    old.insert(p, v);
                }
                if rng.gen_bool(0.6) {
                    new.insert(p, rng.gen_range(1..=5));
                }
            }
            let d = old.diff(&new);
            let mut converged = old.clone();
            for (p, _) in &d.removed {
                converged.remove(*p);
            }
            for (p, v) in &d.added {
                converged.insert(*p, *v);
            }
            for (p, _, v) in &d.changed {
                converged.insert(*p, *v);
            }
            assert_eq!(converged.to_routes(), new.to_routes());
        }
    }

    #[test]
    fn length_differences_are_not_value_changes() {
        // 10.0.0.0/8 vs 10.0.0.0/9 are different prefixes entirely.
        let old = RadixTree::from_routes(vec![(p4("10.0.0.0/8"), 1u16)]);
        let new = RadixTree::from_routes(vec![(p4("10.0.0.0/9"), 1u16)]);
        let d = old.diff(&new);
        assert_eq!(d.added.len(), 1);
        assert_eq!(d.removed.len(), 1);
        assert!(d.changed.is_empty());
    }
}

mod u64_keys {
    use super::*;

    #[test]
    fn radix_and_patricia_work_on_u64() {
        let p = |addr: u64, len: u8| Prefix::new(addr, len);
        let routes = vec![
            (p(0xFFFF_0000_0000_0000, 16), 1u16),
            (p(0xFFFF_FFFF_0000_0000, 32), 2),
            (p(0, 0), 3),
        ];
        let radix: RadixTree<u64, u16> = RadixTree::from_routes(routes.clone());
        let mut pat: Patricia<u64, u16> = Patricia::new();
        for &(p, v) in &routes {
            pat.insert(p, v);
        }
        for key in [
            0xFFFF_FFFF_1234_5678u64,
            0xFFFF_0000_1234_5678,
            0x1234_5678_0000_0000,
            u64::MAX,
            0,
        ] {
            assert_eq!(radix.lookup(key), pat.lookup(key), "{key:#x}");
        }
        assert_eq!(radix.lookup(0xFFFF_FFFF_0000_0001), Some(&2));
    }
}

#[cfg(feature = "proptest")] // needs the proptest dev-dependency (see Cargo.toml)
mod cross_validation {
    use super::*;
    use proptest::prelude::*;

    /// Arbitrary route tables over a 16-bit key space.
    fn routes_strategy() -> impl Strategy<Value = Vec<(Prefix<u16>, u16)>> {
        proptest::collection::vec((any::<u16>(), 0u8..=16, 1u16..=30), 0..60).prop_map(|v| {
            v.into_iter()
                .map(|(addr, len, nh)| (Prefix::new(addr, len), nh))
                .collect()
        })
    }

    proptest! {
        #[test]
        fn radix_patricia_linear_agree(routes in routes_strategy(), keys in proptest::collection::vec(any::<u16>(), 64)) {
            let radix: RadixTree<u16, u16> = RadixTree::from_routes(routes.clone());
            let mut pat: Patricia<u16, u16> = Patricia::new();
            for &(p, v) in &routes {
                pat.insert(p, v);
            }
            let lin = LinearLpm::new(routes.clone());
            prop_assert_eq!(radix.len(), pat.len());
            for key in keys {
                let want = Lpm::lookup(&lin, key);
                prop_assert_eq!(Lpm::lookup(&radix, key), want);
                prop_assert_eq!(Lpm::lookup(&pat, key), want);
            }
        }

        #[test]
        fn aggregation_preserves_lookup(routes in routes_strategy(), keys in proptest::collection::vec(any::<u16>(), 64)) {
            let radix: RadixTree<u16, u16> = RadixTree::from_routes(routes);
            let agg = radix.aggregated();
            prop_assert!(agg.len() <= radix.len());
            for key in keys {
                prop_assert_eq!(radix.lookup(key), agg.lookup(key));
            }
        }

        #[test]
        fn removal_matches_linear(ops in proptest::collection::vec((any::<bool>(), any::<u16>(), 0u8..=16, 1u16..=5), 1..80)) {
            let mut radix: RadixTree<u16, u16> = RadixTree::new();
            let mut lin = LinearLpm::new(Vec::new());
            for (is_insert, addr, len, nh) in ops {
                let p = Prefix::new(addr, len);
                if is_insert {
                    radix.insert(p, nh);
                    lin.insert(p, nh);
                } else {
                    let a = radix.remove(p);
                    let b = lin.remove(p);
                    prop_assert_eq!(a.is_some(), b.is_some());
                }
            }
            prop_assert_eq!(radix.len(), lin.len());
            for key in 0..=u16::MAX {
                if key % 257 == 0 {
                    prop_assert_eq!(Lpm::lookup(&radix, key), Lpm::lookup(&lin, key));
                }
            }
        }
    }
}

mod oracle_hooks {
    use super::*;

    #[test]
    fn prefix_first_and_last_addr() {
        let p = p4("192.0.2.0/24");
        assert_eq!(p.first_addr(), 0xC000_0200);
        assert_eq!(p.last_addr(), 0xC000_02FF);
        let host = p4("10.1.2.3/32");
        assert_eq!(host.first_addr(), host.last_addr());
        let all: Prefix<u32> = Prefix::DEFAULT;
        assert_eq!(all.first_addr(), 0);
        assert_eq!(all.last_addr(), u32::MAX);
        let v6 = p6("2001:db8::/32");
        assert_eq!(v6.first_addr(), 0x2001_0db8_u128 << 96);
        assert_eq!(
            v6.last_addr(),
            (0x2001_0db8_u128 << 96) | ((1u128 << 96) - 1)
        );
    }

    #[test]
    fn radix_check_invariants_tracks_churn() {
        let mut t: RadixTree<u32, u16> = RadixTree::new();
        t.check_invariants().unwrap();
        t.insert(p4("10.0.0.0/8"), 1);
        t.insert(p4("10.1.0.0/16"), 2);
        t.insert(p4("10.1.2.0/24"), 3);
        t.check_invariants().unwrap();
        // Removing the middle prefix must not leave a dead interior node.
        t.remove(p4("10.1.0.0/16"));
        t.check_invariants().unwrap();
        t.remove(p4("10.1.2.0/24"));
        t.remove(p4("10.0.0.0/8"));
        t.check_invariants().unwrap();
        assert!(t.is_empty());
    }
}

mod prefix_try_new {
    use super::*;
    use crate::PrefixError;

    #[test]
    fn accepts_canonical_and_rejects_host_bits() {
        assert_eq!(Prefix::<u32>::try_new(0x0A00_0000, 8), Ok(p4("10.0.0.0/8")));
        assert_eq!(Prefix::<u32>::try_new(0, 0), Ok(Prefix::DEFAULT));
        assert_eq!(
            Prefix::<u32>::try_new(0x0A00_0001, 8),
            Err(PrefixError::NonCanonical { len: 8 })
        );
        assert_eq!(
            Prefix::<u32>::try_new(0, 40),
            Err(PrefixError::TooLong { len: 40, width: 32 })
        );
        // Host prefixes are canonical by definition.
        assert!(Prefix::<u32>::try_new(0xFFFF_FFFF, 32).is_ok());
        assert!(Prefix::<u128>::try_new(1, 128).is_ok());
        assert_eq!(
            Prefix::<u128>::try_new(1, 64),
            Err(PrefixError::NonCanonical { len: 64 })
        );
    }

    #[test]
    fn errors_render() {
        let e = PrefixError::TooLong { len: 40, width: 32 };
        assert!(e.to_string().contains("40"));
        let e = PrefixError::NonCanonical { len: 8 };
        assert!(e.to_string().contains("host bits"));
    }
}

// The Lpm conformance contract, on the two RIB-side implementations.
crate::lpm_contract_tests!(radix_contract_v4, u32, |rib: &RadixTree<u32, u16>| rib
    .clone());
crate::lpm_contract_tests!(radix_contract_v6, u128, |rib: &RadixTree<u128, u16>| rib
    .clone());
