//! Shared vocabulary: next hops and the longest-prefix-match trait.

use poptrie_bitops::Bits;

/// A FIB next-hop index.
///
/// The Poptrie leaf is 16 bits wide (§5 of the paper), bounding the number
/// of distinct FIB entries at 2^16; the same width is used across every
/// algorithm in this workspace for a fair comparison. The value `0`
/// ([`NO_ROUTE`]) is reserved as the no-route sentinel inside the lookup
/// structures, so valid next hops are `1..=65535`.
pub type NextHop = u16;

/// Internal sentinel meaning "no matching route".
///
/// Lookup structures store this in default slots so that the hot path needs
/// no `Option` branching; the public [`Lpm::lookup`] converts it to `None`.
pub const NO_ROUTE: NextHop = 0;

/// Longest-prefix-match lookup over keys of width `K`.
///
/// Implemented by every algorithm in the workspace: [`RadixTree`]
/// (`poptrie-rib`), `Poptrie` (`poptrie`), `TreeBitmap`
/// (`poptrie-treebitmap`), `Dxr` (`poptrie-dxr`) and `Sail`
/// (`poptrie-sail`). The benchmark harness and the cross-validation tests
/// are generic over this trait.
///
/// [`RadixTree`]: crate::RadixTree
pub trait Lpm<K: Bits> {
    /// Look up the longest matching prefix for `key` and return its next
    /// hop, or `None` when no route (not even a default route) matches.
    fn lookup(&self, key: K) -> Option<NextHop>;

    /// Batched longest-prefix-match: resolve `keys[i]` into `out[i]`,
    /// storing [`NO_ROUTE`] for a miss (the raw-sentinel convention of
    /// the hot paths, so no `Option` materializes per key).
    ///
    /// The default implementation is the scalar loop; structures with an
    /// array-based layout override it with an interleaved walk that
    /// issues software prefetches one step ahead of each in-flight key,
    /// converting dependent-load latency into memory-level parallelism.
    /// Semantics are identical either way — the `lookup_batch` ≡
    /// `lookup` differential test in `tests/cross_validation.rs` holds
    /// for every implementation in the workspace.
    ///
    /// # Panics
    /// If `keys.len() != out.len()`.
    fn lookup_batch(&self, keys: &[K], out: &mut [NextHop]) {
        assert_eq!(keys.len(), out.len(), "keys/out length mismatch");
        for (o, &k) in out.iter_mut().zip(keys) {
            *o = self.lookup(k).unwrap_or(NO_ROUTE);
        }
    }

    /// The memory footprint of the lookup structure in bytes, counting the
    /// arrays a lookup can touch (the quantity reported in Tables 2 and 3
    /// of the paper). Excludes the RIB the structure was compiled from.
    fn memory_bytes(&self) -> usize;

    /// Short human-readable algorithm name as it appears in the paper's
    /// tables, e.g. `"Poptrie18"` or `"D16R"`.
    fn name(&self) -> String;
}

impl<K: Bits, T: Lpm<K> + ?Sized> Lpm<K> for &T {
    fn lookup(&self, key: K) -> Option<NextHop> {
        (**self).lookup(key)
    }
    // Forwarded explicitly (not left to the default body) so that a
    // `&dyn Lpm` reaches the underlying type's interleaved override
    // rather than falling back to the scalar loop.
    fn lookup_batch(&self, keys: &[K], out: &mut [NextHop]) {
        (**self).lookup_batch(keys, out)
    }
    fn memory_bytes(&self) -> usize {
        (**self).memory_bytes()
    }
    fn name(&self) -> String {
        (**self).name()
    }
}

impl<K: Bits, T: Lpm<K> + ?Sized> Lpm<K> for Box<T> {
    fn lookup(&self, key: K) -> Option<NextHop> {
        (**self).lookup(key)
    }
    fn lookup_batch(&self, keys: &[K], out: &mut [NextHop]) {
        (**self).lookup_batch(keys, out)
    }
    fn memory_bytes(&self) -> usize {
        (**self).memory_bytes()
    }
    fn name(&self) -> String {
        (**self).name()
    }
}
