//! Structured BGP parse and protocol errors.
//!
//! A router parses BGP messages straight off the network, so every
//! malformed input must surface as a value the session layer can act on
//! (send the right NOTIFICATION, drop the session, count the event) —
//! never as a panic. Each error carries the byte offset that failed and
//! the RFC 4271 §6 NOTIFICATION error code/subcode the FSM should emit
//! for it.

/// What went wrong while decoding or validating a BGP message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BgpErrorKind {
    /// Fewer bytes than a field needs. Only raised for a *complete*
    /// framed message whose body is internally truncated — a short read
    /// of the stream itself is not an error (the codec waits for more
    /// bytes).
    Truncated {
        /// Bytes the field needed.
        need: usize,
        /// Bytes that were available.
        have: usize,
    },
    /// The 16-byte marker was not all-ones (RFC 4271 §4.1).
    BadMarker,
    /// The header length field is outside `19..=4096` or too small for
    /// the message type's mandatory fields.
    BadLength(u16),
    /// Unknown message type code.
    BadType(u8),
    /// OPEN carried an unsupported version (we speak BGP-4 only).
    BadVersion(u8),
    /// OPEN carried a hold time of 1 or 2 seconds (forbidden by §4.2).
    BadHoldTime(u16),
    /// A prefix length exceeded the address family's bit width.
    BadPrefixLength(u8),
    /// A path attribute was malformed (bad flags, length overrun, or an
    /// inconsistent MP_REACH/MP_UNREACH body).
    BadAttribute(u8),
    /// UPDATE section lengths (withdrawn routes / path attributes) do
    /// not fit inside the message body.
    BadUpdateLayout,
    /// NOTIFICATION body shorter than its two mandatory code bytes.
    BadNotification,
}

/// A BGP wire-format error: where it happened and what it was.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BgpError {
    /// Byte offset (within the message being parsed) of the failing
    /// field.
    pub offset: usize,
    /// The failure.
    pub kind: BgpErrorKind,
}

impl BgpError {
    /// The RFC 4271 §6 NOTIFICATION `(error code, subcode)` a speaker
    /// should send the peer when this error is detected.
    pub fn notification_codes(&self) -> (u8, u8) {
        use BgpErrorKind::*;
        match self.kind {
            BadMarker => (1, 1),           // Message Header / Connection Not Synchronized
            BadLength(_) => (1, 2),        // Message Header / Bad Message Length
            BadType(_) => (1, 3),          // Message Header / Bad Message Type
            BadVersion(_) => (2, 1),       // OPEN / Unsupported Version Number
            BadHoldTime(_) => (2, 6),      // OPEN / Unacceptable Hold Time
            BadAttribute(_) => (3, 1),     // UPDATE / Malformed Attribute List
            BadPrefixLength(_) => (3, 10), // UPDATE / Invalid Network Field
            BadUpdateLayout => (3, 1),     // UPDATE / Malformed Attribute List
            Truncated { .. } | BadNotification => (1, 2),
        }
    }
}

impl core::fmt::Display for BgpError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        use BgpErrorKind::*;
        write!(f, "BGP parse error at byte {}: ", self.offset)?;
        match &self.kind {
            Truncated { need, have } => write!(f, "truncated: need {need} bytes, have {have}"),
            BadMarker => write!(f, "header marker is not all-ones"),
            BadLength(l) => write!(f, "bad message length {l}"),
            BadType(t) => write!(f, "unknown message type {t}"),
            BadVersion(v) => write!(f, "unsupported BGP version {v}"),
            BadHoldTime(h) => write!(f, "unacceptable hold time {h}"),
            BadPrefixLength(l) => write!(f, "invalid prefix length {l}"),
            BadAttribute(t) => write!(f, "malformed path attribute {t}"),
            BadUpdateLayout => write!(f, "UPDATE section lengths exceed the message body"),
            BadNotification => write!(f, "NOTIFICATION body shorter than two bytes"),
        }
    }
}

impl std::error::Error for BgpError {}
