//! A fault-tolerant BGP-4 control plane for the Poptrie forwarding
//! engine.
//!
//! Three layers, each independently testable:
//!
//! * [`wire`] — RFC 4271 message codecs (OPEN / UPDATE / KEEPALIVE /
//!   NOTIFICATION, with RFC 4760 MP_REACH/MP_UNREACH for IPv6). Every
//!   malformed input yields a structured [`BgpError`] carrying the byte
//!   offset and the §6 NOTIFICATION codes; nothing panics.
//! * [`fsm`] — a sans-I/O passive-speaker session state machine
//!   (Idle → Connect → OpenSent → OpenConfirm → Established) driven by
//!   an injectable clock, with hold/keepalive timers and ConnectRetry
//!   exponential backoff with seeded jitter.
//! * [`fault`] — a deterministic wire-fault shim (torn reads, byte
//!   corruption, stalls, connection resets) replaying scripted
//!   disasters into a session.
//!
//! Parsed [`RouteEvent`]s feed the forwarding engine's control-plane
//! writer; [`NextHopInterner`] densifies BGP next-hop addresses into
//! the FIB's index space the way the MRT peer-view extraction does.
//! Session counters surface through `poptrie-telemetry` as
//! `poptrie_bgp_*` families ([`SessionStats::registry`]).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod error;
pub mod fault;
pub mod fsm;
pub mod stats;
pub mod wire;

pub use error::{BgpError, BgpErrorKind};
pub use fault::{run_deliveries, Delivery, FaultPlan};
pub use fsm::{Action, Event, Nanos, RouteEvent, Session, SessionConfig, State, SECOND};
pub use stats::SessionStats;
pub use wire::{FrameBuffer, Message, NotificationMsg, OpenMsg, UpdateMsg};

use poptrie_rib::NextHop;
use std::collections::HashMap;
use std::net::IpAddr;

/// Densifies BGP next-hop addresses into the FIB's compact index space
/// (`1..`), the same mapping the MRT peer-view extraction uses: the
/// paper's Table 1 counts "# of nhops" as distinct next-hop addresses.
#[derive(Debug, Clone, Default)]
pub struct NextHopInterner {
    ids: HashMap<IpAddr, NextHop>,
    table: Vec<IpAddr>,
}

impl NextHopInterner {
    /// An empty interner; index 0 is reserved for "no route".
    pub fn new() -> Self {
        Self::default()
    }

    /// The dense FIB index for `addr`, allocating the next one on first
    /// sight. Saturates at `NextHop::MAX` distinct next hops (real
    /// tables have a few hundred).
    pub fn intern(&mut self, addr: IpAddr) -> NextHop {
        if let Some(&id) = self.ids.get(&addr) {
            return id;
        }
        let id = (self.table.len() + 1).min(NextHop::MAX as usize) as NextHop;
        self.ids.insert(addr, id);
        self.table.push(addr);
        id
    }

    /// Distinct next hops seen so far.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// `true` when no next hop has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// The address interned as index `id` (1-based), if any.
    pub fn address(&self, id: NextHop) -> Option<IpAddr> {
        self.table.get((id as usize).checked_sub(1)?).copied()
    }
}

#[cfg(test)]
mod tests;
