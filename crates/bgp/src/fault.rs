//! Deterministic wire-fault injection for session testing.
//!
//! Real BGP sessions die in undignified ways: TCP hands the speaker
//! half a message and stalls, a middlebox flips a byte, the peer
//! resets mid-UPDATE. This module turns a pristine peer byte stream
//! into a scripted sequence of [`Delivery`] steps — torn chunks,
//! corrupted bytes, stalls, resets — that [`run_deliveries`] replays
//! into a [`Session`] under a simulated clock. Every fault scenario is
//! a pure value, so a failing case is reproducible from its
//! [`FaultPlan`] alone.

use crate::fsm::{Event, Nanos, Session};
use poptrie_rng::Xorshift32;

/// One step of a faulty wire schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Delivery {
    /// Bytes arriving from the peer (possibly a torn fragment).
    Bytes(Vec<u8>),
    /// Nothing arrives for this long; session timers keep running.
    Stall(Nanos),
    /// The transport drops.
    Reset,
}

/// A deterministic fault script applied to a peer byte stream.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Deliver the stream in fragments of at most this many bytes
    /// (sizes drawn from `seed`); `None` delivers maximal runs.
    pub torn_max: Option<usize>,
    /// `(stream offset, xor mask)` byte corruptions.
    pub corrupt: Vec<(usize, u8)>,
    /// `(stream offset, duration)` stalls: after `offset` bytes have
    /// been delivered, nothing arrives for `duration`.
    pub stalls: Vec<(usize, Nanos)>,
    /// Cut the connection after this many bytes (the rest of the
    /// stream is lost).
    pub reset_at: Option<usize>,
    /// Seed for the torn-fragment sizes.
    pub seed: u32,
}

impl FaultPlan {
    /// A clean wire: the whole stream in one delivery.
    pub fn clean() -> Self {
        Self::default()
    }

    /// Compile the plan against `stream` into an explicit delivery
    /// schedule.
    pub fn deliveries(&self, stream: &[u8]) -> Vec<Delivery> {
        let mut bytes = stream.to_vec();
        for &(off, xor) in &self.corrupt {
            if off < bytes.len() && xor != 0 {
                bytes[off] ^= xor;
            }
        }
        let cut = self.reset_at.unwrap_or(bytes.len()).min(bytes.len());
        bytes.truncate(cut);

        let mut stalls: Vec<(usize, Nanos)> = self
            .stalls
            .iter()
            .copied()
            .filter(|&(off, d)| off <= bytes.len() && d > 0)
            .collect();
        stalls.sort_unstable();

        let mut rng = Xorshift32::new(self.seed | 1);
        let mut out = Vec::new();
        let mut pos = 0usize;
        let mut stall_idx = 0usize;
        while pos < bytes.len() || stall_idx < stalls.len() {
            while stall_idx < stalls.len() && stalls[stall_idx].0 <= pos {
                out.push(Delivery::Stall(stalls[stall_idx].1));
                stall_idx += 1;
            }
            if pos >= bytes.len() {
                break;
            }
            let boundary = stalls
                .get(stall_idx)
                .map_or(bytes.len(), |&(off, _)| off.min(bytes.len()));
            let run = boundary - pos;
            let chunk = match self.torn_max {
                Some(m) if m > 0 => run.min(1 + (rng.next_u32() as usize) % m),
                _ => run,
            };
            out.push(Delivery::Bytes(bytes[pos..pos + chunk].to_vec()));
            pos += chunk;
        }
        if self.reset_at.is_some() {
            out.push(Delivery::Reset);
        }
        out
    }
}

/// Replay a delivery schedule into `session`, advancing the simulated
/// clock by `per_chunk` per byte delivery and firing every timer that
/// falls inside a stall. Returns all events the session emitted.
///
/// The driver contract mirrors a real event loop: after every input it
/// drains actions (a [`Close`](crate::Action::Close) is honored by
/// telling the session the transport dropped — unless the session
/// already went Idle, which is teardown's own doing).
pub fn run_deliveries(
    session: &mut Session,
    now: &mut Nanos,
    deliveries: &[Delivery],
    per_chunk: Nanos,
) -> Vec<Event> {
    let mut events = Vec::new();
    for d in deliveries {
        match d {
            Delivery::Bytes(b) => {
                *now += per_chunk;
                session.recv(*now, b);
            }
            Delivery::Stall(duration) => {
                let target = *now + duration;
                // Jump deadline to deadline so each timer fires at its
                // exact instant, then land on the stall's end.
                while let Some(at) = session.next_deadline() {
                    if at > target {
                        break;
                    }
                    *now = at.max(*now);
                    session.tick(*now);
                }
                *now = target;
                session.tick(*now);
            }
            Delivery::Reset => session.disconnected(*now),
        }
        events.extend(session.drain_events());
    }
    events
}
