//! BGP-4 message codecs (RFC 4271 §4, plus RFC 4760 multiprotocol
//! attributes for IPv6).
//!
//! The decode side is a streaming frame buffer: TCP hands a BGP speaker
//! arbitrary byte chunks, so [`FrameBuffer::feed`] accepts any split and
//! [`FrameBuffer::next_message`] yields complete messages (or a
//! structured [`BgpError`]) as soon as enough bytes have arrived. A
//! short read is *not* an error — the buffer simply waits — but every
//! malformed complete header or body is, with the RFC 4271 §6
//! NOTIFICATION codes attached so the session layer can tell the peer
//! why it is being dropped.
//!
//! The encode side builds canonical frames for the passive speaker's own
//! OPEN/KEEPALIVE/NOTIFICATION traffic and for synthesizing UPDATE
//! streams (fixtures, fuzz corpora, the `repro bgp` replay harness).

use crate::error::{BgpError, BgpErrorKind};
use poptrie_rib::Prefix;
use std::net::{Ipv4Addr, Ipv6Addr};

/// Fixed BGP header size: 16-byte marker + 2-byte length + 1-byte type.
pub const HEADER_LEN: usize = 19;
/// Largest legal BGP message (RFC 4271 §4.1).
pub const MAX_MESSAGE_LEN: usize = 4096;

/// Message type codes.
const TYPE_OPEN: u8 = 1;
const TYPE_UPDATE: u8 = 2;
const TYPE_NOTIFICATION: u8 = 3;
const TYPE_KEEPALIVE: u8 = 4;

/// Path attribute type codes.
const ATTR_ORIGIN: u8 = 1;
const ATTR_AS_PATH: u8 = 2;
const ATTR_NEXT_HOP: u8 = 3;
const ATTR_MP_REACH_NLRI: u8 = 14;
const ATTR_MP_UNREACH_NLRI: u8 = 15;

/// AFI/SAFI for IPv6 unicast (RFC 4760).
const AFI_IPV6: u16 = 2;
const SAFI_UNICAST: u8 = 1;

/// A decoded OPEN message (RFC 4271 §4.2). Optional parameters are kept
/// opaque — capability negotiation is out of scope for a replay-driven
/// passive speaker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenMsg {
    /// Protocol version; always 4 after validation.
    pub version: u8,
    /// The peer's autonomous system number (2-octet field).
    pub asn: u16,
    /// Proposed hold time in seconds (0, or >= 3).
    pub hold_time: u16,
    /// The peer's BGP identifier.
    pub bgp_id: u32,
    /// Raw optional parameters, undecoded.
    pub params: Vec<u8>,
}

/// A decoded UPDATE message: IPv4 feasible/withdrawn routes from the
/// base RFC 4271 encoding plus IPv6 routes from the RFC 4760
/// MP_REACH_NLRI / MP_UNREACH_NLRI attributes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct UpdateMsg {
    /// IPv4 prefixes withdrawn from service.
    pub withdrawn_v4: Vec<Prefix<u32>>,
    /// IPv4 prefixes announced, all sharing [`next_hop_v4`](Self::next_hop_v4).
    pub announced_v4: Vec<Prefix<u32>>,
    /// The NEXT_HOP attribute, present whenever `announced_v4` is
    /// non-empty.
    pub next_hop_v4: Option<Ipv4Addr>,
    /// IPv6 prefixes announced via MP_REACH_NLRI, with their next hop.
    pub announced_v6: Vec<Prefix<u128>>,
    /// The MP_REACH_NLRI next hop, present whenever `announced_v6` is
    /// non-empty.
    pub next_hop_v6: Option<Ipv6Addr>,
    /// IPv6 prefixes withdrawn via MP_UNREACH_NLRI.
    pub withdrawn_v6: Vec<Prefix<u128>>,
}

impl UpdateMsg {
    /// Total route events this update carries (announces + withdraws,
    /// both families).
    pub fn events(&self) -> usize {
        self.withdrawn_v4.len()
            + self.announced_v4.len()
            + self.announced_v6.len()
            + self.withdrawn_v6.len()
    }
}

/// A decoded NOTIFICATION (RFC 4271 §4.5): the peer's reason for
/// closing the session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotificationMsg {
    /// Error code.
    pub code: u8,
    /// Error subcode.
    pub subcode: u8,
    /// Diagnostic data.
    pub data: Vec<u8>,
}

/// One decoded BGP message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Session proposal.
    Open(OpenMsg),
    /// Route announcements and withdrawals.
    Update(UpdateMsg),
    /// Fatal error report; the sender closes the connection after it.
    Notification(NotificationMsg),
    /// Hold-timer refresh.
    Keepalive,
}

impl Message {
    /// Encode as a complete framed message (marker + length + type +
    /// body).
    pub fn encode(&self) -> Vec<u8> {
        let body = match self {
            Message::Open(o) => encode_open_body(o),
            Message::Update(u) => encode_update_body(u),
            Message::Notification(n) => {
                let mut b = vec![n.code, n.subcode];
                b.extend_from_slice(&n.data);
                b
            }
            Message::Keepalive => Vec::new(),
        };
        let type_code = match self {
            Message::Open(_) => TYPE_OPEN,
            Message::Update(_) => TYPE_UPDATE,
            Message::Notification(_) => TYPE_NOTIFICATION,
            Message::Keepalive => TYPE_KEEPALIVE,
        };
        let mut out = Vec::with_capacity(HEADER_LEN + body.len());
        out.extend_from_slice(&[0xFF; 16]);
        out.extend_from_slice(&((HEADER_LEN + body.len()) as u16).to_be_bytes());
        out.push(type_code);
        out.extend_from_slice(&body);
        out
    }
}

fn encode_open_body(o: &OpenMsg) -> Vec<u8> {
    let mut b = Vec::with_capacity(10 + o.params.len());
    b.push(o.version);
    b.extend_from_slice(&o.asn.to_be_bytes());
    b.extend_from_slice(&o.hold_time.to_be_bytes());
    b.extend_from_slice(&o.bgp_id.to_be_bytes());
    b.push(o.params.len() as u8);
    b.extend_from_slice(&o.params);
    b
}

fn push_nlri_v4(out: &mut Vec<u8>, p: &Prefix<u32>) {
    out.push(p.len());
    let nbytes = p.len().div_ceil(8) as usize;
    out.extend_from_slice(&p.addr().to_be_bytes()[..nbytes]);
}

fn push_nlri_v6(out: &mut Vec<u8>, p: &Prefix<u128>) {
    out.push(p.len());
    let nbytes = p.len().div_ceil(8) as usize;
    out.extend_from_slice(&p.addr().to_be_bytes()[..nbytes]);
}

/// Append one path attribute with automatic extended-length selection.
fn push_attr(out: &mut Vec<u8>, flags: u8, type_code: u8, value: &[u8]) {
    if value.len() > 255 {
        out.push(flags | 0x10);
        out.push(type_code);
        out.extend_from_slice(&(value.len() as u16).to_be_bytes());
    } else {
        out.push(flags);
        out.push(type_code);
        out.push(value.len() as u8);
    }
    out.extend_from_slice(value);
}

fn encode_update_body(u: &UpdateMsg) -> Vec<u8> {
    let mut withdrawn = Vec::new();
    for p in &u.withdrawn_v4 {
        push_nlri_v4(&mut withdrawn, p);
    }
    let mut attrs = Vec::new();
    if !u.announced_v4.is_empty() {
        // Mandatory well-known attributes for an IPv4 announce: ORIGIN
        // (IGP), an empty AS_PATH (as an iBGP speaker would send), and
        // the NEXT_HOP the routes resolve to.
        push_attr(&mut attrs, 0x40, ATTR_ORIGIN, &[0]);
        push_attr(&mut attrs, 0x40, ATTR_AS_PATH, &[]);
        let nh = u.next_hop_v4.unwrap_or(Ipv4Addr::UNSPECIFIED).octets();
        push_attr(&mut attrs, 0x40, ATTR_NEXT_HOP, &nh);
    }
    if !u.announced_v6.is_empty() {
        let mut v = Vec::new();
        v.extend_from_slice(&AFI_IPV6.to_be_bytes());
        v.push(SAFI_UNICAST);
        let nh = u.next_hop_v6.unwrap_or(Ipv6Addr::UNSPECIFIED).octets();
        v.push(nh.len() as u8);
        v.extend_from_slice(&nh);
        v.push(0); // reserved (SNPA count in RFC 2858)
        for p in &u.announced_v6 {
            push_nlri_v6(&mut v, p);
        }
        push_attr(&mut attrs, 0x80, ATTR_MP_REACH_NLRI, &v);
    }
    if !u.withdrawn_v6.is_empty() {
        let mut v = Vec::new();
        v.extend_from_slice(&AFI_IPV6.to_be_bytes());
        v.push(SAFI_UNICAST);
        for p in &u.withdrawn_v6 {
            push_nlri_v6(&mut v, p);
        }
        push_attr(&mut attrs, 0x80, ATTR_MP_UNREACH_NLRI, &v);
    }
    let mut body = Vec::with_capacity(4 + withdrawn.len() + attrs.len());
    body.extend_from_slice(&(withdrawn.len() as u16).to_be_bytes());
    body.extend_from_slice(&withdrawn);
    body.extend_from_slice(&(attrs.len() as u16).to_be_bytes());
    body.extend_from_slice(&attrs);
    for p in &u.announced_v4 {
        push_nlri_v4(&mut body, p);
    }
    body
}

/// A bounds-checked big-endian cursor whose offsets are reported
/// relative to the start of the framed message.
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
    /// Offset of `data[0]` within the framed message (for error
    /// reporting).
    base: usize,
}

impl<'a> Cursor<'a> {
    fn new(data: &'a [u8], base: usize) -> Self {
        Cursor { data, pos: 0, base }
    }

    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn err(&self, kind: BgpErrorKind) -> BgpError {
        BgpError {
            offset: self.base + self.pos,
            kind,
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], BgpError> {
        if self.remaining() < n {
            return Err(self.err(BgpErrorKind::Truncated {
                need: n,
                have: self.remaining(),
            }));
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, BgpError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, BgpError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, BgpError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }
}

/// Validated header of a complete frame: `(total length, type code)`.
fn parse_header(bytes: &[u8]) -> Result<(usize, u8), BgpError> {
    debug_assert!(bytes.len() >= HEADER_LEN);
    if bytes[..16].iter().any(|&b| b != 0xFF) {
        return Err(BgpError {
            offset: 0,
            kind: BgpErrorKind::BadMarker,
        });
    }
    let length = u16::from_be_bytes([bytes[16], bytes[17]]);
    if (length as usize) < HEADER_LEN || length as usize > MAX_MESSAGE_LEN {
        return Err(BgpError {
            offset: 16,
            kind: BgpErrorKind::BadLength(length),
        });
    }
    let type_code = bytes[18];
    let min = match type_code {
        TYPE_OPEN => HEADER_LEN + 10,
        TYPE_UPDATE => HEADER_LEN + 4,
        TYPE_NOTIFICATION => HEADER_LEN + 2,
        TYPE_KEEPALIVE => HEADER_LEN,
        t => {
            return Err(BgpError {
                offset: 18,
                kind: BgpErrorKind::BadType(t),
            })
        }
    };
    if (length as usize) < min || (type_code == TYPE_KEEPALIVE && length as usize != HEADER_LEN) {
        return Err(BgpError {
            offset: 16,
            kind: BgpErrorKind::BadLength(length),
        });
    }
    Ok((length as usize, type_code))
}

/// Decode one complete framed message. `bytes` must hold exactly the
/// frame (header + body); use [`FrameBuffer`] to carve frames out of a
/// stream.
pub fn parse_message(bytes: &[u8]) -> Result<Message, BgpError> {
    if bytes.len() < HEADER_LEN {
        return Err(BgpError {
            offset: 0,
            kind: BgpErrorKind::Truncated {
                need: HEADER_LEN,
                have: bytes.len(),
            },
        });
    }
    let (length, type_code) = parse_header(bytes)?;
    if bytes.len() != length {
        return Err(BgpError {
            offset: 16,
            kind: BgpErrorKind::BadLength(length as u16),
        });
    }
    let body = &bytes[HEADER_LEN..];
    match type_code {
        TYPE_OPEN => parse_open(body).map(Message::Open),
        TYPE_UPDATE => parse_update(body).map(Message::Update),
        TYPE_NOTIFICATION => {
            let mut cur = Cursor::new(body, HEADER_LEN);
            let code = cur.u8().map_err(|mut e| {
                e.kind = BgpErrorKind::BadNotification;
                e
            })?;
            let subcode = cur.u8().map_err(|mut e| {
                e.kind = BgpErrorKind::BadNotification;
                e
            })?;
            Ok(Message::Notification(NotificationMsg {
                code,
                subcode,
                data: body[2..].to_vec(),
            }))
        }
        TYPE_KEEPALIVE => Ok(Message::Keepalive),
        _ => unreachable!("parse_header rejects unknown types"),
    }
}

fn parse_open(body: &[u8]) -> Result<OpenMsg, BgpError> {
    let mut cur = Cursor::new(body, HEADER_LEN);
    let version = cur.u8()?;
    if version != 4 {
        return Err(BgpError {
            offset: HEADER_LEN,
            kind: BgpErrorKind::BadVersion(version),
        });
    }
    let asn = cur.u16()?;
    let hold_time = cur.u16()?;
    if hold_time == 1 || hold_time == 2 {
        return Err(BgpError {
            offset: HEADER_LEN + 3,
            kind: BgpErrorKind::BadHoldTime(hold_time),
        });
    }
    let bgp_id = cur.u32()?;
    let params_len = cur.u8()? as usize;
    let params = cur.take(params_len)?.to_vec();
    Ok(OpenMsg {
        version,
        asn,
        hold_time,
        bgp_id,
        params,
    })
}

/// Read one NLRI prefix of at most `max_len` bits into `(bytes, len)`.
fn read_nlri<'a>(cur: &mut Cursor<'a>, max_len: u8) -> Result<(&'a [u8], u8), BgpError> {
    let len = cur.u8()?;
    if len > max_len {
        return Err(BgpError {
            offset: cur.base + cur.pos - 1,
            kind: BgpErrorKind::BadPrefixLength(len),
        });
    }
    let nbytes = len.div_ceil(8) as usize;
    Ok((cur.take(nbytes)?, len))
}

fn nlri_v4(cur: &mut Cursor<'_>) -> Result<Prefix<u32>, BgpError> {
    let (bytes, len) = read_nlri(cur, 32)?;
    let mut addr = [0u8; 4];
    addr[..bytes.len()].copy_from_slice(bytes);
    Ok(Prefix::new(u32::from_be_bytes(addr), len))
}

fn nlri_v6(cur: &mut Cursor<'_>) -> Result<Prefix<u128>, BgpError> {
    let (bytes, len) = read_nlri(cur, 128)?;
    let mut addr = [0u8; 16];
    addr[..bytes.len()].copy_from_slice(bytes);
    Ok(Prefix::new(u128::from_be_bytes(addr), len))
}

fn parse_update(body: &[u8]) -> Result<UpdateMsg, BgpError> {
    let mut cur = Cursor::new(body, HEADER_LEN);
    let mut out = UpdateMsg::default();

    let withdrawn_len = cur.u16()? as usize;
    if withdrawn_len + 2 > body.len() {
        return Err(BgpError {
            offset: HEADER_LEN,
            kind: BgpErrorKind::BadUpdateLayout,
        });
    }
    let withdrawn_start = cur.pos;
    {
        let mut wcur = Cursor::new(cur.take(withdrawn_len)?, HEADER_LEN + withdrawn_start);
        while wcur.remaining() > 0 {
            out.withdrawn_v4.push(nlri_v4(&mut wcur)?);
        }
    }

    let attrs_len = cur.u16()? as usize;
    if attrs_len > cur.remaining() {
        return Err(BgpError {
            offset: HEADER_LEN + cur.pos - 2,
            kind: BgpErrorKind::BadUpdateLayout,
        });
    }
    let attrs_start = cur.pos;
    let attrs = cur.take(attrs_len)?;
    parse_attributes(attrs, HEADER_LEN + attrs_start, &mut out)?;

    // Remaining bytes are the IPv4 NLRI.
    let nlri_start = cur.pos;
    {
        let mut ncur = Cursor::new(cur.take(cur.remaining())?, HEADER_LEN + nlri_start);
        while ncur.remaining() > 0 {
            out.announced_v4.push(nlri_v4(&mut ncur)?);
        }
    }
    if !out.announced_v4.is_empty() && out.next_hop_v4.is_none() {
        // §6.3: missing well-known mandatory attribute.
        return Err(BgpError {
            offset: HEADER_LEN + attrs_start,
            kind: BgpErrorKind::BadAttribute(ATTR_NEXT_HOP),
        });
    }
    Ok(out)
}

fn parse_attributes(attrs: &[u8], base: usize, out: &mut UpdateMsg) -> Result<(), BgpError> {
    let mut cur = Cursor::new(attrs, base);
    while cur.remaining() > 0 {
        let attr_start = cur.base + cur.pos;
        let flags = cur.u8()?;
        let type_code = cur.u8()?;
        let len = if flags & 0x10 != 0 {
            cur.u16()? as usize
        } else {
            cur.u8()? as usize
        };
        let value = cur.take(len).map_err(|_| BgpError {
            offset: attr_start,
            kind: BgpErrorKind::BadAttribute(type_code),
        })?;
        match type_code {
            ATTR_NEXT_HOP => {
                if len != 4 {
                    return Err(BgpError {
                        offset: attr_start,
                        kind: BgpErrorKind::BadAttribute(type_code),
                    });
                }
                out.next_hop_v4 = Some(Ipv4Addr::new(value[0], value[1], value[2], value[3]));
            }
            ATTR_MP_REACH_NLRI => parse_mp_reach(value, attr_start, out)?,
            ATTR_MP_UNREACH_NLRI => parse_mp_unreach(value, attr_start, out)?,
            _ => {} // ORIGIN, AS_PATH, communities, … — not needed for FIB updates
        }
    }
    Ok(())
}

fn parse_mp_reach(value: &[u8], base: usize, out: &mut UpdateMsg) -> Result<(), BgpError> {
    let mut cur = Cursor::new(value, base);
    let afi = cur.u16()?;
    let safi = cur.u8()?;
    let nh_len = cur.u8()? as usize;
    let nh = cur.take(nh_len).map_err(|_| BgpError {
        offset: base,
        kind: BgpErrorKind::BadAttribute(ATTR_MP_REACH_NLRI),
    })?;
    let _reserved = cur.u8()?;
    if afi != AFI_IPV6 || safi != SAFI_UNICAST {
        return Ok(()); // other families are skipped, not rejected
    }
    if nh_len < 16 {
        return Err(BgpError {
            offset: base,
            kind: BgpErrorKind::BadAttribute(ATTR_MP_REACH_NLRI),
        });
    }
    let mut a = [0u8; 16];
    a.copy_from_slice(&nh[..16]); // a 32-byte nh is global + link-local; use global
    out.next_hop_v6 = Some(Ipv6Addr::from(a));
    while cur.remaining() > 0 {
        out.announced_v6.push(nlri_v6(&mut cur)?);
    }
    Ok(())
}

fn parse_mp_unreach(value: &[u8], base: usize, out: &mut UpdateMsg) -> Result<(), BgpError> {
    let mut cur = Cursor::new(value, base);
    let afi = cur.u16()?;
    let safi = cur.u8()?;
    if afi != AFI_IPV6 || safi != SAFI_UNICAST {
        return Ok(());
    }
    while cur.remaining() > 0 {
        out.withdrawn_v6.push(nlri_v6(&mut cur)?);
    }
    Ok(())
}

/// A streaming defragmenter: buffers arbitrary byte chunks and carves
/// complete BGP frames out of them.
///
/// Header validation happens as soon as 19 bytes are buffered, so a
/// corrupt length field fails fast instead of stalling the session
/// waiting for bytes that will never arrive.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted lazily.
    head: usize,
}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a received chunk.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact before growing: keeps the buffer bounded by one
        // maximum message plus one chunk.
        if self.head > 0 {
            self.buf.drain(..self.head);
            self.head = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as messages.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.head
    }

    /// `true` when a message header has arrived but its body has not —
    /// the "mid-message" state a hold-timer expiry can interrupt.
    pub fn mid_message(&self) -> bool {
        let avail = self.pending();
        if avail == 0 {
            return false;
        }
        if avail < HEADER_LEN {
            return true;
        }
        match parse_header(&self.buf[self.head..]) {
            Ok((length, _)) => avail < length,
            Err(_) => false, // a corrupt header is an error, not a partial frame
        }
    }

    /// Decode the next complete message, if one is fully buffered.
    ///
    /// `Ok(None)` means "need more bytes". An `Err` is fatal for the
    /// session: the buffer's contents are no longer trustworthy (BGP has
    /// no way to resynchronize a corrupt stream), so the caller must
    /// drop the connection after sending the NOTIFICATION derived from
    /// [`BgpError::notification_codes`].
    pub fn next_message(&mut self) -> Result<Option<Message>, BgpError> {
        let avail = self.pending();
        if avail < HEADER_LEN {
            return Ok(None);
        }
        let frame = &self.buf[self.head..];
        let (length, _) = parse_header(frame)?;
        if avail < length {
            return Ok(None);
        }
        let msg = parse_message(&frame[..length])?;
        self.head += length;
        Ok(Some(msg))
    }

    /// Discard all buffered bytes (connection reset).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
    }
}
