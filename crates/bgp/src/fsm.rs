//! The passive-speaker BGP session FSM (RFC 4271 §8), sans-I/O.
//!
//! ```text
//!        start        transport up       OPEN rx / KEEPALIVE tx
//!  Idle ──────▶ Connect ─────────▶ OpenSent ─────────▶ OpenConfirm
//!   ▲              ▲    (OPEN tx)                           │
//!   │   backoff    │                                        │ KEEPALIVE rx
//!   └──────────────┴── any error / NOTIFICATION / hold ◀────┤
//!                      expiry / disconnect                  ▼
//!                                                      Established ── UPDATE rx ──▶ route events
//! ```
//!
//! The session owns **no sockets and no clock**: time is a `u64`
//! nanosecond value passed into every call, and I/O is byte slices in
//! ([`Session::recv`]) and [`Action`]s out. That makes every transition
//! — hold-timer expiry mid-message, NOTIFICATION in OpenConfirm, a
//! ConnectRetry backoff hitting its cap — a pure function of inputs, so
//! the fault-injection tests replay them deterministically with no
//! threads and no sleeps. A real driver maps `Instant`s to nanos and
//! performs the actions; the replay harness uses a simulated clock.
//!
//! Degradation stance: any malformed input or peer fault tears the
//! *session* down (with the right NOTIFICATION), never the process, and
//! the FIB keeps serving the last published snapshot while the retry
//! timer backs off exponentially (with seeded jitter, so synchronized
//! flap storms cannot phase-lock).

use crate::error::BgpError;
use crate::stats::SessionStats;
use crate::wire::{FrameBuffer, Message, NotificationMsg, OpenMsg, UpdateMsg};
use poptrie_rib::Prefix;
use poptrie_rng::Xorshift32;
use std::net::{Ipv4Addr, Ipv6Addr};
use std::sync::Arc;

/// Monotonic session time in nanoseconds. The session never reads a
/// real clock; callers pass the current value into every method.
pub type Nanos = u64;

/// One second in [`Nanos`].
pub const SECOND: Nanos = 1_000_000_000;

/// RFC 4271 §8 session states (passive speaker subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum State {
    /// Not trying to connect; a retry timer may be pending.
    Idle,
    /// Waiting for the transport to come up.
    Connect,
    /// Our OPEN is sent; waiting for the peer's.
    OpenSent,
    /// Peer's OPEN accepted, our KEEPALIVE sent; waiting for theirs.
    OpenConfirm,
    /// Route exchange in progress.
    Established,
}

/// An I/O action the driver must perform, in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Write these bytes to the peer.
    Send(Vec<u8>),
    /// Drop the transport connection.
    Close,
}

/// A route learned or lost from the peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteEvent {
    /// IPv4 prefix announced with its BGP next hop.
    AnnounceV4(Prefix<u32>, Ipv4Addr),
    /// IPv4 prefix withdrawn.
    WithdrawV4(Prefix<u32>),
    /// IPv6 prefix announced with its BGP next hop.
    AnnounceV6(Prefix<u128>, Ipv6Addr),
    /// IPv6 prefix withdrawn.
    WithdrawV6(Prefix<u128>),
}

/// Something the driver should know about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A state transition happened.
    Transition {
        /// State left.
        from: State,
        /// State entered.
        to: State,
    },
    /// Routes from an UPDATE in Established. `span` is the session's
    /// monotonically increasing convergence-span ID — one per accepted
    /// UPDATE carrying routes, starting at 1. A driver that forwards
    /// these routes into the engine via
    /// `Control::send_spanned(span, ..)` gives the flight recorder a
    /// cross-layer span from protocol acceptance through snapshot
    /// publication to the first lookup served against it.
    Routes {
        /// Convergence-span ID allocated for this UPDATE.
        span: u64,
        /// The route changes, in wire order.
        routes: Vec<RouteEvent>,
    },
    /// The peer closed the session with a NOTIFICATION.
    PeerNotification(NotificationMsg),
    /// A message failed to parse; the session was torn down.
    ParseError(BgpError),
    /// The hold timer expired; the session was torn down.
    HoldExpired,
}

/// Session parameters. Defaults suit a real speaker; tests and the
/// replay harness shrink the timers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionConfig {
    /// Our AS number (sent in OPEN).
    pub asn: u16,
    /// Our BGP identifier (sent in OPEN).
    pub bgp_id: u32,
    /// Proposed hold time in seconds; the session runs at
    /// `min(ours, peer's)`. 0 disables the hold/keepalive machinery.
    pub hold_time: u16,
    /// First ConnectRetry backoff delay.
    pub retry_base: Nanos,
    /// Backoff cap: delays double per consecutive failure up to this.
    pub retry_max: Nanos,
    /// Seed for the ±25% backoff jitter (deterministic per session).
    pub jitter_seed: u32,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            asn: 64512,
            bgp_id: 0xC000_0201,
            hold_time: 90,
            retry_base: SECOND,
            retry_max: 64 * SECOND,
            jitter_seed: 0x9E37_79B9,
        }
    }
}

/// The passive-speaker session state machine. See the module docs for
/// the drive loop contract.
#[derive(Debug)]
pub struct Session {
    config: SessionConfig,
    state: State,
    frames: FrameBuffer,
    stats: Arc<SessionStats>,
    jitter: Xorshift32,
    /// Consecutive failed/broken connection attempts since the last
    /// Established session (drives the backoff exponent).
    attempts: u32,
    /// When Idle: the instant the next transition to Connect is due.
    retry_at: Option<Nanos>,
    /// Negotiated hold time (ns); `None` before negotiation or when 0.
    hold: Option<Nanos>,
    /// Deadline after which the peer is declared dead.
    hold_deadline: Option<Nanos>,
    /// Next KEEPALIVE transmission due.
    keepalive_at: Option<Nanos>,
    /// Last convergence-span ID handed out with an [`Event::Routes`]
    /// (0 = none yet; IDs start at 1 so span 0 can mean "unspanned"
    /// downstream).
    next_span: u64,
    actions: Vec<Action>,
    events: Vec<Event>,
}

impl Session {
    /// A new session in [`State::Idle`]; call [`Session::start`] to arm
    /// it.
    pub fn new(config: SessionConfig) -> Self {
        Session {
            state: State::Idle,
            frames: FrameBuffer::new(),
            stats: Arc::new(SessionStats::new()),
            jitter: Xorshift32::new(config.jitter_seed | 1),
            attempts: 0,
            retry_at: None,
            hold: None,
            hold_deadline: None,
            keepalive_at: None,
            next_span: 0,
            actions: Vec::new(),
            events: Vec::new(),
            config,
        }
    }

    /// Convergence spans allocated so far (= accepted UPDATEs that
    /// carried routes). Span IDs are `1..=spans_allocated()`.
    pub fn spans_allocated(&self) -> u64 {
        self.next_span
    }

    /// Current state.
    pub fn state(&self) -> State {
        self.state
    }

    /// The session's counters (shared; clone the `Arc` to scrape them
    /// from another thread).
    pub fn stats(&self) -> Arc<SessionStats> {
        Arc::clone(&self.stats)
    }

    /// Consecutive failed connection attempts (the backoff exponent).
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// Drain the pending I/O actions, in order.
    pub fn drain_actions(&mut self) -> Vec<Action> {
        std::mem::take(&mut self.actions)
    }

    /// Drain the pending events, in order.
    pub fn drain_events(&mut self) -> Vec<Event> {
        std::mem::take(&mut self.events)
    }

    /// The earliest instant at which [`Session::tick`] has work to do
    /// (retry, hold expiry, or keepalive transmission), if any.
    pub fn next_deadline(&self) -> Option<Nanos> {
        [self.retry_at, self.hold_deadline, self.keepalive_at]
            .into_iter()
            .flatten()
            .min()
    }

    fn transition(&mut self, to: State) {
        let from = self.state;
        if from == to {
            return;
        }
        self.state = to;
        self.stats.count_transition(to);
        self.events.push(Event::Transition { from, to });
    }

    /// Arm the session: Idle → Connect immediately. The driver should
    /// then bring the transport up and call [`Session::connected`].
    pub fn start(&mut self, _now: Nanos) {
        if self.state == State::Idle {
            self.retry_at = None;
            self.transition(State::Connect);
        }
    }

    /// In Connect and ready for the driver to dial (the backoff delay,
    /// if any, has elapsed).
    pub fn connect_ready(&self) -> bool {
        self.state == State::Connect
    }

    /// The transport is up: send our OPEN and wait for the peer's.
    /// Ignored outside Connect.
    pub fn connected(&mut self, now: Nanos) {
        if self.state != State::Connect {
            return;
        }
        self.stats.connects.inc();
        self.frames.clear();
        let open = Message::Open(OpenMsg {
            version: 4,
            asn: self.config.asn,
            hold_time: self.config.hold_time,
            bgp_id: self.config.bgp_id,
            params: Vec::new(),
        });
        self.send(open);
        // Until negotiation completes, run the hold timer at a large
        // fixed value (RFC suggests 4 minutes for OpenSent) so a silent
        // peer cannot wedge the session forever.
        self.hold = None;
        self.hold_deadline = Some(now + 240 * SECOND);
        self.keepalive_at = None;
        self.transition(State::OpenSent);
    }

    /// The transport dropped (peer reset, route flap, torn cable).
    /// From any connected state: back to Idle with backoff.
    pub fn disconnected(&mut self, now: Nanos) {
        if matches!(self.state, State::Idle | State::Connect) {
            return;
        }
        self.stats.resets.inc();
        self.teardown(now, None);
    }

    /// Feed bytes received from the peer. Any number of complete or
    /// partial messages per call; actions/events accumulate.
    pub fn recv(&mut self, now: Nanos, bytes: &[u8]) {
        if matches!(self.state, State::Idle | State::Connect) {
            return; // stray bytes from a dead connection
        }
        self.frames.feed(bytes);
        loop {
            match self.frames.next_message() {
                Ok(Some(msg)) => {
                    self.handle_message(now, msg);
                    // A message may have torn the session down; stop
                    // consuming the rest of the buffer if so.
                    if matches!(self.state, State::Idle | State::Connect) {
                        return;
                    }
                }
                Ok(None) => return,
                Err(e) => {
                    self.stats.parse_errors.inc();
                    let (code, subcode) = e.notification_codes();
                    self.events.push(Event::ParseError(e));
                    self.teardown(now, Some((code, subcode)));
                    return;
                }
            }
        }
    }

    /// Advance timers to `now`: fire the retry timer (Idle → Connect),
    /// the hold timer (teardown with NOTIFICATION 4/0), and the
    /// keepalive timer (KEEPALIVE transmission).
    pub fn tick(&mut self, now: Nanos) {
        if let Some(at) = self.retry_at {
            if now >= at && self.state == State::Idle {
                self.retry_at = None;
                self.transition(State::Connect);
            }
        }
        if let Some(deadline) = self.hold_deadline {
            if now >= deadline && !matches!(self.state, State::Idle | State::Connect) {
                self.stats.hold_expiries.inc();
                self.events.push(Event::HoldExpired);
                self.teardown(now, Some((4, 0)));
                return;
            }
        }
        if let Some(at) = self.keepalive_at {
            if now >= at && matches!(self.state, State::OpenConfirm | State::Established) {
                self.send(Message::Keepalive);
                self.keepalive_at = self.hold.map(|h| now + h / 3);
            }
        }
    }

    /// `true` while a message header has arrived but its body has not —
    /// the window a mid-message fault (hold expiry, disconnect) lands
    /// in.
    pub fn mid_message(&self) -> bool {
        self.frames.mid_message()
    }

    fn send(&mut self, msg: Message) {
        self.stats.count_tx(&msg);
        self.actions.push(Action::Send(msg.encode()));
    }

    /// Tear the session down: optionally notify the peer, close, go
    /// Idle, and schedule the next connection attempt with exponential
    /// backoff and jitter.
    fn teardown(&mut self, now: Nanos, notify: Option<(u8, u8)>) {
        if let Some((code, subcode)) = notify {
            self.send(Message::Notification(NotificationMsg {
                code,
                subcode,
                data: Vec::new(),
            }));
        }
        self.actions.push(Action::Close);
        self.frames.clear();
        self.hold = None;
        self.hold_deadline = None;
        self.keepalive_at = None;
        let delay = self.backoff_delay();
        self.stats.backoff_ns.set(delay);
        self.retry_at = Some(now + delay);
        self.attempts = self.attempts.saturating_add(1);
        self.transition(State::Idle);
    }

    /// The next ConnectRetry delay: `retry_base << attempts`, capped at
    /// `retry_max`, with ±25% deterministic jitter.
    fn backoff_delay(&mut self) -> Nanos {
        let base = self.config.retry_base.max(1);
        let capped = base
            .checked_shl(self.attempts.min(32))
            .map_or(self.config.retry_max, |d| d.min(self.config.retry_max))
            .max(1);
        // Jitter in [0.75, 1.25): 768..1280 / 1024.
        let j = 768 + (self.jitter.next_u32() % 512) as u64;
        (capped / 1024).saturating_mul(j).max(1)
    }

    fn handle_message(&mut self, now: Nanos, msg: Message) {
        self.stats.count_rx(&msg);
        match msg {
            Message::Open(open) => self.handle_open(now, open),
            Message::Keepalive => self.handle_keepalive(now),
            Message::Update(update) => self.handle_update(now, update),
            Message::Notification(n) => {
                self.events.push(Event::PeerNotification(n));
                // The peer is closing; do not notify back.
                self.teardown(now, None);
            }
        }
    }

    fn handle_open(&mut self, now: Nanos, open: OpenMsg) {
        if self.state != State::OpenSent {
            // §6.6 FSM error: OPEN is only legal while we wait for one.
            self.teardown(now, Some((5, 0)));
            return;
        }
        let hold_secs = open.hold_time.min(self.config.hold_time);
        if hold_secs > 0 {
            let hold = hold_secs as Nanos * SECOND;
            self.hold = Some(hold);
            self.hold_deadline = Some(now + hold);
            self.keepalive_at = Some(now + hold / 3);
        } else {
            self.hold = None;
            self.hold_deadline = None;
            self.keepalive_at = None;
        }
        self.send(Message::Keepalive);
        self.transition(State::OpenConfirm);
    }

    fn handle_keepalive(&mut self, now: Nanos) {
        match self.state {
            State::OpenConfirm => {
                self.refresh_hold(now);
                self.attempts = 0; // the peer is healthy: reset backoff
                self.transition(State::Established);
            }
            State::Established => self.refresh_hold(now),
            _ => self.teardown(now, Some((5, 0))),
        }
    }

    fn handle_update(&mut self, now: Nanos, update: UpdateMsg) {
        if self.state != State::Established {
            // §6.6: UPDATE before the session is up is an FSM error.
            self.teardown(now, Some((5, 0)));
            return;
        }
        self.refresh_hold(now);
        self.stats.updates_rx.inc();
        let mut routes = Vec::with_capacity(update.events());
        let nh4 = update.next_hop_v4.unwrap_or(Ipv4Addr::UNSPECIFIED);
        for p in &update.announced_v4 {
            routes.push(RouteEvent::AnnounceV4(*p, nh4));
        }
        for p in &update.withdrawn_v4 {
            routes.push(RouteEvent::WithdrawV4(*p));
        }
        let nh6 = update.next_hop_v6.unwrap_or(Ipv6Addr::UNSPECIFIED);
        for p in &update.announced_v6 {
            routes.push(RouteEvent::AnnounceV6(*p, nh6));
        }
        for p in &update.withdrawn_v6 {
            routes.push(RouteEvent::WithdrawV6(*p));
        }
        let announced = (update.announced_v4.len() + update.announced_v6.len()) as u64;
        let withdrawn = (update.withdrawn_v4.len() + update.withdrawn_v6.len()) as u64;
        self.stats.routes_announced.add(announced);
        self.stats.routes_withdrawn.add(withdrawn);
        if !routes.is_empty() {
            self.next_span += 1;
            self.events.push(Event::Routes {
                span: self.next_span,
                routes,
            });
        }
    }

    fn refresh_hold(&mut self, now: Nanos) {
        if let Some(hold) = self.hold {
            self.hold_deadline = Some(now + hold);
        }
    }
}
