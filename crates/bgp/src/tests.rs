//! Unit tests: codec round-trips, framing rejection, FSM transitions
//! under clean and faulty wires, timer and backoff behavior.

use crate::fault::{run_deliveries, Delivery, FaultPlan};
use crate::fsm::{Action, Event, RouteEvent, Session, SessionConfig, State, SECOND};
use crate::wire::{parse_message, FrameBuffer, Message, NotificationMsg, OpenMsg, UpdateMsg};
use crate::{BgpErrorKind, NextHopInterner};
use poptrie_rib::{NextHop, Prefix, RadixTree};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

fn p4(s: &str) -> Prefix<u32> {
    s.parse().unwrap()
}

fn p6(s: &str) -> Prefix<u128> {
    s.parse().unwrap()
}

fn open_msg() -> Message {
    Message::Open(OpenMsg {
        version: 4,
        asn: 64500,
        hold_time: 90,
        bgp_id: 0x0A00_0001,
        params: Vec::new(),
    })
}

fn update_v4(announced: &[(&str, Ipv4Addr)], withdrawn: &[&str]) -> Message {
    Message::Update(UpdateMsg {
        withdrawn_v4: withdrawn.iter().map(|s| p4(s)).collect(),
        announced_v4: announced.iter().map(|(s, _)| p4(s)).collect(),
        next_hop_v4: announced.first().map(|&(_, nh)| nh),
        ..UpdateMsg::default()
    })
}

// ------------------------------------------------------------- codecs

#[test]
fn open_round_trips() {
    let msg = open_msg();
    assert_eq!(parse_message(&msg.encode()).unwrap(), msg);
}

#[test]
fn keepalive_and_notification_round_trip() {
    let ka = Message::Keepalive;
    assert_eq!(parse_message(&ka.encode()).unwrap(), ka);
    let n = Message::Notification(NotificationMsg {
        code: 6,
        subcode: 2,
        data: vec![1, 2, 3],
    });
    assert_eq!(parse_message(&n.encode()).unwrap(), n);
}

#[test]
fn update_v4_round_trips() {
    let nh = Ipv4Addr::new(192, 0, 2, 1);
    let msg = update_v4(
        &[("10.0.0.0/8", nh), ("10.1.2.0/24", nh), ("0.0.0.0/0", nh)],
        &["172.16.0.0/12", "192.168.255.255/32"],
    );
    assert_eq!(parse_message(&msg.encode()).unwrap(), msg);
}

#[test]
fn update_v6_round_trips() {
    let nh = "2001:db8::1".parse::<Ipv6Addr>().unwrap();
    let msg = Message::Update(UpdateMsg {
        announced_v6: vec![p6("2001:db8::/32"), p6("::/0"), p6("2001:db8:1::1/128")],
        next_hop_v6: Some(nh),
        withdrawn_v6: vec![p6("2001:db8:ffff::/48")],
        ..UpdateMsg::default()
    });
    assert_eq!(parse_message(&msg.encode()).unwrap(), msg);
}

#[test]
fn bad_marker_is_rejected() {
    let mut bytes = Message::Keepalive.encode();
    bytes[3] = 0x00;
    let err = parse_message(&bytes).unwrap_err();
    assert_eq!(err.kind, BgpErrorKind::BadMarker);
    assert_eq!(err.notification_codes(), (1, 1));
}

#[test]
fn bad_length_and_type_are_rejected() {
    let mut bytes = Message::Keepalive.encode();
    bytes[16] = 0xFF; // length 0xFF13 > 4096
    bytes[17] = 0x13;
    assert!(matches!(
        parse_message(&bytes).unwrap_err().kind,
        BgpErrorKind::BadLength(_)
    ));
    let mut bytes = Message::Keepalive.encode();
    bytes[18] = 9; // unknown type
    assert_eq!(
        parse_message(&bytes).unwrap_err().kind,
        BgpErrorKind::BadType(9)
    );
}

#[test]
fn open_with_bad_version_or_hold_time_is_rejected() {
    let mut o = match open_msg() {
        Message::Open(o) => o,
        _ => unreachable!(),
    };
    o.version = 3;
    let err = parse_message(&Message::Open(o.clone()).encode()).unwrap_err();
    assert_eq!(err.kind, BgpErrorKind::BadVersion(3));
    o.version = 4;
    o.hold_time = 2; // §4.2 forbids 1 and 2
    let err = parse_message(&Message::Open(o).encode()).unwrap_err();
    assert_eq!(err.kind, BgpErrorKind::BadHoldTime(2));
}

#[test]
fn update_with_oversized_prefix_length_is_rejected() {
    let msg = update_v4(&[("10.0.0.0/8", Ipv4Addr::new(192, 0, 2, 1))], &[]);
    let mut bytes = msg.encode();
    // The last NLRI length byte (8) sits 5 bytes from the end
    // (len + 1 address byte ... actually /8 is len byte + 1 byte).
    let n = bytes.len();
    bytes[n - 2] = 33; // prefix length 33 on IPv4
    let err = parse_message(&bytes).unwrap_err();
    // Length 33 makes the NLRI field claim more bytes than remain, so
    // either rejection is structurally sound; it must not panic.
    assert!(matches!(
        err.kind,
        BgpErrorKind::BadPrefixLength(33) | BgpErrorKind::Truncated { .. }
    ));
}

#[test]
fn announce_without_next_hop_is_rejected() {
    // Hand-build an UPDATE body: no withdrawn, no attributes, one NLRI.
    let mut body = Vec::new();
    body.extend_from_slice(&0u16.to_be_bytes());
    body.extend_from_slice(&0u16.to_be_bytes());
    body.push(8);
    body.push(10);
    let mut bytes = vec![0xFF; 16];
    bytes.extend_from_slice(&((19 + body.len()) as u16).to_be_bytes());
    bytes.push(2);
    bytes.extend_from_slice(&body);
    let err = parse_message(&bytes).unwrap_err();
    assert_eq!(err.kind, BgpErrorKind::BadAttribute(3));
    assert_eq!(err.notification_codes(), (3, 1));
}

#[test]
fn update_section_lengths_cannot_escape_the_body() {
    // Withdrawn-routes length pointing past the end of the message.
    let mut body = Vec::new();
    body.extend_from_slice(&200u16.to_be_bytes());
    let mut bytes = vec![0xFF; 16];
    bytes.extend_from_slice(&((19 + body.len() + 2) as u16).to_be_bytes());
    bytes.push(2);
    bytes.extend_from_slice(&body);
    bytes.extend_from_slice(&0u16.to_be_bytes());
    let err = parse_message(&bytes).unwrap_err();
    assert_eq!(err.kind, BgpErrorKind::BadUpdateLayout);
}

#[test]
fn frame_buffer_reassembles_any_split() {
    let nh = Ipv4Addr::new(192, 0, 2, 1);
    let msgs = vec![
        open_msg(),
        Message::Keepalive,
        update_v4(&[("10.0.0.0/8", nh)], &["172.16.0.0/12"]),
        Message::Keepalive,
    ];
    let stream: Vec<u8> = msgs.iter().flat_map(|m| m.encode()).collect();
    for chunk in 1..=7usize {
        let mut buf = FrameBuffer::new();
        let mut got = Vec::new();
        for piece in stream.chunks(chunk) {
            buf.feed(piece);
            while let Some(m) = buf.next_message().unwrap() {
                got.push(m);
            }
        }
        assert_eq!(got, msgs, "chunk size {chunk}");
        assert_eq!(buf.pending(), 0);
        assert!(!buf.mid_message());
    }
}

#[test]
fn frame_buffer_reports_mid_message() {
    let msg = open_msg().encode();
    let mut buf = FrameBuffer::new();
    buf.feed(&msg[..10]); // not even a full header
    assert!(buf.mid_message());
    buf.feed(&msg[10..msg.len() - 1]); // header + partial body
    assert!(buf.mid_message());
    buf.feed(&msg[msg.len() - 1..]);
    assert!(!buf.mid_message() || buf.next_message().unwrap().is_some());
}

#[test]
fn interner_is_dense_and_stable() {
    let mut i = NextHopInterner::new();
    let a: IpAddr = "192.0.2.1".parse().unwrap();
    let b: IpAddr = "2001:db8::1".parse().unwrap();
    assert_eq!(i.intern(a), 1);
    assert_eq!(i.intern(b), 2);
    assert_eq!(i.intern(a), 1);
    assert_eq!(i.len(), 2);
    assert_eq!(i.address(1), Some(a));
    assert_eq!(i.address(2), Some(b));
    assert_eq!(i.address(3), None);
    assert_eq!(i.address(0), None);
}

// ---------------------------------------------------------------- FSM

/// Small timers for tests: 9 s hold, 1 ms base retry, 16 ms cap.
fn test_config() -> SessionConfig {
    SessionConfig {
        hold_time: 9,
        retry_base: 1_000_000,
        retry_max: 16_000_000,
        jitter_seed: 7,
        ..SessionConfig::default()
    }
}

/// Bring a session to Established over a clean wire. Returns the
/// simulated clock.
fn establish(session: &mut Session) -> u64 {
    let mut now = 0;
    session.start(now);
    assert_eq!(session.state(), State::Connect);
    session.connected(now);
    assert_eq!(session.state(), State::OpenSent);
    let sent = session.drain_actions();
    assert!(
        matches!(&sent[0], Action::Send(b) if matches!(parse_message(b), Ok(Message::Open(_))))
    );
    now += 1;
    session.recv(now, &open_msg().encode());
    assert_eq!(session.state(), State::OpenConfirm);
    now += 1;
    session.recv(now, &Message::Keepalive.encode());
    assert_eq!(session.state(), State::Established);
    session.drain_actions();
    session.drain_events();
    now
}

#[test]
fn clean_session_reaches_established_and_yields_routes() {
    let mut s = Session::new(test_config());
    let mut now = establish(&mut s);
    let nh = Ipv4Addr::new(192, 0, 2, 7);
    now += 1;
    s.recv(
        now,
        &update_v4(&[("10.0.0.0/8", nh)], &["172.16.0.0/12"]).encode(),
    );
    let events = s.drain_events();
    let routes: Vec<RouteEvent> = events
        .into_iter()
        .filter_map(|e| match e {
            Event::Routes { routes: r, .. } => Some(r),
            _ => None,
        })
        .flatten()
        .collect();
    assert_eq!(
        routes,
        vec![
            RouteEvent::AnnounceV4(p4("10.0.0.0/8"), nh),
            RouteEvent::WithdrawV4(p4("172.16.0.0/12")),
        ]
    );
    assert_eq!(s.stats().routes_announced.get(), 1);
    assert_eq!(s.stats().routes_withdrawn.get(), 1);
}

#[test]
fn hold_timer_expiry_mid_update_tears_down_with_notification() {
    let mut s = Session::new(test_config());
    let mut now = establish(&mut s);
    // Deliver half an UPDATE, then let the hold timer (9 s) expire.
    let upd = update_v4(&[("10.0.0.0/8", Ipv4Addr::new(192, 0, 2, 1))], &[]).encode();
    now += 1;
    s.recv(now, &upd[..upd.len() / 2]);
    assert!(s.mid_message());
    assert_eq!(s.state(), State::Established);
    let deliveries = [Delivery::Stall(10 * SECOND)];
    let events = run_deliveries(&mut s, &mut now, &deliveries, 0);
    assert!(events.contains(&Event::HoldExpired));
    // Teardown went through Idle; the short test backoff then fired the
    // retry timer inside the same stall, so we are reconnecting.
    assert!(events.iter().any(|e| matches!(
        e,
        Event::Transition {
            from: State::Established,
            to: State::Idle
        }
    )));
    assert_eq!(s.state(), State::Connect);
    assert_eq!(s.stats().hold_expiries.get(), 1);
    // The teardown sent NOTIFICATION code 4 (hold timer expired).
    let actions = s.drain_actions();
    let note = actions.iter().find_map(|a| match a {
        Action::Send(b) => match parse_message(b) {
            Ok(Message::Notification(n)) => Some(n),
            _ => None,
        },
        _ => None,
    });
    assert_eq!(note.unwrap().code, 4);
    assert!(actions.contains(&Action::Close));
    // The half-delivered UPDATE never became routes.
    assert_eq!(s.stats().updates_rx.get(), 0);
}

#[test]
fn notification_during_open_confirm_goes_idle_without_reply() {
    let mut s = Session::new(test_config());
    let mut now = 0;
    s.start(now);
    s.connected(now);
    now += 1;
    s.recv(now, &open_msg().encode());
    assert_eq!(s.state(), State::OpenConfirm);
    s.drain_actions();
    now += 1;
    s.recv(
        now,
        &Message::Notification(NotificationMsg {
            code: 6,
            subcode: 4,
            data: Vec::new(),
        })
        .encode(),
    );
    assert_eq!(s.state(), State::Idle);
    let events = s.drain_events();
    assert!(events
        .iter()
        .any(|e| matches!(e, Event::PeerNotification(n) if n.code == 6)));
    // We must not notify a peer that just notified us.
    let actions = s.drain_actions();
    assert!(actions.iter().all(|a| !matches!(a, Action::Send(_))));
    assert!(actions.contains(&Action::Close));
}

#[test]
fn update_before_established_is_an_fsm_error() {
    let mut s = Session::new(test_config());
    let mut now = 0;
    s.start(now);
    s.connected(now);
    now += 1;
    s.recv(now, &open_msg().encode());
    assert_eq!(s.state(), State::OpenConfirm);
    s.drain_actions();
    now += 1;
    s.recv(
        now,
        &update_v4(&[("10.0.0.0/8", Ipv4Addr::new(192, 0, 2, 1))], &[]).encode(),
    );
    assert_eq!(s.state(), State::Idle);
    let actions = s.drain_actions();
    let note = actions.iter().find_map(|a| match a {
        Action::Send(b) => match parse_message(b) {
            Ok(Message::Notification(n)) => Some(n),
            _ => None,
        },
        _ => None,
    });
    assert_eq!(note.unwrap().code, 5); // FSM error
}

#[test]
fn corrupted_update_yields_parse_error_and_teardown() {
    let mut s = Session::new(test_config());
    let mut now = establish(&mut s);
    let mut upd = update_v4(&[("10.0.0.0/8", Ipv4Addr::new(192, 0, 2, 1))], &[]).encode();
    upd[0] ^= 0x01; // break the marker
    now += 1;
    s.recv(now, &upd);
    assert_eq!(s.state(), State::Idle);
    assert_eq!(s.stats().parse_errors.get(), 1);
    let events = s.drain_events();
    assert!(events.iter().any(|e| matches!(e, Event::ParseError(_))));
}

#[test]
fn backoff_doubles_to_the_cap_with_bounded_jitter() {
    let cfg = test_config();
    let mut s = Session::new(cfg);
    let mut now = 0u64;
    let mut delays = Vec::new();
    // Repeatedly fail the connection before Established: each failure
    // must double the delay (±25%) until the cap.
    for _ in 0..8 {
        s.start(now);
        // Fire the retry timer if we are still waiting on it.
        if s.state() == State::Idle {
            now = s.next_deadline().unwrap();
            s.tick(now);
        }
        assert_eq!(s.state(), State::Connect);
        s.connected(now);
        s.recv(
            now,
            &Message::Notification(NotificationMsg {
                code: 6,
                subcode: 0,
                data: Vec::new(),
            })
            .encode(),
        );
        assert_eq!(s.state(), State::Idle);
        s.drain_actions();
        s.drain_events();
        delays.push(s.stats().backoff_ns.get());
    }
    for (i, &d) in delays.iter().enumerate() {
        let nominal = (cfg.retry_base << i.min(32)).min(cfg.retry_max);
        let lo = nominal * 3 / 4;
        let hi = nominal * 5 / 4;
        assert!(
            d >= lo && d <= hi,
            "attempt {i}: delay {d} outside [{lo}, {hi}]"
        );
    }
    // The cap: late delays are clamped near retry_max, not growing.
    let last = *delays.last().unwrap();
    assert!(last <= cfg.retry_max * 5 / 4);
    assert!(last >= cfg.retry_max * 3 / 4);
}

#[test]
fn established_resets_the_backoff_exponent() {
    let mut s = Session::new(test_config());
    let mut now = 0u64;
    // Two failures, then a success, then a failure: the post-success
    // delay must be back at the base.
    for _ in 0..2 {
        s.start(now);
        if s.state() == State::Idle {
            now = s.next_deadline().unwrap();
            s.tick(now);
        }
        s.connected(now);
        let mut bad = open_msg().encode();
        bad[0] = 0;
        s.recv(now, &bad);
        assert_eq!(s.state(), State::Idle);
    }
    assert_eq!(s.attempts(), 2);
    now = s.next_deadline().unwrap();
    s.tick(now);
    s.connected(now);
    s.recv(now, &open_msg().encode());
    s.recv(now, &Message::Keepalive.encode());
    assert_eq!(s.state(), State::Established);
    assert_eq!(s.attempts(), 0);
    s.disconnected(now);
    let post_success = s.stats().backoff_ns.get();
    let base = test_config().retry_base;
    assert!(
        post_success >= base * 3 / 4 && post_success <= base * 5 / 4,
        "post-success delay {post_success} not near base {base}"
    );
}

#[test]
fn torn_delivery_is_equivalent_to_clean_delivery() {
    // The same peer stream, delivered whole and shredded into 1..=3
    // byte fragments, must produce identical route events.
    let nh = Ipv4Addr::new(203, 0, 113, 9);
    let stream: Vec<u8> = [
        open_msg(),
        Message::Keepalive,
        update_v4(&[("10.0.0.0/8", nh), ("10.32.0.0/11", nh)], &[]),
        update_v4(&[("192.168.0.0/16", nh)], &["10.32.0.0/11"]),
    ]
    .iter()
    .flat_map(|m| m.encode())
    .collect();

    let run = |plan: &FaultPlan| -> Vec<RouteEvent> {
        let mut s = Session::new(test_config());
        let mut now = 0;
        s.start(now);
        s.connected(now);
        s.drain_actions();
        let deliveries = plan.deliveries(&stream);
        let events = run_deliveries(&mut s, &mut now, &deliveries, 1);
        assert_eq!(s.state(), State::Established);
        events
            .into_iter()
            .filter_map(|e| match e {
                Event::Routes { routes: r, .. } => Some(r),
                _ => None,
            })
            .flatten()
            .collect()
    };
    let clean = run(&FaultPlan::clean());
    assert_eq!(clean.len(), 4);
    for seed in 1..6 {
        let torn = run(&FaultPlan {
            torn_max: Some(3),
            seed,
            ..FaultPlan::default()
        });
        assert_eq!(torn, clean, "seed {seed}");
    }
}

#[test]
fn reconnect_after_flap_reconverges_against_the_rib_oracle() {
    // A peer announces routes, the wire resets mid-stream, the session
    // backs off, reconnects, and the peer (as BGP requires) re-sends
    // its full table. The replayed RIB must equal the oracle built
    // from a clean run.
    let nh = Ipv4Addr::new(198, 51, 100, 1);
    let table: Vec<(&str, Ipv4Addr)> = vec![
        ("10.0.0.0/8", nh),
        ("10.128.0.0/9", nh),
        ("172.16.0.0/12", nh),
        ("192.0.2.0/24", nh),
        ("198.18.0.0/15", nh),
    ];
    let updates: Vec<Message> = table
        .iter()
        .map(|&(p, nh)| update_v4(&[(p, nh)], &[]))
        .collect();
    let handshake: Vec<u8> = [open_msg(), Message::Keepalive]
        .iter()
        .flat_map(|m| m.encode())
        .collect();
    let full: Vec<u8> = handshake
        .iter()
        .copied()
        .chain(updates.iter().flat_map(|m| m.encode()))
        .collect();

    // First attempt dies mid-third-update.
    let cut = handshake.len() + updates[0].encode().len() + updates[1].encode().len() + 7;
    let plan = FaultPlan {
        reset_at: Some(cut),
        ..FaultPlan::default()
    };
    let mut s = Session::new(test_config());
    let mut now = 0;
    s.start(now);
    s.connected(now);
    s.drain_actions();
    let mut routes: Vec<RouteEvent> = Vec::new();
    let collect = |events: Vec<Event>, routes: &mut Vec<RouteEvent>| {
        for e in events {
            if let Event::Routes { routes: r, .. } = e {
                routes.extend(r);
            }
        }
    };
    let ev = run_deliveries(&mut s, &mut now, &plan.deliveries(&full), 1);
    collect(ev, &mut routes);
    assert_eq!(s.state(), State::Idle);
    assert_eq!(s.stats().resets.get(), 1);
    assert_eq!(routes.len(), 2, "only the two whole updates were seen");

    // Honor the backoff, reconnect, peer re-sends everything.
    now = s.next_deadline().unwrap();
    s.tick(now);
    assert_eq!(s.state(), State::Connect);
    s.connected(now);
    s.drain_actions();
    let ev = run_deliveries(&mut s, &mut now, &FaultPlan::clean().deliveries(&full), 1);
    collect(ev, &mut routes);
    assert_eq!(s.state(), State::Established);

    // Replay everything the session emitted into a RIB and compare
    // against the oracle of a clean single run.
    let mut rib: RadixTree<u32, NextHop> = RadixTree::new();
    let mut interner = NextHopInterner::new();
    for r in &routes {
        match *r {
            RouteEvent::AnnounceV4(p, nh) => {
                let id = interner.intern(IpAddr::V4(nh));
                rib.insert(p, id);
            }
            RouteEvent::WithdrawV4(p) => {
                rib.remove(p);
            }
            _ => {}
        }
    }
    let mut oracle: RadixTree<u32, NextHop> = RadixTree::new();
    let mut oracle_interner = NextHopInterner::new();
    for &(p, nh) in &table {
        let id = oracle_interner.intern(IpAddr::V4(nh));
        oracle.insert(p4(p), id);
    }
    for &(p, _) in &table {
        let key = p4(p).first_addr();
        assert_eq!(rib.lookup(key), oracle.lookup(key), "prefix {p}");
    }
}

#[test]
fn stray_bytes_while_idle_are_ignored() {
    let mut s = Session::new(test_config());
    s.recv(0, &open_msg().encode());
    assert_eq!(s.state(), State::Idle);
    assert!(s.drain_events().is_empty());
    assert!(s.drain_actions().is_empty());
}
