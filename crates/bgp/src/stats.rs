//! BGP session counters, surfaced through `poptrie-telemetry`.
//!
//! All families are prefixed `poptrie_bgp_`. The counters are the same
//! relaxed-atomic primitives the engine uses, so a scrape thread can
//! read them while the session driver runs.

use crate::wire::Message;
use poptrie_telemetry::{Counter, Gauge, TelemetryRegistry};

use crate::fsm::State;

/// Counters for one BGP session. Shared between the
/// [`Session`](crate::Session) that increments them and any scraper
/// holding the `Arc` from [`Session::stats`](crate::Session::stats).
#[derive(Debug, Default)]
pub struct SessionStats {
    /// Transport connections established (OPEN sent).
    pub connects: Counter,
    /// Transport losses observed while the session was up.
    pub resets: Counter,
    /// Messages received, by type.
    pub rx_open: Counter,
    /// Received UPDATE messages.
    pub rx_update: Counter,
    /// Received KEEPALIVE messages.
    pub rx_keepalive: Counter,
    /// Received NOTIFICATION messages.
    pub rx_notification: Counter,
    /// Messages sent (all types).
    pub tx_messages: Counter,
    /// NOTIFICATIONs we sent (teardowns we initiated).
    pub tx_notifications: Counter,
    /// Messages that failed to parse (each tears the session down).
    pub parse_errors: Counter,
    /// Hold-timer expiries.
    pub hold_expiries: Counter,
    /// UPDATE messages processed in Established.
    pub updates_rx: Counter,
    /// Route announcements extracted from UPDATEs (both families).
    pub routes_announced: Counter,
    /// Route withdrawals extracted from UPDATEs (both families).
    pub routes_withdrawn: Counter,
    /// Entries into Connect.
    pub to_connect: Counter,
    /// Entries into OpenSent.
    pub to_open_sent: Counter,
    /// Entries into OpenConfirm.
    pub to_open_confirm: Counter,
    /// Entries into Established.
    pub to_established: Counter,
    /// Entries into Idle (teardowns).
    pub to_idle: Counter,
    /// The most recent ConnectRetry backoff delay, in nanoseconds.
    pub backoff_ns: Gauge,
    /// Nanoseconds the serving FIB has been stale behind the peer
    /// (session down with updates presumed missed). Maintained by the
    /// replay driver, not the FSM: only the driver knows both clocks.
    pub staleness_ns: Gauge,
}

impl SessionStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn count_rx(&self, msg: &Message) {
        match msg {
            Message::Open(_) => self.rx_open.inc(),
            Message::Update(_) => self.rx_update.inc(),
            Message::Keepalive => self.rx_keepalive.inc(),
            Message::Notification(_) => self.rx_notification.inc(),
        }
    }

    pub(crate) fn count_tx(&self, msg: &Message) {
        self.tx_messages.inc();
        if matches!(msg, Message::Notification(_)) {
            self.tx_notifications.inc();
        }
    }

    pub(crate) fn count_transition(&self, to: State) {
        match to {
            State::Idle => self.to_idle.inc(),
            State::Connect => self.to_connect.inc(),
            State::OpenSent => self.to_open_sent.inc(),
            State::OpenConfirm => self.to_open_confirm.inc(),
            State::Established => self.to_established.inc(),
        }
    }

    /// Materialize every session metric into an exposition registry
    /// (`poptrie_bgp_*` families).
    pub fn registry(&self) -> TelemetryRegistry {
        let mut reg = TelemetryRegistry::new();
        let counters: [(&str, &str, &Counter); 16] = [
            (
                "poptrie_bgp_connects_total",
                "Transport connections established (OPEN sent).",
                &self.connects,
            ),
            (
                "poptrie_bgp_resets_total",
                "Transport losses observed while the session was up.",
                &self.resets,
            ),
            (
                "poptrie_bgp_rx_open_total",
                "OPEN messages received.",
                &self.rx_open,
            ),
            (
                "poptrie_bgp_rx_update_total",
                "UPDATE messages received.",
                &self.rx_update,
            ),
            (
                "poptrie_bgp_rx_keepalive_total",
                "KEEPALIVE messages received.",
                &self.rx_keepalive,
            ),
            (
                "poptrie_bgp_rx_notification_total",
                "NOTIFICATION messages received.",
                &self.rx_notification,
            ),
            (
                "poptrie_bgp_tx_messages_total",
                "Messages sent, all types.",
                &self.tx_messages,
            ),
            (
                "poptrie_bgp_tx_notifications_total",
                "NOTIFICATIONs sent (teardowns we initiated).",
                &self.tx_notifications,
            ),
            (
                "poptrie_bgp_parse_errors_total",
                "Messages that failed to parse.",
                &self.parse_errors,
            ),
            (
                "poptrie_bgp_hold_expiries_total",
                "Hold-timer expiries.",
                &self.hold_expiries,
            ),
            (
                "poptrie_bgp_updates_total",
                "UPDATE messages processed in Established.",
                &self.updates_rx,
            ),
            (
                "poptrie_bgp_routes_announced_total",
                "Route announcements extracted from UPDATEs.",
                &self.routes_announced,
            ),
            (
                "poptrie_bgp_routes_withdrawn_total",
                "Route withdrawals extracted from UPDATEs.",
                &self.routes_withdrawn,
            ),
            (
                "poptrie_bgp_transitions_established_total",
                "Entries into Established.",
                &self.to_established,
            ),
            (
                "poptrie_bgp_transitions_idle_total",
                "Entries into Idle (teardowns).",
                &self.to_idle,
            ),
            (
                "poptrie_bgp_transitions_connect_total",
                "Entries into Connect.",
                &self.to_connect,
            ),
        ];
        for (name, help, c) in counters {
            reg.counter(name, help, &[], c.get());
        }
        reg.gauge(
            "poptrie_bgp_backoff_ns",
            "Most recent ConnectRetry backoff delay, nanoseconds.",
            &[],
            self.backoff_ns.get() as f64,
        );
        reg.gauge(
            "poptrie_bgp_staleness_ns",
            "Nanoseconds the serving FIB has been stale during session loss.",
            &[],
            self.staleness_ns.get() as f64,
        );
        reg
    }
}
