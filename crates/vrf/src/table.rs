//! The [`VrfId`]-indexed registry of per-tenant FIBs.

use std::sync::{Arc, Mutex};

use poptrie::config::PoptrieConfig;
use poptrie::shared_leaves::{LeafInterner, LeafStoreHandle, SharedLeaves};
use poptrie::sync::{BatchOutcome, FibSnapshot, RouteUpdate, SharedFib};
use poptrie::VrfId;
use poptrie_bitops::Bits;
use poptrie_buddy::ArenaOwner;
use poptrie_rib::{NextHop, RadixTree};

use crate::intern::{InternStats, NextHopIntern};

/// Group-wide memory accounting, in the units the `repro vrf` bench
/// reports: what the tenant set actually costs, shared storage counted
/// once.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VrfMemory {
    /// Registered tables.
    pub tables: usize,
    /// Routes across all tables (RIB entries).
    pub routes: usize,
    /// Per-table node-array bytes, summed.
    pub node_bytes: usize,
    /// Per-table direct-table bytes, summed.
    pub direct_bytes: usize,
    /// Private leaf bytes, summed (zero for a shared-arena group).
    pub private_leaf_bytes: usize,
    /// The shared store's bytes, counted **once** for the whole group
    /// (zero for an unshared group).
    pub shared_store_bytes: usize,
    /// Shared-arena slots actually occupied by live extents (after buddy
    /// rounding), in bytes — how much of `shared_store_bytes` is in use.
    pub shared_used_bytes: usize,
}

impl VrfMemory {
    /// Total accounted bytes: per-table structures plus the shared store
    /// (the provisioned slab, not just its used fraction — the arena is
    /// committed memory either way).
    pub fn total_bytes(&self) -> usize {
        self.node_bytes + self.direct_bytes + self.private_leaf_bytes + self.shared_store_bytes
    }

    /// `total_bytes` per route — the scale metric tenant multiplexing is
    /// judged on.
    pub fn bytes_per_route(&self) -> f64 {
        if self.routes == 0 {
            return 0.0;
        }
        self.total_bytes() as f64 / self.routes as f64
    }
}

/// A registry multiplexing many per-tenant [`SharedFib`]s, optionally over
/// one shared leaf arena with next-hop interning.
///
/// * **Shared mode** ([`VrfTable::shared`]) — every table created through
///   the registry compiles its leaf blocks into one fixed arena via
///   [`NextHopIntern`]; byte-identical blocks across tenants are stored
///   once. Nodes and direct tables stay private per tenant, so per-VRF
///   update isolation and snapshot costs are unchanged from a standalone
///   [`SharedFib`].
/// * **Private mode** ([`VrfTable::private`]) — every table owns its
///   leaves; the baseline the bench compares against.
///
/// Tables are created with [`VrfTable::create`] /
/// [`VrfTable::create_from`] and addressed by [`VrfId`] thereafter. The
/// registry only grows in this revision: VRF deletion requires draining
/// the tenant's interned references (a `rebuild` against an empty RIB
/// would do it) and is deliberately left out until a caller needs it.
pub struct VrfTable<K: Bits> {
    tables: std::sync::RwLock<Vec<Arc<SharedFib<K>>>>,
    config: PoptrieConfig,
    /// Shared mode: the group handle cloned into every table, plus a
    /// direct line to the concrete interner for stats and invariants.
    shared: Option<(LeafStoreHandle, Arc<Mutex<NextHopIntern>>)>,
}

impl<K: Bits> core::fmt::Debug for VrfTable<K> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("VrfTable")
            .field("tables", &self.len())
            .field("shared", &self.shared.is_some())
            .finish_non_exhaustive()
    }
}

impl<K: Bits> VrfTable<K> {
    /// A shared-arena registry: `leaf_capacity` slots of leaf storage
    /// (two bytes each) provisioned once for the whole group.
    ///
    /// # Panics
    ///
    /// Panics when `config.direct_bits >= K::BITS` (checked at the first
    /// table creation) or `leaf_capacity` is zero.
    pub fn shared(config: PoptrieConfig, leaf_capacity: u32) -> Self {
        assert!(leaf_capacity > 0, "shared arena needs capacity");
        let store = SharedLeaves::new(leaf_capacity);
        let owner = ArenaOwner::fixed(leaf_capacity);
        let intern = Arc::new(Mutex::new(NextHopIntern::new(
            owner.handle(),
            Arc::clone(&store),
        )));
        let dyn_intern: Arc<Mutex<dyn LeafInterner>> = {
            let i: Arc<Mutex<NextHopIntern>> = Arc::clone(&intern);
            i
        };
        let handle = LeafStoreHandle::new(store, dyn_intern);
        VrfTable {
            tables: std::sync::RwLock::new(Vec::new()),
            config,
            shared: Some((handle, intern)),
        }
    }

    /// An unshared registry: every table owns its leaves. The baseline
    /// `repro vrf` measures the shared mode against.
    pub fn private(config: PoptrieConfig) -> Self {
        VrfTable {
            tables: std::sync::RwLock::new(Vec::new()),
            config,
            shared: None,
        }
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, Vec<Arc<SharedFib<K>>>> {
        self.tables
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Registered tables.
    pub fn len(&self) -> usize {
        self.read().len()
    }

    /// Whether no table has been created yet.
    pub fn is_empty(&self) -> bool {
        self.read().is_empty()
    }

    /// Whether tables share the group leaf arena.
    pub fn is_shared(&self) -> bool {
        self.shared.is_some()
    }

    /// Create an empty table; returns its [`VrfId`].
    pub fn create(&self) -> VrfId {
        self.create_from(RadixTree::new())
    }

    /// Create a table compiled from `rib`; returns its [`VrfId`].
    ///
    /// # Panics
    ///
    /// Panics when `config.direct_bits >= K::BITS`, or (shared mode) when
    /// the group arena cannot fit the table's leaf blocks.
    pub fn create_from(&self, rib: RadixTree<K, NextHop>) -> VrfId {
        let fib = match &self.shared {
            Some((handle, _)) => SharedFib::compile_shared(rib, self.config, handle.clone()),
            None => SharedFib::compile(rib, self.config),
        };
        let mut tables = self
            .tables
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        tables.push(Arc::new(fib));
        VrfId::new((tables.len() - 1) as u32)
    }

    /// The table registered as `id`, or `None` for an unknown id.
    pub fn get(&self, id: VrfId) -> Option<Arc<SharedFib<K>>> {
        self.read().get(id.index()).cloned()
    }

    /// A lookup snapshot of table `id` (see [`SharedFib::snapshot`]).
    pub fn snapshot(&self, id: VrfId) -> Option<Arc<FibSnapshot<K>>> {
        self.get(id).map(|t| t.snapshot())
    }

    /// Apply an update batch to table `id` under its own writer lock,
    /// publishing one snapshot (see [`SharedFib::update_batch`]). Other
    /// tables are untouched: isolation is structural (private nodes and
    /// direct tables), not scheduled.
    pub fn update_batch(
        &self,
        id: VrfId,
        updates: impl IntoIterator<Item = RouteUpdate<K>>,
    ) -> Option<BatchOutcome> {
        self.get(id).map(|t| t.update_batch(updates))
    }

    /// The group's interning stats (shared mode only).
    pub fn intern_stats(&self) -> Option<InternStats> {
        self.shared.as_ref().map(|(_, i)| {
            i.lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .stats()
        })
    }

    /// Group-wide memory accounting: per-table structures summed, the
    /// shared store counted once.
    pub fn memory(&self) -> VrfMemory {
        let mut m = VrfMemory {
            tables: self.len(),
            ..VrfMemory::default()
        };
        for t in self.read().iter() {
            let snap = t.snapshot();
            let stats = snap.stats();
            m.routes += t.with_fib(|fib| fib.rib().len());
            m.node_bytes += stats.inodes * 24;
            m.direct_bytes += stats.direct_slots * 4;
            if self.shared.is_none() {
                m.private_leaf_bytes += stats.leaves * core::mem::size_of::<NextHop>();
            }
        }
        if let Some((handle, intern)) = &self.shared {
            m.shared_store_bytes = handle.store().bytes();
            let s = intern
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .stats();
            m.shared_used_bytes = s.live_slots_rounded as usize * core::mem::size_of::<NextHop>();
        }
        m
    }

    /// Exact group audit: every table's
    /// [`audit`](poptrie::Poptrie::audit) must pass, and in shared mode
    /// the interner's own invariants must hold with the sum of per-table
    /// leaf-block references reproducing its reference total exactly —
    /// the cross-table proof that no table leaks or double-frees shared
    /// extents.
    pub fn audit(&self) -> Result<(), String> {
        let mut refs = 0u64;
        for (i, t) in self.read().iter().enumerate() {
            let report = t
                .with_fib(|fib| fib.poptrie().audit())
                .map_err(|e| format!("vrf#{i}: {e}"))?;
            refs += report.leaf_block_refs as u64;
        }
        if let Some((_, intern)) = &self.shared {
            let g = intern
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            g.check_invariants()?;
            if refs != g.total_refs() {
                return Err(format!(
                    "cross-table reference mismatch: tables hold {refs}, interner says {}",
                    g.total_refs()
                ));
            }
        }
        Ok(())
    }
}
