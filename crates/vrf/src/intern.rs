//! The content-addressed, refcounted, epoch-reclaimed leaf interner.

use std::collections::HashMap;
use std::sync::{Arc, Weak};

use poptrie::shared_leaves::{EpochGuard, LeafInterner, SharedLeaves};
use poptrie_buddy::{ArenaHandle, Buddy};
use poptrie_rib::NextHop;

/// Metadata of one live interned extent.
#[derive(Debug)]
struct Extent {
    /// Leaf count (exact, pre-rounding).
    len: u32,
    /// Outstanding writer-side references: how many `(table, node)` leaf
    /// blocks currently resolve into this extent. Published snapshots are
    /// *not* counted here — they are covered by epoch guards.
    refs: u32,
}

/// An extent whose last reference was dropped, awaiting epoch quiescence
/// before its slots return to the arena.
#[derive(Debug)]
struct Retired {
    /// The epoch current when the extent was retired: any snapshot
    /// published at or before it may still hold leaf indices into the
    /// extent.
    epoch: u64,
    off: u32,
    len: u32,
}

/// A point-in-time summary of a [`NextHopIntern`]'s state, for the bench
/// harness and group-level accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InternStats {
    /// Live (referenced) extents.
    pub live_extents: usize,
    /// Arena slots those extents occupy after buddy rounding.
    pub live_slots_rounded: u64,
    /// Outstanding writer-side references across all live extents.
    pub total_refs: u64,
    /// `intern` calls answered by an existing extent — the deduplication
    /// the shared arena exists for.
    pub dedup_hits: u64,
    /// `intern` calls that allocated a fresh extent.
    pub fresh_allocs: u64,
    /// Extents retired (refs hit zero) but not yet reclaimed: their slots
    /// are pinned by live epoch guards.
    pub pending_blocks: usize,
    /// The current publish epoch.
    pub epoch: u64,
    /// Total slots in the backing arena.
    pub capacity: u32,
}

/// The concrete [`LeafInterner`] of a VRF group: content-addressed
/// interning of leaf blocks into one fixed shared arena.
///
/// * **Content addressing** — `intern` hashes the block; an existing
///   extent with identical bytes is reference-counted and returned, so
///   byte-identical leaf blocks across *every* table of the group (and
///   within one table) occupy storage once.
/// * **Refcounting** — references track writer-side membership only: one
///   per `(table, node)` leaf block. At zero the extent leaves the content
///   index immediately (it can no longer be deduplicated against — its
///   slots may be rewritten as soon as reclamation allows).
/// * **Epoch reclamation** — published RCU snapshots hold
///   [`EpochGuard`]s, not references. A retired extent's slots return to
///   the arena only once every guard stamped at or before the retirement
///   epoch has dropped, so a reader batch running against an old snapshot
///   never chases indices into recycled slots.
#[derive(Debug)]
pub struct NextHopIntern {
    arena: ArenaHandle,
    store: Arc<SharedLeaves>,
    /// Content index: block bytes -> extent offset. Keys mirror the store
    /// content of live extents (removed at retirement).
    by_content: HashMap<Vec<NextHop>, u32>,
    /// Live extents by offset.
    extents: HashMap<u32, Extent>,
    /// Guards handed out by `begin_epoch`, with their epochs. Dead weaks
    /// are pruned on every epoch turn.
    guards: Vec<(u64, Weak<EpochGuard>)>,
    retired: Vec<Retired>,
    epoch: u64,
    total_refs: u64,
    dedup_hits: u64,
    fresh_allocs: u64,
}

impl NextHopIntern {
    /// An interner over `arena` writing through to `store`. The arena must
    /// be fixed at exactly the store's capacity — every offset the arena
    /// can hand out must be a valid store index.
    pub fn new(arena: ArenaHandle, store: Arc<SharedLeaves>) -> Self {
        assert_eq!(
            arena.capacity() as usize,
            store.capacity(),
            "arena and store must cover the same slot space"
        );
        NextHopIntern {
            arena,
            store,
            by_content: HashMap::new(),
            extents: HashMap::new(),
            guards: Vec::new(),
            retired: Vec::new(),
            epoch: 0,
            total_refs: 0,
            dedup_hits: 0,
            fresh_allocs: 0,
        }
    }

    /// Point-in-time stats.
    pub fn stats(&self) -> InternStats {
        InternStats {
            live_extents: self.extents.len(),
            live_slots_rounded: self
                .extents
                .values()
                .map(|e| Buddy::rounded(e.len) as u64)
                .sum(),
            total_refs: self.total_refs,
            dedup_hits: self.dedup_hits,
            fresh_allocs: self.fresh_allocs,
            pending_blocks: self.retired.len(),
            epoch: self.epoch,
            capacity: self.arena.capacity(),
        }
    }

    /// Reclaim every retired extent no live epoch guard can still see.
    /// Runs on every epoch turn; public for tests and quiesced shutdown.
    pub fn collect(&mut self) {
        self.guards.retain(|(_, w)| w.strong_count() > 0);
        // With no live guard everything retired is reclaimable; otherwise
        // an extent retired at epoch E is safe once the oldest live guard
        // is younger than E (guards at or before E have all dropped).
        let min_live = self.guards.iter().map(|&(e, _)| e).min();
        let arena = &self.arena;
        self.retired.retain(|r| {
            let pinned = min_live.is_some_and(|m| m <= r.epoch);
            if !pinned {
                arena.free(r.off, r.len);
            }
            pinned
        });
    }

    /// Exact internal consistency check: content index and extent map
    /// mirror each other, per-extent content matches the store, reference
    /// totals reconcile, and the arena's accounting matches live +
    /// retired extents exactly.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.by_content.len() != self.extents.len() {
            return Err(format!(
                "content index has {} entries, extent map {}",
                self.by_content.len(),
                self.extents.len()
            ));
        }
        let mut refs = 0u64;
        for (key, &off) in &self.by_content {
            let Some(e) = self.extents.get(&off) else {
                return Err(format!("content entry at {off} missing from extent map"));
            };
            if e.len as usize != key.len() {
                return Err(format!(
                    "extent {off}: content key has {} leaves, extent {}",
                    key.len(),
                    e.len
                ));
            }
            if !self.store.block_eq(off, key) {
                return Err(format!(
                    "extent {off}: store bytes diverge from content key"
                ));
            }
            if !self.arena.is_live_block(off, e.len) {
                return Err(format!("extent {off} is not live in the arena"));
            }
            refs += e.refs as u64;
        }
        if refs != self.total_refs {
            return Err(format!(
                "reference total {refs} != running counter {}",
                self.total_refs
            ));
        }
        let blocks = self.extents.len() + self.retired.len();
        if blocks as u32 != self.arena.live_blocks() {
            return Err(format!(
                "arena holds {} blocks, interner accounts for {blocks} (live + retired)",
                self.arena.live_blocks()
            ));
        }
        let slots: u64 = self
            .extents
            .values()
            .map(|e| Buddy::rounded(e.len) as u64)
            .sum::<u64>()
            + self
                .retired
                .iter()
                .map(|r| Buddy::rounded(r.len) as u64)
                .sum::<u64>();
        if slots != self.arena.allocated_slots() as u64 {
            return Err(format!(
                "arena says {} slots allocated, interner accounts for {slots}",
                self.arena.allocated_slots()
            ));
        }
        Ok(())
    }
}

impl LeafInterner for NextHopIntern {
    fn intern(&mut self, vals: &[NextHop]) -> Option<u32> {
        debug_assert!(!vals.is_empty());
        if let Some(&off) = self.by_content.get(vals) {
            self.extents.get_mut(&off).expect("indexed extent").refs += 1;
            self.total_refs += 1;
            self.dedup_hits += 1;
            return Some(off);
        }
        let off = match self.arena.try_alloc(vals.len() as u32) {
            Some(off) => off,
            None => {
                // One free try: reclaim whatever epochs have quiesced.
                self.collect();
                self.arena.try_alloc(vals.len() as u32)?
            }
        };
        self.store.write_block(off, vals);
        self.by_content.insert(vals.to_vec(), off);
        self.extents.insert(
            off,
            Extent {
                len: vals.len() as u32,
                refs: 1,
            },
        );
        self.total_refs += 1;
        self.fresh_allocs += 1;
        Some(off)
    }

    fn release(&mut self, off: u32, len: u32) {
        let e = self
            .extents
            .get_mut(&off)
            .unwrap_or_else(|| panic!("release of unknown extent at {off}"));
        assert_eq!(e.len, len, "release length mismatch at {off}");
        e.refs -= 1;
        self.total_refs -= 1;
        if e.refs == 0 {
            self.extents.remove(&off);
            // Rebuild the content key from the store (still intact: the
            // slots stay unwritten until reclamation) to drop the index
            // entry without storing every key twice.
            let key: Vec<NextHop> = (0..len as usize)
                .map(|i| self.store.get(off as usize + i))
                .collect();
            let removed = self.by_content.remove(&key);
            debug_assert_eq!(removed, Some(off), "content index out of sync at {off}");
            self.retired.push(Retired {
                epoch: self.epoch,
                off,
                len,
            });
        }
    }

    fn is_live_block(&self, off: u32, len: u32) -> bool {
        self.extents.get(&off).is_some_and(|e| e.len == len)
    }

    fn begin_epoch(&mut self) -> Arc<EpochGuard> {
        self.epoch += 1;
        let guard = EpochGuard::new(self.epoch);
        self.guards.push((self.epoch, Arc::downgrade(&guard)));
        self.collect();
        guard
    }

    fn total_refs(&self) -> u64 {
        self.total_refs
    }
}
