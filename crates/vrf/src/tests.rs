use poptrie::config::PoptrieConfig;
use poptrie::sync::RouteUpdate;
use poptrie::VrfId;
use poptrie_rib::{NextHop, Prefix, RadixTree};
use poptrie_rng::prelude::*;

use crate::VrfTable;

fn p4(s: &str) -> Prefix<u32> {
    s.parse().unwrap()
}

fn cfg() -> PoptrieConfig {
    PoptrieConfig::new().direct_bits(12).build().unwrap()
}

/// A deterministic pseudo-BGP table: `n` random prefixes of plausible
/// lengths with next hops from a small pool (few distinct hops is the
/// realistic regime — and what leaf interning thrives on).
fn random_rib(rng: &mut StdRng, n: usize, max_nh: u16) -> RadixTree<u32, NextHop> {
    let mut rib = RadixTree::new();
    while rib.len() < n {
        let len = rng.gen_range(8..=28u32) as u8;
        let addr: u32 = rng.gen::<u32>() & (!0u32 << (32 - len as u32));
        rib.insert(
            Prefix::new(addr, len),
            rng.gen_range(1..=max_nh as u32) as NextHop,
        );
    }
    rib
}

/// Tenants cloned from one base feed must deduplicate almost all of their
/// leaf storage, and the shared group must agree with a private group on
/// every lookup.
#[test]
fn cloned_tenants_dedup_and_agree_with_private() {
    let mut rng = StdRng::seed_from_u64(7);
    let base = random_rib(&mut rng, 2_000, 12);

    let shared: VrfTable<u32> = VrfTable::shared(cfg(), 1 << 20);
    let private: VrfTable<u32> = VrfTable::private(cfg());
    const TENANTS: usize = 8;
    for _ in 0..TENANTS {
        shared.create_from(base.clone());
        private.create_from(base.clone());
    }

    let stats = shared.intern_stats().unwrap();
    assert!(
        stats.dedup_hits as f64 >= 0.85 * (TENANTS - 1) as f64 * stats.fresh_allocs as f64,
        "clones should intern into the first tenant's extents: {stats:?}"
    );

    for _ in 0..20_000 {
        let key: u32 = rng.gen();
        for i in 0..TENANTS as u32 {
            assert_eq!(
                shared.get(VrfId::new(i)).unwrap().lookup(key),
                private.get(VrfId::new(i)).unwrap().lookup(key),
            );
        }
    }

    let sm = shared.memory();
    let pm = private.memory();
    assert_eq!(sm.routes, pm.routes);
    assert!(sm.shared_used_bytes < pm.private_leaf_bytes / 2);
    shared.audit().unwrap();
    private.audit().unwrap();
}

/// Churning one tenant must leave every other tenant's published snapshot
/// (and version) untouched, with the cross-table reference audit exact
/// throughout.
#[test]
fn churn_isolation_across_tenants() {
    let mut rng = StdRng::seed_from_u64(8);
    let base = random_rib(&mut rng, 1_000, 8);
    let vrfs: VrfTable<u32> = VrfTable::shared(cfg(), 1 << 20);
    let a = vrfs.create_from(base.clone());
    let b = vrfs.create_from(base.clone());

    let b_before = vrfs.snapshot(b).unwrap();
    let probes: Vec<u32> = (0..5_000).map(|_| rng.gen()).collect();
    let b_answers: Vec<_> = probes.iter().map(|&k| b_before.lookup(k)).collect();

    // Oracle for tenant A: mirror its churn into a plain RadixTree.
    let mut oracle = base.clone();
    for round in 0..20 {
        let updates: Vec<RouteUpdate<u32>> = (0..50)
            .map(|_| {
                let len = rng.gen_range(8..=28u32) as u8;
                let addr: u32 = rng.gen::<u32>() & (!0u32 << (32 - len as u32));
                let p = Prefix::new(addr, len);
                if rng.gen_bool(0.7) {
                    RouteUpdate::Announce(p, rng.gen_range(1..=8u32) as NextHop)
                } else {
                    RouteUpdate::Withdraw(p)
                }
            })
            .collect();
        for u in &updates {
            match *u {
                RouteUpdate::Announce(p, nh) => {
                    oracle.insert(p, nh);
                }
                RouteUpdate::Withdraw(p) => {
                    oracle.remove(p);
                }
            }
        }
        vrfs.update_batch(a, updates).unwrap();
        if round % 5 == 4 {
            vrfs.audit().unwrap();
        }
    }

    // Tenant B: same snapshot object still current, same answers.
    let b_after = vrfs.snapshot(b).unwrap();
    assert_eq!(b_before.version(), b_after.version());
    for (&k, &expect) in probes.iter().zip(&b_answers) {
        assert_eq!(b_after.lookup(k), expect, "tenant B perturbed at {k:#x}");
    }

    // Tenant A: oracle-exact after the churn.
    let a_snap = vrfs.snapshot(a).unwrap();
    for &k in &probes {
        assert_eq!(a_snap.lookup(k), oracle.lookup(k).copied());
    }
    vrfs.audit().unwrap();
}

/// Retired extents stay pinned while an old snapshot is alive and are
/// reclaimed once it drops and a new epoch turns.
#[test]
fn epoch_reclamation_waits_for_snapshots() {
    let mut rng = StdRng::seed_from_u64(9);
    let base = random_rib(&mut rng, 1_500, 6);
    let vrfs: VrfTable<u32> = VrfTable::shared(cfg(), 1 << 20);
    let a = vrfs.create_from(base);

    let pinned = vrfs.snapshot(a).unwrap();

    // Replace a spread of routes so leaf blocks are retired.
    let updates: Vec<RouteUpdate<u32>> = (0..400)
        .map(|i| RouteUpdate::Announce(Prefix::new((i as u32) << 20, 12), 5))
        .collect();
    vrfs.update_batch(a, updates).unwrap();

    let held = vrfs.intern_stats().unwrap();
    assert!(
        held.pending_blocks > 0,
        "churn under a pinned snapshot should retire extents: {held:?}"
    );

    drop(pinned);
    // The next publish turns the epoch and collects.
    vrfs.update_batch(a, [RouteUpdate::Announce(p4("10.0.0.0/8"), 1)])
        .unwrap();
    // The pre-churn epoch guard is dead; only the current snapshot pins.
    let after = vrfs.intern_stats().unwrap();
    assert!(
        after.pending_blocks < held.pending_blocks,
        "reclamation should drain once the old snapshot dropped: {held:?} -> {after:?}"
    );
    vrfs.audit().unwrap();
}

/// The arena refuses growth: interning fails cleanly (builder panics)
/// when a group outgrows its provisioned slab.
#[test]
#[should_panic(expected = "shared leaf arena exhausted")]
fn arena_exhaustion_panics_with_context() {
    let mut rng = StdRng::seed_from_u64(10);
    let vrfs: VrfTable<u32> = VrfTable::shared(cfg(), 64);
    // 64 slots cannot hold a real table's distinct leaf blocks.
    vrfs.create_from(random_rib(&mut rng, 2_000, 64));
}
