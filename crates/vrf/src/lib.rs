//! # poptrie-vrf — multi-tenant VRF multiplexing over shared leaf arenas
//!
//! A hardware router running VRFs (virtual routing and forwarding) carries
//! hundreds to thousands of routing tables: one per customer VPN, per
//! internet-exchange peer class, per management plane. Most of those
//! tables are provisioned from a common base (a full BGP feed, an IGP
//! core) plus a small per-tenant delta — so compiled independently, the
//! FIBs are overwhelmingly *byte-identical*, and the per-table memory of a
//! naive deployment scales with tenants instead of with distinct routes.
//!
//! This crate multiplexes many [`SharedFib`]s over one shared leaf arena:
//!
//! * [`NextHopIntern`] — the concrete
//!   [`LeafInterner`](poptrie::LeafInterner): a content-addressed,
//!   refcounted allocator over a fixed
//!   [`ArenaOwner`](poptrie_buddy::ArenaOwner), with epoch-deferred
//!   reclamation so RCU readers never observe a recycled extent.
//! * [`VrfTable`] — the registry: [`VrfId`]-indexed creation and access
//!   to per-tenant [`SharedFib`]s, each compiled against the group's
//!   arena, plus group-wide memory/interning accounting and an exact
//!   cross-table audit.
//!
//! Only *leaf* storage is shared. Node arrays and direct tables stay
//! private per tenant: structural isolation is what keeps one tenant's
//! churn invisible to another's readers, and per-tenant snapshot clones
//! stay proportional to that tenant's own table. Leaves are where the
//! redundancy lives (identical next-hop blocks recur across every tenant
//! cloned from the same base), and leaves are what interning collapses.

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod intern;
mod table;

#[cfg(test)]
mod tests;

pub use intern::{InternStats, NextHopIntern};
pub use table::{VrfMemory, VrfTable};

pub use poptrie::sync::SharedFib;
pub use poptrie::VrfId;
