//! An index-space buddy allocator after Knowlton (1965).
//!
//! Poptrie stores its internal nodes and leaves in two flat arrays; the
//! children of a node must occupy a *contiguous* run of slots so that
//! `base1 + popcnt(...) - 1` indexing works (SIGCOMM 2015, §3.1). Incremental
//! update (§3.5) repeatedly frees one sibling run and allocates another, so
//! the arrays are managed "by the buddy memory allocator" in the paper's
//! words — the buddy discipline bounds fragmentation when runs of varying
//! power-of-two sizes churn.
//!
//! This crate implements that allocator over an abstract index space: it
//! hands out `(offset, rounded_len)` runs of array slots and knows nothing
//! about the element type. The caller owns the actual `Vec<T>` and grows it
//! to [`Buddy::capacity`].
//!
//! # Example
//!
//! ```
//! use poptrie_buddy::Buddy;
//!
//! let mut b = Buddy::new();
//! let a = b.alloc(5);        // rounded up to 8 slots
//! let c = b.alloc(3);        // rounded up to 4 slots
//! assert_ne!(a, c);
//! b.free(a, 5);
//! b.free(c, 3);
//! assert_eq!(b.allocated_slots(), 0);
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::BTreeSet;

pub mod arena;
pub use arena::{ArenaHandle, ArenaOwner};

/// Maximum block order supported (2^30 slots ≈ 1 G entries), far beyond any
/// routing-table need; §5 of the paper projects 10^8 routes.
const MAX_ORDER: usize = 30;

/// An index-space buddy allocator.
///
/// Blocks are power-of-two sized and naturally aligned within the index
/// space. The allocator grows its capacity on demand by appending top-level
/// blocks; it never shrinks (the backing `Vec` in the caller keeps its
/// length).
#[derive(Debug, Clone)]
pub struct Buddy {
    /// `free[o]` holds the offsets of free blocks of size `1 << o`.
    free: Vec<BTreeSet<u32>>,
    /// Total managed slots; always a sum of power-of-two top blocks.
    capacity: u32,
    /// Currently allocated slots (rounded sizes).
    allocated: u32,
    /// Number of outstanding allocations.
    live_blocks: u32,
}

impl Default for Buddy {
    fn default() -> Self {
        Self::new()
    }
}

/// A point-in-time fragmentation summary of a [`Buddy`]'s index space
/// (see [`Buddy::fragmentation`]). The §3.5 concern this quantifies:
/// update churn frees and reallocates sibling runs, and the buddy
/// discipline is what keeps `slack` (and so Table 5's memory footprint)
/// bounded over time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fragmentation {
    /// Total managed slots ([`Buddy::capacity`]).
    pub capacity: u32,
    /// Slots currently allocated, counting buddy rounding.
    pub allocated_slots: u32,
    /// Number of outstanding allocations.
    pub live_blocks: u32,
    /// Slots lost to rounding and free-list fragmentation.
    pub slack: u32,
    /// Number of maximal free spans (1 when the free space is contiguous).
    pub free_spans: u32,
    /// Size of the largest contiguous free span, in slots — the largest
    /// child block allocatable without growing the arrays.
    pub largest_free_span: u32,
}

/// Order (log2 of rounded size) for a requested run of `n` slots.
#[inline]
fn order_of(n: u32) -> usize {
    debug_assert!(n > 0);
    (32 - (n - 1).leading_zeros()).min(MAX_ORDER as u32) as usize
}

impl Buddy {
    /// An empty allocator with zero capacity; the first allocation grows it.
    pub fn new() -> Self {
        Buddy {
            free: vec![BTreeSet::new(); MAX_ORDER + 1],
            capacity: 0,
            allocated: 0,
            live_blocks: 0,
        }
    }

    /// An allocator pre-sized to at least `n` slots.
    pub fn with_capacity(n: u32) -> Self {
        let mut b = Self::new();
        if n > 0 {
            b.grow_to(n);
        }
        b
    }

    /// Total managed slots. The caller's backing array must be at least this
    /// long.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Slots currently allocated, counting buddy rounding.
    pub fn allocated_slots(&self) -> u32 {
        self.allocated
    }

    /// Number of outstanding allocations.
    pub fn live_blocks(&self) -> u32 {
        self.live_blocks
    }

    /// Slots lost to power-of-two rounding and free-list fragmentation,
    /// i.e. `capacity - allocated`.
    pub fn slack(&self) -> u32 {
        self.capacity - self.allocated
    }

    /// Allocate a contiguous run of at least `n` slots (`n > 0`), growing
    /// capacity if needed. Returns the offset of the run.
    pub fn alloc(&mut self, n: u32) -> u32 {
        assert!(n > 0, "cannot allocate an empty run");
        let order = order_of(n);
        loop {
            if let Some(off) = self.take_block(order) {
                self.allocated += 1 << order;
                self.live_blocks += 1;
                return off;
            }
            // Out of space at every order >= `order`: append a fresh top
            // block big enough for the request.
            let need = self.capacity.max(1u32 << order);
            self.grow_to(self.capacity + need);
        }
    }

    /// Allocate a contiguous run of at least `n` slots (`n > 0`) **without
    /// growing** the managed capacity. Returns `None` when no free block of
    /// the rounded size exists — the fixed-arena admission path
    /// ([`arena::ArenaOwner::fixed`]) uses this so exhaustion is a
    /// recoverable condition, not an unbounded growth event.
    pub fn try_alloc(&mut self, n: u32) -> Option<u32> {
        assert!(n > 0, "cannot allocate an empty run");
        let order = order_of(n);
        let off = self.take_block(order)?;
        self.allocated += 1 << order;
        self.live_blocks += 1;
        Some(off)
    }

    /// Release the run previously returned by [`Buddy::alloc`] with the same
    /// `n`. Merges buddies eagerly.
    ///
    /// # Panics
    ///
    /// Panics on a double free or on an offset that was never allocated at
    /// this size (detected through buddy bookkeeping).
    pub fn free(&mut self, off: u32, n: u32) {
        assert!(n > 0);
        let order = order_of(n);
        let size = 1u32 << order;
        assert!(
            off.is_multiple_of(size) && off + size <= self.capacity,
            "free of unaligned or out-of-range block: off={off} n={n}"
        );
        assert!(
            !self.free[order].contains(&off),
            "double free at off={off} order={order}"
        );
        // The exact-block check above only catches a double free whose
        // block has not yet been coalesced away. Once a freed block merges
        // with its buddy into a larger span, a second free of the same
        // offset would pass that check and silently corrupt the
        // accounting — the failure mode that shows up as "impossible"
        // overlap under multi-table arena sharing. `is_live_block` walks
        // every order's free set, so it also rejects a free inside an
        // already-free coalesced span.
        assert!(
            self.is_live_block(off, n),
            "free of a non-live block: off={off} n={n} \
             (double free into a coalesced span, or never allocated)"
        );
        self.allocated -= size;
        self.live_blocks -= 1;
        self.insert_and_coalesce(off, order);
    }

    /// Drop every allocation, keeping the current capacity as one or more
    /// free top blocks. Used when a FIB is rebuilt from scratch.
    pub fn reset(&mut self) {
        let cap = self.capacity;
        for set in &mut self.free {
            set.clear();
        }
        self.capacity = 0;
        self.allocated = 0;
        self.live_blocks = 0;
        if cap > 0 {
            self.grow_to(cap);
        }
    }

    /// Take a free block of exactly `order`, splitting larger blocks.
    fn take_block(&mut self, order: usize) -> Option<u32> {
        // Find the smallest free block of at least the wanted order.
        let mut o = order;
        while o <= MAX_ORDER && self.free[o].is_empty() {
            o += 1;
        }
        if o > MAX_ORDER {
            return None;
        }
        let off = *self.free[o].iter().next().expect("non-empty set");
        self.free[o].remove(&off);
        // Split down to the wanted order, returning the low half each time.
        while o > order {
            o -= 1;
            let buddy = off + (1u32 << o);
            self.free[o].insert(buddy);
        }
        Some(off)
    }

    /// Insert a free block and merge with its buddy while possible.
    fn insert_and_coalesce(&mut self, mut off: u32, mut order: usize) {
        while order < MAX_ORDER {
            let size = 1u32 << order;
            let buddy = off ^ size;
            if buddy + size <= self.capacity && self.free[order].remove(&buddy) {
                off = off.min(buddy);
                order += 1;
            } else {
                break;
            }
        }
        self.free[order].insert(off);
    }

    /// Grow capacity to at least `target` by appending aligned top blocks.
    fn grow_to(&mut self, target: u32) {
        while self.capacity < target {
            let remaining = target - self.capacity;
            // Largest power-of-two block that keeps natural alignment at the
            // current capacity (capacity is a sum of descending-or-equal
            // power-of-two blocks, so the low set bit bounds alignment).
            let align_limit = if self.capacity == 0 {
                1u32 << MAX_ORDER
            } else {
                1u32 << self.capacity.trailing_zeros().min(MAX_ORDER as u32)
            };
            let want = remaining
                .next_power_of_two()
                .min(align_limit)
                .min(1u32 << MAX_ORDER);
            let off = self.capacity;
            self.capacity += want;
            self.insert_and_coalesce(off, want.trailing_zeros() as usize);
        }
    }

    /// The rounded (power-of-two) slot count a request for `n` slots
    /// actually reserves. Auditors use this to reconstruct the exact
    /// extent of a live block from the logical size the caller recorded.
    pub fn rounded(n: u32) -> u32 {
        1u32 << order_of(n)
    }

    /// Whether the block `[off, off + rounded(n))` is currently live
    /// (allocated): correctly aligned, inside the managed capacity, and
    /// intersecting no free block. This is the allocation-map
    /// introspection the structural auditor uses to prove that every
    /// node/leaf block the compiled trie references is backed by an
    /// outstanding allocation rather than dangling into freed space.
    pub fn is_live_block(&self, off: u32, n: u32) -> bool {
        if n == 0 {
            return false;
        }
        let size = Self::rounded(n);
        if !off.is_multiple_of(size) || off.checked_add(size).is_none_or(|e| e > self.capacity) {
            return false;
        }
        let (start, end) = (off as u64, off as u64 + size as u64);
        for (o, set) in self.free.iter().enumerate() {
            let fsize = 1u64 << o;
            // The only free block of order `o` that could overlap
            // [start, end) begins strictly below `end`; take the largest
            // such offset and test it.
            if let Some(&foff) = set.range(..end.min(u32::MAX as u64 + 1) as u32).next_back() {
                if foff as u64 + fsize > start {
                    return false;
                }
            }
        }
        true
    }

    /// A one-shot fragmentation summary derived from the free-list state,
    /// cheap enough to sample at telemetry-scrape frequency.
    pub fn fragmentation(&self) -> Fragmentation {
        let spans = self.free_spans();
        Fragmentation {
            capacity: self.capacity,
            allocated_slots: self.allocated,
            live_blocks: self.live_blocks,
            slack: self.slack(),
            free_spans: spans.len() as u32,
            largest_free_span: spans.iter().map(|&(s, e)| e - s).max().unwrap_or(0),
        }
    }

    /// The free regions of the index space as sorted, disjoint
    /// `(start, end)` half-open spans (adjacent free blocks of different
    /// orders are merged). Everything outside these spans and below
    /// [`Buddy::capacity`] is allocated.
    pub fn free_spans(&self) -> Vec<(u32, u32)> {
        let mut spans: Vec<(u32, u32)> = Vec::new();
        for (o, set) in self.free.iter().enumerate() {
            let size = 1u32 << o;
            for &off in set {
                spans.push((off, off + size));
            }
        }
        spans.sort_unstable();
        let mut merged: Vec<(u32, u32)> = Vec::new();
        for (s, e) in spans {
            match merged.last_mut() {
                Some(last) if last.1 == s => last.1 = e,
                _ => merged.push((s, e)),
            }
        }
        merged
    }

    /// Internal consistency check used by tests and debug assertions:
    /// free blocks are aligned, in range, non-overlapping, and the free +
    /// allocated accounting covers the whole capacity.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut free_total: u64 = 0;
        let mut spans: Vec<(u32, u32)> = Vec::new();
        for (o, set) in self.free.iter().enumerate() {
            let size = 1u32 << o;
            for &off in set {
                if off % size != 0 {
                    return Err(format!("unaligned free block off={off} order={o}"));
                }
                if off + size > self.capacity {
                    return Err(format!("free block out of range off={off} order={o}"));
                }
                spans.push((off, off + size));
                free_total += size as u64;
            }
        }
        spans.sort_unstable();
        for w in spans.windows(2) {
            if w[0].1 > w[1].0 {
                return Err(format!("overlapping free blocks {:?} {:?}", w[0], w[1]));
            }
        }
        if free_total + self.allocated as u64 != self.capacity as u64 {
            return Err(format!(
                "accounting mismatch: free={free_total} allocated={} capacity={}",
                self.allocated, self.capacity
            ));
        }
        Ok(())
    }
}

pub mod first_touch {
    //! First-touch page placement for the arrays a [`Buddy`](super::Buddy)
    //! manages.
    //!
    //! On a NUMA machine, Linux physically places an anonymous page on
    //! the memory node of the thread that *first writes* it — not the
    //! thread that called the allocator. The poptrie node and leaf
    //! arrays are read millions of times per second by pinned workers,
    //! so the thread that grows them (the control-plane writer, or a
    //! replica-building thread pinned to the target socket) must fault
    //! every fresh page in itself, or the pages land wherever the kernel
    //! zero-page machinery happens to run.
    //!
    //! [`grow`] makes that guarantee explicit: it reserves the exact new
    //! capacity, writes one element into every page of the *spare*
    //! capacity (a plain `Vec::resize` initializes only `..len`, leaving
    //! rounded-up capacity tail pages untouched for some later thread to
    //! fault), then resizes. On a single-node machine it degrades to an
    //! ordinary resize plus a handful of redundant stores.

    /// Smallest page size assumed for placement (4 KiB); touching at
    /// this stride also covers huge-page backed regions (every 4 KiB
    /// store lands in some page, and extra stores are harmless).
    pub const PAGE_BYTES: usize = 4096;

    /// Grow `v` to `len` elements filled with `fill`, first-touching
    /// every page of the newly reserved capacity from the calling
    /// thread. No-op when `v.len() >= len`.
    pub fn grow<T: Clone>(v: &mut Vec<T>, len: usize, fill: T) {
        if len <= v.len() {
            return;
        }
        v.reserve_exact(len - v.len());
        let stride = (PAGE_BYTES / core::mem::size_of::<T>().max(1)).max(1);
        let spare = v.spare_capacity_mut();
        let n = spare.len();
        let mut i = 0;
        while i < n {
            spare[i].write(fill.clone());
            i += stride;
        }
        if n > 0 {
            spare[n - 1].write(fill.clone());
        }
        v.resize(len, fill);
    }
}

#[cfg(test)]
mod tests;
