//! Shared-arena ownership split: many tables, one index space.
//!
//! A single [`Buddy`] assumes one owner. The multi-tenant VRF layer needs
//! many `Poptrie` instances (and the cross-tenant leaf interner) to carve
//! blocks out of *one* arena so their storage packs into one contiguous
//! backing array — the prerequisite for cross-VRF leaf sharing and for
//! per-NUMA-node replica arenas. This module splits ownership in two:
//!
//! * [`ArenaOwner`] — constructs the arena and decides its growth policy
//!   (growable, or fixed-capacity for arenas whose backing store cannot
//!   move, like an `Arc<[AtomicU16]>` leaf store);
//! * [`ArenaHandle`] — a clonable allocation capability. Every handle
//!   allocates from the same underlying [`Buddy`] under a mutex, but keeps
//!   its **own** rounded-slot and live-block counters, so a per-table
//!   auditor can reconcile exactly which share of the arena each table
//!   holds without trusting the other tables.
//!
//! Cross-handle safety rests on the hardened [`Buddy::free`]: a table that
//! frees a block it does not own (or frees twice) panics inside the arena
//! lock instead of silently corrupting another table's live-block map.

use crate::{Buddy, Fragmentation};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};

/// State shared by an [`ArenaOwner`] and every [`ArenaHandle`] cloned
/// from it.
#[derive(Debug)]
struct ArenaShared {
    /// The single allocator every handle draws from.
    buddy: Mutex<Buddy>,
    /// `true` when the arena was built with [`ArenaOwner::fixed`]:
    /// allocation beyond the pre-sized capacity fails instead of growing
    /// (the backing store is immovable).
    fixed: bool,
}

impl ArenaShared {
    fn lock(&self) -> std::sync::MutexGuard<'_, Buddy> {
        // A panic while holding the lock (e.g. the hardened double-free
        // assert) poisons it; the arena state itself is still consistent
        // because Buddy asserts *before* mutating, so keep serving.
        self.buddy
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// Constructs and owns a shared buddy arena. Hand out allocation
/// capabilities with [`ArenaOwner::handle`]; the arena lives until the
/// owner **and** every handle have dropped.
#[derive(Debug)]
pub struct ArenaOwner {
    shared: Arc<ArenaShared>,
}

impl ArenaOwner {
    /// A growable arena: allocation past the current capacity appends top
    /// blocks, exactly like a private [`Buddy`].
    pub fn growable() -> Self {
        ArenaOwner {
            shared: Arc::new(ArenaShared {
                buddy: Mutex::new(Buddy::new()),
                fixed: false,
            }),
        }
    }

    /// A fixed-capacity arena pre-sized to at least `cap` slots.
    /// Allocation never grows it: when no free block fits, handles report
    /// exhaustion ([`ArenaHandle::try_alloc`] returns `None`). Use this
    /// when the backing array cannot move — e.g. a shared leaf store whose
    /// readers hold raw pointers across RCU snapshots.
    pub fn fixed(cap: u32) -> Self {
        ArenaOwner {
            shared: Arc::new(ArenaShared {
                buddy: Mutex::new(Buddy::with_capacity(cap)),
                fixed: true,
            }),
        }
    }

    /// Mint a new allocation capability over this arena with fresh
    /// per-handle accounting.
    pub fn handle(&self) -> ArenaHandle {
        ArenaHandle {
            shared: Arc::clone(&self.shared),
            allocated: Arc::new(AtomicU32::new(0)),
            live_blocks: Arc::new(AtomicU32::new(0)),
        }
    }

    /// Total managed slots across all handles.
    pub fn capacity(&self) -> u32 {
        self.shared.lock().capacity()
    }

    /// Arena-global fragmentation summary (all handles combined).
    pub fn fragmentation(&self) -> Fragmentation {
        self.shared.lock().fragmentation()
    }

    /// Arena-global invariant check, forwarding [`Buddy::check_invariants`].
    pub fn check_invariants(&self) -> Result<(), String> {
        self.shared.lock().check_invariants()
    }
}

/// A clonable allocation capability over a shared arena.
///
/// Clones share the same per-handle counters (a clone is the same logical
/// table handing its allocator to a helper, not a new tenant); mint a
/// fresh handle from the [`ArenaOwner`] for an independently-audited
/// tenant.
#[derive(Debug, Clone)]
pub struct ArenaHandle {
    shared: Arc<ArenaShared>,
    /// Rounded slots allocated through this handle and not yet freed.
    allocated: Arc<AtomicU32>,
    /// Outstanding allocations made through this handle.
    live_blocks: Arc<AtomicU32>,
}

impl ArenaHandle {
    /// Allocate a contiguous run of at least `n` slots, growing the arena
    /// when its policy allows.
    ///
    /// # Panics
    ///
    /// Panics when a [fixed](ArenaOwner::fixed) arena is exhausted; use
    /// [`ArenaHandle::try_alloc`] where exhaustion must be recoverable.
    pub fn alloc(&self, n: u32) -> u32 {
        self.try_alloc(n)
            .unwrap_or_else(|| panic!("fixed shared arena exhausted: cannot allocate {n} slots"))
    }

    /// Allocate a contiguous run of at least `n` slots, or `None` when a
    /// [fixed](ArenaOwner::fixed) arena has no free block of the rounded
    /// size. On a growable arena this never returns `None`.
    pub fn try_alloc(&self, n: u32) -> Option<u32> {
        let mut buddy = self.shared.lock();
        let off = if self.shared.fixed {
            buddy.try_alloc(n)?
        } else {
            buddy.alloc(n)
        };
        self.allocated
            .fetch_add(Buddy::rounded(n), Ordering::Relaxed);
        self.live_blocks.fetch_add(1, Ordering::Relaxed);
        Some(off)
    }

    /// Release a run previously allocated **through this handle** with the
    /// same `n`. Freeing another handle's block corrupts per-handle
    /// accounting (the arena-global maps stay correct — and a block that
    /// is not live anywhere panics via the hardened [`Buddy::free`]).
    pub fn free(&self, off: u32, n: u32) {
        self.shared.lock().free(off, n);
        self.allocated
            .fetch_sub(Buddy::rounded(n), Ordering::Relaxed);
        self.live_blocks.fetch_sub(1, Ordering::Relaxed);
    }

    /// Whether `[off, off + rounded(n))` is live in the arena (allocated
    /// by *some* handle). Forwards [`Buddy::is_live_block`].
    pub fn is_live_block(&self, off: u32, n: u32) -> bool {
        self.shared.lock().is_live_block(off, n)
    }

    /// Rounded slots currently allocated through this handle.
    pub fn allocated_slots(&self) -> u32 {
        self.allocated.load(Ordering::Relaxed)
    }

    /// Outstanding allocations made through this handle.
    pub fn live_blocks(&self) -> u32 {
        self.live_blocks.load(Ordering::Relaxed)
    }

    /// Total managed slots of the underlying arena (all handles).
    pub fn capacity(&self) -> u32 {
        self.shared.lock().capacity()
    }

    /// Rounded slots allocated arena-wide (all handles combined).
    pub fn arena_allocated_slots(&self) -> u32 {
        self.shared.lock().allocated_slots()
    }

    /// Outstanding allocations arena-wide (all handles combined).
    pub fn arena_live_blocks(&self) -> u32 {
        self.shared.lock().live_blocks()
    }

    /// Arena-global free regions as sorted, disjoint `(start, end)` spans.
    pub fn free_spans(&self) -> Vec<(u32, u32)> {
        self.shared.lock().free_spans()
    }

    /// Arena-global fragmentation summary (all handles combined — a
    /// per-tenant view comes from [`ArenaHandle::allocated_slots`] /
    /// [`ArenaHandle::live_blocks`]).
    pub fn fragmentation(&self) -> Fragmentation {
        self.shared.lock().fragmentation()
    }

    /// Whether two handles draw from the same underlying arena.
    pub fn same_arena(&self, other: &ArenaHandle) -> bool {
        Arc::ptr_eq(&self.shared, &other.shared)
    }
}
