use crate::{order_of, Buddy};
use poptrie_rng::prelude::*;
use std::collections::HashMap;

#[test]
fn order_rounding() {
    assert_eq!(order_of(1), 0);
    assert_eq!(order_of(2), 1);
    assert_eq!(order_of(3), 2);
    assert_eq!(order_of(4), 2);
    assert_eq!(order_of(5), 3);
    assert_eq!(order_of(64), 6);
    assert_eq!(order_of(65), 7);
}

#[test]
fn alloc_free_roundtrip() {
    let mut b = Buddy::new();
    let a = b.alloc(8);
    let c = b.alloc(8);
    assert_ne!(a, c);
    assert_eq!(b.allocated_slots(), 16);
    assert_eq!(b.live_blocks(), 2);
    b.free(a, 8);
    b.free(c, 8);
    assert_eq!(b.allocated_slots(), 0);
    assert_eq!(b.live_blocks(), 0);
    b.check_invariants().unwrap();
}

#[test]
fn blocks_do_not_overlap() {
    let mut b = Buddy::new();
    let mut runs: Vec<(u32, u32)> = Vec::new();
    let sizes = [1u32, 3, 64, 7, 2, 128, 1, 31, 64, 5];
    for &n in &sizes {
        let off = b.alloc(n);
        let rounded = n.next_power_of_two();
        for &(o, s) in &runs {
            assert!(off + rounded <= o || o + s <= off, "overlap");
        }
        runs.push((off, rounded));
    }
    b.check_invariants().unwrap();
}

#[test]
fn full_free_coalesces_back() {
    let mut b = Buddy::new();
    let offs: Vec<u32> = (0..64).map(|_| b.alloc(4)).collect();
    let cap = b.capacity();
    for off in offs {
        b.free(off, 4);
    }
    assert_eq!(b.allocated_slots(), 0);
    // After freeing everything, one more allocation of the whole capacity
    // must succeed without growing: complete coalescing happened.
    let off = b.alloc(cap);
    assert_eq!(off, 0);
    assert_eq!(b.capacity(), cap);
}

#[test]
fn reuse_prefers_freed_space() {
    let mut b = Buddy::new();
    let a = b.alloc(16);
    let _hold = b.alloc(16);
    b.free(a, 16);
    let again = b.alloc(16);
    assert_eq!(a, again, "freed block should be reused");
}

#[test]
#[should_panic(expected = "double free")]
fn double_free_panics() {
    let mut b = Buddy::new();
    let a = b.alloc(4);
    b.free(a, 4);
    b.free(a, 4);
}

#[test]
#[should_panic(expected = "non-live block")]
fn double_free_into_coalesced_span_panics() {
    // Regression for the shared-arena hardening: free two sibling blocks
    // so they coalesce into a larger span, then free one of them again.
    // The exact-block check alone (`free[order].contains(&off)`) misses
    // this — the order-2 block no longer exists, its span lives at a
    // higher order — and the stale free used to corrupt the accounting.
    let mut b = Buddy::new();
    let a = b.alloc(4);
    let c = b.alloc(4);
    assert_eq!(a ^ 4, c, "siblings, so they coalesce");
    b.free(a, 4);
    b.free(c, 4);
    b.free(a, 4);
}

#[test]
#[should_panic(expected = "cannot allocate an empty run")]
fn zero_alloc_panics() {
    let mut b = Buddy::new();
    b.alloc(0);
}

#[test]
fn try_alloc_never_grows() {
    let mut b = Buddy::with_capacity(16);
    let cap = b.capacity();
    let a = b.try_alloc(8).unwrap();
    let c = b.try_alloc(8).unwrap();
    assert_ne!(a, c);
    assert!(b.try_alloc(1).is_none(), "exhausted, must not grow");
    assert_eq!(b.capacity(), cap);
    b.free(a, 8);
    assert_eq!(b.try_alloc(8), Some(a), "freed block becomes available");
    b.check_invariants().unwrap();
}

#[test]
fn with_capacity_presizes() {
    let b = Buddy::with_capacity(1000);
    assert!(b.capacity() >= 1000);
    b.check_invariants().unwrap();
}

#[test]
fn reset_keeps_capacity() {
    let mut b = Buddy::new();
    for _ in 0..10 {
        b.alloc(33);
    }
    let cap = b.capacity();
    b.reset();
    assert_eq!(b.capacity(), cap);
    assert_eq!(b.allocated_slots(), 0);
    b.check_invariants().unwrap();
    let off = b.alloc(cap);
    assert_eq!(off, 0);
}

#[test]
fn growth_is_aligned() {
    let mut b = Buddy::new();
    // Force repeated growth with awkward sizes.
    for n in [1u32, 100, 3, 1000, 7, 5000] {
        b.alloc(n);
        b.check_invariants().unwrap();
    }
}

#[test]
fn churn_random_workload() {
    // Simulates incremental-update churn: random alloc/free of sibling runs
    // of 1..=64 slots, the size class Poptrie uses for child blocks.
    let mut rng = StdRng::seed_from_u64(42);
    let mut b = Buddy::new();
    let mut live: HashMap<u32, u32> = HashMap::new();
    for step in 0..20_000 {
        if live.is_empty() || rng.gen_bool(0.55) {
            let n = rng.gen_range(1..=64);
            let off = b.alloc(n);
            assert!(live.insert(off, n).is_none(), "offset reuse while live");
        } else {
            let &off = live.keys().choose(&mut rng).unwrap();
            let n = live.remove(&off).unwrap();
            b.free(off, n);
        }
        if step % 4096 == 0 {
            b.check_invariants().unwrap();
        }
    }
    b.check_invariants().unwrap();
    // Fragmentation bound sanity: capacity should stay within a small factor
    // of the live rounded size for this power-of-two workload.
    let live_rounded: u64 = live.values().map(|n| n.next_power_of_two() as u64).sum();
    assert!(
        (b.capacity() as u64) <= live_rounded.max(64) * 8,
        "capacity {} vs live {}",
        b.capacity(),
        live_rounded
    );
}

#[test]
fn rounded_matches_order() {
    for n in 1u32..=130 {
        assert_eq!(Buddy::rounded(n), n.next_power_of_two());
    }
}

#[test]
fn live_block_introspection() {
    let mut b = Buddy::new();
    let a = b.alloc(5); // rounds to 8
    let c = b.alloc(3); // rounds to 4
    assert!(b.is_live_block(a, 5));
    assert!(b.is_live_block(a, 8), "same rounded extent");
    assert!(b.is_live_block(c, 3));
    // Misaligned, out-of-range and freed extents are not live.
    assert!(!b.is_live_block(a + 1, 5), "unaligned");
    assert!(!b.is_live_block(b.capacity(), 1), "past capacity");
    assert!(!b.is_live_block(a, 0), "empty extent");
    b.free(c, 3);
    assert!(!b.is_live_block(c, 3), "freed block no longer live");
    assert!(b.is_live_block(a, 5), "sibling unaffected");
}

#[test]
fn free_spans_cover_exactly_the_unallocated_space() {
    let mut b = Buddy::new();
    let offs: Vec<u32> = (0..7).map(|_| b.alloc(16)).collect();
    b.free(offs[2], 16);
    b.free(offs[5], 16);
    let spans = b.free_spans();
    // Spans are sorted, disjoint, and their total plus the live rounded
    // sizes equals the capacity.
    let mut total = 0u64;
    for w in spans.windows(2) {
        assert!(w[0].1 <= w[1].0, "unsorted or overlapping spans");
    }
    for &(s, e) in &spans {
        assert!(s < e && e <= b.capacity());
        total += (e - s) as u64;
    }
    assert_eq!(total + b.allocated_slots() as u64, b.capacity() as u64);
    // Freed blocks fall inside free spans; live ones don't.
    let inside = |x: u32| spans.iter().any(|&(s, e)| s <= x && x < e);
    assert!(inside(offs[2]) && inside(offs[5]));
    assert!(!inside(offs[0]) && !inside(offs[6]));
}

#[test]
fn live_block_tracks_random_churn() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut b = Buddy::new();
    let mut live: HashMap<u32, u32> = HashMap::new();
    for _ in 0..5_000 {
        if live.is_empty() || rng.gen_bool(0.6) {
            let n = rng.gen_range(1..=64);
            let off = b.alloc(n);
            live.insert(off, n);
        } else {
            let &off = live.keys().choose(&mut rng).unwrap();
            let n = live.remove(&off).unwrap();
            b.free(off, n);
            assert!(!b.is_live_block(off, n));
        }
    }
    for (&off, &n) in &live {
        assert!(b.is_live_block(off, n), "live block {off}+{n} not reported");
    }
    let free_total: u64 = b.free_spans().iter().map(|&(s, e)| (e - s) as u64).sum();
    assert_eq!(free_total + b.allocated_slots() as u64, b.capacity() as u64);
}

#[cfg(feature = "proptest")] // needs the proptest dev-dependency (see Cargo.toml)
mod prop {
    use crate::Buddy;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn prop_no_overlap_and_accounting(ops in proptest::collection::vec((any::<bool>(), 1u32..=96), 1..200)) {
            let mut b = Buddy::new();
            let mut live: Vec<(u32, u32)> = Vec::new();
            for (is_alloc, n) in ops {
                if is_alloc || live.is_empty() {
                    let off = b.alloc(n);
                    let size = n.next_power_of_two();
                    for &(o, s) in &live {
                        prop_assert!(off + size <= o || o + s <= off);
                    }
                    live.push((off, size));
                } else {
                    let idx = (n as usize) % live.len();
                    let (off, size) = live.swap_remove(idx);
                    b.free(off, size);
                }
                b.check_invariants().map_err(TestCaseError::fail)?;
            }
        }
    }
}

mod arena {
    use crate::{ArenaOwner, Buddy};
    use poptrie_rng::prelude::*;
    use std::collections::HashMap;

    #[test]
    fn two_handles_interleaved_do_not_corrupt_live_maps() {
        // The satellite bugfix regression: two tables carving blocks out
        // of one arena, interleaved, with churn. Cross-table frees must
        // leave each table's live blocks intact and the arena-global
        // accounting exact.
        let owner = ArenaOwner::growable();
        let (ha, hb) = (owner.handle(), owner.handle());
        let mut rng = StdRng::seed_from_u64(0xA1);
        let mut live_a: HashMap<u32, u32> = HashMap::new();
        let mut live_b: HashMap<u32, u32> = HashMap::new();
        for step in 0..10_000 {
            let (h, live) = if step % 2 == 0 {
                (&ha, &mut live_a)
            } else {
                (&hb, &mut live_b)
            };
            if live.is_empty() || rng.gen_bool(0.55) {
                let n = rng.gen_range(1..=64);
                let off = h.alloc(n);
                assert!(live.insert(off, n).is_none(), "offset reuse while live");
            } else {
                let &off = live.keys().choose(&mut rng).unwrap();
                let n = live.remove(&off).unwrap();
                h.free(off, n);
            }
            if step % 1024 == 0 {
                owner.check_invariants().unwrap();
                // Every block either table believes live is live in the
                // arena; no offset is claimed by both.
                for (&off, &n) in &live_a {
                    assert!(ha.is_live_block(off, n));
                    assert!(!live_b.contains_key(&off), "offset owned by both tables");
                }
                for (&off, &n) in &live_b {
                    assert!(hb.is_live_block(off, n));
                }
            }
        }
        // Per-handle accounting reconciles exactly against each table's
        // own ledger, and their sum against the arena.
        let rounded = |m: &HashMap<u32, u32>| m.values().map(|&n| Buddy::rounded(n)).sum::<u32>();
        assert_eq!(ha.allocated_slots(), rounded(&live_a));
        assert_eq!(hb.allocated_slots(), rounded(&live_b));
        assert_eq!(ha.live_blocks(), live_a.len() as u32);
        assert_eq!(hb.live_blocks(), live_b.len() as u32);
        assert_eq!(
            ha.arena_allocated_slots(),
            ha.allocated_slots() + hb.allocated_slots()
        );
        assert_eq!(ha.arena_live_blocks(), ha.live_blocks() + hb.live_blocks());
        // Fragmentation/free_spans stay coherent under the split: spans +
        // allocated cover the capacity exactly.
        let frag = owner.fragmentation();
        let free_total: u64 = ha.free_spans().iter().map(|&(s, e)| (e - s) as u64).sum();
        assert_eq!(
            free_total + frag.allocated_slots as u64,
            frag.capacity as u64
        );
        for (off, n) in live_a.drain() {
            ha.free(off, n);
        }
        for (off, n) in live_b.drain() {
            hb.free(off, n);
        }
        assert_eq!(ha.arena_allocated_slots(), 0);
        owner.check_invariants().unwrap();
    }

    #[test]
    fn fixed_arena_refuses_growth() {
        let owner = ArenaOwner::fixed(64);
        let h = owner.handle();
        let cap = owner.capacity();
        assert!(cap >= 64);
        let mut offs = Vec::new();
        while let Some(off) = h.try_alloc(8) {
            offs.push(off);
        }
        assert_eq!(offs.len() as u32, cap / 8, "filled exactly, never grew");
        assert_eq!(owner.capacity(), cap);
        assert!(h.try_alloc(1).is_none());
        for off in offs {
            h.free(off, 8);
        }
        assert_eq!(h.allocated_slots(), 0);
    }

    #[test]
    fn cloned_handle_shares_accounting() {
        let owner = ArenaOwner::growable();
        let h = owner.handle();
        let h2 = h.clone();
        assert!(h.same_arena(&h2));
        let off = h.alloc(16);
        assert_eq!(h2.allocated_slots(), 16);
        h2.free(off, 16);
        assert_eq!(h.allocated_slots(), 0);
        let other = owner.handle();
        assert!(h.same_arena(&other));
        assert_eq!(other.allocated_slots(), 0, "fresh handle, fresh ledger");
    }
}

mod first_touch {
    use crate::first_touch::{grow, PAGE_BYTES};

    #[test]
    fn grow_reaches_len_and_fills() {
        let mut v: Vec<u64> = vec![7; 3];
        grow(&mut v, 10_000, 42);
        assert_eq!(v.len(), 10_000);
        assert!(v.capacity() >= 10_000);
        assert!(v[..3].iter().all(|&x| x == 7), "existing elements kept");
        assert!(v[3..].iter().all(|&x| x == 42), "fresh elements filled");
    }

    #[test]
    fn grow_is_noop_for_smaller_or_equal_len() {
        let mut v: Vec<u32> = vec![1, 2, 3];
        grow(&mut v, 2, 9);
        assert_eq!(v, vec![1, 2, 3]);
        grow(&mut v, 3, 9);
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn grow_touches_every_page_of_spare_capacity() {
        // Grow to a len whose reservation spans many pages; the
        // page-stride pre-touch must not skip the tail even when
        // `len * size_of::<T>()` is not page-aligned.
        let elems_per_page = PAGE_BYTES / core::mem::size_of::<u32>();
        let len = 5 * elems_per_page + 17;
        let mut v: Vec<u32> = Vec::new();
        grow(&mut v, len, 0xA5A5_A5A5);
        assert_eq!(v.len(), len);
        assert!(v.iter().all(|&x| x == 0xA5A5_A5A5));
    }

    #[test]
    fn grow_from_empty_and_tiny_types() {
        let mut v: Vec<u8> = Vec::new();
        grow(&mut v, 1, 0xFF);
        assert_eq!(v, vec![0xFF]);
        let mut v: Vec<[u8; 4096 * 2]> = Vec::new();
        // Element bigger than a page: stride clamps to 1.
        grow(&mut v, 3, [9; 4096 * 2]);
        assert_eq!(v.len(), 3);
    }
}
