//! CPU pinning for worker threads, without libc.
//!
//! The paper's multi-core scaling experiment (§4.8, Figure 10) pins one
//! forwarding thread per core so the per-core caches hold each worker's
//! share of the FIB and the scheduler cannot migrate workers mid-burst.
//! The workspace carries no external dependencies, so instead of
//! `libc::sched_setaffinity` this issues the raw Linux syscall with
//! inline assembly on x86-64 and degrades to a no-op elsewhere — pinning
//! is a performance hint, never a correctness requirement.

/// Highest CPU index representable in the affinity mask (1024 CPUs, the
/// kernel's default `CPU_SETSIZE`).
const MASK_WORDS: usize = 16;

/// Pin the calling thread to `core` (modulo the mask width). Returns
/// `true` if the kernel accepted the mask, `false` where pinning is
/// unsupported (non-Linux, non-x86-64) or refused.
pub fn pin_current_thread(core: usize) -> bool {
    let mut mask = [0u64; MASK_WORDS];
    let core = core % (MASK_WORDS * 64);
    mask[core / 64] |= 1u64 << (core % 64);
    set_affinity(&mask)
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
fn set_affinity(mask: &[u64; MASK_WORDS]) -> bool {
    // sched_setaffinity(pid = 0 → calling thread, cpusetsize, mask).
    const SYS_SCHED_SETAFFINITY: i64 = 203;
    let ret: i64;
    unsafe {
        core::arch::asm!(
            "syscall",
            inlateout("rax") SYS_SCHED_SETAFFINITY => ret,
            in("rdi") 0i64,
            in("rsi") core::mem::size_of_val(mask),
            in("rdx") mask.as_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack, preserves_flags)
        );
    }
    ret == 0
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
fn set_affinity(_mask: &[u64; MASK_WORDS]) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinning_is_harmless() {
        // Whether or not the platform supports it, the call must not
        // disturb the thread.
        let _ = pin_current_thread(0);
        let handle = std::thread::spawn(|| {
            let ok = pin_current_thread(1);
            // Work still runs on the (possibly pinned) thread.
            (ok, (0..100u64).sum::<u64>())
        });
        let (_, sum) = handle.join().unwrap();
        assert_eq!(sum, 4950);
    }
}
