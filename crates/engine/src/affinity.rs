//! CPU pinning for worker threads, without libc.
//!
//! The paper's multi-core scaling experiment (§4.8, Figure 10) pins one
//! forwarding thread per core so the per-core caches hold each worker's
//! share of the FIB and the scheduler cannot migrate workers mid-burst.
//! The workspace carries no external dependencies, so instead of
//! `libc::sched_setaffinity` this issues the raw Linux syscall with
//! inline assembly on x86-64 and degrades to a no-op elsewhere — pinning
//! is a performance hint, never a correctness requirement.

/// Highest CPU index representable in the affinity mask (1024 CPUs, the
/// kernel's default `CPU_SETSIZE`).
const MASK_WORDS: usize = 16;

/// Pin the calling thread to `core` (modulo the mask width). Returns
/// `true` if the kernel accepted the mask, `false` where pinning is
/// unsupported (non-Linux, non-x86-64) or refused.
pub fn pin_current_thread(core: usize) -> bool {
    let mut mask = [0u64; MASK_WORDS];
    let core = core % (MASK_WORDS * 64);
    mask[core / 64] |= 1u64 << (core % 64);
    set_affinity(&mask)
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
fn set_affinity(mask: &[u64; MASK_WORDS]) -> bool {
    // sched_setaffinity(pid = 0 → calling thread, cpusetsize, mask).
    const SYS_SCHED_SETAFFINITY: i64 = 203;
    let ret: i64;
    unsafe {
        core::arch::asm!(
            "syscall",
            inlateout("rax") SYS_SCHED_SETAFFINITY => ret,
            in("rdi") 0i64,
            in("rsi") core::mem::size_of_val(mask),
            in("rdx") mask.as_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack, preserves_flags)
        );
    }
    ret == 0
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
fn set_affinity(_mask: &[u64; MASK_WORDS]) -> bool {
    false
}

/// The machine's NUMA layout: which memory node each CPU belongs to.
///
/// Parsed from sysfs (`/sys/devices/system/node/node*/cpulist`) on
/// Linux; anywhere that surface is missing or malformed the topology
/// degrades to a single node holding every CPU, which turns all
/// NUMA-aware placement into the existing uniform behavior. The engine
/// uses this to size its per-socket FIB replica set and to route each
/// pinned worker to the replica on its own node.
#[derive(Debug, Clone)]
pub struct NumaTopology {
    /// `node_of[cpu]` is the node owning that CPU; CPUs past the end
    /// (offline or unknown) report node 0.
    node_of: Vec<u16>,
    /// Number of nodes (at least 1).
    nodes: usize,
}

impl NumaTopology {
    /// Detect the running machine's topology (single fallback node when
    /// sysfs is unavailable).
    pub fn detect() -> Self {
        Self::from_sysfs(std::path::Path::new("/sys/devices/system/node"))
            .unwrap_or_else(Self::single_node)
    }

    /// The degenerate one-node topology.
    pub fn single_node() -> Self {
        NumaTopology {
            node_of: Vec::new(),
            nodes: 1,
        }
    }

    /// Number of memory nodes (≥ 1).
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Number of CPUs the topology knows about (0 on the fallback
    /// topology, where every CPU implicitly belongs to node 0).
    pub fn cpus(&self) -> usize {
        self.node_of.len()
    }

    /// The node owning `cpu` (0 for CPUs the topology does not know).
    pub fn node_of_cpu(&self, cpu: usize) -> usize {
        self.node_of.get(cpu).copied().unwrap_or(0) as usize
    }

    fn from_sysfs(root: &std::path::Path) -> Option<Self> {
        let mut per_node: Vec<(usize, Vec<usize>)> = Vec::new();
        for entry in std::fs::read_dir(root).ok()? {
            let entry = entry.ok()?;
            let name = entry.file_name();
            let name = name.to_str()?;
            let Some(id) = name
                .strip_prefix("node")
                .and_then(|s| s.parse::<usize>().ok())
            else {
                continue;
            };
            let list = std::fs::read_to_string(entry.path().join("cpulist")).ok()?;
            per_node.push((id, Self::parse_cpulist(list.trim())?));
        }
        if per_node.is_empty() {
            return None;
        }
        let nodes = per_node.iter().map(|(id, _)| id + 1).max()?;
        let max_cpu = per_node.iter().flat_map(|(_, c)| c.iter()).max().copied()?;
        let mut node_of = vec![0u16; max_cpu + 1];
        for (id, cpus) in &per_node {
            for &c in cpus {
                node_of[c] = *id as u16;
            }
        }
        Some(NumaTopology {
            node_of,
            nodes: nodes.max(1),
        })
    }

    /// Parse the kernel's cpulist format: comma-separated decimal CPUs
    /// and inclusive ranges, e.g. `"0-3,8,10-11"`. Empty string (a
    /// memory-only node) parses to an empty list.
    fn parse_cpulist(s: &str) -> Option<Vec<usize>> {
        let mut cpus = Vec::new();
        if s.is_empty() {
            return Some(cpus);
        }
        for part in s.split(',') {
            match part.split_once('-') {
                Some((lo, hi)) => {
                    let lo: usize = lo.trim().parse().ok()?;
                    let hi: usize = hi.trim().parse().ok()?;
                    if lo > hi {
                        return None;
                    }
                    cpus.extend(lo..=hi);
                }
                None => cpus.push(part.trim().parse().ok()?),
            }
        }
        Some(cpus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinning_is_harmless() {
        // Whether or not the platform supports it, the call must not
        // disturb the thread.
        let _ = pin_current_thread(0);
        let handle = std::thread::spawn(|| {
            let ok = pin_current_thread(1);
            // Work still runs on the (possibly pinned) thread.
            (ok, (0..100u64).sum::<u64>())
        });
        let (_, sum) = handle.join().unwrap();
        assert_eq!(sum, 4950);
    }

    #[test]
    fn cpulist_parsing() {
        assert_eq!(NumaTopology::parse_cpulist("0"), Some(vec![0]));
        assert_eq!(NumaTopology::parse_cpulist("0-3"), Some(vec![0, 1, 2, 3]));
        assert_eq!(
            NumaTopology::parse_cpulist("0-2,8,10-11"),
            Some(vec![0, 1, 2, 8, 10, 11])
        );
        assert_eq!(NumaTopology::parse_cpulist(""), Some(vec![]));
        assert_eq!(NumaTopology::parse_cpulist("3-1"), None);
        assert_eq!(NumaTopology::parse_cpulist("x"), None);
    }

    #[test]
    fn synthetic_sysfs_topology() {
        // A fake two-socket sysfs tree: node0 = cpus 0-1, node1 = 2-3.
        let dir = std::env::temp_dir().join(format!("poptrie-numa-{}", std::process::id()));
        for (node, list) in [("node0", "0-1"), ("node1", "2-3")] {
            let d = dir.join(node);
            std::fs::create_dir_all(&d).unwrap();
            std::fs::write(d.join("cpulist"), format!("{list}\n")).unwrap();
        }
        // Entries that must be ignored: non-node names.
        std::fs::create_dir_all(dir.join("possible")).unwrap();
        let t = NumaTopology::from_sysfs(&dir).expect("parse synthetic tree");
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(t.nodes(), 2);
        assert_eq!(t.cpus(), 4);
        assert_eq!(t.node_of_cpu(0), 0);
        assert_eq!(t.node_of_cpu(1), 0);
        assert_eq!(t.node_of_cpu(2), 1);
        assert_eq!(t.node_of_cpu(3), 1);
        assert_eq!(t.node_of_cpu(99), 0, "unknown CPUs fall back to node 0");
    }

    #[test]
    fn detection_always_yields_a_usable_topology() {
        let t = NumaTopology::detect();
        assert!(t.nodes() >= 1);
        // Every known CPU maps to a node below the node count.
        for cpu in 0..t.cpus() {
            assert!(t.node_of_cpu(cpu) < t.nodes());
        }
    }
}
