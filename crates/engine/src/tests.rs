use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use poptrie::prelude::*;
use poptrie::{SourceId, VrfId};

use crate::queue::{Bounded, PushError};
use crate::{Engine, EngineConfig, QosPolicy, VrfTable};

fn p4(s: &str) -> Prefix<u32> {
    s.parse().unwrap()
}

/// Batches recorded by an `on_batch` hook: `(worker, next_hops)`.
type Served = Arc<Mutex<Vec<(usize, Vec<u16>)>>>;

/// Publishes recorded by an `on_publish` hook: `(version, updates)`.
type Published = Arc<Mutex<Vec<(u64, Vec<RouteUpdate<u32>>)>>>;

fn shared(routes: &[(&str, u16)]) -> Arc<SharedFib<u32>> {
    let cfg = PoptrieConfig::new().direct_bits(16).build().unwrap();
    let fib = Arc::new(SharedFib::with_config(cfg));
    for &(p, nh) in routes {
        fib.insert(p4(p), nh).unwrap();
    }
    fib
}

mod queue {
    use super::*;

    #[test]
    fn bounded_push_pop_fifo() {
        let q: Bounded<u32> = Bounded::new(3);
        assert_eq!(q.try_push(1).unwrap(), 1);
        assert_eq!(q.try_push(2).unwrap(), 2);
        assert_eq!(q.try_push(3).unwrap(), 3);
        assert!(matches!(q.try_push(4), Err(PushError::Full(4))));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(4).unwrap(), 3);
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(4));
        assert!(q.is_empty());
    }

    #[test]
    fn close_refuses_producers_but_drains_consumers() {
        let q: Bounded<u32> = Bounded::new(8);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert!(matches!(q.try_push(3), Err(PushError::Closed(3))));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_consumer() {
        let q: Arc<Bounded<u32>> = Arc::new(Bounded::new(8));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn per_source_quota_is_enforced_and_released() {
        let q: Bounded<u32> = Bounded::new(8);
        // Source 0 has a 2-slot quota: the third push is refused even
        // though the queue itself has room.
        assert!(q.try_push_from(0, 2, 10).is_ok());
        assert!(q.try_push_from(0, 2, 11).is_ok());
        assert!(matches!(
            q.try_push_from(0, 2, 12),
            Err(PushError::Full(12))
        ));
        // Another source and untagged pushes are unaffected.
        assert!(q.try_push_from(1, 2, 20).is_ok());
        assert!(q.try_push(30).is_ok());
        // Popping a source-0 item releases its slot.
        assert_eq!(q.pop_entry(), Some((0, 10)));
        assert!(q.try_push_from(0, 2, 12).is_ok());
        // FIFO order is preserved across sources.
        assert_eq!(q.pop_entry(), Some((0, 11)));
        assert_eq!(q.pop_entry(), Some((1, 20)));
        assert_eq!(q.pop(), Some(30));
        assert_eq!(q.pop(), Some(12));
    }

    #[test]
    fn total_capacity_still_bounds_quota_pushes() {
        let q: Bounded<u32> = Bounded::new(2);
        assert!(q.try_push_from(0, 10, 1).is_ok());
        assert!(q.try_push_from(1, 10, 2).is_ok());
        // Quotas allow more, capacity does not.
        assert!(matches!(q.try_push_from(2, 10, 3), Err(PushError::Full(3))));
    }

    #[test]
    fn pop_up_to_respects_window() {
        let q: Bounded<u32> = Bounded::new(8);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        let mut buf = Vec::new();
        assert!(q.pop_up_to(3, &mut buf));
        assert_eq!(buf, vec![0, 1, 2]);
        buf.clear();
        assert!(q.pop_up_to(3, &mut buf));
        assert_eq!(buf, vec![3, 4]);
        q.close();
        buf.clear();
        assert!(!q.pop_up_to(3, &mut buf));
    }
}

mod engine {
    use super::*;

    #[test]
    fn serves_batches_and_counts_packets() {
        let fib = shared(&[("10.0.0.0/8", 1), ("11.0.0.0/8", 2)]);
        let served: Served = Arc::new(Mutex::new(Vec::new()));
        let hook = {
            let served = Arc::clone(&served);
            Arc::new(move |w: usize, _k: &[u32], out: &[u16], _v: u64| {
                served.lock().unwrap().push((w, out.to_vec()));
            })
        };
        let engine = Engine::start(
            Arc::clone(&fib),
            EngineConfig::new(2).pin_workers(false).on_batch(hook),
        );
        let ingress = engine.ingress();
        let batch: Arc<[u32]> = Arc::from(vec![0x0A00_0001u32, 0x0B00_0001, 0x0C00_0001]);
        for _ in 0..10 {
            let mut b = Arc::clone(&batch);
            loop {
                match ingress.try_submit(b) {
                    Ok(_) => break,
                    Err(back) => {
                        b = back;
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            }
        }
        let report = engine.shutdown(Duration::from_secs(10));
        assert_eq!(report.leaked_threads, 0);
        assert!(report.drained_clean);
        assert_eq!(report.packets, 30);
        assert_eq!(report.batches, 10);
        let served = served.lock().unwrap();
        assert_eq!(served.len(), 10);
        for (_, out) in served.iter() {
            assert_eq!(out, &vec![1, 2, NO_ROUTE]);
        }
    }

    #[test]
    fn backpressure_drops_are_counted_deterministically() {
        let fib = shared(&[("10.0.0.0/8", 1)]);
        // One worker, queue of 1, and a large per-batch delay: with the
        // worker stalled, the second queued batch and the overflow are
        // deterministic.
        let engine = Engine::start(
            Arc::clone(&fib),
            EngineConfig::new(1)
                .pin_workers(false)
                .queue_capacity(1)
                .batch_delay(Duration::from_millis(200)),
        );
        let ingress = engine.ingress();
        let batch: Arc<[u32]> = Arc::from(vec![0x0A00_0001u32]);
        // First submit is taken by the worker (it blocks in the delay);
        // second fills the queue; keep submitting until a drop occurs.
        let mut drops = 0;
        for _ in 0..8 {
            if ingress.try_submit(Arc::clone(&batch)).is_err() {
                drops += 1;
            }
        }
        assert!(drops > 0, "an 8-deep burst must overflow a 1-deep queue");
        assert_eq!(engine.telemetry().dropped_batches.get(), drops);
        let report = engine.shutdown(Duration::from_secs(10));
        assert_eq!(report.dropped_batches, drops);
        assert_eq!(report.packets + drops, 8);
        assert!(report.drained_clean);
    }

    #[test]
    fn worker_panic_is_isolated_and_respawned() {
        let fib = shared(&[("10.0.0.0/8", 1)]);
        let engine = Engine::start(
            Arc::clone(&fib),
            EngineConfig::new(1).pin_workers(false).queue_capacity(8),
        );
        let ingress = engine.ingress();
        let batch: Arc<[u32]> = Arc::from(vec![0x0A00_0001u32]);

        engine.inject_panic(0).unwrap();
        ingress.try_submit(Arc::clone(&batch)).unwrap(); // consumed by the panic
        ingress.try_submit(Arc::clone(&batch)).unwrap(); // served after respawn
        ingress.try_submit(Arc::clone(&batch)).unwrap();

        let report = engine.shutdown(Duration::from_secs(10));
        assert_eq!(report.leaked_threads, 0);
        assert_eq!(report.workers[0].respawns, 1);
        // The panicking batch is lost; the remaining two are served.
        assert_eq!(report.packets, 2);
        assert!(report.drained_clean);
    }

    #[test]
    fn deadline_policy_drops_stale_batches_with_exact_accounting() {
        let fib = shared(&[("10.0.0.0/8", 1)]);
        // One worker with a 200 ms service stall and a 100 ms deadline:
        // the first batch is popped fresh and served; the three queued
        // behind it wait >= 200 ms and are dropped at pop, before the
        // stall, so the counts are exact.
        let engine = Engine::start(
            Arc::clone(&fib),
            EngineConfig::new(1)
                .pin_workers(false)
                .queue_capacity(8)
                .batch_delay(Duration::from_millis(200))
                .qos(QosPolicy::Deadline(Duration::from_millis(100))),
        );
        let ingress = engine.ingress();
        let batch: Arc<[u32]> = Arc::from(vec![0x0A00_0001u32, 0x0A00_0002]);
        for _ in 0..4 {
            ingress.try_submit(Arc::clone(&batch)).unwrap();
        }
        let report = engine.shutdown(Duration::from_secs(10));
        assert!(report.drained_clean);
        assert_eq!(report.batches, 1, "only the fresh batch is served");
        assert_eq!(report.packets, 2);
        assert_eq!(report.deadline_dropped_batches, 3);
        assert_eq!(report.deadline_dropped_packets, 6);
        assert_eq!(report.dropped_batches, 0, "nothing was refused");
        // The packet accounting identity: offered == delivered +
        // deadline-dropped + refused.
        assert_eq!(
            4 * 2,
            report.packets + report.deadline_dropped_packets + report.dropped_packets
        );
        // Every popped batch (served or dropped) has a queue-wait
        // sample; only served batches have a service sample.
        assert_eq!(report.queue_wait.samples, 4);
        assert_eq!(report.service.samples, 1);
        assert_eq!(report.workers[0].deadline_dropped_batches, 3);
    }

    #[test]
    fn refuse_policy_never_deadline_drops() {
        let fib = shared(&[("10.0.0.0/8", 1)]);
        let engine = Engine::start(
            Arc::clone(&fib),
            EngineConfig::new(1)
                .pin_workers(false)
                .queue_capacity(8)
                .batch_delay(Duration::from_millis(50)),
        );
        let ingress = engine.ingress();
        let batch: Arc<[u32]> = Arc::from(vec![0x0A00_0001u32]);
        for _ in 0..4 {
            ingress.try_submit(Arc::clone(&batch)).unwrap();
        }
        let report = engine.shutdown(Duration::from_secs(10));
        assert_eq!(report.batches, 4);
        assert_eq!(report.deadline_dropped_batches, 0);
        assert_eq!(report.queue_wait.samples, 4);
        assert_eq!(report.service.samples, 4);
        // Tail quantiles are monotone by construction.
        let qw = report.queue_wait;
        assert!(qw.p50_ns <= qw.p99_ns && qw.p99_ns <= qw.p999_ns);
    }

    #[test]
    fn weighted_sources_share_a_queue_by_quota() {
        let fib = shared(&[("10.0.0.0/8", 1)]);
        // capacity 4, weights 3:1 -> quotas 3 and 1.
        let engine = Engine::start(
            Arc::clone(&fib),
            EngineConfig::new(1)
                .pin_workers(false)
                .queue_capacity(4)
                .batch_delay(Duration::from_millis(200))
                .source("bulk", 3)
                .source("scavenger", 1),
        );
        let bulk = engine.ingress_for(SourceId::new(0)).unwrap();
        let scavenger = engine.ingress_for(SourceId::new(1)).unwrap();
        assert_eq!(bulk.quota(), 3);
        assert_eq!(scavenger.quota(), 1);

        // Stall the worker with an untagged batch so the queue fills
        // deterministically behind it.
        let batch: Arc<[u32]> = Arc::from(vec![0x0A00_0001u32]);
        engine.ingress().try_submit(Arc::clone(&batch)).unwrap();
        std::thread::sleep(Duration::from_millis(50)); // worker is now stalled serving it

        // The scavenger gets exactly its one slot; the flood is refused.
        assert!(scavenger.try_submit(Arc::clone(&batch)).is_ok());
        assert!(scavenger.try_submit(Arc::clone(&batch)).is_err());
        // Bulk still gets its three slots despite the scavenger's item.
        for _ in 0..3 {
            assert!(bulk.try_submit(Arc::clone(&batch)).is_ok());
        }
        assert!(bulk.try_submit(Arc::clone(&batch)).is_err());

        let report = engine.shutdown(Duration::from_secs(10));
        assert!(report.drained_clean);
        assert_eq!(report.sources.len(), 2);
        let b = &report.sources[0];
        assert_eq!((b.name.as_str(), b.weight, b.quota), ("bulk", 3, 3));
        assert_eq!(b.submitted_batches, 3);
        assert_eq!(b.refused_batches, 1);
        assert_eq!(b.delivered_batches, 3);
        let s = &report.sources[1];
        assert_eq!((s.name.as_str(), s.weight, s.quota), ("scavenger", 1, 1));
        assert_eq!(s.submitted_batches, 1);
        assert_eq!(s.refused_batches, 1);
        assert_eq!(s.delivered_batches, 1);
        // Per-source identity: submitted == delivered + deadline-dropped.
        for src in &report.sources {
            assert_eq!(
                src.submitted_batches,
                src.delivered_batches + src.deadline_dropped_batches
            );
        }
    }

    #[test]
    fn quota_apportionment_never_oversubscribes_the_queue() {
        use crate::source_quotas;
        // Regression (ISSUE 7): the old `max(1, cap·w/Σw)` formula gave
        // this shape quotas 7,1,1,1,1,1 — sum 12 against a capacity of
        // 8, so the "weighted shares" could jointly overcommit the
        // queue. Largest-remainder apportionment must hit the capacity
        // exactly while keeping every source at ≥ 1 slot.
        let q = source_quotas(8, &[100, 1, 1, 1, 1, 1]);
        assert_eq!(q.iter().sum::<usize>(), 8);
        assert!(q.iter().all(|&x| x >= 1));
        assert!(q[0] > q[1], "the heavy source keeps the largest share");

        // The documented shapes stay put: cap 4 at weights 3:1 -> 3,1.
        assert_eq!(source_quotas(4, &[3, 1]), vec![3, 1]);
        // Equal weights split evenly, remainders to the earliest.
        assert_eq!(source_quotas(10, &[1, 1, 1]), vec![4, 3, 3]);
        // Degenerate more-sources-than-slots case: the per-source floor
        // wins and the queue capacity itself bounds admission.
        assert_eq!(source_quotas(2, &[5, 5, 5]), vec![1, 1, 1]);
        assert_eq!(source_quotas(0, &[7]), vec![1]);
        assert!(source_quotas(8, &[]).is_empty());

        // Sweep: for any mix with n <= cap the sum is exactly cap.
        for cap in 1..=32usize {
            for weights in [vec![1u32; cap], vec![3, 1], vec![7, 2, 2], vec![1000, 1]] {
                if weights.len() > cap {
                    continue;
                }
                let q = source_quotas(cap, &weights);
                assert_eq!(q.iter().sum::<usize>(), cap, "cap={cap} w={weights:?}");
                assert!(q.iter().all(|&x| x >= 1));
            }
        }
    }

    #[test]
    fn numa_replicas_converge_and_serve_identically() {
        let fib = shared(&[("10.0.0.0/8", 1)]);
        let engine = Engine::start(
            Arc::clone(&fib),
            EngineConfig::new(3).pin_workers(false).numa_replicas(3),
        );
        assert_eq!(engine.fib_replicas().len(), 3);
        // Every replica starts as a converged copy of the primary.
        for r in engine.fib_replicas() {
            assert_eq!(r.lookup(0x0A00_0001), Some(1));
            assert_eq!(r.version(), fib.version());
        }

        // Updates routed through the writer reach all replicas.
        let control = engine.control();
        control.announce(p4("11.0.0.0/8"), 7).unwrap();
        control.withdraw(p4("10.0.0.0/8")).unwrap();
        let t = engine.telemetry();
        while t.update_events.get() < 2 {
            std::thread::sleep(Duration::from_millis(1));
        }
        for (i, r) in engine.fib_replicas().iter().enumerate() {
            assert_eq!(r.lookup(0x0B00_0001), Some(7), "replica {i}");
            assert_eq!(r.lookup(0x0A00_0001), None, "replica {i}");
        }

        // Batches still resolve correctly no matter which worker (and
        // hence which replica) serves them.
        let ingress = engine.ingress();
        let batch: Arc<[u32]> = Arc::from(vec![0x0B00_0001u32, 0x0A00_0001]);
        for w in 0..3 {
            while ingress.try_submit_to(w, Arc::clone(&batch)).is_err() {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        let report = engine.shutdown(Duration::from_secs(10));
        assert!(report.drained_clean);
        assert_eq!(report.fib_replicas, 3);
        // One publish per burst on the primary, one per extra replica:
        // the writer touched every replica exactly as often.
        assert_eq!(report.replica_publishes, report.publishes * 2);
        // Every worker is mapped to a valid replica; on a host with
        // fewer NUMA nodes than the forced replica count the mapping is
        // round-robin so all replicas are exercised.
        for (i, w) in report.workers.iter().enumerate() {
            assert!(w.replica < report.fib_replicas);
            if crate::NumaTopology::detect().nodes() < 3 {
                assert_eq!(w.replica, i % 3);
            }
        }
    }

    #[test]
    fn single_replica_engine_reports_no_replica_publishes() {
        let fib = shared(&[("10.0.0.0/8", 1)]);
        let engine = Engine::start(Arc::clone(&fib), EngineConfig::new(2).pin_workers(false));
        let control = engine.control();
        control.announce(p4("11.0.0.0/8"), 2).unwrap();
        let t = engine.telemetry();
        while t.update_events.get() < 1 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let report = engine.shutdown(Duration::from_secs(10));
        // Auto-detection never exceeds the node count, and replica 0 is
        // the caller's own SharedFib — mutating through the engine
        // mutated `fib` itself.
        assert!(report.fib_replicas >= 1);
        assert_eq!(fib.lookup(0x0B00_0001), Some(2));
        if report.fib_replicas == 1 {
            assert_eq!(report.replica_publishes, 0);
            assert!(report.workers.iter().all(|w| w.replica == 0));
        }
    }

    #[test]
    fn writer_coalesces_duplicate_prefixes() {
        let fib = shared(&[]);
        let publishes: Published = Arc::new(Mutex::new(Vec::new()));
        let hook = {
            let publishes = Arc::clone(&publishes);
            Arc::new(
                move |outcome: poptrie::sync::BatchOutcome, ups: &[RouteUpdate<u32>]| {
                    publishes
                        .lock()
                        .unwrap()
                        .push((outcome.version, ups.to_vec()));
                },
            )
        };
        let engine = Engine::start(
            Arc::clone(&fib),
            EngineConfig::new(1).pin_workers(false).on_publish(hook),
        );
        let control = engine.control();
        // Four updates to the same prefix plus one to another, queued
        // before the writer can drain: one publish, two survivors.
        let burst = vec![
            RouteUpdate::Announce(p4("10.0.0.0/8"), 1),
            RouteUpdate::Announce(p4("10.0.0.0/8"), 2),
            RouteUpdate::Announce(p4("11.0.0.0/8"), 7),
            RouteUpdate::Announce(p4("10.0.0.0/8"), 3),
            RouteUpdate::Announce(p4("10.0.0.0/8"), 4),
        ];
        for u in burst {
            control.send(u).unwrap();
        }
        // Wait until the writer has consumed the burst.
        let t = engine.telemetry();
        while t.update_events.get() < 5 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let report = engine.shutdown(Duration::from_secs(10));
        assert_eq!(fib.lookup(0x0A00_0001), Some(4), "last announce wins");
        assert_eq!(fib.lookup(0x0B00_0001), Some(7));
        assert_eq!(report.update_events, 5);
        // The writer may drain the burst in one gulp or several, but the
        // coalesced + surviving events always account for all five.
        let published = publishes.lock().unwrap();
        let survivors: usize = published.iter().map(|(_, ups)| ups.len()).sum();
        assert_eq!(survivors as u64 + report.updates_coalesced, 5);
        if report.publishes == 1 {
            // Single-gulp case: exactly the last update per prefix, in
            // arrival order of the survivors.
            assert_eq!(
                published[0].1,
                vec![
                    RouteUpdate::Announce(p4("11.0.0.0/8"), 7),
                    RouteUpdate::Announce(p4("10.0.0.0/8"), 4),
                ]
            );
            assert_eq!(report.updates_coalesced, 3);
        }
    }

    #[test]
    fn workers_observe_new_snapshots_between_batches() {
        let fib = shared(&[("10.0.0.0/8", 1)]);
        let seen_versions = Arc::new(AtomicU64::new(0));
        let hook = {
            let seen = Arc::clone(&seen_versions);
            Arc::new(move |_w: usize, _k: &[u32], _o: &[u16], v: u64| {
                seen.fetch_max(v, Ordering::Relaxed);
            })
        };
        let engine = Engine::start(
            Arc::clone(&fib),
            EngineConfig::new(1).pin_workers(false).on_batch(hook),
        );
        let ingress = engine.ingress();
        let control = engine.control();
        let batch: Arc<[u32]> = Arc::from(vec![0x0A00_0001u32]);

        control.announce(p4("12.0.0.0/8"), 3).unwrap();
        let t = engine.telemetry();
        while t.publishes.get() == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let published = t.published_version.get();
        assert!(published >= 2, "initial insert + announce");
        // A batch served after the publish must see that version.
        while ingress.try_submit(Arc::clone(&batch)).is_err() {
            std::thread::sleep(Duration::from_millis(1));
        }
        let report = engine.shutdown(Duration::from_secs(10));
        assert!(report.drained_clean);
        assert_eq!(seen_versions.load(Ordering::Relaxed), published);
    }

    #[test]
    fn vrf_batches_and_updates_route_to_the_addressed_tenant() {
        let fib = shared(&[("10.0.0.0/8", 1)]);
        let cfg = PoptrieConfig::new().direct_bits(16).build().unwrap();
        let vrfs = Arc::new(VrfTable::<u32>::shared(cfg, 1 << 16));
        let a = vrfs.create();
        let b = vrfs.create();

        let served: Served = Arc::new(Mutex::new(Vec::new()));
        let hook = {
            let served = Arc::clone(&served);
            Arc::new(move |w: usize, _k: &[u32], out: &[u16], _v: u64| {
                served.lock().unwrap().push((w, out.to_vec()));
            })
        };
        let engine = Engine::start(
            Arc::clone(&fib),
            EngineConfig::new(1)
                .pin_workers(false)
                .vrfs(Arc::clone(&vrfs))
                .on_batch(hook),
        );
        let control = engine.control();
        let ingress = engine.ingress();

        // Same prefix, three tables, three different answers: the (VRF,
        // prefix) coalescing key must keep all three.
        control.announce_vrf(a, p4("10.0.0.0/8"), 11).unwrap();
        control.announce_vrf(b, p4("10.0.0.0/8"), 22).unwrap();
        control.announce(p4("11.0.0.0/8"), 7).unwrap();
        // Hostile ids are refused at the edge, drop counted.
        assert!(control
            .send_vrf(VrfId::new(99), RouteUpdate::Announce(p4("12.0.0.0/8"), 9))
            .is_err());

        let t = engine.telemetry();
        while t.update_events.get() < 3 {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(vrfs.get(a).unwrap().lookup(0x0A00_0001), Some(11));
        assert_eq!(vrfs.get(b).unwrap().lookup(0x0A00_0001), Some(22));
        assert_eq!(fib.lookup(0x0A00_0001), Some(1), "engine FIB untouched");
        assert_eq!(fib.lookup(0x0B00_0001), Some(7));

        let batch: Arc<[u32]> = Arc::from(vec![0x0A00_0001u32]);
        while ingress.try_submit_vrf(a, Arc::clone(&batch)).is_err() {
            std::thread::sleep(Duration::from_millis(1));
        }
        while ingress.try_submit_vrf(b, Arc::clone(&batch)).is_err() {
            std::thread::sleep(Duration::from_millis(1));
        }
        while ingress.try_submit(Arc::clone(&batch)).is_err() {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(ingress
            .try_submit_vrf(VrfId::new(99), Arc::clone(&batch))
            .is_err());

        let report = engine.shutdown(Duration::from_secs(10));
        assert!(report.drained_clean);
        let answers: Vec<u16> = served
            .lock()
            .unwrap()
            .iter()
            .map(|(_, out)| out[0])
            .collect();
        // One batch per table, each answered from its own snapshot.
        assert_eq!(answers.len(), 3);
        for nh in [11, 22, 1] {
            assert!(answers.contains(&nh), "missing answer {nh} in {answers:?}");
        }
        assert_eq!(report.vrf_batches, 2);
        assert_eq!(report.vrf_packets, 2);
        assert_eq!(report.vrf_updates, 2);
        assert_eq!(report.updates_applied, 1, "only the engine announce");
        assert_eq!(report.update_events, 3);
        assert_eq!(report.convergence.samples, 3);
        assert_eq!(report.control_dropped, 1, "the hostile send_vrf");
        assert_eq!(report.dropped_batches, 1, "the hostile try_submit_vrf");
        vrfs.audit().unwrap();
    }
}
