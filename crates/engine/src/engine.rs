//! The sharded forwarding engine: worker threads, the control-plane
//! writer, and their handles.
//!
//! ## Architecture
//!
//! ```text
//!                      ┌────────────┐   Arc<[K]> batches
//!   feeders ──────────▶│ per-worker │──▶ worker 0 ─┐
//!   (Ingress handles)  │  bounded   │──▶ worker 1 ─┤ lookup_batch against
//!                      │   queues   │──▶   ...     ─┤ an RCU FibSnapshot,
//!                      └────────────┘──▶ worker N ─┘ re-acquired per batch
//!
//!   route sources ────▶ bounded control channel ──▶ single writer thread
//!   (Control handles)      (RouteUpdate<K>)         coalesce → update_batch
//!                                                   → one publish per batch
//! ```
//!
//! Workers never take the writer lock: each batch runs against the
//! [`FibSnapshot`](poptrie::sync::FibSnapshot) current when the batch is
//! picked up, the paper's §3.5 read model. The single writer is the
//! paper's "single-threaded update operation": it drains the control
//! channel in bursts, coalesces duplicate-prefix updates (only the last
//! announce/withdraw per prefix survives — BGP bursts repeatedly touch
//! the same prefixes), applies the burst under one writer critical
//! section, and publishes exactly one snapshot per burst.
//!
//! Every queue is bounded; every producer edge is non-blocking and sheds
//! load with drop accounting rather than propagating backpressure into
//! the caller's thread. Workers are panic-isolated: a panicking batch
//! body is caught, counted, and the worker loop re-enters on the same OS
//! thread.
//!
//! On a NUMA machine the engine serves from one FIB replica per memory
//! node (replica 0 is the caller's `SharedFib`): each pinned worker
//! reads the replica local to its node, and the writer applies every
//! coalesced burst to all replicas in one iteration. Note that
//! out-of-band mutations of the primary (calling
//! `SharedFib::insert`/`set_batch_backend` directly after
//! [`Engine::start`]) bypass the writer and therefore do **not** reach
//! the other replicas — route all updates through [`Control`] when
//! replicas are in play, and set the dispatch backend before starting
//! the engine (replication copies it).

use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use poptrie::sync::{BatchOutcome, RouteUpdate, SharedFib};
use poptrie::{SourceId, VrfId};
use poptrie_bitops::Bits;
use poptrie_rib::{NextHop, Prefix, NO_ROUTE};
use poptrie_vrf::VrfTable;

use poptrie_telemetry::Log2Histogram;

#[cfg(feature = "trace")]
use poptrie_trace::{pack_worker_tier, EventKind, Recorder, RingWriter};

use crate::affinity;
use crate::queue::{Bounded, PushError, NO_SOURCE};
use crate::stats::EngineTelemetry;

/// Observer of every served batch: `(worker, keys, next_hops,
/// snapshot_version)`. Runs on the worker thread — keep it cheap.
pub type BatchHook<K> = Arc<dyn Fn(usize, &[K], &[NextHop], u64) + Send + Sync>;

/// Observer of every published update batch: the [`BatchOutcome`] and the
/// coalesced updates applied at that version, in application order. Runs
/// on the writer thread.
pub type PublishHook<K> = Arc<dyn Fn(BatchOutcome, &[RouteUpdate<K>]) + Send + Sync>;

/// One queued batch: its ingress timestamp (for queue-wait latency and
/// the deadline policy), the VRF it targets (`None` = the engine's own
/// FIB), and the keys.
type Stamped<K> = (Instant, Option<VrfId>, Arc<[K]>);

/// One queued route update: its [`Control::send`] timestamp (for the
/// convergence-lag histogram), the convergence span it belongs to (0 =
/// none; see [`Control::send_spanned`]), the VRF it targets (`None` =
/// the engine's own FIB), and the update itself. The span word rides
/// along unconditionally — it is 8 bytes per queued event and never
/// touched on the hot path — so the control-plane API is identical with
/// and without the `trace` feature.
type StampedUpdate<K> = (Instant, u64, Option<VrfId>, RouteUpdate<K>);

/// An out-of-range worker or source index handed to one of the engine's
/// indexed accessors ([`Engine::ingress_for`], [`Engine::inject_panic`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BadIndex {
    /// The index the caller asked for.
    pub index: usize,
    /// Number of valid entries (valid indices are `0..len`).
    pub len: usize,
}

impl core::fmt::Display for BadIndex {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "index {} out of range (len {})", self.index, self.len)
    }
}

impl std::error::Error for BadIndex {}

/// The per-worker batch queues, shared between the engine, its workers
/// and every [`Ingress`] handle.
type BatchQueues<K> = Arc<Vec<Arc<Bounded<Stamped<K>>>>>;

/// What happens when a batch cannot be served in time.
///
/// Under [`Refuse`](QosPolicy::Refuse) a full queue pushes back at
/// ingress: the feeder gets the batch back and decides (the original
/// backpressure-by-refusal model). Under
/// [`Deadline`](QosPolicy::Deadline) the queue still bounds admission,
/// but a batch that *was* admitted and then waited longer than the
/// deadline is dropped at pop instead of served late — the SLO stance
/// that a stale answer is worth less than the next fresh packet. Every
/// deadline drop is counted per worker and per source and reconciled in
/// [`EngineReport`]: `offered == delivered + deadline-dropped + refused`
/// holds exactly, at batch and at packet granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QosPolicy {
    /// Shed at ingress only; everything admitted is served (default).
    Refuse,
    /// Drop admitted batches whose queue wait exceeds this deadline.
    Deadline(Duration),
}

/// Construction parameters for an [`Engine`]. Start from
/// [`EngineConfig::new`] and chain setters; defaults suit a synthetic
/// benchmark driver.
pub struct EngineConfig<K: Bits> {
    workers: usize,
    queue_capacity: usize,
    control_capacity: usize,
    coalesce_window: usize,
    pin_workers: bool,
    batch_delay: Duration,
    qos: QosPolicy,
    sources: Vec<(String, u32)>,
    numa_replicas: Option<usize>,
    vrfs: Option<Arc<VrfTable<K>>>,
    on_batch: Option<BatchHook<K>>,
    on_publish: Option<PublishHook<K>>,
    #[cfg(feature = "trace")]
    recorder: Option<Recorder>,
}

impl<K: Bits> core::fmt::Debug for EngineConfig<K> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("EngineConfig")
            .field("workers", &self.workers)
            .field("queue_capacity", &self.queue_capacity)
            .field("control_capacity", &self.control_capacity)
            .field("coalesce_window", &self.coalesce_window)
            .field("pin_workers", &self.pin_workers)
            .field("batch_delay", &self.batch_delay)
            .field("qos", &self.qos)
            .field("sources", &self.sources)
            .field("numa_replicas", &self.numa_replicas)
            .field("vrfs", &self.vrfs)
            .finish_non_exhaustive()
    }
}

impl<K: Bits> EngineConfig<K> {
    /// A config for `workers` forwarding threads (minimum 1). Defaults:
    /// 64-batch ingress queues, 4096-event control channel, 256-event
    /// coalesce window, workers pinned round-robin to cores, no batch
    /// delay, no hooks.
    pub fn new(workers: usize) -> Self {
        EngineConfig {
            workers: workers.max(1),
            queue_capacity: 64,
            control_capacity: 4096,
            coalesce_window: 256,
            pin_workers: true,
            batch_delay: Duration::ZERO,
            qos: QosPolicy::Refuse,
            sources: Vec::new(),
            numa_replicas: None,
            vrfs: None,
            on_batch: None,
            on_publish: None,
            #[cfg(feature = "trace")]
            recorder: None,
        }
    }

    /// Ingress queue depth per worker, in batches (minimum 1).
    pub fn queue_capacity(mut self, batches: usize) -> Self {
        self.queue_capacity = batches.max(1);
        self
    }

    /// Control channel depth, in route-update events (minimum 1).
    pub fn control_capacity(mut self, events: usize) -> Self {
        self.control_capacity = events.max(1);
        self
    }

    /// Maximum events the writer drains, coalesces, and publishes as one
    /// snapshot (minimum 1).
    pub fn coalesce_window(mut self, events: usize) -> Self {
        self.coalesce_window = events.max(1);
        self
    }

    /// Pin worker `i` to core `i % cores` (`true` by default). Pinning is
    /// best-effort; unsupported platforms run unpinned.
    pub fn pin_workers(mut self, pin: bool) -> Self {
        self.pin_workers = pin;
        self
    }

    /// Sleep this long before serving each batch — a chaos knob
    /// simulating a slow egress path, used to exercise backpressure
    /// deterministically in tests. `Duration::ZERO` (default) disables.
    pub fn batch_delay(mut self, delay: Duration) -> Self {
        self.batch_delay = delay;
        self
    }

    /// What happens to batches that cannot be served in time (see
    /// [`QosPolicy`]; default [`QosPolicy::Refuse`]).
    pub fn qos(mut self, policy: QosPolicy) -> Self {
        self.qos = policy;
        self
    }

    /// Register a named traffic source with a relative `weight`
    /// (minimum 1). Queue slots are apportioned among the registered
    /// sources by largest-remainder: every source gets at least one
    /// slot, the rest are split in proportion to weight, and — as long
    /// as there are no more sources than slots — the quotas sum to
    /// exactly `queue_capacity`, so the weighted shares can never
    /// jointly oversubscribe a queue (see [`source_quotas`] for the
    /// degenerate more-sources-than-slots case). Under contention a
    /// source can fill at most its share of each queue, so a flooding
    /// source is refused while lighter ones still get in. Feed a
    /// registered source through [`Engine::ingress_for`]; the plain
    /// [`Engine::ingress`] handle remains unweighted and quota-exempt.
    pub fn source(mut self, name: &str, weight: u32) -> Self {
        self.sources.push((name.to_string(), weight.max(1)));
        self
    }

    /// Serve lookups from this many FIB replicas (minimum 1) instead of
    /// auto-detecting one replica per NUMA node. Replica 0 is always the
    /// `SharedFib` handed to [`Engine::start`]; the engine clones the
    /// others at startup and its writer applies every coalesced update
    /// burst to each, so all replicas converge after every burst. Mostly
    /// a testing override — the auto-detected value is right on real
    /// hardware.
    pub fn numa_replicas(mut self, replicas: usize) -> Self {
        self.numa_replicas = Some(replicas.max(1));
        self
    }

    /// Attach a multi-tenant VRF registry. Workers then accept
    /// VRF-keyed batches ([`Ingress::try_submit_vrf`]) served against
    /// the addressed tenant's snapshot, and the writer applies VRF-keyed
    /// route updates ([`Control::send_vrf`]) to the addressed tenant
    /// only — engine-wide coalescing still runs, but per `(VRF,
    /// prefix)`, so one tenant's churn never merges into another's.
    /// VRF tables are *not* NUMA-replicated: every worker reads the
    /// registry's single copy (the nodes stay tenant-private and small).
    pub fn vrfs(mut self, vrfs: Arc<VrfTable<K>>) -> Self {
        self.vrfs = Some(vrfs);
        self
    }

    /// Install a per-batch observer (see [`BatchHook`]).
    pub fn on_batch(mut self, hook: BatchHook<K>) -> Self {
        self.on_batch = Some(hook);
        self
    }

    /// Install a per-publish observer (see [`PublishHook`]).
    pub fn on_publish(mut self, hook: PublishHook<K>) -> Self {
        self.on_publish = Some(hook);
        self
    }

    /// Attach a flight recorder: every worker registers an event ring
    /// named `worker{i}` and the writer registers `writer`. Workers
    /// record the ingress → dequeue → lookup slice for 1-in-N sampled
    /// batches (N = the recorder's sample divisor) plus every snapshot
    /// adoption; the writer records every burst, spanned update apply,
    /// and per-replica publish. Only available with the `trace` feature
    /// — without it this method does not exist and the engine contains
    /// no recorder code at all.
    #[cfg(feature = "trace")]
    pub fn recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = Some(recorder);
        self
    }
}

/// Clonable dataplane feeder handle: submits packet batches to worker
/// queues. Obtained from [`Engine::ingress`].
pub struct Ingress<K: Bits> {
    queues: BatchQueues<K>,
    stats: Arc<EngineTelemetry>,
    next: Arc<AtomicUsize>,
    /// Source index this handle submits as ([`NO_SOURCE`] for the
    /// unweighted [`Engine::ingress`] handle).
    source: u32,
    /// Per-queue slot quota for this source (`usize::MAX` when
    /// unweighted).
    quota: usize,
    /// The engine's VRF registry, when one was attached — consulted to
    /// validate [`Ingress::try_submit_vrf`] ids at the edge.
    vrfs: Option<Arc<VrfTable<K>>>,
}

impl<K: Bits> Clone for Ingress<K> {
    fn clone(&self) -> Self {
        Ingress {
            queues: Arc::clone(&self.queues),
            stats: Arc::clone(&self.stats),
            next: Arc::clone(&self.next),
            source: self.source,
            quota: self.quota,
            vrfs: self.vrfs.clone(),
        }
    }
}

impl<K: Bits> core::fmt::Debug for Ingress<K> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Ingress")
            .field("workers", &self.queues.len())
            .field("source", &self.source)
            .field("quota", &self.quota)
            .finish_non_exhaustive()
    }
}

impl<K: Bits> Ingress<K> {
    /// Count one accepted batch of `n` packets on queue `worker`.
    fn count_accept(&self, worker: usize, n: u64, depth: usize) {
        self.stats.submitted_batches.inc();
        self.stats.batch_size.record(n);
        self.stats
            .worker(worker)
            .queue_depth
            .record_max(depth as u64);
        if self.source != NO_SOURCE {
            self.stats.sources()[self.source as usize]
                .submitted_batches
                .inc();
        }
    }

    /// Count one refused batch of `n` packets.
    fn count_refuse(&self, n: u64) {
        self.stats.dropped_batches.inc();
        self.stats.dropped_packets.add(n);
        if self.source != NO_SOURCE {
            self.stats.sources()[self.source as usize]
                .refused_batches
                .inc();
        }
    }

    /// Submit a batch to worker `worker`'s queue without blocking. On
    /// refusal (queue full, source quota exhausted, or engine shut down)
    /// the batch is handed back and the drop is **already counted** in
    /// [`dropped_batches`](EngineTelemetry::dropped_batches) /
    /// [`dropped_packets`](EngineTelemetry::dropped_packets).
    pub fn try_submit_to(&self, worker: usize, batch: Arc<[K]>) -> Result<(), Arc<[K]>> {
        let n = batch.len() as u64;
        match self.queues[worker].try_push_from(
            self.source,
            self.quota,
            (Instant::now(), None, batch),
        ) {
            Ok(depth) => {
                self.count_accept(worker, n, depth);
                Ok(())
            }
            Err(PushError::Full((_, _, b))) | Err(PushError::Closed((_, _, b))) => {
                self.count_refuse(n);
                Err(b)
            }
        }
    }

    /// Submit a batch addressed to VRF `vrf` (round-robin across workers
    /// like [`Ingress::try_submit`]). The id is validated against the
    /// engine's attached registry at this edge: an unknown id — or an
    /// engine started without [`EngineConfig::vrfs`] — refuses the batch
    /// with the drop already counted, exactly like a full queue. The
    /// serving worker resolves the tenant's own RCU snapshot per batch,
    /// so per-VRF lookup isolation matches the engine FIB's read model.
    pub fn try_submit_vrf(&self, vrf: VrfId, batch: Arc<[K]>) -> Result<usize, Arc<[K]>> {
        if self.vrfs.as_ref().is_none_or(|v| v.get(vrf).is_none()) {
            self.count_refuse(batch.len() as u64);
            return Err(batch);
        }
        let n = self.queues.len();
        let packets = batch.len() as u64;
        let start = self.next.fetch_add(1, Ordering::Relaxed);
        let mut stamped = (Instant::now(), Some(vrf), batch);
        for i in 0..n {
            let w = (start + i) % n;
            match self.queues[w].try_push_from(self.source, self.quota, stamped) {
                Ok(depth) => {
                    self.count_accept(w, packets, depth);
                    return Ok(w);
                }
                Err(PushError::Full(s)) | Err(PushError::Closed(s)) => stamped = s,
            }
        }
        self.count_refuse(packets);
        Err(stamped.2)
    }

    /// Submit a batch to the next worker in round-robin order, skipping
    /// over full queues — load shifts away from a momentarily slow worker
    /// instead of being shed. Returns the accepting worker's index; on
    /// refusal (every queue full or quota-exhausted, or shutdown) the
    /// batch is handed back and the drop is already counted.
    pub fn try_submit(&self, batch: Arc<[K]>) -> Result<usize, Arc<[K]>> {
        let n = self.queues.len();
        let packets = batch.len() as u64;
        let start = self.next.fetch_add(1, Ordering::Relaxed);
        let mut stamped = (Instant::now(), None, batch);
        for i in 0..n {
            let w = (start + i) % n;
            match self.queues[w].try_push_from(self.source, self.quota, stamped) {
                Ok(depth) => {
                    self.stats.submitted_batches.inc();
                    self.stats.worker(w).queue_depth.record_max(depth as u64);
                    if self.source != NO_SOURCE {
                        self.stats.sources()[self.source as usize]
                            .submitted_batches
                            .inc();
                    }
                    return Ok(w);
                }
                Err(PushError::Full(s)) | Err(PushError::Closed(s)) => stamped = s,
            }
        }
        self.count_refuse(packets);
        Err(stamped.2)
    }

    /// Number of worker queues this handle feeds.
    pub fn workers(&self) -> usize {
        self.queues.len()
    }

    /// The per-queue slot quota this handle submits under
    /// (`usize::MAX` when unweighted).
    pub fn quota(&self) -> usize {
        self.quota
    }
}

/// Clonable control-plane handle: feeds route updates to the single
/// writer thread. Obtained from [`Engine::control`].
pub struct Control<K: Bits> {
    queue: Arc<Bounded<StampedUpdate<K>>>,
    stats: Arc<EngineTelemetry>,
    /// The engine's VRF registry, when one was attached — consulted to
    /// validate [`Control::send_vrf`] ids at the edge.
    vrfs: Option<Arc<VrfTable<K>>>,
}

impl<K: Bits> Clone for Control<K> {
    fn clone(&self) -> Self {
        Control {
            queue: Arc::clone(&self.queue),
            stats: Arc::clone(&self.stats),
            vrfs: self.vrfs.clone(),
        }
    }
}

impl<K: Bits> core::fmt::Debug for Control<K> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Control").finish_non_exhaustive()
    }
}

impl<K: Bits> Control<K> {
    /// Enqueue a route update without blocking. On refusal (channel full
    /// or engine shut down) the update is handed back and the drop is
    /// already counted in
    /// [`control_dropped`](EngineTelemetry::control_dropped). Accepted
    /// updates are timestamped here; the writer records the elapsed time
    /// to snapshot publication in the convergence-lag histogram
    /// ([`EngineTelemetry::convergence_ns`]).
    pub fn send(&self, update: RouteUpdate<K>) -> Result<(), RouteUpdate<K>> {
        self.send_spanned(0, update)
    }

    /// [`Control::send`] with a convergence-span ID attached. The span
    /// originates wherever the update entered the stack (a BGP session
    /// allocates one per accepted UPDATE); the writer stamps it on the
    /// `UpdateApply` trace event when a flight recorder is attached, so
    /// a cross-layer span can follow one route from protocol acceptance
    /// through snapshot publication to the first lookup served against
    /// it. Span 0 means "no span" and is what [`Control::send`] uses.
    pub fn send_spanned(&self, span: u64, update: RouteUpdate<K>) -> Result<(), RouteUpdate<K>> {
        self.push(span, None, update)
    }

    /// Enqueue a route update addressed to VRF `vrf`. The id is
    /// validated against the engine's attached registry at this edge: an
    /// unknown id — or an engine started without [`EngineConfig::vrfs`]
    /// — refuses the update with the drop counted in
    /// [`control_dropped`](EngineTelemetry::control_dropped). Accepted
    /// updates flow through the same single writer and the same
    /// convergence-lag accounting as engine-FIB updates, but apply to
    /// the addressed tenant only.
    pub fn send_vrf(&self, vrf: VrfId, update: RouteUpdate<K>) -> Result<(), RouteUpdate<K>> {
        if self.vrfs.as_ref().is_none_or(|v| v.get(vrf).is_none()) {
            self.stats.control_dropped.inc();
            return Err(update);
        }
        self.push(0, Some(vrf), update)
    }

    /// Enqueue an announce of `prefix -> nh` into VRF `vrf`.
    pub fn announce_vrf(
        &self,
        vrf: VrfId,
        prefix: Prefix<K>,
        nh: NextHop,
    ) -> Result<(), RouteUpdate<K>> {
        self.send_vrf(vrf, RouteUpdate::Announce(prefix, nh))
    }

    /// Enqueue a withdraw of `prefix` from VRF `vrf`.
    pub fn withdraw_vrf(&self, vrf: VrfId, prefix: Prefix<K>) -> Result<(), RouteUpdate<K>> {
        self.send_vrf(vrf, RouteUpdate::Withdraw(prefix))
    }

    fn push(
        &self,
        span: u64,
        vrf: Option<VrfId>,
        update: RouteUpdate<K>,
    ) -> Result<(), RouteUpdate<K>> {
        match self.queue.try_push((Instant::now(), span, vrf, update)) {
            Ok(_) => Ok(()),
            Err(PushError::Full((_, _, _, u))) | Err(PushError::Closed((_, _, _, u))) => {
                self.stats.control_dropped.inc();
                Err(u)
            }
        }
    }

    /// Enqueue an announce (insert-or-replace) for `prefix -> nh`.
    pub fn announce(&self, prefix: Prefix<K>, nh: NextHop) -> Result<(), RouteUpdate<K>> {
        self.send(RouteUpdate::Announce(prefix, nh))
    }

    /// Enqueue a withdraw for `prefix`.
    pub fn withdraw(&self, prefix: Prefix<K>) -> Result<(), RouteUpdate<K>> {
        self.send(RouteUpdate::Withdraw(prefix))
    }

    /// Momentary control-channel depth.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

/// Tail quantiles of a per-batch latency distribution, extracted from a
/// [`Log2Histogram`] (resolution is bounded by its power-of-two bucket
/// width). Every figure is reported in both nanoseconds (comparable
/// across hosts) and TSC cycles (comparable to the paper's per-lookup
/// numbers), converted through the once-per-process
/// [`poptrie_cycles::tsc::cycles_per_ns`] calibration. Zeros when no
/// samples were taken.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Number of recorded batches.
    pub samples: u64,
    /// Mean, rounded to whole nanoseconds.
    pub mean_ns: u64,
    /// Median (p50).
    pub p50_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// 99.9th percentile.
    pub p999_ns: u64,
    /// Mean, in calibrated TSC cycles.
    pub mean_cycles: u64,
    /// Median (p50), in calibrated TSC cycles.
    pub p50_cycles: u64,
    /// 99th percentile, in calibrated TSC cycles.
    pub p99_cycles: u64,
    /// 99.9th percentile, in calibrated TSC cycles.
    pub p999_cycles: u64,
}

impl LatencySummary {
    /// Summarize an explicit bucket-count array with its value sum.
    fn from_counts(counts: &[u64; poptrie_telemetry::LOG2_BUCKETS], sum: u64) -> Self {
        let samples: u64 = counts.iter().sum();
        let q = |q| Log2Histogram::quantile_of_counts(counts, q).unwrap_or(0);
        let cycles = poptrie_cycles::tsc::ns_to_cycles;
        let (mean_ns, p50_ns, p99_ns, p999_ns) = (
            sum.checked_div(samples).unwrap_or(0),
            q(0.5),
            q(0.99),
            q(0.999),
        );
        LatencySummary {
            samples,
            mean_ns,
            p50_ns,
            p99_ns,
            p999_ns,
            mean_cycles: cycles(mean_ns),
            p50_cycles: cycles(p50_ns),
            p99_cycles: cycles(p99_ns),
            p999_cycles: cycles(p999_ns),
        }
    }

    /// Summarize a live histogram.
    fn from_histogram(h: &Log2Histogram) -> Self {
        Self::from_counts(&h.counts(), h.sum())
    }
}

/// Final accounting for one worker, from [`EngineReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerReport {
    /// Index of the NUMA FIB replica this worker served lookups from
    /// (0 = the primary).
    pub replica: usize,
    /// Packets this worker looked up.
    pub packets: u64,
    /// Batches this worker drained.
    pub batches: u64,
    /// Panics recovered by in-place respawn.
    pub respawns: u64,
    /// Batches this worker dropped under [`QosPolicy::Deadline`].
    pub deadline_dropped_batches: u64,
    /// Packets in those dropped batches.
    pub deadline_dropped_packets: u64,
    /// Queue-wait latency distribution (enqueue to pop).
    pub queue_wait: LatencySummary,
    /// Lookup service-time distribution (per served batch).
    pub service: LatencySummary,
}

/// Final accounting for one registered source, from [`EngineReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceReport {
    /// The source's registered name.
    pub name: String,
    /// The source's registered weight.
    pub weight: u32,
    /// The per-worker-queue slot quota derived from the weight.
    pub quota: usize,
    /// Batches accepted into a queue.
    pub submitted_batches: u64,
    /// Batches refused at ingress (queue full or quota exhausted).
    pub refused_batches: u64,
    /// Batches served to completion.
    pub delivered_batches: u64,
    /// Batches dropped by the deadline policy.
    pub deadline_dropped_batches: u64,
}

/// What [`Engine::shutdown`] observed: totals, drop accounting, and
/// whether every thread drained and joined within the deadline.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Per-worker accounting, indexed by worker.
    pub workers: Vec<WorkerReport>,
    /// Per-source accounting, in registration order (empty when no
    /// sources were registered).
    pub sources: Vec<SourceReport>,
    /// Total packets looked up.
    pub packets: u64,
    /// Total batches served.
    pub batches: u64,
    /// Batches shed at ingress (queues full).
    pub dropped_batches: u64,
    /// Packets in batches shed at ingress.
    pub dropped_packets: u64,
    /// Batches dropped under [`QosPolicy::Deadline`] after admission.
    pub deadline_dropped_batches: u64,
    /// Packets in deadline-dropped batches. The packet accounting
    /// identity: `offered == packets + deadline_dropped_packets +
    /// dropped_packets`.
    pub deadline_dropped_packets: u64,
    /// Engine-wide queue-wait latency (all workers' histograms merged).
    pub queue_wait: LatencySummary,
    /// Engine-wide lookup service time (all workers' histograms merged).
    pub service: LatencySummary,
    /// FIB replicas the engine served from (1 = no NUMA replication).
    pub fib_replicas: usize,
    /// Snapshots published to non-primary replicas by the writer (one
    /// per extra replica per coalesced burst).
    pub replica_publishes: u64,
    /// Snapshots published by the writer.
    pub publishes: u64,
    /// Route-update events consumed.
    pub update_events: u64,
    /// Events that changed the RIB.
    pub updates_applied: u64,
    /// Events merged away by coalescing.
    pub updates_coalesced: u64,
    /// Route updates refused at the control channel.
    pub control_dropped: u64,
    /// VRF-keyed batches served (a subset of `batches`; see
    /// [`Ingress::try_submit_vrf`]).
    pub vrf_batches: u64,
    /// Packets in those batches (a subset of `packets`).
    pub vrf_packets: u64,
    /// Route-update events the writer applied to VRF tables (disjoint
    /// from `updates_applied`, which counts the engine's own FIB).
    pub vrf_updates: u64,
    /// Convergence lag: time from [`Control::send`] accepting a route
    /// update to the writer publishing the snapshot containing it.
    pub convergence: LatencySummary,
    /// Writer panics (a poisoned update burst or publish hook) recovered
    /// by respawning the writer loop in place.
    pub writer_respawns: u64,
    /// `true` when every queue was fully drained before the threads
    /// exited.
    pub drained_clean: bool,
    /// Threads that failed to join within the shutdown deadline (0 on a
    /// clean shutdown; leaked threads are detached, never blocked on).
    pub leaked_threads: usize,
    /// Wall-clock time from [`Engine::start`] to the end of shutdown.
    pub elapsed: Duration,
}

/// Per-worker-queue slot quotas for weighted sources, by
/// largest-remainder apportionment: every source gets one reserved
/// slot, the remaining `capacity - n` slots are split in proportion to
/// weight, and the sources with the largest fractional parts absorb the
/// leftovers (ties broken by registration order, so the result is
/// deterministic).
///
/// Invariants:
/// * every quota is at least 1, so a registered source can always make
///   progress;
/// * when `weights.len() <= capacity`, the quotas sum to **exactly**
///   `capacity` — the weighted shares can never jointly oversubscribe a
///   queue. (The previous `max(1, capacity·w/Σw)` formula broke this:
///   flooring each share at one slot on top of independent truncation
///   could push the sum past the capacity, quietly handing heavy
///   sources admission the queue could not honor.)
/// * with more sources than slots, the per-source floor wins: every
///   source keeps its minimum one slot and the queue's own capacity
///   still bounds actual admission. The quotas are individually honest
///   but collectively oversubscribed by construction in this degenerate
///   configuration.
pub fn source_quotas(capacity: usize, weights: &[u32]) -> Vec<usize> {
    let n = weights.len();
    if n == 0 {
        return Vec::new();
    }
    if n >= capacity {
        return vec![1; n];
    }
    let total: u64 = weights.iter().map(|&w| w as u64).sum::<u64>().max(1);
    let spare = (capacity - n) as u64;
    let mut quotas: Vec<usize> = Vec::with_capacity(n);
    let mut by_remainder: Vec<(u64, usize)> = Vec::with_capacity(n);
    for (i, &w) in weights.iter().enumerate() {
        let share = spare * w as u64;
        quotas.push(1 + (share / total) as usize);
        by_remainder.push((share % total, i));
    }
    let assigned: usize = quotas.iter().sum();
    by_remainder.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    for &(_, i) in by_remainder.iter().take(capacity - assigned) {
        quotas[i] += 1;
    }
    quotas
}

/// The running engine. Owns the worker and writer threads; hand out
/// [`Ingress`]/[`Control`] handles to feed it, and finish with
/// [`Engine::shutdown`] for drain-then-join teardown.
pub struct Engine<K: Bits> {
    fib: Arc<SharedFib<K>>,
    /// All FIB replicas, primary first; workers read the one local to
    /// their NUMA node, the writer publishes to every one.
    replicas: Vec<Arc<SharedFib<K>>>,
    queues: BatchQueues<K>,
    control: Arc<Bounded<StampedUpdate<K>>>,
    stats: Arc<EngineTelemetry>,
    vrfs: Option<Arc<VrfTable<K>>>,
    panic_flags: Vec<Arc<AtomicBool>>,
    workers: Vec<JoinHandle<()>>,
    writer: Option<JoinHandle<()>>,
    next: Arc<AtomicUsize>,
    started: Instant,
}

impl<K: Bits> core::fmt::Debug for Engine<K> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Engine")
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl<K: Bits> Engine<K> {
    /// Spawn the worker threads and the control-plane writer over
    /// `fib`. The engine serves lookups against `fib`'s RCU snapshots
    /// and routes all mutations through its single writer.
    pub fn start(fib: Arc<SharedFib<K>>, config: EngineConfig<K>) -> Self {
        let nworkers = config.workers;
        let weights: Vec<u32> = config.sources.iter().map(|(_, w)| *w).collect();
        let quotas = source_quotas(config.queue_capacity, &weights);
        let source_specs: Vec<(String, u32, usize)> = config
            .sources
            .iter()
            .zip(&quotas)
            .map(|((name, w), &quota)| (name.clone(), *w, quota))
            .collect();
        let stats = Arc::new(EngineTelemetry::new(nworkers, &source_specs));
        stats.published_version.set(fib.version());

        // One FIB replica per NUMA node (or per the explicit override),
        // primary first. Each extra replica is an independent deep copy
        // taken before any thread starts; the writer keeps them
        // converged burst by burst. Auto-detection never creates more
        // replicas than workers — an unread copy is pure memory cost.
        let topo = affinity::NumaTopology::detect();
        let nreplicas = config
            .numa_replicas
            .unwrap_or_else(|| topo.nodes().min(nworkers))
            .max(1);
        let mut replicas: Vec<Arc<SharedFib<K>>> = Vec::with_capacity(nreplicas);
        replicas.push(Arc::clone(&fib));
        for _ in 1..nreplicas {
            replicas.push(Arc::new(fib.replicate()));
        }
        stats.fib_replicas.set(nreplicas as u64);
        // Worker→replica affinity: a pinned worker reads the replica of
        // the node its core belongs to. When the replica count exceeds
        // the detected node count (the testing override on a small
        // host), the mapping degenerates to round-robin so every
        // replica is exercised.
        let replica_of = |worker: usize| -> usize {
            if topo.nodes() >= nreplicas && topo.cpus() > 0 {
                topo.node_of_cpu(worker % topo.cpus()) % nreplicas
            } else {
                worker % nreplicas
            }
        };
        let queues: BatchQueues<K> = Arc::new(
            (0..nworkers)
                .map(|_| Arc::new(Bounded::new(config.queue_capacity)))
                .collect(),
        );
        let control: Arc<Bounded<StampedUpdate<K>>> =
            Arc::new(Bounded::new(config.control_capacity));

        let mut panic_flags = Vec::with_capacity(nworkers);
        let mut workers = Vec::with_capacity(nworkers);
        for idx in 0..nworkers {
            let flag = Arc::new(AtomicBool::new(false));
            panic_flags.push(Arc::clone(&flag));
            let replica = replica_of(idx);
            stats.worker(idx).replica.set(replica as u64);
            let fib = Arc::clone(&replicas[replica]);
            let queue = Arc::clone(&queues[idx]);
            let stats = Arc::clone(&stats);
            let vrfs = config.vrfs.clone();
            let hook = config.on_batch.clone();
            let delay = config.batch_delay;
            let pin = config.pin_workers;
            let qos = config.qos;
            #[cfg(feature = "trace")]
            let recorder = config.recorder.clone();
            let handle = std::thread::Builder::new()
                .name(format!("fwd-worker-{idx}"))
                .spawn(move || {
                    if pin {
                        let _ = affinity::pin_current_thread(idx);
                    }
                    #[cfg(feature = "trace")]
                    {
                        let tracer = recorder.map(|r| r.register(&format!("worker{idx}")));
                        worker_main(
                            idx,
                            replica,
                            &fib,
                            vrfs.as_deref(),
                            &queue,
                            &stats,
                            &flag,
                            delay,
                            qos,
                            hook.as_ref(),
                            tracer.as_ref(),
                        );
                    }
                    #[cfg(not(feature = "trace"))]
                    worker_main(
                        idx,
                        replica,
                        &fib,
                        vrfs.as_deref(),
                        &queue,
                        &stats,
                        &flag,
                        delay,
                        qos,
                        hook.as_ref(),
                    );
                })
                .expect("spawn forwarding worker");
            workers.push(handle);
        }

        let writer = {
            let replicas = replicas.clone();
            let queue = Arc::clone(&control);
            let stats = Arc::clone(&stats);
            let vrfs = config.vrfs.clone();
            let hook = config.on_publish.clone();
            let window = config.coalesce_window;
            #[cfg(feature = "trace")]
            let recorder = config.recorder.clone();
            std::thread::Builder::new()
                .name("fib-writer".to_string())
                .spawn(move || {
                    #[cfg(feature = "trace")]
                    {
                        let tracer = recorder.map(|r| r.register("writer"));
                        writer_main(
                            &replicas,
                            vrfs.as_deref(),
                            &queue,
                            &stats,
                            window,
                            hook.as_ref(),
                            tracer.as_ref(),
                        );
                    }
                    #[cfg(not(feature = "trace"))]
                    writer_main(
                        &replicas,
                        vrfs.as_deref(),
                        &queue,
                        &stats,
                        window,
                        hook.as_ref(),
                    );
                })
                .expect("spawn control-plane writer")
        };

        Engine {
            fib,
            replicas,
            queues,
            control,
            stats,
            vrfs: config.vrfs,
            panic_flags,
            workers,
            writer: Some(writer),
            next: Arc::new(AtomicUsize::new(0)),
            started: Instant::now(),
        }
    }

    /// Number of forwarding workers.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// A clonable dataplane feeder handle: unweighted and quota-exempt
    /// (only total queue capacity bounds admission).
    pub fn ingress(&self) -> Ingress<K> {
        Ingress {
            queues: Arc::clone(&self.queues),
            stats: Arc::clone(&self.stats),
            next: Arc::clone(&self.next),
            source: NO_SOURCE,
            quota: usize::MAX,
            vrfs: self.vrfs.clone(),
        }
    }

    /// A feeder handle submitting as registered source `source` (a
    /// [`SourceId`] wrapping the index in [`EngineConfig::source`]
    /// registration order), subject to that source's weighted per-queue
    /// slot quota. An unregistered id is a [`BadIndex`] error, never a
    /// panic: fault-injection harnesses probe these knobs with hostile
    /// indices by design.
    pub fn ingress_for(&self, source: SourceId) -> Result<Ingress<K>, BadIndex> {
        let spec = self.stats.source(source.index()).ok_or(BadIndex {
            index: source.index(),
            len: self.stats.sources().len(),
        })?;
        Ok(Ingress {
            queues: Arc::clone(&self.queues),
            stats: Arc::clone(&self.stats),
            next: Arc::clone(&self.next),
            source: source.index() as u32,
            quota: spec.quota,
            vrfs: self.vrfs.clone(),
        })
    }

    /// A clonable control-plane handle.
    pub fn control(&self) -> Control<K> {
        Control {
            queue: Arc::clone(&self.control),
            stats: Arc::clone(&self.stats),
            vrfs: self.vrfs.clone(),
        }
    }

    /// The VRF registry attached at [`EngineConfig::vrfs`], if any.
    pub fn vrfs(&self) -> Option<&Arc<VrfTable<K>>> {
        self.vrfs.as_ref()
    }

    /// The engine's live counters.
    pub fn telemetry(&self) -> Arc<EngineTelemetry> {
        Arc::clone(&self.stats)
    }

    /// The shared FIB the engine serves (the primary, replica 0).
    pub fn fib(&self) -> &Arc<SharedFib<K>> {
        &self.fib
    }

    /// Every FIB replica the engine serves from, primary first. More
    /// than one entry only on a multi-node machine (or under the
    /// [`EngineConfig::numa_replicas`] override); the writer keeps them
    /// converged burst by burst.
    pub fn fib_replicas(&self) -> &[Arc<SharedFib<K>>] {
        &self.replicas
    }

    /// Make worker `worker` panic at the start of its next batch — a
    /// fault-injection knob for exercising the respawn path in tests.
    /// An out-of-range worker index is a [`BadIndex`] error, never a
    /// panic.
    pub fn inject_panic(&self, worker: usize) -> Result<(), BadIndex> {
        let flag = self.panic_flags.get(worker).ok_or(BadIndex {
            index: worker,
            len: self.panic_flags.len(),
        })?;
        flag.store(true, Ordering::Relaxed);
        Ok(())
    }

    /// Drain-then-join teardown: close every queue (producers are
    /// refused, consumers drain what is already queued), then join every
    /// thread, polling until `deadline`. A thread still running at the
    /// deadline is detached and counted in
    /// [`leaked_threads`](EngineReport::leaked_threads).
    pub fn shutdown(mut self, deadline: Duration) -> EngineReport {
        self.control.close();
        for q in self.queues.iter() {
            q.close();
        }
        let limit = Instant::now() + deadline;

        let mut handles: Vec<JoinHandle<()>> = self.workers.drain(..).collect();
        if let Some(w) = self.writer.take() {
            handles.push(w);
        }
        let mut leaked = 0usize;
        for h in handles {
            loop {
                if h.is_finished() {
                    let _ = h.join();
                    break;
                }
                if Instant::now() >= limit {
                    leaked += 1; // detach: dropping the handle never blocks
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        }

        let drained_clean =
            leaked == 0 && self.control.is_empty() && self.queues.iter().all(|q| q.is_empty());
        let workers = self
            .stats
            .workers()
            .iter()
            .map(|w| WorkerReport {
                replica: w.replica.get() as usize,
                packets: w.packets.get(),
                batches: w.batches.get(),
                respawns: w.respawns.get(),
                deadline_dropped_batches: w.deadline_dropped_batches.get(),
                deadline_dropped_packets: w.deadline_dropped_packets.get(),
                queue_wait: LatencySummary::from_histogram(&w.queue_wait_ns),
                service: LatencySummary::from_histogram(&w.service_ns),
            })
            .collect::<Vec<_>>();
        let sources = self
            .stats
            .sources()
            .iter()
            .map(|s| SourceReport {
                name: s.name.clone(),
                weight: s.weight,
                quota: s.quota,
                submitted_batches: s.submitted_batches.get(),
                refused_batches: s.refused_batches.get(),
                delivered_batches: s.delivered_batches.get(),
                deadline_dropped_batches: s.deadline_dropped_batches.get(),
            })
            .collect::<Vec<_>>();
        let wait_counts = self.stats.merged_queue_wait();
        let wait_sum: u64 = self
            .stats
            .workers()
            .iter()
            .map(|w| w.queue_wait_ns.sum())
            .sum();
        let service_counts = self.stats.merged_service();
        let service_sum: u64 = self
            .stats
            .workers()
            .iter()
            .map(|w| w.service_ns.sum())
            .sum();
        EngineReport {
            packets: self.stats.total_packets(),
            batches: self.stats.total_batches(),
            dropped_batches: self.stats.dropped_batches.get(),
            dropped_packets: self.stats.dropped_packets.get(),
            deadline_dropped_batches: self.stats.total_deadline_dropped_batches(),
            deadline_dropped_packets: self.stats.total_deadline_dropped_packets(),
            queue_wait: LatencySummary::from_counts(&wait_counts, wait_sum),
            service: LatencySummary::from_counts(&service_counts, service_sum),
            fib_replicas: self.replicas.len(),
            replica_publishes: self.stats.replica_publishes.get(),
            publishes: self.stats.publishes.get(),
            update_events: self.stats.update_events.get(),
            updates_applied: self.stats.updates_applied.get(),
            updates_coalesced: self.stats.updates_coalesced.get(),
            control_dropped: self.stats.control_dropped.get(),
            vrf_batches: self.stats.vrf_batches.get(),
            vrf_packets: self.stats.vrf_packets.get(),
            vrf_updates: self.stats.vrf_updates.get(),
            convergence: LatencySummary::from_histogram(&self.stats.convergence_ns),
            writer_respawns: self.stats.writer_respawns.get(),
            workers,
            sources,
            drained_clean,
            leaked_threads: leaked,
            elapsed: self.started.elapsed(),
        }
    }
}

impl<K: Bits> Drop for Engine<K> {
    /// Dropping without [`Engine::shutdown`] closes every queue so the
    /// threads exit after draining, but does not wait for them.
    fn drop(&mut self) {
        self.control.close();
        for q in self.queues.iter() {
            q.close();
        }
    }
}

/// One worker's panic-isolation loop: the batch-serving body runs under
/// `catch_unwind`; a panic is counted and the body re-entered on the same
/// OS thread, so a poisoned batch costs that batch and nothing else.
#[allow(clippy::too_many_arguments)]
fn worker_main<K: Bits>(
    idx: usize,
    replica: usize,
    fib: &SharedFib<K>,
    vrfs: Option<&VrfTable<K>>,
    queue: &Bounded<Stamped<K>>,
    stats: &EngineTelemetry,
    inject: &AtomicBool,
    delay: Duration,
    qos: QosPolicy,
    hook: Option<&BatchHook<K>>,
    #[cfg(feature = "trace")] tracer: Option<&RingWriter>,
) {
    #[cfg(not(feature = "trace"))]
    let _ = replica;
    loop {
        let run = catch_unwind(AssertUnwindSafe(|| {
            let mut out: Vec<NextHop> = Vec::new();
            // Last snapshot version this worker served against: a change
            // is this worker's adoption of a newly published snapshot —
            // the closing event of a convergence span.
            #[cfg(feature = "trace")]
            let mut last_version: u64 = 0;
            while let Some((source, (enqueued, vrf, batch))) = queue.pop_entry() {
                let w = stats.worker(idx);
                w.queue_depth.set(queue.len() as u64);
                let wait = enqueued.elapsed();
                w.queue_wait_ns.record(wait.as_nanos() as u64);
                // The per-batch sampling gate: decide once at dequeue so
                // a sampled batch carries its whole ingress → dequeue →
                // lookup slice coherently.
                #[cfg(feature = "trace")]
                let sampled = tracer.map(|t| t.tick()).unwrap_or(false);
                // Deadline check at pop, *before* the chaos delay: the
                // drop decision reflects only real queueing, so tests
                // with a deterministic batch_delay get exact counts.
                if let QosPolicy::Deadline(deadline) = qos {
                    if wait > deadline {
                        w.deadline_dropped_batches.inc();
                        w.deadline_dropped_packets.add(batch.len() as u64);
                        if source != NO_SOURCE {
                            stats.sources()[source as usize]
                                .deadline_dropped_batches
                                .inc();
                        }
                        continue;
                    }
                }
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
                if inject.swap(false, Ordering::Relaxed) {
                    panic!("injected worker fault");
                }
                // Epoch consistency: one snapshot per batch, re-acquired
                // for the next batch so updates become visible at batch
                // granularity. A VRF-keyed batch resolves the addressed
                // tenant's snapshot instead of the engine FIB's;
                // try_submit_vrf validated the id against a registry
                // that only grows, so a miss here means the queue was
                // fed around the validating edge — shed the batch with
                // the drop counted rather than serving from the wrong
                // table.
                let served_at = Instant::now();
                let snap = match vrf {
                    None => fib.snapshot(),
                    Some(id) => match vrfs.and_then(|v| v.snapshot(id)) {
                        Some(s) => s,
                        None => {
                            stats.dropped_batches.inc();
                            stats.dropped_packets.add(batch.len() as u64);
                            continue;
                        }
                    },
                };
                if vrf.is_some() {
                    stats.vrf_batches.inc();
                    stats.vrf_packets.add(batch.len() as u64);
                }
                out.clear();
                out.resize(batch.len(), NO_ROUTE);
                snap.lookup_batch(&batch, &mut out);
                let service = served_at.elapsed();
                w.service_ns.record(service.as_nanos() as u64);
                w.packets.add(batch.len() as u64);
                w.batches.inc();
                w.snapshot_version.set(snap.version());
                #[cfg(feature = "trace")]
                if let Some(t) = tracer {
                    let tier = match snap.batch_backend() {
                        poptrie_bitops::BatchBackend::Scalar => 0,
                        poptrie_bitops::BatchBackend::Avx2 => 1,
                        poptrie_bitops::BatchBackend::Avx512 => 2,
                    };
                    if sampled {
                        let enq_ns = t.instant_ns(enqueued);
                        let start_ns = t.instant_ns(served_at);
                        let wait_ns = wait.as_nanos() as u64;
                        let service_ns = service.as_nanos() as u64;
                        t.record_at(enq_ns, EventKind::IngressEnqueue, 0, batch.len() as u64, 0);
                        t.record_at(enq_ns + wait_ns, EventKind::BatchDequeue, 0, wait_ns, 0);
                        t.record_at(
                            start_ns,
                            EventKind::LookupStart,
                            0,
                            batch.len() as u64,
                            pack_worker_tier(idx as u32, tier),
                        );
                        t.record_at(
                            start_ns + service_ns,
                            EventKind::LookupEnd,
                            0,
                            service_ns,
                            pack_worker_tier(idx as u32, tier),
                        );
                    }
                    // Snapshot adoption is recorded for *every* batch
                    // that first serves a new version (not sampled):
                    // span continuity must hold in sampled traces too.
                    let version = snap.version();
                    if version != last_version {
                        last_version = version;
                        t.record(
                            EventKind::SnapshotAdopt,
                            0,
                            version,
                            pack_worker_tier(idx as u32, replica as u32),
                        );
                    }
                }
                if source != NO_SOURCE {
                    stats.sources()[source as usize].delivered_batches.inc();
                }
                if let Some(h) = hook {
                    h(idx, &batch, &out, snap.version());
                }
            }
        }));
        match run {
            Ok(()) => break, // queue closed and drained
            Err(_) => stats.worker(idx).respawns.inc(),
        }
    }
}

/// The single control-plane writer: drain a burst, coalesce duplicate
/// prefixes (last update wins, order of survivors preserved), apply under
/// one writer critical section per replica, publish one snapshot per
/// replica. The primary (replica 0) is updated first and its
/// [`BatchOutcome`] drives the stats and the publish hook; the remaining
/// NUMA replicas receive the identical coalesced burst immediately after,
/// so they converge to the same routes within the same writer iteration
/// (workers on other nodes may observe the new routes one burst-apply
/// later than workers on the primary's node — the same snapshot-staleness
/// window every worker already has between snapshot acquisitions).
///
/// Like the workers, the writer is panic-isolated: a panicking burst
/// (most plausibly a user publish hook) is caught and counted in
/// [`writer_respawns`](EngineTelemetry::writer_respawns), and the drain
/// loop re-enters on the same OS thread — a poisoned burst must not
/// wedge the control plane while the dataplane keeps serving.
fn writer_main<K: Bits>(
    replicas: &[Arc<SharedFib<K>>],
    vrfs: Option<&VrfTable<K>>,
    queue: &Bounded<StampedUpdate<K>>,
    stats: &EngineTelemetry,
    window: usize,
    hook: Option<&PublishHook<K>>,
    #[cfg(feature = "trace")] tracer: Option<&RingWriter>,
) {
    let fib = &replicas[0];
    loop {
        let run = catch_unwind(AssertUnwindSafe(|| {
            let mut buf: Vec<StampedUpdate<K>> = Vec::with_capacity(window);
            let mut coalesced: Vec<RouteUpdate<K>> = Vec::with_capacity(window);
            let mut vrf_bound: Vec<(VrfId, RouteUpdate<K>)> = Vec::new();
            let mut seen: HashSet<(Option<VrfId>, Prefix<K>)> = HashSet::with_capacity(window);
            while queue.pop_up_to(window, &mut buf) {
                coalesced.clear();
                vrf_bound.clear();
                seen.clear();
                // Walk backwards keeping the last update per (VRF,
                // prefix) — the same prefix in two tenants is two
                // routes, never merged — then restore arrival order
                // among the survivors.
                for (_, _, vrf, u) in buf.iter().rev() {
                    let p = match u {
                        RouteUpdate::Announce(p, _) => *p,
                        RouteUpdate::Withdraw(p) => *p,
                    };
                    if seen.insert((*vrf, p)) {
                        match vrf {
                            None => coalesced.push(*u),
                            Some(id) => vrf_bound.push((*id, *u)),
                        }
                    }
                }
                coalesced.reverse();
                vrf_bound.reverse();
                let merged = buf.len() - coalesced.len() - vrf_bound.len();
                #[cfg(feature = "trace")]
                if let Some(t) = tracer {
                    t.record(EventKind::WriterBurst, 0, buf.len() as u64, merged as u32);
                }

                // VRF-bound survivors apply per tenant, in arrival
                // order, each tenant under its own writer lock with its
                // own snapshot publish — one tenant's burst never
                // republishes another's table. `run` slices out
                // consecutive same-VRF updates so an uninterleaved burst
                // stays one publish.
                let mut i = 0;
                while i < vrf_bound.len() {
                    let id = vrf_bound[i].0;
                    let mut run = i + 1;
                    while run < vrf_bound.len() && vrf_bound[run].0 == id {
                        run += 1;
                    }
                    let slice = &vrf_bound[i..run];
                    // The registry only grows and ids were validated at
                    // the control edge, so this never misses; `if let`
                    // keeps hostile-queue feeding shedding instead of
                    // panicking the writer.
                    if let Some(outcome) =
                        vrfs.and_then(|v| v.update_batch(id, slice.iter().map(|&(_, u)| u)))
                    {
                        stats.vrf_updates.add(outcome.applied as u64);
                    }
                    i = run;
                }

                // Engine-FIB survivors follow the original path; a burst
                // of pure VRF traffic publishes nothing engine-wide.
                let outcome = if coalesced.is_empty() {
                    None
                } else {
                    Some(fib.update_batch(coalesced.iter().copied()))
                };
                // The snapshots containing this burst are now published:
                // every drained event has converged (coalesced-away
                // events too — their information was superseded within
                // the same burst).
                for (sent, _, _, _) in &buf {
                    stats
                        .convergence_ns
                        .record(sent.elapsed().as_nanos() as u64);
                }
                stats.update_events.add(buf.len() as u64);
                stats.updates_coalesced.add(merged as u64);
                if let Some(outcome) = outcome {
                    #[cfg(feature = "trace")]
                    if let Some(t) = tracer {
                        // Every spanned event in the burst converged at
                        // this version — coalesced-away events too
                        // (their routes were superseded within the same
                        // burst).
                        for &(_, span, _, _) in buf.iter() {
                            if span != 0 {
                                t.record(EventKind::UpdateApply, span, outcome.version, 0);
                            }
                        }
                        t.record(EventKind::ReplicaPublish, 0, outcome.version, 0);
                    }
                    for (ri, replica) in replicas.iter().enumerate().skip(1) {
                        replica.update_batch(coalesced.iter().copied());
                        stats.replica_publishes.inc();
                        #[cfg(feature = "trace")]
                        if let Some(t) = tracer {
                            t.record(EventKind::ReplicaPublish, 0, outcome.version, ri as u32);
                        }
                        #[cfg(not(feature = "trace"))]
                        let _ = ri;
                    }
                    stats.updates_applied.add(outcome.applied as u64);
                    stats.publishes.inc();
                    stats.published_version.set(outcome.version);
                    if let Some(h) = hook {
                        h(outcome, &coalesced);
                    }
                }
                buf.clear();
            }
        }));
        match run {
            Ok(()) => break, // channel closed and drained
            Err(_) => stats.writer_respawns.inc(),
        }
    }
}
