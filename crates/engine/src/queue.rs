//! A bounded multi-producer single-consumer queue with blocking pop.
//!
//! The engine's two queue roles share one primitive: per-worker packet
//! batch queues (feeders `try_push`, one worker blocks on `pop`) and the
//! control-plane channel (route sources `try_push`, the single writer
//! drains with [`Bounded::pop_up_to`]). Producers never block — a full
//! queue is **backpressure**, surfaced to the caller as
//! [`PushError::Full`] so it can count the drop and move on; a software
//! dataplane that blocked its feeder on a slow worker would turn one
//! overloaded core into head-of-line blocking for every core.
//!
//! `Mutex` + `Condvar` rather than a lock-free ring: the consumer must
//! *block* when idle (burning a core spinning on an empty queue is
//! unacceptable for a control-plane writer that is idle most of the
//! time), and under load the queue is never empty so the mutex is
//! uncontended for exactly the batches that matter.
//!
//! Consumers **spin briefly before parking**. A consumer that parks on
//! the condvar between every item makes every producer push pay a futex
//! wake, and on a machine with more threads than cores the woken
//! consumer routinely *preempts the producer that woke it* — the
//! producer ends up running in sub-millisecond slivers and the whole
//! pipeline degrades to one core's throughput no matter how many
//! consumers exist. Spinning a few microseconds first keeps consumers
//! runnable across the inter-arrival gap under sustained load, so the
//! steady state is wake-free; an idle consumer still parks after the
//! spin budget and costs nothing. Producers skip the notify entirely
//! when no consumer is parked (`parked` is maintained under the mutex,
//! so a parked consumer is never missed).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};

/// Spin rounds a consumer burns through before parking on the condvar.
/// Early rounds are pure `spin_loop` hints (sub-microsecond); later
/// rounds yield the time slice so an oversubscribed machine can run the
/// producer this consumer is waiting on.
const SPIN_ROUNDS: u32 = 8;

/// One backoff step of the spin phase (see [`SPIN_ROUNDS`]).
fn backoff(round: u32) {
    if round < 5 {
        for _ in 0..(8u32 << round) {
            std::hint::spin_loop();
        }
    } else {
        std::thread::yield_now();
    }
}

/// Why a [`Bounded::try_push`] was refused. The item is handed back so
/// the producer can retarget it (e.g. try the next worker's queue).
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity (or the pushing source exhausted its
    /// slot quota); shedding load is the caller's decision.
    Full(T),
    /// The queue was closed by [`Bounded::close`]; no more items will
    /// ever be accepted.
    Closed(T),
}

/// Source tag for items pushed without a source
/// ([`Bounded::try_push`]): exempt from quota accounting.
pub const NO_SOURCE: u32 = u32::MAX;

struct Inner<T> {
    items: VecDeque<(u32, T)>,
    closed: bool,
    /// Items currently queued per source index (quota enforcement for
    /// [`Bounded::try_push_from`]); `NO_SOURCE` items are not tracked.
    occupancy: Vec<u64>,
}

/// The bounded MPSC queue. See the module docs for the blocking model.
pub struct Bounded<T> {
    inner: Mutex<Inner<T>>,
    notify: Condvar,
    capacity: usize,
    /// Consumers currently parked on `notify`. Incremented under the
    /// mutex before waiting, so a producer that pushed under the same
    /// mutex and then reads 0 here is guaranteed no consumer is (or can
    /// end up) parked without first re-checking the queue.
    parked: AtomicUsize,
}

impl<T> core::fmt::Debug for Bounded<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Bounded")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

impl<T> Bounded<T> {
    /// A queue admitting at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Bounded {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
                occupancy: Vec::new(),
            }),
            notify: Condvar::new(),
            capacity: capacity.max(1),
            parked: AtomicUsize::new(0),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Park on the condvar, keeping the `parked` census exact. Called
    /// with the queue known empty and open, under the lock.
    fn park<'a>(&self, g: MutexGuard<'a, Inner<T>>) -> MutexGuard<'a, Inner<T>> {
        self.parked.fetch_add(1, Ordering::Relaxed);
        let g = match self.notify.wait(g) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        self.parked.fetch_sub(1, Ordering::Relaxed);
        g
    }

    /// Non-blocking push with no source tag and no quota: only the total
    /// capacity bounds admission. On success returns the queue depth
    /// *after* the push (for depth gauges); on failure hands the item
    /// back.
    pub fn try_push(&self, item: T) -> Result<usize, PushError<T>> {
        self.try_push_from(NO_SOURCE, usize::MAX, item)
    }

    /// Non-blocking push attributed to `source`, which may hold at most
    /// `quota` slots of this queue at once — the QoS weighted-share
    /// mechanism: a heavy source exhausts its own slots and is refused
    /// [`PushError::Full`] while lighter sources still get in. Quota is
    /// the *caller's* per-source slot budget (derived from its weight);
    /// the queue just enforces whatever budget each push presents.
    /// `NO_SOURCE` pushes bypass quota accounting entirely.
    pub fn try_push_from(&self, source: u32, quota: usize, item: T) -> Result<usize, PushError<T>> {
        let mut g = self.lock();
        if g.closed {
            return Err(PushError::Closed(item));
        }
        if g.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        if source != NO_SOURCE {
            let s = source as usize;
            if g.occupancy.len() <= s {
                g.occupancy.resize(s + 1, 0);
            }
            if g.occupancy[s] >= quota as u64 {
                return Err(PushError::Full(item));
            }
            g.occupancy[s] += 1;
        }
        g.items.push_back((source, item));
        let depth = g.items.len();
        drop(g);
        // Wake-free fast path: a spinning (or busy) consumer re-checks
        // the queue itself; only a consumer that actually parked needs
        // the futex wake.
        if self.parked.load(Ordering::Relaxed) > 0 {
            self.notify.notify_one();
        }
        Ok(depth)
    }

    /// Pop the head under the lock, releasing its source's quota slot.
    fn take(g: &mut Inner<T>) -> Option<(u32, T)> {
        let (source, item) = g.items.pop_front()?;
        if source != NO_SOURCE {
            let s = source as usize;
            g.occupancy[s] = g.occupancy[s].saturating_sub(1);
        }
        Some((source, item))
    }

    /// Blocking pop: waits for an item or for [`Bounded::close`].
    /// Returns `None` only when the queue is closed *and* fully drained —
    /// the shutdown path never loses queued work. Spins briefly before
    /// parking (see the module docs).
    #[cfg_attr(not(test), allow(dead_code))] // engine paths use pop_entry/pop_up_to
    pub fn pop(&self) -> Option<T> {
        self.pop_entry().map(|(_, item)| item)
    }

    /// Blocking pop that also returns the item's source tag
    /// (`NO_SOURCE` for untagged pushes) — the worker uses it to
    /// attribute deadline drops and deliveries per source.
    pub fn pop_entry(&self) -> Option<(u32, T)> {
        for round in 0..SPIN_ROUNDS {
            {
                let mut g = self.lock();
                if let Some(entry) = Self::take(&mut g) {
                    return Some(entry);
                }
                if g.closed {
                    return None;
                }
            }
            backoff(round);
        }
        let mut g = self.lock();
        loop {
            if let Some(entry) = Self::take(&mut g) {
                return Some(entry);
            }
            if g.closed {
                return None;
            }
            g = self.park(g);
        }
    }

    /// Blocking bulk pop: waits until at least one item is available,
    /// then moves up to `max` items into `buf`. Returns `false` only when
    /// closed and drained. This is the control-plane writer's entry
    /// point — draining a burst in one call is what makes per-batch
    /// coalescing and one-publish-per-batch possible. Spins briefly
    /// before parking (see the module docs).
    pub fn pop_up_to(&self, max: usize, buf: &mut Vec<T>) -> bool {
        fn drain<T>(g: &mut Inner<T>, max: usize, buf: &mut Vec<T>) {
            while buf.len() < max {
                match Bounded::take(g) {
                    Some((_, item)) => buf.push(item),
                    None => break,
                }
            }
        }
        for round in 0..SPIN_ROUNDS {
            {
                let mut g = self.lock();
                if !g.items.is_empty() {
                    drain(&mut g, max, buf);
                    return true;
                }
                if g.closed {
                    return false;
                }
            }
            backoff(round);
        }
        let mut g = self.lock();
        loop {
            if !g.items.is_empty() {
                drain(&mut g, max, buf);
                return true;
            }
            if g.closed {
                return false;
            }
            g = self.park(g);
        }
    }

    /// Close the queue: producers are refused from now on, consumers
    /// drain what is queued and then observe end-of-stream.
    pub fn close(&self) {
        self.lock().closed = true;
        self.notify.notify_all();
    }

    /// Momentary queue depth.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is momentarily empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
