//! Engine telemetry: relaxed-atomic counters on every dataplane and
//! control-plane edge, and a Prometheus/JSON exposition surface.
//!
//! All metric families are prefixed `poptrie_engine_` (the core crate's
//! optional lookup instrumentation owns the bare `poptrie_` families).
//! Counters are the sharded cache-padded primitives from
//! `poptrie-telemetry`, so workers on different cores never contend on a
//! statistics cache line.

use poptrie_telemetry::{Counter, Gauge, Log2Histogram, TelemetryRegistry};

/// Per-worker dataplane counters.
#[derive(Debug, Default)]
pub struct WorkerStats {
    /// Packets (keys) looked up by this worker.
    pub packets: Counter,
    /// Batches drained from this worker's queue.
    pub batches: Counter,
    /// Momentary depth of this worker's ingress queue.
    pub queue_depth: Gauge,
    /// Times the worker body panicked and was respawned in place.
    pub respawns: Counter,
    /// Version of the FIB snapshot this worker most recently served a
    /// batch against. Compared with
    /// [`EngineTelemetry::published_version`], this is the worker's
    /// snapshot age in publishes.
    pub snapshot_version: Gauge,
    /// Index of the NUMA FIB replica this worker reads (0 = the primary
    /// the caller handed to [`Engine::start`](crate::Engine::start)).
    pub replica: Gauge,
    /// Nanoseconds each batch spent queued before this worker picked it
    /// up (includes deadline-dropped batches — their wait is exactly why
    /// they were dropped).
    pub queue_wait_ns: Log2Histogram,
    /// Nanoseconds of lookup service time per served batch (snapshot
    /// acquire + `lookup_batch`, excluding the chaos delay).
    pub service_ns: Log2Histogram,
    /// Batches dropped at pop because their queue wait exceeded the
    /// deadline ([`QosPolicy::Deadline`](crate::QosPolicy::Deadline)).
    pub deadline_dropped_batches: Counter,
    /// Packets in deadline-dropped batches.
    pub deadline_dropped_packets: Counter,
}

/// Per-source QoS counters (see
/// [`EngineConfig::source`](crate::EngineConfig::source)).
#[derive(Debug)]
pub struct SourceStats {
    /// The source's registered name (label in the exposition surface).
    pub name: String,
    /// The source's registered weight.
    pub weight: u32,
    /// Per-worker-queue slot quota derived from the weight.
    pub quota: usize,
    /// Batches this source got accepted into a queue.
    pub submitted_batches: Counter,
    /// Batches refused at ingress (queue full or quota exhausted).
    pub refused_batches: Counter,
    /// Batches from this source served to completion.
    pub delivered_batches: Counter,
    /// Batches from this source dropped at pop by the deadline policy.
    pub deadline_dropped_batches: Counter,
}

/// All engine counters, shared by workers, the control-plane writer,
/// and the ingress handles. Obtain from
/// [`Engine::telemetry`](crate::Engine::telemetry).
#[derive(Debug)]
pub struct EngineTelemetry {
    workers: Vec<WorkerStats>,
    sources: Vec<SourceStats>,
    /// Batches accepted into some worker queue.
    pub submitted_batches: Counter,
    /// Batches refused because every eligible queue was full
    /// (backpressure shedding, counted at the ingress edge).
    pub dropped_batches: Counter,
    /// Packets in refused batches — the packet-granular face of
    /// [`dropped_batches`](Self::dropped_batches), so
    /// `offered == delivered + deadline_dropped + refused` reconciles
    /// exactly at packet level.
    pub dropped_packets: Counter,
    /// Distribution of accepted batch sizes (keys per batch).
    pub batch_size: Log2Histogram,
    /// RCU snapshots published by the control-plane writer.
    pub publishes: Counter,
    /// Route-update events consumed from the control channel.
    pub update_events: Counter,
    /// Events that changed the RIB (effective updates).
    pub updates_applied: Counter,
    /// Events merged away by per-batch duplicate-prefix coalescing.
    pub updates_coalesced: Counter,
    /// Route updates refused at the control channel (channel full).
    pub control_dropped: Counter,
    /// Convergence lag per consumed route-update event: nanoseconds from
    /// [`Control::send`](crate::Control::send) accepting the update to
    /// the writer publishing the snapshot containing it.
    pub convergence_ns: Log2Histogram,
    /// Writer panics (poisoned burst or publish hook) recovered by
    /// respawning the writer loop in place.
    pub writer_respawns: Counter,
    /// Version of the most recently published FIB snapshot.
    pub published_version: Gauge,
    /// Number of FIB replicas the engine serves from (1 = no NUMA
    /// replication, just the primary).
    pub fib_replicas: Gauge,
    /// Snapshots published to non-primary replicas by the writer (one
    /// per replica per coalesced burst; 0 when `fib_replicas` is 1).
    pub replica_publishes: Counter,
    /// VRF-keyed batches served by workers (a subset of the per-worker
    /// batch totals; see
    /// [`Ingress::try_submit_vrf`](crate::Ingress::try_submit_vrf)).
    pub vrf_batches: Counter,
    /// Packets in VRF-keyed batches.
    pub vrf_packets: Counter,
    /// Route-update events the writer applied to VRF tables (disjoint
    /// from [`updates_applied`](Self::updates_applied), which counts
    /// the engine's own FIB).
    pub vrf_updates: Counter,
}

impl EngineTelemetry {
    /// Fresh zeroed counters for `workers` worker threads and the given
    /// registered sources (`(name, weight, quota)` triples).
    pub(crate) fn new(workers: usize, sources: &[(String, u32, usize)]) -> Self {
        EngineTelemetry {
            workers: (0..workers).map(|_| WorkerStats::default()).collect(),
            sources: sources
                .iter()
                .map(|(name, weight, quota)| SourceStats {
                    name: name.clone(),
                    weight: *weight,
                    quota: *quota,
                    submitted_batches: Counter::new(),
                    refused_batches: Counter::new(),
                    delivered_batches: Counter::new(),
                    deadline_dropped_batches: Counter::new(),
                })
                .collect(),
            submitted_batches: Counter::new(),
            dropped_batches: Counter::new(),
            dropped_packets: Counter::new(),
            batch_size: Log2Histogram::new(),
            publishes: Counter::new(),
            update_events: Counter::new(),
            updates_applied: Counter::new(),
            updates_coalesced: Counter::new(),
            control_dropped: Counter::new(),
            convergence_ns: Log2Histogram::new(),
            writer_respawns: Counter::new(),
            published_version: Gauge::new(),
            fib_replicas: Gauge::new(),
            replica_publishes: Counter::new(),
            vrf_batches: Counter::new(),
            vrf_packets: Counter::new(),
            vrf_updates: Counter::new(),
        }
    }

    /// Counters for worker `i`.
    pub fn worker(&self, i: usize) -> &WorkerStats {
        &self.workers[i]
    }

    /// All per-worker counter blocks, indexed by worker.
    pub fn workers(&self) -> &[WorkerStats] {
        &self.workers
    }

    /// Counters for registered source `i`, or `None` when `i` is not a
    /// registered source index. (Bounds-checked by design: fault
    /// harnesses probe telemetry with hostile indices, and a scrape must
    /// never panic the caller.)
    pub fn source(&self, i: usize) -> Option<&SourceStats> {
        self.sources.get(i)
    }

    /// All per-source counter blocks, indexed by registration order.
    pub fn sources(&self) -> &[SourceStats] {
        &self.sources
    }

    /// Total batches dropped by the deadline policy across all workers.
    pub fn total_deadline_dropped_batches(&self) -> u64 {
        self.workers
            .iter()
            .map(|w| w.deadline_dropped_batches.get())
            .sum()
    }

    /// Total packets dropped by the deadline policy across all workers.
    pub fn total_deadline_dropped_packets(&self) -> u64 {
        self.workers
            .iter()
            .map(|w| w.deadline_dropped_packets.get())
            .sum()
    }

    /// Element-wise sum of every worker's queue-wait histogram buckets —
    /// feed to [`Log2Histogram::quantile_of_counts`] for engine-wide
    /// tail quantiles.
    pub fn merged_queue_wait(&self) -> [u64; poptrie_telemetry::LOG2_BUCKETS] {
        Self::merge(self.workers.iter().map(|w| &w.queue_wait_ns))
    }

    /// Element-wise sum of every worker's service-time histogram buckets.
    pub fn merged_service(&self) -> [u64; poptrie_telemetry::LOG2_BUCKETS] {
        Self::merge(self.workers.iter().map(|w| &w.service_ns))
    }

    fn merge<'a>(
        hists: impl Iterator<Item = &'a Log2Histogram>,
    ) -> [u64; poptrie_telemetry::LOG2_BUCKETS] {
        let mut out = [0u64; poptrie_telemetry::LOG2_BUCKETS];
        for h in hists {
            for (o, c) in out.iter_mut().zip(h.counts().iter()) {
                *o += c;
            }
        }
        out
    }

    /// Total packets looked up across all workers.
    pub fn total_packets(&self) -> u64 {
        self.workers.iter().map(|w| w.packets.get()).sum()
    }

    /// Total batches drained across all workers.
    pub fn total_batches(&self) -> u64 {
        self.workers.iter().map(|w| w.batches.get()).sum()
    }

    /// Materialize every engine metric into an exposition registry
    /// (`poptrie_engine_*` families, one labelled sample per worker).
    pub fn registry(&self) -> TelemetryRegistry {
        let mut reg = TelemetryRegistry::new();
        for (i, w) in self.workers.iter().enumerate() {
            let idx = i.to_string();
            let labels: &[(&str, &str)] = &[("worker", idx.as_str())];
            reg.counter(
                "poptrie_engine_packets_total",
                "Packets looked up, per worker.",
                labels,
                w.packets.get(),
            );
            reg.counter(
                "poptrie_engine_batches_total",
                "Packet batches drained, per worker.",
                labels,
                w.batches.get(),
            );
            reg.gauge(
                "poptrie_engine_queue_depth",
                "Momentary ingress queue depth, per worker.",
                labels,
                w.queue_depth.get() as f64,
            );
            reg.counter(
                "poptrie_engine_worker_respawns_total",
                "Worker panics recovered by in-place respawn.",
                labels,
                w.respawns.get(),
            );
            reg.gauge(
                "poptrie_engine_worker_snapshot_version",
                "FIB snapshot version last served, per worker.",
                labels,
                w.snapshot_version.get() as f64,
            );
            reg.gauge(
                "poptrie_engine_worker_replica",
                "Index of the NUMA FIB replica this worker reads.",
                labels,
                w.replica.get() as f64,
            );
            reg.counter(
                "poptrie_engine_deadline_dropped_batches_total",
                "Batches dropped at pop because their queue wait exceeded the deadline.",
                labels,
                w.deadline_dropped_batches.get(),
            );
            reg.counter(
                "poptrie_engine_deadline_dropped_packets_total",
                "Packets in deadline-dropped batches.",
                labels,
                w.deadline_dropped_packets.get(),
            );
            for (name, h) in [
                ("poptrie_engine_queue_wait_ns", &w.queue_wait_ns),
                ("poptrie_engine_service_ns", &w.service_ns),
            ] {
                let counts = h.counts();
                let bounds: Vec<(f64, u64)> = counts
                    .iter()
                    .enumerate()
                    .map(|(b, &n)| (Log2Histogram::upper_bound(b) as f64, n))
                    .collect();
                reg.histogram(
                    name,
                    "Per-batch latency in nanoseconds (log2 buckets), per worker.",
                    labels,
                    &bounds,
                    h.sum() as f64,
                );
            }
        }
        for s in &self.sources {
            let labels: &[(&str, &str)] = &[("source", s.name.as_str())];
            reg.counter(
                "poptrie_engine_source_submitted_batches_total",
                "Batches accepted into a queue, per registered source.",
                labels,
                s.submitted_batches.get(),
            );
            reg.counter(
                "poptrie_engine_source_refused_batches_total",
                "Batches refused at ingress (queue full or quota exhausted), per source.",
                labels,
                s.refused_batches.get(),
            );
            reg.counter(
                "poptrie_engine_source_delivered_batches_total",
                "Batches served to completion, per source.",
                labels,
                s.delivered_batches.get(),
            );
            reg.counter(
                "poptrie_engine_source_deadline_dropped_batches_total",
                "Batches dropped by the deadline policy, per source.",
                labels,
                s.deadline_dropped_batches.get(),
            );
        }
        reg.counter(
            "poptrie_engine_submitted_batches_total",
            "Batches accepted into a worker queue.",
            &[],
            self.submitted_batches.get(),
        );
        reg.counter(
            "poptrie_engine_dropped_batches_total",
            "Batches shed at ingress because every queue was full.",
            &[],
            self.dropped_batches.get(),
        );
        reg.counter(
            "poptrie_engine_dropped_packets_total",
            "Packets in batches shed at ingress.",
            &[],
            self.dropped_packets.get(),
        );
        reg.counter(
            "poptrie_engine_publishes_total",
            "RCU snapshots published by the control-plane writer.",
            &[],
            self.publishes.get(),
        );
        reg.counter(
            "poptrie_engine_update_events_total",
            "Route-update events consumed from the control channel.",
            &[],
            self.update_events.get(),
        );
        reg.counter(
            "poptrie_engine_updates_applied_total",
            "Route-update events that changed the RIB.",
            &[],
            self.updates_applied.get(),
        );
        reg.counter(
            "poptrie_engine_updates_coalesced_total",
            "Route-update events merged away by per-batch coalescing.",
            &[],
            self.updates_coalesced.get(),
        );
        reg.counter(
            "poptrie_engine_control_dropped_total",
            "Route updates refused at the full control channel.",
            &[],
            self.control_dropped.get(),
        );
        reg.counter(
            "poptrie_engine_writer_respawns_total",
            "Writer panics recovered by in-place respawn.",
            &[],
            self.writer_respawns.get(),
        );
        {
            let counts = self.convergence_ns.counts();
            let bounds: Vec<(f64, u64)> = counts
                .iter()
                .enumerate()
                .map(|(b, &n)| (Log2Histogram::upper_bound(b) as f64, n))
                .collect();
            reg.histogram(
                "poptrie_engine_convergence_ns",
                "Route-update convergence lag in nanoseconds (send to snapshot publish, log2 buckets).",
                &[],
                &bounds,
                self.convergence_ns.sum() as f64,
            );
        }
        reg.gauge(
            "poptrie_engine_published_version",
            "Version of the most recently published FIB snapshot.",
            &[],
            self.published_version.get() as f64,
        );
        reg.gauge(
            "poptrie_engine_fib_replicas",
            "Number of NUMA FIB replicas the engine serves from.",
            &[],
            self.fib_replicas.get() as f64,
        );
        reg.counter(
            "poptrie_engine_replica_publishes_total",
            "Snapshots published to non-primary replicas by the writer.",
            &[],
            self.replica_publishes.get(),
        );
        reg.counter(
            "poptrie_engine_vrf_batches_total",
            "VRF-keyed packet batches served by workers.",
            &[],
            self.vrf_batches.get(),
        );
        reg.counter(
            "poptrie_engine_vrf_packets_total",
            "Packets in VRF-keyed batches.",
            &[],
            self.vrf_packets.get(),
        );
        reg.counter(
            "poptrie_engine_vrf_updates_total",
            "Route-update events applied to VRF tables by the writer.",
            &[],
            self.vrf_updates.get(),
        );
        let counts = self.batch_size.counts();
        let bounds: Vec<(f64, u64)> = counts
            .iter()
            .enumerate()
            .map(|(i, &n)| (Log2Histogram::upper_bound(i) as f64, n))
            .collect();
        reg.histogram(
            "poptrie_engine_batch_size",
            "Keys per accepted batch (log2 buckets).",
            &[],
            &bounds,
            self.batch_size.sum() as f64,
        );
        reg
    }
}
