//! # poptrie-engine
//!
//! A sharded multi-core forwarding engine over the Poptrie FIB — the
//! software-router deployment shape the paper benchmarks in §4.8
//! (multi-core scaling, Figure 10), built on the workspace's
//! [`SharedFib`](poptrie::sync::SharedFib) RCU model:
//!
//! * **N forwarding workers**, optionally pinned one per core, each
//!   draining a private bounded queue of packet batches through
//!   `lookup_batch` against an epoch-consistent FIB snapshot that is
//!   re-acquired per batch;
//! * **one control-plane writer** consuming announce/withdraw events
//!   from a bounded channel, coalescing duplicate-prefix updates per
//!   burst, applying them through the §3.5 incremental update, and
//!   publishing exactly one RCU snapshot per burst per FIB replica;
//! * **NUMA awareness**: one FIB replica per memory node (detected from
//!   sysfs, overridable with [`EngineConfig::numa_replicas`]), each
//!   worker reading the replica local to the core it pins, the writer
//!   keeping every replica converged burst by burst, and the node/leaf
//!   arrays first-touched by their growing thread
//!   (`poptrie_buddy::first_touch`);
//! * **bounded queues everywhere** with non-blocking producers and drop
//!   accounting (backpressure sheds load, it never blocks the feeder);
//! * **QoS** ([`QosPolicy`]): per-source weighted queue shares
//!   ([`EngineConfig::source`] / [`Engine::ingress_for`]) and an
//!   optional deadline-drop policy — admitted batches whose queue wait
//!   exceeds the deadline are dropped at pop with exact accounting
//!   instead of served late;
//! * **tail latency**: per-worker queue-wait and service-time
//!   `Log2Histogram`s, summarized to p50/p99/p99.9 in the report
//!   ([`LatencySummary`]);
//! * **panic isolation**: a worker panic is caught and the worker
//!   respawned in place, with a respawn counter;
//! * **graceful shutdown**: close queues, drain, join with a deadline,
//!   report what happened ([`EngineReport`]);
//! * **telemetry**: every edge counted under `poptrie_engine_*` metric
//!   families ([`EngineTelemetry`]).
//!
//! ## Quick start
//!
//! ```
//! use poptrie_engine::prelude::*;
//! use std::sync::Arc;
//!
//! let cfg = PoptrieConfig::new().direct_bits(16).build()?;
//! let fib: Arc<SharedFib<u32>> = Arc::new(SharedFib::with_config(cfg));
//! fib.insert("10.0.0.0/8".parse()?, 1)?;
//!
//! let engine = Engine::start(Arc::clone(&fib), EngineConfig::new(2));
//! let ingress = engine.ingress();
//! let control = engine.control();
//!
//! // Dataplane: submit a packet batch (round-robin over workers).
//! let batch: Arc<[u32]> = Arc::from(vec![0x0A00_0001u32, 0x0B00_0001]);
//! ingress.try_submit(batch).expect("queues are empty");
//!
//! // Control plane: announce a route; the writer publishes it.
//! control.announce("11.0.0.0/8".parse()?, 2).expect("channel is empty");
//!
//! let report = engine.shutdown(std::time::Duration::from_secs(5));
//! assert_eq!(report.leaked_threads, 0);
//! assert!(report.drained_clean);
//! assert_eq!(report.packets, 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod affinity;
mod engine;
mod queue;
mod stats;

pub use engine::{
    source_quotas, BadIndex, BatchHook, Control, Engine, EngineConfig, EngineReport, Ingress,
    LatencySummary, PublishHook, QosPolicy, SourceReport, WorkerReport,
};
pub use stats::{EngineTelemetry, SourceStats, WorkerStats};

pub use affinity::{pin_current_thread, NumaTopology};

pub use poptrie::{SourceId, VrfId};
pub use poptrie_vrf::VrfTable;

/// One-line import of the engine vocabulary plus the `poptrie` types an
/// engine driver always needs.
pub mod prelude {
    pub use crate::{
        Control, Engine, EngineConfig, EngineReport, EngineTelemetry, Ingress, LatencySummary,
        QosPolicy, SourceId, SourceReport, VrfId, VrfTable,
    };
    pub use poptrie::prelude::{
        Applied, NextHop, PoptrieConfig, Prefix, RouteUpdate, SharedFib, UpdateError, NO_ROUTE,
    };
}

#[cfg(test)]
mod tests;
