//! Prefix-length distributions.
//!
//! The BGP histogram below follows the shape of a late-2014 global table
//! (the snapshot vintage of Table 1): negligible mass below /8, a bump at
//! /16, a broad ramp through /19–/23, and the dominant spike at /24 —
//! "most prefixes in the real datasets are distributed in the range of
//! prefix length from /11 through /24" (§3.4).

/// Relative weight of each IPv4 prefix length in a BGP table
/// (index = prefix length 0..=32).
pub const BGP_V4_WEIGHTS: [u32; 33] = [
    0, 0, 0, 0, 0, 0, 0, 0,      // /0../7
    20,     // /8
    13,     // /9
    37,     // /10
    93,     // /11
    265,    // /12
    518,    // /13
    1026,   // /14
    1790,   // /15
    13600,  // /16
    7600,   // /17
    12900,  // /18
    24800,  // /19
    38300,  // /20
    44400,  // /21
    77100,  // /22
    67700,  // /23
    283000, // /24
    0, 0, 0, 0, 0, 0, 0, 0, // /25../32: absent from BGP snapshots
];

/// Relative weight of each IPv4 prefix length in the `REAL-*` (tier-1
/// production router) tables' BGP portion. Core routers see a more
/// aggregated mid-range than a RouteViews peer; this mix is calibrated so
/// that the §4.1 SYN1/SYN2 split arithmetic reproduces the paper's
/// Table 5 route counts (SYN2 ≈ 886K from a 531K base) and structural
/// pressure (see EXPERIMENTS.md).
pub const REAL_V4_WEIGHTS: [u32; 33] = [
    0, 0, 0, 0, 0, 0, 0, 0,      // /0../7
    20,     // /8
    13,     // /9
    37,     // /10
    93,     // /11
    265,    // /12
    518,    // /13
    1026,   // /14
    1790,   // /15
    13600,  // /16
    3800,   // /17
    6500,   // /18
    12400,  // /19
    19200,  // /20
    22200,  // /21
    38500,  // /22
    33900,  // /23
    340000, // /24
    0, 0, 0, 0, 0, 0, 0, 0, // /25../32: the IGP histogram covers these
];

/// Relative weight of each IPv4 prefix length among IGP routes, for the
/// `REAL-*` tables: interface networks, customer tails and loopbacks —
/// the /25–/32 mass visible in Figure 7.
pub const IGP_V4_WEIGHTS: [u32; 33] = [
    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, // /0../15
    0, 0, 0, 0, 0, 0, 0, 0, 0,  // /16../24
    5,  // /25
    8,  // /26
    10, // /27
    12, // /28
    10, // /29
    25, // /30
    8,  // /31
    22, // /32
];

/// Relative weight of each IPv6 prefix length in a BGP table of the same
/// vintage: spikes at /32 (LIR allocations) and /48 (end sites).
pub const BGP_V6_WEIGHTS: [(u8, u32); 12] = [
    (20, 5),
    (24, 10),
    (28, 30),
    (29, 35),
    (32, 5500),
    (36, 350),
    (40, 700),
    (44, 500),
    (48, 11000),
    (52, 150),
    (56, 350),
    (64, 900),
];

/// Sample from an integer-weighted histogram given a uniform draw in
/// `0..total_weight`.
pub fn sample_weighted(weights: &[u32], mut draw: u64) -> usize {
    for (i, &w) in weights.iter().enumerate() {
        if draw < w as u64 {
            return i;
        }
        draw -= w as u64;
    }
    weights.len() - 1
}

/// Total weight of a histogram.
pub fn total_weight(weights: &[u32]) -> u64 {
    weights.iter().map(|&w| w as u64).sum()
}
