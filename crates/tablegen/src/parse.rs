//! Plain-text RIB parsing and serialization.
//!
//! Users with real routing tables (RouteViews MRT dumps converted with
//! `bgpdump -M`, `ip route` output, vendor exports) can feed them to this
//! workspace through a minimal line format:
//!
//! ```text
//! # comment
//! 10.0.0.0/8 1
//! 192.0.2.0/24 17
//! ```
//!
//! one `prefix next-hop-index` pair per line; blank lines and `#` comments
//! are ignored. Next hops are FIB indices `1..=65535` (map your real
//! next-hop addresses to indices first — Poptrie looks up FIB indices, as
//! §3 of the paper prescribes).

use poptrie_rib::{NextHop, Prefix};
use std::fmt::Write as _;

/// A parse failure, with the 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl core::fmt::Display for ParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn parse_lines<K, F>(text: &str, parse_prefix: F) -> Result<Vec<(K, NextHop)>, ParseError>
where
    F: Fn(&str) -> Option<K>,
{
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split_whitespace();
        let (Some(pfx), Some(nh), None) = (fields.next(), fields.next(), fields.next()) else {
            return Err(ParseError {
                line: i + 1,
                message: format!("expected 'prefix next-hop', got {line:?}"),
            });
        };
        let prefix = parse_prefix(pfx).ok_or_else(|| ParseError {
            line: i + 1,
            message: format!("invalid prefix {pfx:?}"),
        })?;
        let nh: NextHop = nh.parse().map_err(|_| ParseError {
            line: i + 1,
            message: format!("invalid next hop {nh:?}"),
        })?;
        if nh == 0 {
            return Err(ParseError {
                line: i + 1,
                message: "next hop 0 is reserved".into(),
            });
        }
        out.push((prefix, nh));
    }
    Ok(out)
}

/// Parse IPv4 routes from the line format above.
pub fn parse_routes_v4(text: &str) -> Result<Vec<(Prefix<u32>, NextHop)>, ParseError> {
    parse_lines(text, |s| s.parse().ok())
}

/// Parse IPv6 routes from the line format above.
pub fn parse_routes_v6(text: &str) -> Result<Vec<(Prefix<u128>, NextHop)>, ParseError> {
    parse_lines(text, |s| s.parse().ok())
}

/// Serialize IPv4 routes back to the line format (round-trips through
/// [`parse_routes_v4`]).
pub fn write_routes_v4(routes: &[(Prefix<u32>, NextHop)]) -> String {
    let mut out = String::with_capacity(routes.len() * 24);
    for &(p, nh) in routes {
        let _ = writeln!(out, "{p} {nh}");
    }
    out
}
