//! The IPv4 table generator.

use poptrie_rib::{NextHop, Prefix, RadixTree};
use poptrie_rng::prelude::*;
use std::collections::HashSet;

use crate::dist::{sample_weighted, total_weight, BGP_V4_WEIGHTS, IGP_V4_WEIGHTS, REAL_V4_WEIGHTS};

/// How many distinct /16 "allocation containers" longer-than-/16 prefixes
/// nest inside. Real global tables keep this just below SAIL's 2^15 chunk
/// limit; the SYN2 expansion pushes it past (Table 5).
const CONTAINER_POOL: usize = 30_000;

/// How many distinct /24 blocks the REAL tables' IGP routes nest inside
/// (bounds SAIL's level-32 chunks).
const DEEP_POOL: usize = 12_000;

/// Probability that a route inherits its container's home next hop — the
/// spatial next-hop locality of real BGP tables that makes route
/// aggregation (§3) and DXR's range merging effective.
const LOCALITY: f64 = 0.92;

/// Fraction of a REAL table that is IGP (deep, /25–/32) routes.
const IGP_FRACTION: f64 = 0.026;

/// What flavour of router produced a table (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableKind {
    /// A RouteViews peer: pure BGP, nothing longer than /24.
    RouteViews,
    /// A production router: BGP plus IGP routes with longer prefixes,
    /// "these longer prefixes cause the lookup technology to search down
    /// to a deeper level of the tree".
    Real,
}

/// A dataset to synthesize: name, Table 1 row parameters, and kind.
#[derive(Debug, Clone)]
pub struct TableSpec {
    /// Dataset name as in Table 1 (e.g. `"RV-linx-p46"`).
    pub name: String,
    /// Number of prefixes (Table 1, "# of prefixes").
    pub prefixes: usize,
    /// Number of distinct next hops (Table 1, "# of nhops").
    pub next_hops: u16,
    /// RouteViews or production-router shape.
    pub kind: TableKind,
}

/// A synthesized routing table.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset name.
    pub name: String,
    /// Routes, sorted by prefix.
    pub routes: Vec<(Prefix<u32>, NextHop)>,
}

impl Dataset {
    /// Number of routes.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// True when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// Number of distinct next hops.
    pub fn next_hop_count(&self) -> usize {
        let mut set: Vec<NextHop> = self.routes.iter().map(|&(_, nh)| nh).collect();
        set.sort_unstable();
        set.dedup();
        set.len()
    }

    /// Load into a RIB radix tree.
    pub fn to_rib(&self) -> RadixTree<u32, NextHop> {
        RadixTree::from_routes(self.routes.iter().copied())
    }
}

/// FNV-1a hash of a dataset name: the per-dataset seed, so every run of
/// every binary regenerates identical tables.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl TableSpec {
    /// Synthesize the table, deterministically from its name.
    pub fn generate(&self) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed_for(&self.name));
        let containers = make_containers(&mut rng, self.next_hops);
        let deep = make_deep_pool(&mut rng, &containers);
        let bgp_weights: &[u32; 33] = match self.kind {
            TableKind::RouteViews => &BGP_V4_WEIGHTS,
            TableKind::Real => &REAL_V4_WEIGHTS,
        };
        let bgp_total = total_weight(bgp_weights);
        let igp_total = total_weight(&IGP_V4_WEIGHTS);

        let mut seen: HashSet<(u32, u8)> = HashSet::with_capacity(self.prefixes * 2);
        let mut routes: Vec<(Prefix<u32>, NextHop)> = Vec::with_capacity(self.prefixes);
        while routes.len() < self.prefixes {
            let (addr, len, container) =
                if self.kind == TableKind::Real && rng.gen_bool(IGP_FRACTION) {
                    // IGP route: deep prefix inside a deep-pool /24 block.
                    let len = sample_weighted(&IGP_V4_WEIGHTS, rng.gen_range(0..igp_total)) as u8;
                    let &(block, home) = deep.choose(&mut rng).expect("deep pool non-empty");
                    let addr = block | (rng.gen::<u32>() & 0xFF);
                    (addr, len, Some(home))
                } else {
                    let len = sample_weighted(bgp_weights, rng.gen_range(0..bgp_total)) as u8;
                    match len {
                        0..=15 => (random_unicast(&mut rng), len, None),
                        16 => {
                            let &(c, home) = containers.choose(&mut rng).expect("pool");
                            (c, len, Some(home))
                        }
                        _ => {
                            let &(c, home) = containers.choose(&mut rng).expect("pool");
                            // Quadratic clustering toward the container base:
                            // real allocations slice blocks densely from the
                            // bottom, which is what lets DXR merge adjacent
                            // same-next-hop routes into single ranges.
                            let r: f64 = rng.gen();
                            let r2 = r * r;
                            let addr = c | ((r2 * r2 * 65536.0) as u32 & 0xFFFF);
                            (addr, len, Some(home))
                        }
                    }
                };
            let prefix = Prefix::new(addr, len);
            if !seen.insert((prefix.addr(), len)) {
                continue;
            }
            let nh = if routes.len() < self.next_hops as usize {
                // Guarantee every advertised next hop appears at least once.
                routes.len() as NextHop + 1
            } else {
                match container {
                    Some(home) if rng.gen_bool(LOCALITY) => home,
                    _ => skewed_next_hop(&mut rng, self.next_hops),
                }
            };
            routes.push((prefix, nh));
        }
        routes.sort_unstable();
        Dataset {
            name: self.name.clone(),
            routes,
        }
    }
}

/// The allocation-container pool: distinct /16 bases, each with a home
/// next hop.
fn make_containers(rng: &mut StdRng, next_hops: u16) -> Vec<(u32, NextHop)> {
    let mut set = HashSet::with_capacity(CONTAINER_POOL * 2);
    let mut pool = Vec::with_capacity(CONTAINER_POOL);
    while pool.len() < CONTAINER_POOL {
        let base = random_unicast(rng) & 0xFFFF_0000;
        if set.insert(base) {
            pool.push((base, skewed_next_hop(rng, next_hops)));
        }
    }
    pool
}

/// The deep-route pool: distinct /24 bases nested inside containers.
fn make_deep_pool(rng: &mut StdRng, containers: &[(u32, NextHop)]) -> Vec<(u32, NextHop)> {
    let mut set = HashSet::with_capacity(DEEP_POOL * 2);
    let mut pool = Vec::with_capacity(DEEP_POOL);
    while pool.len() < DEEP_POOL {
        let &(c, home) = containers.choose(rng).expect("pool non-empty");
        let base = c | ((rng.gen::<u32>() & 0xFF) << 8);
        if set.insert(base) {
            pool.push((base, home));
        }
    }
    pool
}

/// A random address with a plausibly-unicast first octet (1..=223).
fn random_unicast(rng: &mut StdRng) -> u32 {
    let first = rng.gen_range(1u32..=223);
    (first << 24) | (rng.gen::<u32>() & 0x00FF_FFFF)
}

/// Skewed next-hop choice: a few peers carry most routes, as in real
/// tables (quadratic concentration toward low ids).
fn skewed_next_hop(rng: &mut StdRng, next_hops: u16) -> NextHop {
    let r: f64 = rng.gen();
    let idx = (r * r * next_hops as f64) as u16;
    idx.min(next_hops - 1) + 1
}
