//! IPv6 routing-table synthesis (§4.10).
//!
//! The paper's primary IPv6 dataset is "the IPv6 routing table from the
//! same router as REAL-Tier1-A": 20,440 prefixes, evaluated with 2^32
//! random addresses inside `2000::/8`. It also uses "13 public RIBs …
//! by RouteViews that contain more than 20K prefixes and more than one
//! distinct next hop".

use poptrie_rib::{NextHop, Prefix, RadixTree};
use poptrie_rng::prelude::*;
use std::collections::HashSet;

use crate::dist::BGP_V6_WEIGHTS;
use crate::gen::seed_for;

/// A synthesized IPv6 routing table.
#[derive(Debug, Clone)]
pub struct DatasetV6 {
    /// Dataset name.
    pub name: String,
    /// Routes, sorted by prefix.
    pub routes: Vec<(Prefix<u128>, NextHop)>,
}

impl DatasetV6 {
    /// Number of routes.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// Load into a RIB radix tree.
    pub fn to_rib(&self) -> RadixTree<u128, NextHop> {
        RadixTree::from_routes(self.routes.iter().copied())
    }
}

/// Names of the 13 RouteViews-style IPv6 tables of §4.10.
pub fn ipv6_routeviews_names() -> Vec<String> {
    (0..13).map(|i| format!("RV6-p{i}")).collect()
}

/// Synthesize an IPv6 table.
///
/// `"REAL-Tier1-A-v6"` produces the paper's 20,440-prefix tier-1 table
/// with 13 next hops; the [`ipv6_routeviews_names`] produce 20–26K-prefix
/// tables with varied next-hop counts.
pub fn ipv6_dataset(name: &str) -> DatasetV6 {
    let (prefixes, next_hops) = match name {
        "REAL-Tier1-A-v6" => (20_440usize, 13u16),
        _ => {
            let h = seed_for(name);
            (20_000 + (h % 6_000) as usize, 2 + (h % 200) as u16)
        }
    };
    let mut rng = StdRng::seed_from_u64(seed_for(name));
    // Allocation containers: /32 LIR blocks inside 2000::/8, each with a
    // home next hop (same locality rationale as the IPv4 generator).
    let n_containers = 3_000;
    let mut cset = HashSet::new();
    let mut containers = Vec::with_capacity(n_containers);
    while containers.len() < n_containers {
        let base: u128 = (0x20u128 << 120) | ((rng.gen::<u128>() >> 8) & !((1u128 << 96) - 1));
        if cset.insert(base) {
            let nh = (rng.gen_range(0..next_hops)) + 1;
            containers.push((base, nh));
        }
    }
    let total: u64 = BGP_V6_WEIGHTS.iter().map(|&(_, w)| w as u64).sum();
    let mut seen: HashSet<(u128, u8)> = HashSet::with_capacity(prefixes * 2);
    let mut routes = Vec::with_capacity(prefixes);
    while routes.len() < prefixes {
        let mut draw = rng.gen_range(0..total);
        let mut len = BGP_V6_WEIGHTS[BGP_V6_WEIGHTS.len() - 1].0;
        for &(l, w) in &BGP_V6_WEIGHTS {
            if draw < w as u64 {
                len = l;
                break;
            }
            draw -= w as u64;
        }
        let (addr, home) = if len <= 32 {
            // Allocation-level prefix: aligned inside 2000::/8.
            let addr = (0x20u128 << 120) | (rng.gen::<u128>() >> 8);
            (addr, None)
        } else {
            let &(c, home) = containers.choose(&mut rng).expect("pool");
            let addr = c | ((rng.gen::<u128>() >> 32) & ((1u128 << 96) - 1));
            (addr, Some(home))
        };
        let prefix = Prefix::new(addr, len);
        if !seen.insert((prefix.addr(), len)) {
            continue;
        }
        let nh = if routes.len() < next_hops as usize {
            routes.len() as NextHop + 1
        } else {
            match home {
                Some(h) if rng.gen_bool(0.75) => h,
                _ => rng.gen_range(1..=next_hops),
            }
        };
        routes.push((prefix, nh));
    }
    routes.sort_unstable();
    DatasetV6 {
        name: name.to_string(),
        routes,
    }
}
