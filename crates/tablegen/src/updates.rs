//! Synthetic BGP update streams (§4.9).
//!
//! The paper replays one hour of RouteViews update archives against
//! RV-linx-p52: "23,446 route updates (18,141 announced and 5,305
//! withdrawn) in 7,824 messages". This module synthesizes a stream with
//! the same announce/withdraw mix and the churn structure of real BGP:
//! most announcements re-advertise an existing prefix with a different
//! next hop (path changes), a smaller share announce new, mostly long
//! prefixes; withdrawals remove currently present prefixes.

use poptrie_rib::{NextHop, Prefix};
use poptrie_rng::prelude::*;

use crate::gen::{seed_for, Dataset};

/// One BGP update event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateEvent {
    /// Announce (insert or replace) `prefix -> next hop`.
    Announce(Prefix<u32>, NextHop),
    /// Withdraw `prefix`.
    Withdraw(Prefix<u32>),
}

/// Synthesize an update stream against `base`, deterministically.
///
/// Produces `announces + withdraws` events interleaved the way update
/// bursts arrive (withdrawals reference prefixes that exist at that point
/// in the replay, including ones announced earlier in the stream).
pub fn synthesize_update_stream(
    base: &Dataset,
    announces: usize,
    withdraws: usize,
) -> Vec<UpdateEvent> {
    let mut rng = StdRng::seed_from_u64(seed_for(&base.name) ^ 0x5eed_0f09);
    let max_nh = base
        .routes
        .iter()
        .map(|&(_, nh)| nh)
        .max()
        .unwrap_or(1)
        .max(2);
    // Candidate pool for re-announcements and withdrawals.
    let mut present: Vec<Prefix<u32>> = base.routes.iter().map(|&(p, _)| p).collect();
    let total = announces + withdraws;
    let mut events = Vec::with_capacity(total);
    let mut remaining_a = announces;
    let mut remaining_w = withdraws;
    while remaining_a + remaining_w > 0 {
        let announce = remaining_w == 0
            || (remaining_a > 0 && rng.gen_range(0..remaining_a + remaining_w) < remaining_a);
        if announce {
            remaining_a -= 1;
            if rng.gen_bool(0.85) && !present.is_empty() {
                // Path change: re-announce an existing prefix with a new
                // next hop.
                let p = *present.choose(&mut rng).expect("non-empty");
                events.push(UpdateEvent::Announce(p, rng.gen_range(1..=max_nh)));
            } else {
                // New announcement: typically a long, specific prefix.
                let len = *[20u8, 22, 24, 24, 24].choose(&mut rng).unwrap();
                let first = rng.gen_range(1u32..=223);
                let addr = (first << 24) | (rng.gen::<u32>() & 0x00FF_FFFF);
                let p = Prefix::new(addr, len);
                events.push(UpdateEvent::Announce(p, rng.gen_range(1..=max_nh)));
                present.push(p);
            }
        } else {
            remaining_w -= 1;
            if present.is_empty() {
                continue;
            }
            let idx = rng.gen_range(0..present.len());
            let p = present.swap_remove(idx);
            events.push(UpdateEvent::Withdraw(p));
        }
    }
    events
}
