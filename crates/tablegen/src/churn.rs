//! Deterministic churn streams over adversarial prefix pools.
//!
//! [`synthesize_update_stream`](crate::synthesize_update_stream) models
//! *realistic* BGP churn (§4.9's replay mix). This module is the opposite
//! tool: a stream built to hit every structurally awkward case of the
//! §3.5 incremental-update path, for the model-based churn fuzzer
//! (`tests/churn_fuzz.rs`) that cross-checks a [`Fib`] against its RIB
//! oracle and audits the compiled trie as it churns. The pool a stream
//! draws from deliberately over-represents:
//!
//! * the **default route** `/0` and full-length **host routes**
//!   (`/32`, `/128`), the two ends every off-by-one in prefix-length
//!   handling falls off of;
//! * prefixes **straddling the direct-pointing boundary** `s` (§3.4):
//!   lengths `s-1`, `s`, `s+1`, where an update flips between patching
//!   one direct slot and patching a range of them;
//! * **chunk-boundary lengths** `s + 6k ± 1` where a prefix gains or
//!   loses a trie level;
//! * deeply **nested chains** (`/0 ⊃ /4 ⊃ /8 ⊃ …`) sharing one address,
//!   so announcing or withdrawing an outer prefix must rewrite the leaf
//!   runs *around* the inner ones;
//! * **non-canonical spellings**: announce/withdraw pairs where the
//!   withdraw uses a different host-bit pattern than the announce, which
//!   must still refer to the same route ([`Prefix::new`] masks).
//!
//! Everything is deterministic per seed, so a failing run is replayable
//! from two integers (seed, event index).
//!
//! [`Fib`]: ../../poptrie/update/struct.Fib.html

use poptrie_bitops::Bits;
use poptrie_rib::{NextHop, Prefix};
use poptrie_rng::prelude::*;

/// One churn event, generic over the key width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnEvent<K: Bits> {
    /// Announce (insert or replace) `prefix -> next hop`.
    Announce(Prefix<K>, NextHop),
    /// Withdraw `prefix`.
    Withdraw(Prefix<K>),
}

impl<K: Bits> ChurnEvent<K> {
    /// The prefix this event refers to.
    pub fn prefix(&self) -> Prefix<K> {
        match *self {
            ChurnEvent::Announce(p, _) => p,
            ChurnEvent::Withdraw(p) => p,
        }
    }
}

/// Parameters of a churn stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnConfig {
    /// RNG seed; equal configs produce identical streams.
    pub seed: u64,
    /// Number of events to generate.
    pub events: usize,
    /// The direct-pointing size `s` of the structure under test — the
    /// pool concentrates prefixes around this boundary.
    pub direct_bits: u8,
    /// Prefixes in the adversarial pool. Smaller pools revisit the same
    /// prefixes more, stressing replace/withdraw/re-announce cycles.
    pub pool: usize,
    /// Next hops are drawn from `1..=max_nh`; small values make repeat
    /// announcements of the *same* next hop (no-op updates) likely.
    pub max_nh: NextHop,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            seed: 0,
            events: 10_000,
            direct_bits: 8,
            pool: 256,
            max_nh: 13,
        }
    }
}

/// A random key of width `K::BITS`.
fn random_key<K: Bits>(rng: &mut StdRng) -> K {
    K::from_u128(rng.gen::<u128>() & K::ONES.to_u128())
}

/// The adversarial prefix-length menu for width `K::BITS` and boundary
/// `s`: extremes, the direct-pointing straddle, chunk boundaries, and a
/// spread of ordinary lengths.
fn length_menu<K: Bits>(s: u8) -> Vec<u8> {
    let w = K::BITS as u8;
    let mut lens = vec![0, w]; // default route and host routes
    for d in [-1i16, 0, 1] {
        let l = s as i16 + d;
        if (0..=w as i16).contains(&l) {
            lens.push(l as u8);
        }
    }
    // Chunk boundaries below the direct table: a prefix of length
    // s + 6k resolves exactly at level k; ±1 forces the straddle.
    let mut level = s as i16;
    while level <= w as i16 {
        for d in [-1i16, 0, 1] {
            let l = level + d;
            if (0..=w as i16).contains(&l) {
                lens.push(l as u8);
            }
        }
        level += 6;
    }
    // A spread of ordinary lengths so pools on wide keys are not all
    // boundary cases.
    let mut l = 1u8;
    while l < w {
        lens.push(l);
        l = l.saturating_add(w.max(8) / 8);
    }
    lens.sort_unstable();
    lens.dedup();
    lens
}

/// Build the adversarial prefix pool for a config. Exposed so harnesses
/// can print or minimize a failing pool.
pub fn adversarial_pool<K: Bits>(cfg: &ChurnConfig) -> Vec<Prefix<K>> {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xAD5E_7001);
    let lens = length_menu::<K>(cfg.direct_bits);
    let w = K::BITS as u8;
    let mut pool: Vec<Prefix<K>> = Vec::with_capacity(cfg.pool);
    // A third of the pool is nested chains: one random address spelled at
    // every length in the menu, so the chain shares all its high bits.
    while pool.len() < cfg.pool / 3 {
        let addr = random_key::<K>(&mut rng);
        for &len in &lens {
            if pool.len() >= cfg.pool / 3 {
                break;
            }
            // Deliberately unmasked: Prefix::new canonicalizes, and the
            // fuzzer wants that path exercised on every construction.
            pool.push(Prefix::new(addr, len));
        }
    }
    // The rest are independent random prefixes over the menu, with a few
    // forced extremes in case the menu draw misses them.
    pool.push(Prefix::new(K::ZERO, 0));
    pool.push(Prefix::new(random_key::<K>(&mut rng), w));
    while pool.len() < cfg.pool {
        let len = *lens.choose(&mut rng).expect("non-empty menu");
        pool.push(Prefix::new(random_key::<K>(&mut rng), len));
    }
    pool
}

/// Synthesize a deterministic churn stream from `cfg`.
///
/// Roughly 60% announces / 40% withdraws, all over the adversarial pool,
/// so every prefix cycles through announce → replace → withdraw →
/// re-announce many times. Withdraws of absent prefixes and repeat
/// announcements of the current next hop occur naturally and are
/// intentional: both must be observable no-ops.
pub fn churn_stream<K: Bits>(cfg: &ChurnConfig) -> Vec<ChurnEvent<K>> {
    let pool = adversarial_pool::<K>(cfg);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xAD5E_7002);
    let mut events = Vec::with_capacity(cfg.events);
    for _ in 0..cfg.events {
        let p = *pool.choose(&mut rng).expect("non-empty pool");
        // Respell the prefix from a random host address inside it: a
        // different (non-canonical) spelling of the same route, which
        // construction must canonicalize back.
        let p = if rng.gen_bool(0.25) {
            let noise =
                random_key::<K>(&mut rng).to_u128() & !K::prefix_mask(p.len() as u32).to_u128();
            Prefix::new(K::from_u128(p.addr().to_u128() | noise), p.len())
        } else {
            p
        };
        if rng.gen_bool(0.6) {
            events.push(ChurnEvent::Announce(p, rng.gen_range(1..=cfg.max_nh)));
        } else {
            events.push(ChurnEvent::Withdraw(p));
        }
    }
    events
}
