//! MRT (RFC 6396) parsing: TABLE_DUMP_V2 RIB snapshots and BGP4MP
//! update traces.
//!
//! The paper's 32 RouteViews datasets are MRT RIB dumps; each `RV-…-pN`
//! table is the view of a single peer (e.g. "RV-linx-p46 is the 46th peer
//! in the linx RIB snapshot"). This module parses exactly that subset of
//! MRT — `PEER_INDEX_TABLE` plus `RIB_IPV4_UNICAST` / `RIB_IPV6_UNICAST`
//! records — and extracts one peer's routes, mapping each distinct BGP
//! `NEXT_HOP` to a dense FIB index the way the paper's evaluation does
//! (Table 1 counts "# of nhops" as distinct next hops).
//!
//! ```no_run
//! use poptrie_tablegen::mrt::{parse_table_dump_v2, PeerView};
//!
//! let bytes = std::fs::read("rib.20141217.0000.mrt").unwrap();
//! let dump = parse_table_dump_v2(&bytes).unwrap();
//! // The paper's RV-linx-p46 == peer index 46 (zero-based).
//! let PeerView { routes_v4, next_hops, .. } = dump.peer_view(46).unwrap();
//! println!("{} routes, {} next hops", routes_v4.len(), next_hops.len());
//! ```
//!
//! Only the record types needed for routing-table extraction are
//! understood; other MRT types are skipped. Compressed dumps must be
//! decompressed first (`bzcat rib.bz2 > rib.mrt`).
//!
//! The second half of this module ([`parse_bgp4mp`], [`UpdateTrace`])
//! handles BGP4MP update captures — the message-by-message movie to
//! TABLE_DUMP_V2's snapshot — for replaying real announce/withdraw
//! interleavings through the `poptrie-bgp` session FSM at recorded or
//! scaled rates.

use poptrie_rib::{NextHop, Prefix};
use std::collections::HashMap;
use std::net::{Ipv4Addr, Ipv6Addr};

/// MRT type TABLE_DUMP_V2.
const TYPE_TABLE_DUMP_V2: u16 = 13;
/// MRT type BGP4MP (RFC 6396 §4.4): live BGP message captures.
const TYPE_BGP4MP: u16 = 16;
/// MRT type BGP4MP_ET: BGP4MP with an extra microsecond timestamp.
const TYPE_BGP4MP_ET: u16 = 17;
/// BGP4MP subtypes carrying a full BGP message.
const SUB_BGP4MP_MESSAGE: u16 = 1;
const SUB_BGP4MP_MESSAGE_AS4: u16 = 4;
/// TABLE_DUMP_V2 subtypes.
const SUB_PEER_INDEX_TABLE: u16 = 1;
const SUB_RIB_IPV4_UNICAST: u16 = 2;
const SUB_RIB_IPV6_UNICAST: u16 = 4;
/// BGP path attribute types.
const ATTR_NEXT_HOP: u8 = 3;
const ATTR_MP_REACH_NLRI: u8 = 14;

/// A parse failure with byte offset context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MrtError {
    /// Byte offset of the record (or field) that failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl core::fmt::Display for MrtError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "MRT parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for MrtError {}

/// One peer from the `PEER_INDEX_TABLE`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Peer {
    /// Peer BGP identifier.
    pub bgp_id: u32,
    /// Peer address (v4 or v6).
    pub address: std::net::IpAddr,
    /// Peer AS number.
    pub asn: u32,
}

/// One RIB entry: a prefix as announced by one peer, with the next hop
/// recovered from its path attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RibEntry<K: poptrie_bitops::Bits> {
    /// The announced prefix.
    pub prefix: Prefix<K>,
    /// Index into [`TableDump::peers`].
    pub peer_index: u16,
    /// The BGP NEXT_HOP, if present in the attributes.
    pub next_hop: Option<std::net::IpAddr>,
}

/// A parsed TABLE_DUMP_V2 file.
#[derive(Debug, Clone, Default)]
pub struct TableDump {
    /// The peer table.
    pub peers: Vec<Peer>,
    /// All IPv4 unicast RIB entries (every peer's).
    pub v4: Vec<RibEntry<u32>>,
    /// All IPv6 unicast RIB entries (every peer's).
    pub v6: Vec<RibEntry<u128>>,
}

/// One peer's view extracted from a dump: the per-peer routing table the
/// paper benchmarks, with next hops densified to FIB indices `1..`.
#[derive(Debug, Clone)]
pub struct PeerView {
    /// The peer.
    pub peer: Peer,
    /// IPv4 routes `(prefix, fib index)`.
    pub routes_v4: Vec<(Prefix<u32>, NextHop)>,
    /// IPv6 routes `(prefix, fib index)`.
    pub routes_v6: Vec<(Prefix<u128>, NextHop)>,
    /// FIB index → next-hop address (index 0 unused; indices are 1-based).
    pub next_hops: Vec<std::net::IpAddr>,
}

/// A bounds-checked big-endian byte cursor.
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(data: &'a [u8]) -> Self {
        Cursor { data, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn err(&self, message: impl Into<String>) -> MrtError {
        MrtError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], MrtError> {
        if self.remaining() < n {
            return Err(self.err(format!(
                "truncated: need {n} bytes, have {}",
                self.remaining()
            )));
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, MrtError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, MrtError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, MrtError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }
}

/// Parse a whole TABLE_DUMP_V2 file. Records of other MRT types are
/// skipped; a missing `PEER_INDEX_TABLE` is an error only if RIB records
/// reference peers.
pub fn parse_table_dump_v2(bytes: &[u8]) -> Result<TableDump, MrtError> {
    let mut cur = Cursor::new(bytes);
    let mut dump = TableDump::default();
    while cur.remaining() > 0 {
        let record_start = cur.pos;
        let _timestamp = cur.u32()?;
        let mrt_type = cur.u16()?;
        let subtype = cur.u16()?;
        let length = cur.u32()? as usize;
        let body = cur.take(length).map_err(|mut e| {
            e.offset = record_start;
            e.message = format!("record body: {}", e.message);
            e
        })?;
        if mrt_type != TYPE_TABLE_DUMP_V2 {
            continue; // not a RIB dump record; skip (e.g. BGP4MP updates)
        }
        let mut body = Cursor::new(body);
        match subtype {
            SUB_PEER_INDEX_TABLE => parse_peer_index(&mut body, &mut dump)?,
            SUB_RIB_IPV4_UNICAST => parse_rib_v4(&mut body, &mut dump)?,
            SUB_RIB_IPV6_UNICAST => parse_rib_v6(&mut body, &mut dump)?,
            _ => {} // RIB_GENERIC, multicast, … — out of scope
        }
    }
    Ok(dump)
}

fn parse_peer_index(cur: &mut Cursor<'_>, dump: &mut TableDump) -> Result<(), MrtError> {
    let _collector_id = cur.u32()?;
    let name_len = cur.u16()? as usize;
    let _view_name = cur.take(name_len)?;
    let count = cur.u16()?;
    for _ in 0..count {
        let peer_type = cur.u8()?;
        let bgp_id = cur.u32()?;
        let address = if peer_type & 0x01 != 0 {
            let b = cur.take(16)?;
            let mut a = [0u8; 16];
            a.copy_from_slice(b);
            std::net::IpAddr::V6(Ipv6Addr::from(a))
        } else {
            let b = cur.take(4)?;
            std::net::IpAddr::V4(Ipv4Addr::new(b[0], b[1], b[2], b[3]))
        };
        let asn = if peer_type & 0x02 != 0 {
            cur.u32()?
        } else {
            cur.u16()? as u32
        };
        dump.peers.push(Peer {
            bgp_id,
            address,
            asn,
        });
    }
    Ok(())
}

/// Read an NLRI prefix: length byte + ceil(len/8) address bytes.
fn read_prefix_bytes(cur: &mut Cursor<'_>, max_len: u8) -> Result<(Vec<u8>, u8), MrtError> {
    let len = cur.u8()?;
    if len > max_len {
        return Err(cur.err(format!("prefix length {len} exceeds {max_len}")));
    }
    let nbytes = len.div_ceil(8) as usize;
    Ok((cur.take(nbytes)?.to_vec(), len))
}

fn parse_rib_v4(cur: &mut Cursor<'_>, dump: &mut TableDump) -> Result<(), MrtError> {
    let _seq = cur.u32()?;
    let (bytes, len) = read_prefix_bytes(cur, 32)?;
    let mut addr = [0u8; 4];
    addr[..bytes.len()].copy_from_slice(&bytes);
    let prefix = Prefix::new(u32::from_be_bytes(addr), len);
    let entry_count = cur.u16()?;
    for _ in 0..entry_count {
        let peer_index = cur.u16()?;
        let _originated = cur.u32()?;
        let attr_len = cur.u16()? as usize;
        let attrs = cur.take(attr_len)?;
        let next_hop = parse_next_hop(attrs, false)?;
        dump.v4.push(RibEntry {
            prefix,
            peer_index,
            next_hop,
        });
    }
    Ok(())
}

fn parse_rib_v6(cur: &mut Cursor<'_>, dump: &mut TableDump) -> Result<(), MrtError> {
    let _seq = cur.u32()?;
    let (bytes, len) = read_prefix_bytes(cur, 128)?;
    let mut addr = [0u8; 16];
    addr[..bytes.len()].copy_from_slice(&bytes);
    let prefix = Prefix::new(u128::from_be_bytes(addr), len);
    let entry_count = cur.u16()?;
    for _ in 0..entry_count {
        let peer_index = cur.u16()?;
        let _originated = cur.u32()?;
        let attr_len = cur.u16()? as usize;
        let attrs = cur.take(attr_len)?;
        let next_hop = parse_next_hop(attrs, true)?;
        dump.v6.push(RibEntry {
            prefix,
            peer_index,
            next_hop,
        });
    }
    Ok(())
}

/// Walk BGP path attributes and extract the next hop: attribute 3
/// (NEXT_HOP) for IPv4, or the next-hop field of attribute 14
/// (MP_REACH_NLRI) for IPv6 (RFC 4760 §7: in MRT dumps the attribute is
/// stored with the AFI/SAFI/NLRI elided, starting at the next-hop
/// length).
fn parse_next_hop(attrs: &[u8], v6: bool) -> Result<Option<std::net::IpAddr>, MrtError> {
    let mut cur = Cursor::new(attrs);
    while cur.remaining() > 0 {
        let flags = cur.u8()?;
        let type_code = cur.u8()?;
        let len = if flags & 0x10 != 0 {
            cur.u16()? as usize // extended length
        } else {
            cur.u8()? as usize
        };
        let value = cur.take(len)?;
        match (type_code, v6) {
            (ATTR_NEXT_HOP, false) if len == 4 => {
                return Ok(Some(std::net::IpAddr::V4(Ipv4Addr::new(
                    value[0], value[1], value[2], value[3],
                ))));
            }
            (ATTR_MP_REACH_NLRI, true) => {
                // RFC 6396 §4.3.4 form: next-hop length, then the address.
                if value.is_empty() {
                    continue;
                }
                let nh_len = value[0] as usize;
                if nh_len >= 16 && value.len() > 16 {
                    let mut a = [0u8; 16];
                    a.copy_from_slice(&value[1..17]);
                    return Ok(Some(std::net::IpAddr::V6(Ipv6Addr::from(a))));
                }
            }
            _ => {}
        }
    }
    Ok(None)
}

impl TableDump {
    /// Extract the per-peer table the paper benchmarks: peer
    /// `peer_index`'s routes with next hops densified to FIB indices.
    /// Returns `None` for an unknown peer index.
    pub fn peer_view(&self, peer_index: u16) -> Option<PeerView> {
        let peer = self.peers.get(peer_index as usize)?.clone();
        let mut ids: HashMap<std::net::IpAddr, NextHop> = HashMap::new();
        let mut next_hops: Vec<std::net::IpAddr> = vec![peer.address]; // slot 0, unused
        let mut densify = |nh: std::net::IpAddr| -> NextHop {
            *ids.entry(nh).or_insert_with(|| {
                next_hops.push(nh);
                (next_hops.len() - 1) as NextHop
            })
        };
        let mut routes_v4 = Vec::new();
        for e in self.v4.iter().filter(|e| e.peer_index == peer_index) {
            if let Some(nh) = e.next_hop {
                routes_v4.push((e.prefix, densify(nh)));
            }
        }
        let mut routes_v6 = Vec::new();
        for e in self.v6.iter().filter(|e| e.peer_index == peer_index) {
            if let Some(nh) = e.next_hop {
                routes_v6.push((e.prefix, densify(nh)));
            }
        }
        routes_v4.sort_unstable();
        routes_v4.dedup_by_key(|&mut (p, _)| p);
        routes_v6.sort_unstable();
        routes_v6.dedup_by_key(|&mut (p, _)| p);
        Some(PeerView {
            peer,
            routes_v4,
            routes_v6,
            next_hops,
        })
    }

    /// Peer indices with at least `min_routes` IPv4 routes — how the
    /// paper selected its RouteViews peers ("filtering out the datasets
    /// with only one next hop, or with routing table size less than
    /// 500K").
    pub fn full_feed_peers(&self, min_routes: usize) -> Vec<u16> {
        let mut counts: HashMap<u16, usize> = HashMap::new();
        for e in &self.v4 {
            *counts.entry(e.peer_index).or_default() += 1;
        }
        let mut out: Vec<u16> = counts
            .into_iter()
            .filter(|&(_, c)| c >= min_routes)
            .map(|(p, _)| p)
            .collect();
        out.sort_unstable();
        out
    }
}

// --------------------------------------------------------------------
// BGP4MP update traces (RFC 6396 §4.4)
//
// Where TABLE_DUMP_V2 is a RIB *snapshot*, BGP4MP is the *movie*: a
// capture of the BGP messages a collector exchanged with its peers.
// Replaying one against the engine's control plane exercises the same
// incremental-update path the paper's §6.4 route-update benchmark
// measures, with real announce/withdraw interleaving.

/// One captured BGP message from a BGP4MP / BGP4MP_ET record.
///
/// The message is kept as raw wire bytes: the replay harness feeds them
/// through the `poptrie-bgp` session FSM exactly as a socket would, so
/// framing, validation and route extraction follow the production path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateRecord {
    /// Capture time in microseconds (MRT header seconds scaled, plus
    /// the BGP4MP_ET microsecond field when present).
    pub timestamp_us: u64,
    /// Peer AS number.
    pub peer_asn: u32,
    /// Peer address.
    pub peer_address: std::net::IpAddr,
    /// The complete BGP message (marker, header, body) as captured.
    pub message: Vec<u8>,
}

impl UpdateRecord {
    /// Parse the captured message with the `poptrie-bgp` wire codec.
    pub fn parse(&self) -> Result<poptrie_bgp::Message, poptrie_bgp::BgpError> {
        poptrie_bgp::wire::parse_message(&self.message)
    }
}

/// A parsed BGP4MP update trace, in capture order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UpdateTrace {
    /// The captured messages.
    pub records: Vec<UpdateRecord>,
}

impl UpdateTrace {
    /// Playout offsets for replaying the trace at `speedup` × the
    /// recorded rate: entry `i` is the microsecond delay from replay
    /// start to record `i`'s send time. `speedup <= 0` (or an empty
    /// trace) replays as fast as possible (all zeros); `1.0` is the
    /// recorded rate.
    pub fn replay_offsets_us(&self, speedup: f64) -> Vec<u64> {
        let t0 = self.records.first().map_or(0, |r| r.timestamp_us);
        self.records
            .iter()
            .map(|r| {
                if speedup > 0.0 {
                    ((r.timestamp_us - t0) as f64 / speedup) as u64
                } else {
                    0
                }
            })
            .collect()
    }

    /// Exact announce/withdraw accounting over every parseable UPDATE in
    /// the trace: `(announced v4+v6, withdrawn v4+v6)` route counts.
    /// Unparseable or non-UPDATE records contribute nothing.
    pub fn accounting(&self) -> (u64, u64) {
        let mut announced = 0u64;
        let mut withdrawn = 0u64;
        for r in &self.records {
            if let Ok(poptrie_bgp::Message::Update(u)) = r.parse() {
                announced += (u.announced_v4.len() + u.announced_v6.len()) as u64;
                withdrawn += (u.withdrawn_v4.len() + u.withdrawn_v6.len()) as u64;
            }
        }
        (announced, withdrawn)
    }

    /// The concatenated wire bytes of every captured message — what the
    /// peer's TCP stream would have carried. Feed to a
    /// `poptrie-bgp` session (optionally through a fault plan).
    pub fn wire_stream(&self) -> Vec<u8> {
        self.records
            .iter()
            .flat_map(|r| r.message.iter().copied())
            .collect()
    }

    /// Serialize the trace as MRT BGP4MP_ET / BGP4MP_MESSAGE_AS4
    /// records — the deterministic fixture encoder ([`parse_bgp4mp`]
    /// round-trips it). IPv4 peers only (address family 1).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for r in &self.records {
            let peer = match r.peer_address {
                std::net::IpAddr::V4(a) => a.octets(),
                std::net::IpAddr::V6(_) => [0, 0, 0, 0],
            };
            let body_len = 4 // ET microseconds
                + 4 + 4 + 2 + 2 // peer AS, local AS, ifindex, AFI
                + 4 + 4 // peer + local address
                + r.message.len();
            out.extend_from_slice(&((r.timestamp_us / 1_000_000) as u32).to_be_bytes());
            out.extend_from_slice(&TYPE_BGP4MP_ET.to_be_bytes());
            out.extend_from_slice(&SUB_BGP4MP_MESSAGE_AS4.to_be_bytes());
            out.extend_from_slice(&(body_len as u32).to_be_bytes());
            out.extend_from_slice(&((r.timestamp_us % 1_000_000) as u32).to_be_bytes());
            out.extend_from_slice(&r.peer_asn.to_be_bytes());
            out.extend_from_slice(&0u32.to_be_bytes()); // local AS
            out.extend_from_slice(&0u16.to_be_bytes()); // ifindex
            out.extend_from_slice(&1u16.to_be_bytes()); // AFI: IPv4
            out.extend_from_slice(&peer);
            out.extend_from_slice(&[0, 0, 0, 0]); // local address
            out.extend_from_slice(&r.message);
        }
        out
    }
}

/// Parse the BGP4MP / BGP4MP_ET records of an MRT file into an update
/// trace. `BGP4MP_MESSAGE` and `BGP4MP_MESSAGE_AS4` subtypes are kept
/// (both address families); state-change and other records, and records
/// of other MRT types (e.g. an embedded TABLE_DUMP_V2 snapshot), are
/// skipped. Truncated records are an [`MrtError`] with offset context —
/// a malformed trace must fail loudly, not replay partially.
pub fn parse_bgp4mp(bytes: &[u8]) -> Result<UpdateTrace, MrtError> {
    let mut cur = Cursor::new(bytes);
    let mut trace = UpdateTrace::default();
    while cur.remaining() > 0 {
        let record_start = cur.pos;
        let timestamp = cur.u32()?;
        let mrt_type = cur.u16()?;
        let subtype = cur.u16()?;
        let length = cur.u32()? as usize;
        let body = cur.take(length).map_err(|mut e| {
            e.offset = record_start;
            e.message = format!("record body: {}", e.message);
            e
        })?;
        if mrt_type != TYPE_BGP4MP && mrt_type != TYPE_BGP4MP_ET {
            continue;
        }
        if subtype != SUB_BGP4MP_MESSAGE && subtype != SUB_BGP4MP_MESSAGE_AS4 {
            continue; // state changes and AddPath variants: out of scope
        }
        let mut body = Cursor::new(body);
        let micros = if mrt_type == TYPE_BGP4MP_ET {
            body.u32()? as u64
        } else {
            0
        };
        let as4 = subtype == SUB_BGP4MP_MESSAGE_AS4;
        let peer_asn = if as4 { body.u32()? } else { body.u16()? as u32 };
        let _local_asn = if as4 { body.u32()? } else { body.u16()? as u32 };
        let _ifindex = body.u16()?;
        let afi = body.u16()?;
        let peer_address = match afi {
            1 => {
                let b = body.take(4)?;
                let _local = body.take(4)?;
                std::net::IpAddr::V4(Ipv4Addr::new(b[0], b[1], b[2], b[3]))
            }
            2 => {
                let b = body.take(16)?;
                let _local = body.take(16)?;
                let mut a = [0u8; 16];
                a.copy_from_slice(b);
                std::net::IpAddr::V6(Ipv6Addr::from(a))
            }
            other => return Err(body.err(format!("unknown BGP4MP address family {other}"))),
        };
        let message = body.take(body.remaining())?.to_vec();
        trace.records.push(UpdateRecord {
            timestamp_us: timestamp as u64 * 1_000_000 + micros,
            peer_asn,
            peer_address,
            message,
        });
    }
    Ok(trace)
}
