//! The SYN1/SYN2 synthetic expansions of §4.1.
//!
//! "To test the scalability of our technology against future routing table
//! growth, we created two types of synthetic routing tables … The first
//! type (SYN1) … each prefix that is no longer than /24 and /16 is split
//! into two and four prefixes, respectively. The second type (SYN2) …
//! each prefix that is no longer than /24, /20, and /16 is split into two,
//! four, and eight prefixes … Each split prefix is assigned a different
//! next hop systematically; the i-th split prefix has the next hop n + i
//! where n is the original next hop."
//!
//! Two implementation notes, recorded in EXPERIMENTS.md:
//!
//! * The tiers are applied most-specific first (a /15 is split 4-way, not
//!   both 4-way and 2-way), and /24s themselves are left intact — /25
//!   children would explode SAIL's level-32 chunks, which Table 5 shows
//!   does *not* happen (SAIL compiles SYN1).
//! * The paper notes its `n + i` next hops "did not overlap any existing
//!   next hops"; since our base next hops are contiguous `1..=N`, we use
//!   `n + i·N` (with `N` the base next-hop count) to guarantee the same
//!   non-overlap property.

use poptrie_rib::{NextHop, Prefix};

use crate::gen::Dataset;

/// Split tiers: `(max_len_inclusive, extra_bits)` tried in order.
fn split_bits(tiers: &[(u8, u8)], len: u8) -> u8 {
    for &(max, extra) in tiers {
        if len <= max {
            return extra;
        }
    }
    0
}

fn expand(base: &Dataset, suffix: &str, tiers: &[(u8, u8)]) -> Dataset {
    let n = base.routes.iter().map(|&(_, nh)| nh).max().unwrap_or(0);
    // Entries carry a rank so that, where a split child collides with a
    // pre-existing route of the same prefix, the pre-existing route wins —
    // as it would if the split set were inserted into a RIB already
    // holding the original table.
    let mut out: Vec<(Prefix<u32>, u8, NextHop)> = Vec::with_capacity(base.routes.len() * 2);
    for &(prefix, nh) in &base.routes {
        let extra = split_bits(tiers, prefix.len());
        if extra == 0 {
            out.push((prefix, 0, nh));
        } else {
            for (i, child) in prefix.split(extra).enumerate() {
                // i-th split gets n + i·N: systematically distinct and
                // guaranteed not to collide with base next hops.
                let new_nh = nh + (i as NextHop) * n;
                out.push((child, 1, new_nh));
            }
        }
    }
    out.sort_unstable_by_key(|&(p, rank, _)| (p, rank));
    let mut seen = std::collections::HashSet::with_capacity(out.len() * 2);
    out.retain(|&(p, _, _)| seen.insert(p));
    Dataset {
        name: format!("SYN{suffix}-{}", base.name.trim_start_matches("REAL-")),
        routes: out.into_iter().map(|(p, _, nh)| (p, nh)).collect(),
    }
}

/// SYN1 (§4.1): prefixes ≤ /16 split 4-way, /17–/23 split 2-way.
pub fn expand_syn1(base: &Dataset) -> Dataset {
    expand(base, "1", &[(16, 2), (23, 1)])
}

/// SYN2 (§4.1): prefixes ≤ /16 split 8-way, /17–/20 split 4-way, /21–/23
/// split 2-way.
pub fn expand_syn2(base: &Dataset) -> Dataset {
    expand(base, "2", &[(16, 3), (20, 2), (23, 1)])
}
