//! The 35 datasets of Table 1, with their exact route and next-hop counts.

use crate::gen::{Dataset, TableKind, TableSpec};

/// One Table 1 row: dataset name, number of prefixes, number of distinct
/// next hops, and which generator shape it uses.
#[derive(Debug, Clone, Copy)]
pub struct DatasetInfo {
    /// Dataset name as printed in Table 1.
    pub name: &'static str,
    /// "# of prefixes".
    pub prefixes: usize,
    /// "# of nhops".
    pub next_hops: u16,
    /// RouteViews snapshot or production-router table.
    pub kind: TableKind,
}

/// Table 1 of the paper: the 35 base routing-table datasets.
pub const TABLE1: [DatasetInfo; 35] = [
    DatasetInfo {
        name: "RV-linx-p46",
        prefixes: 518_231,
        next_hops: 308,
        kind: TableKind::RouteViews,
    },
    DatasetInfo {
        name: "RV-linx-p50",
        prefixes: 512_476,
        next_hops: 410,
        kind: TableKind::RouteViews,
    },
    DatasetInfo {
        name: "RV-linx-p52",
        prefixes: 514_590,
        next_hops: 419,
        kind: TableKind::RouteViews,
    },
    DatasetInfo {
        name: "RV-linx-p57",
        prefixes: 514_070,
        next_hops: 142,
        kind: TableKind::RouteViews,
    },
    DatasetInfo {
        name: "RV-linx-p60",
        prefixes: 508_700,
        next_hops: 70,
        kind: TableKind::RouteViews,
    },
    DatasetInfo {
        name: "RV-linx-p61",
        prefixes: 512_476,
        next_hops: 149,
        kind: TableKind::RouteViews,
    },
    DatasetInfo {
        name: "RV-nwax-p1",
        prefixes: 519_224,
        next_hops: 60,
        kind: TableKind::RouteViews,
    },
    DatasetInfo {
        name: "RV-nwax-p2",
        prefixes: 514_627,
        next_hops: 46,
        kind: TableKind::RouteViews,
    },
    DatasetInfo {
        name: "RV-nwax-p5",
        prefixes: 519_195,
        next_hops: 49,
        kind: TableKind::RouteViews,
    },
    DatasetInfo {
        name: "RV-paixisc-p12",
        prefixes: 519_142,
        next_hops: 68,
        kind: TableKind::RouteViews,
    },
    DatasetInfo {
        name: "RV-paixisc-p14",
        prefixes: 524_168,
        next_hops: 49,
        kind: TableKind::RouteViews,
    },
    DatasetInfo {
        name: "RV-saopaulo-p12",
        prefixes: 516_536,
        next_hops: 510,
        kind: TableKind::RouteViews,
    },
    DatasetInfo {
        name: "RV-saopaulo-p13",
        prefixes: 517_914,
        next_hops: 504,
        kind: TableKind::RouteViews,
    },
    DatasetInfo {
        name: "RV-saopaulo-p16",
        prefixes: 521_405,
        next_hops: 528,
        kind: TableKind::RouteViews,
    },
    DatasetInfo {
        name: "RV-saopaulo-p18",
        prefixes: 521_874,
        next_hops: 522,
        kind: TableKind::RouteViews,
    },
    DatasetInfo {
        name: "RV-saopaulo-p2",
        prefixes: 523_092,
        next_hops: 530,
        kind: TableKind::RouteViews,
    },
    DatasetInfo {
        name: "RV-saopaulo-p20",
        prefixes: 523_574,
        next_hops: 470,
        kind: TableKind::RouteViews,
    },
    DatasetInfo {
        name: "RV-saopaulo-p23",
        prefixes: 523_013,
        next_hops: 517,
        kind: TableKind::RouteViews,
    },
    DatasetInfo {
        name: "RV-saopaulo-p25",
        prefixes: 532_637,
        next_hops: 523,
        kind: TableKind::RouteViews,
    },
    DatasetInfo {
        name: "RV-saopaulo-p26",
        prefixes: 516_408,
        next_hops: 479,
        kind: TableKind::RouteViews,
    },
    DatasetInfo {
        name: "RV-saopaulo-p8",
        prefixes: 522_296,
        next_hops: 477,
        kind: TableKind::RouteViews,
    },
    DatasetInfo {
        name: "RV-saopaulo-p9",
        prefixes: 515_639,
        next_hops: 507,
        kind: TableKind::RouteViews,
    },
    DatasetInfo {
        name: "RV-singapore-p3",
        prefixes: 518_620,
        next_hops: 136,
        kind: TableKind::RouteViews,
    },
    DatasetInfo {
        name: "RV-singapore-p5",
        prefixes: 516_557,
        next_hops: 129,
        kind: TableKind::RouteViews,
    },
    DatasetInfo {
        name: "RV-sydney-p0",
        prefixes: 520_580,
        next_hops: 122,
        kind: TableKind::RouteViews,
    },
    DatasetInfo {
        name: "RV-sydney-p1",
        prefixes: 515_809,
        next_hops: 125,
        kind: TableKind::RouteViews,
    },
    DatasetInfo {
        name: "RV-sydney-p3",
        prefixes: 517_511,
        next_hops: 115,
        kind: TableKind::RouteViews,
    },
    DatasetInfo {
        name: "RV-sydney-p4",
        prefixes: 519_246,
        next_hops: 86,
        kind: TableKind::RouteViews,
    },
    DatasetInfo {
        name: "RV-sydney-p9",
        prefixes: 523_400,
        next_hops: 127,
        kind: TableKind::RouteViews,
    },
    DatasetInfo {
        name: "RV-telxatl-p3",
        prefixes: 511_161,
        next_hops: 56,
        kind: TableKind::RouteViews,
    },
    DatasetInfo {
        name: "RV-telxatl-p6",
        prefixes: 519_537,
        next_hops: 42,
        kind: TableKind::RouteViews,
    },
    DatasetInfo {
        name: "RV-telxatl-p7",
        prefixes: 513_339,
        next_hops: 49,
        kind: TableKind::RouteViews,
    },
    DatasetInfo {
        name: "REAL-Tier1-A",
        prefixes: 531_489,
        next_hops: 13,
        kind: TableKind::Real,
    },
    DatasetInfo {
        name: "REAL-Tier1-B",
        prefixes: 524_170,
        next_hops: 9,
        kind: TableKind::Real,
    },
    DatasetInfo {
        name: "REAL-RENET",
        prefixes: 516_100,
        next_hops: 32,
        kind: TableKind::Real,
    },
];

/// All Table 1 rows.
pub fn table1() -> &'static [DatasetInfo] {
    &TABLE1
}

/// All dataset names, in Table 1 order.
pub fn all_dataset_names() -> Vec<&'static str> {
    TABLE1.iter().map(|d| d.name).collect()
}

/// Synthesize one dataset by its Table 1 name.
///
/// # Panics
///
/// Panics when `name` is not a Table 1 dataset (SYN tables are derived —
/// see [`expand_syn1`](crate::expand_syn1) /
/// [`expand_syn2`](crate::expand_syn2)).
pub fn dataset(name: &str) -> Dataset {
    let info = TABLE1
        .iter()
        .find(|d| d.name == name)
        .unwrap_or_else(|| panic!("unknown dataset {name:?}; see tablegen::table1()"));
    TableSpec {
        name: info.name.to_string(),
        prefixes: info.prefixes,
        next_hops: info.next_hops,
        kind: info.kind,
    }
    .generate()
}
