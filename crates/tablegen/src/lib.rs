//! Routing-table dataset synthesis for the Poptrie reproduction.
//!
//! The paper evaluates on 35 routing tables (Table 1): 32 RouteViews BGP
//! snapshots, three tables from routers in production (`REAL-*`), plus
//! synthetic `SYN1`/`SYN2` expansions (§4.1) and an IPv6 table (§4.10).
//! Those RIBs are not redistributable, so this crate synthesizes
//! *structurally faithful* stand-ins, deterministically from each dataset
//! name (see DESIGN.md, substitution 1):
//!
//! * the exact route count and next-hop count of every Table 1 row;
//! * the empirical BGP prefix-length histogram of late 2014 (mass in
//!   /11–/24, peak at /24) — the distribution Figure 7 relies on;
//! * *spatial concentration*: prefixes longer than /16 nest inside a
//!   bounded pool of allocation blocks, reproducing the chunk counts that
//!   keep SAIL's 15-bit chunk ids viable on real tables and the range
//!   merging that keeps DXR within its 2^19 range budget;
//! * *next-hop locality*: routes within one allocation block mostly share
//!   a next hop, as consecutive announcements from one peer AS do — this
//!   is what makes the paper's route aggregation (§3) and DXR's range
//!   merging effective;
//! * for `REAL-*` tables, IGP-style deep routes (/25–/32) nested inside
//!   announced space, producing the binary-radix-depth-beyond-prefix-
//!   length mass of Figure 7 and the deep-lookup packets of §4.7.
//!
//! The SYN1/SYN2 expansions implement §4.1's split procedure directly, so
//! their structural pressure (SAIL chunk overflow on SYN2, DXR range
//! overflow) *emerges* rather than being hard-coded.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod churn;
pub mod datasets;
pub mod dist;
pub mod gen;
pub mod ipv6;
pub mod mrt;
pub mod parse;
pub mod synth;
pub mod updates;

pub use churn::{adversarial_pool, churn_stream, ChurnConfig, ChurnEvent};
pub use datasets::{all_dataset_names, dataset, table1, DatasetInfo};
pub use gen::{Dataset, TableKind, TableSpec};
pub use ipv6::{ipv6_dataset, ipv6_routeviews_names, DatasetV6};
pub use parse::{parse_routes_v4, parse_routes_v6, write_routes_v4};
pub use synth::{expand_syn1, expand_syn2};
pub use updates::{synthesize_update_stream, UpdateEvent};

#[cfg(test)]
mod tests;
