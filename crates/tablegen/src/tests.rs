use crate::gen::{seed_for, Dataset, TableKind, TableSpec};
use crate::{
    dataset, expand_syn1, expand_syn2, ipv6_dataset, parse_routes_v4, parse_routes_v6,
    synthesize_update_stream, table1, write_routes_v4, UpdateEvent,
};
use poptrie_rib::Prefix;

/// A smaller spec for tests that don't need half a million routes.
fn small_spec(kind: TableKind) -> TableSpec {
    TableSpec {
        name: "test-small".into(),
        prefixes: 30_000,
        next_hops: 40,
        kind,
    }
}

mod generator {
    use super::*;

    #[test]
    fn exact_route_and_nexthop_counts() {
        let d = small_spec(TableKind::RouteViews).generate();
        assert_eq!(d.len(), 30_000);
        assert_eq!(d.next_hop_count(), 40);
    }

    #[test]
    fn deterministic_by_name() {
        let a = small_spec(TableKind::Real).generate();
        let b = small_spec(TableKind::Real).generate();
        assert_eq!(a.routes, b.routes);
        let c = TableSpec {
            name: "test-small-2".into(),
            ..small_spec(TableKind::Real)
        }
        .generate();
        assert_ne!(a.routes, c.routes);
    }

    #[test]
    fn routes_are_sorted_and_unique() {
        let d = small_spec(TableKind::RouteViews).generate();
        for w in d.routes.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn routeviews_tables_have_no_igp_routes() {
        let d = small_spec(TableKind::RouteViews).generate();
        assert!(d.routes.iter().all(|(p, _)| p.len() <= 24));
        assert!(d.routes.iter().all(|(p, _)| p.len() >= 8));
    }

    #[test]
    fn real_tables_have_deep_routes() {
        let d = TableSpec {
            name: "test-real".into(),
            prefixes: 30_000,
            next_hops: 13,
            kind: TableKind::Real,
        }
        .generate();
        let deep = d.routes.iter().filter(|(p, _)| p.len() > 24).count();
        // IGP fraction is 2.6%; allow generous slack for sampling noise.
        assert!(
            deep > d.len() / 100 && deep < d.len() / 15,
            "deep routes: {deep}/{}",
            d.len()
        );
    }

    #[test]
    fn length_distribution_peaks_at_24() {
        let d = small_spec(TableKind::RouteViews).generate();
        let mut hist = [0usize; 33];
        for (p, _) in &d.routes {
            hist[p.len() as usize] += 1;
        }
        let max_len = hist.iter().enumerate().max_by_key(|&(_, c)| c).unwrap().0;
        assert_eq!(max_len, 24, "hist: {hist:?}");
        // §4.1: most prefixes lie in /11../24.
        let in_band: usize = hist[11..=24].iter().sum();
        assert!(in_band * 10 >= d.len() * 9);
    }

    #[test]
    fn chunk_concentration_matches_sail_budget() {
        // Longer-than-/16 prefixes must concentrate into fewer than 2^15
        // distinct /16 blocks, or SAIL could not compile the base tables
        // (it does, per Table 3).
        let d = small_spec(TableKind::RouteViews).generate();
        let chunks: std::collections::HashSet<u32> = d
            .routes
            .iter()
            .filter(|(p, _)| p.len() > 16)
            .map(|(p, _)| p.addr() >> 16)
            .collect();
        assert!(chunks.len() < 1 << 15, "chunks: {}", chunks.len());
    }

    #[test]
    fn next_hops_have_spatial_locality() {
        // Within one /16, the plurality next hop should cover well over
        // the 1/next_hops a uniform assignment would give.
        let d = small_spec(TableKind::RouteViews).generate();
        let mut per_chunk: std::collections::HashMap<u32, Vec<u16>> = Default::default();
        for (p, nh) in &d.routes {
            if p.len() > 16 {
                per_chunk.entry(p.addr() >> 16).or_default().push(*nh);
            }
        }
        let mut dominant = 0usize;
        let mut total = 0usize;
        for nhs in per_chunk.values().filter(|v| v.len() >= 4) {
            let mut counts: std::collections::HashMap<u16, usize> = Default::default();
            for &nh in nhs {
                *counts.entry(nh).or_default() += 1;
            }
            dominant += counts.values().max().unwrap();
            total += nhs.len();
        }
        assert!(total > 0);
        assert!(
            dominant as f64 / total as f64 > 0.5,
            "locality {dominant}/{total}"
        );
    }

    #[test]
    fn seed_for_is_stable_fnv() {
        // Pinned values: changing the hash would silently regenerate every
        // dataset differently.
        assert_eq!(seed_for(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(seed_for("a"), 0xaf63_dc4c_8601_ec8c);
    }
}

mod table1_data {
    use super::*;

    #[test]
    fn has_35_rows_matching_paper() {
        assert_eq!(table1().len(), 35);
        let a = table1().iter().find(|d| d.name == "REAL-Tier1-A").unwrap();
        assert_eq!(a.prefixes, 531_489);
        assert_eq!(a.next_hops, 13);
        let b = table1()
            .iter()
            .find(|d| d.name == "RV-saopaulo-p25")
            .unwrap();
        assert_eq!(b.prefixes, 532_637);
        assert_eq!(b.next_hops, 523);
    }

    #[test]
    #[should_panic(expected = "unknown dataset")]
    fn unknown_dataset_panics() {
        let _ = dataset("RV-nonexistent-p0");
    }

    #[test]
    fn full_dataset_generation() {
        // One full-size dataset end to end (the others share the code
        // path).
        let d = dataset("REAL-Tier1-B");
        assert_eq!(d.len(), 524_170);
        assert_eq!(d.next_hop_count(), 9);
    }
}

mod syn {
    use super::*;

    fn tiny_base() -> Dataset {
        Dataset {
            name: "REAL-Tier1-T".into(),
            routes: vec![
                (Prefix::new(0x0A00_0000, 8), 1),  // /8: 4-way (SYN1), 8-way (SYN2)
                (Prefix::new(0x0B0B_0000, 16), 2), // /16: 4-way, 8-way
                (Prefix::new(0x0C0C_0000, 18), 3), // /18: 2-way, 4-way
                (Prefix::new(0x0D0D_0C00, 22), 4), // /22: 2-way, 2-way
                (Prefix::new(0x0E0E_0E00, 24), 5), // /24: untouched
            ],
        }
    }

    #[test]
    fn syn1_split_counts() {
        let s = expand_syn1(&tiny_base());
        // 4 + 4 + 2 + 2 + 1
        assert_eq!(s.len(), 13);
        assert_eq!(s.name, "SYN1-Tier1-T");
        // /8 splits into four /10s.
        assert!(s
            .routes
            .iter()
            .any(|&(p, _)| p == Prefix::new(0x0A00_0000, 10)));
        assert!(s
            .routes
            .iter()
            .any(|&(p, _)| p == Prefix::new(0x0AC0_0000, 10)));
        // /24 untouched with original next hop.
        assert!(s.routes.contains(&(Prefix::new(0x0E0E_0E00, 24), 5)));
    }

    #[test]
    fn syn2_split_counts() {
        let s = expand_syn2(&tiny_base());
        // 8 + 8 + 4 + 2 + 1
        assert_eq!(s.len(), 23);
        assert_eq!(s.name, "SYN2-Tier1-T");
    }

    #[test]
    fn split_next_hops_are_systematic_and_disjoint() {
        let base = tiny_base();
        let n = 5; // max base next hop
        let s = expand_syn1(&base);
        // i-th split of nh gets nh + i*n; the 0th keeps nh.
        let tens: Vec<u16> = s
            .routes
            .iter()
            .filter(|(p, _)| p.len() == 10)
            .map(|&(_, nh)| nh)
            .collect();
        assert_eq!(tens, vec![1, 1 + n, 1 + 2 * n, 1 + 3 * n]);
        // Next-hop count grows, as in Table 1 (13 -> 45 style growth).
        assert!(s.next_hop_count() > base.next_hop_count());
    }

    #[test]
    fn collision_keeps_preexisting_route() {
        let base = Dataset {
            name: "REAL-X".into(),
            routes: vec![
                (Prefix::new(0x0A00_0000, 23), 1), // splits into two /24s
                (Prefix::new(0x0A00_0100, 24), 7), // pre-existing /24 collides
            ],
        };
        let s = expand_syn1(&base);
        assert_eq!(s.len(), 2);
        let nh = s
            .routes
            .iter()
            .find(|&&(p, _)| p == Prefix::new(0x0A00_0100, 24))
            .unwrap()
            .1;
        assert_eq!(nh, 7, "pre-existing route must win the collision");
    }

    #[test]
    fn syn_tables_grow_like_table5() {
        let base = dataset("REAL-Tier1-B");
        let s1 = expand_syn1(&base);
        let s2 = expand_syn2(&base);
        assert!(s1.len() > base.len());
        assert!(s2.len() > s1.len());
        assert!(s1.next_hop_count() > base.next_hop_count());
        // No split may produce prefixes longer than /24 (SAIL's level-32
        // chunks must stay within budget — Table 5 shows SAIL compiles
        // SYN1).
        let base_deep = base.routes.iter().filter(|(p, _)| p.len() > 24).count();
        let s2_deep = s2.routes.iter().filter(|(p, _)| p.len() > 24).count();
        assert_eq!(base_deep, s2_deep);
    }
}

mod v6 {
    use super::*;

    #[test]
    fn tier1_v6_matches_paper_size() {
        let d = ipv6_dataset("REAL-Tier1-A-v6");
        assert_eq!(d.len(), 20_440);
        assert!(d.routes.iter().all(|(p, _)| p.addr() >> 120 == 0x20));
        assert!(d.routes.iter().all(|(p, _)| p.len() <= 64));
    }

    #[test]
    fn v6_deterministic() {
        let a = ipv6_dataset("RV6-p3");
        let b = ipv6_dataset("RV6-p3");
        assert_eq!(a.routes, b.routes);
        assert!(a.len() >= 20_000);
    }
}

mod parse {
    use super::*;

    #[test]
    fn parse_and_roundtrip_v4() {
        let text = "# full table\n10.0.0.0/8 1\n\n192.0.2.0/24 17 # edge\n";
        let routes = parse_routes_v4(text).unwrap();
        assert_eq!(routes.len(), 2);
        assert_eq!(routes[0], ("10.0.0.0/8".parse().unwrap(), 1));
        let out = write_routes_v4(&routes);
        assert_eq!(parse_routes_v4(&out).unwrap(), routes);
    }

    #[test]
    fn parse_v6() {
        let routes = parse_routes_v6("2001:db8::/32 3\n").unwrap();
        assert_eq!(routes[0].0.len(), 32);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = parse_routes_v4("10.0.0.0/8 1\nbogus\n").unwrap_err();
        assert_eq!(err.line, 2);
        let err = parse_routes_v4("10.0.0.0/8 0\n").unwrap_err();
        assert!(err.message.contains("reserved"));
        let err = parse_routes_v4("10.0.0.0/8 1 extra\n").unwrap_err();
        assert_eq!(err.line, 1);
        let err = parse_routes_v4("10.0.0.0/40 1\n").unwrap_err();
        assert!(err.message.contains("invalid prefix"));
    }
}

mod mrt {
    use crate::mrt::{parse_table_dump_v2, MrtError, TableDump};
    use poptrie_rib::Prefix;

    /// Builder for synthetic TABLE_DUMP_V2 byte streams.
    struct MrtBuilder {
        bytes: Vec<u8>,
    }

    impl MrtBuilder {
        fn new() -> Self {
            MrtBuilder { bytes: Vec::new() }
        }

        fn record(&mut self, mrt_type: u16, subtype: u16, body: &[u8]) -> &mut Self {
            self.bytes
                .extend_from_slice(&1_418_774_400u32.to_be_bytes()); // timestamp
            self.bytes.extend_from_slice(&mrt_type.to_be_bytes());
            self.bytes.extend_from_slice(&subtype.to_be_bytes());
            self.bytes
                .extend_from_slice(&(body.len() as u32).to_be_bytes());
            self.bytes.extend_from_slice(body);
            self
        }

        /// PEER_INDEX_TABLE with v4 peers (2-byte AS).
        fn peer_table(&mut self, peers: &[(u32, [u8; 4], u16)]) -> &mut Self {
            let mut b = Vec::new();
            b.extend_from_slice(&0x0A00_0001u32.to_be_bytes()); // collector id
            b.extend_from_slice(&4u16.to_be_bytes()); // view name length
            b.extend_from_slice(b"test");
            b.extend_from_slice(&(peers.len() as u16).to_be_bytes());
            for &(bgp_id, ip, asn) in peers {
                b.push(0x00); // v4 address, 2-byte AS
                b.extend_from_slice(&bgp_id.to_be_bytes());
                b.extend_from_slice(&ip);
                b.extend_from_slice(&asn.to_be_bytes());
            }
            self.record(13, 1, &b)
        }

        /// RIB_IPV4_UNICAST with one entry per (peer, next hop).
        fn rib_v4(&mut self, seq: u32, prefix: &str, entries: &[(u16, [u8; 4])]) -> &mut Self {
            let p: Prefix<u32> = prefix.parse().unwrap();
            let mut b = Vec::new();
            b.extend_from_slice(&seq.to_be_bytes());
            b.push(p.len());
            let nbytes = (p.len() as usize).div_ceil(8);
            b.extend_from_slice(&p.addr().to_be_bytes()[..nbytes]);
            b.extend_from_slice(&(entries.len() as u16).to_be_bytes());
            for &(peer, nh) in entries {
                b.extend_from_slice(&peer.to_be_bytes());
                b.extend_from_slice(&0u32.to_be_bytes()); // originated
                                                          // Attributes: ORIGIN (irrelevant) + NEXT_HOP.
                let mut attrs = Vec::new();
                attrs.extend_from_slice(&[0x40, 1, 1, 0]); // ORIGIN IGP
                attrs.extend_from_slice(&[0x40, 3, 4]); // NEXT_HOP, len 4
                attrs.extend_from_slice(&nh);
                b.extend_from_slice(&(attrs.len() as u16).to_be_bytes());
                b.extend_from_slice(&attrs);
            }
            self.record(13, 2, &b)
        }

        fn parse(&self) -> Result<TableDump, MrtError> {
            parse_table_dump_v2(&self.bytes)
        }
    }

    #[test]
    fn parses_peers_and_routes() {
        let mut m = MrtBuilder::new();
        m.peer_table(&[
            (0x0101_0101, [192, 0, 2, 1], 64500),
            (0x0202_0202, [192, 0, 2, 2], 64501),
        ]);
        m.rib_v4(0, "10.0.0.0/8", &[(0, [192, 0, 2, 1]), (1, [192, 0, 2, 2])]);
        m.rib_v4(1, "10.1.0.0/16", &[(0, [192, 0, 2, 9])]);
        let dump = m.parse().unwrap();
        assert_eq!(dump.peers.len(), 2);
        assert_eq!(dump.peers[1].asn, 64501);
        assert_eq!(dump.v4.len(), 3);

        let view = dump.peer_view(0).unwrap();
        assert_eq!(view.routes_v4.len(), 2);
        // Two distinct next hops -> FIB indices 1 and 2.
        assert_eq!(view.next_hops.len(), 3); // slot 0 + two real
        let nh_of = |p: &str| {
            let want: Prefix<u32> = p.parse().unwrap();
            view.routes_v4.iter().find(|(q, _)| *q == want).unwrap().1
        };
        assert_eq!(nh_of("10.0.0.0/8"), 1);
        assert_eq!(nh_of("10.1.0.0/16"), 2);

        let view1 = dump.peer_view(1).unwrap();
        assert_eq!(view1.routes_v4.len(), 1);
        assert!(dump.peer_view(7).is_none());
    }

    #[test]
    fn skips_foreign_record_types() {
        let mut m = MrtBuilder::new();
        m.record(16, 4, &[0xAA; 20]); // BGP4MP update, skipped
        m.peer_table(&[(1, [10, 0, 0, 1], 1)]);
        m.rib_v4(0, "192.0.2.0/24", &[(0, [10, 0, 0, 1])]);
        let dump = m.parse().unwrap();
        assert_eq!(dump.v4.len(), 1);
    }

    #[test]
    fn truncated_record_is_an_error_with_offset() {
        let mut m = MrtBuilder::new();
        m.peer_table(&[(1, [10, 0, 0, 1], 1)]);
        let mut bytes = m.bytes.clone();
        bytes.extend_from_slice(&[0, 0, 0, 0, 0, 13, 0, 2, 0, 0, 1, 0]); // claims 256-byte body
        let err = parse_table_dump_v2(&bytes).unwrap_err();
        assert!(err.message.contains("truncated"), "{err}");
        assert!(err.offset > 0);
    }

    #[test]
    fn zero_length_prefix_and_default_route() {
        let mut m = MrtBuilder::new();
        m.peer_table(&[(1, [10, 0, 0, 1], 1)]);
        m.rib_v4(0, "0.0.0.0/0", &[(0, [10, 0, 0, 1])]);
        let dump = m.parse().unwrap();
        assert_eq!(dump.v4[0].prefix, Prefix::new(0, 0));
    }

    #[test]
    fn full_feed_peer_filter() {
        let mut m = MrtBuilder::new();
        m.peer_table(&[(1, [10, 0, 0, 1], 1), (2, [10, 0, 0, 2], 2)]);
        for i in 0..10u32 {
            m.rib_v4(i, &format!("10.{i}.0.0/16"), &[(0, [10, 0, 0, 1])]);
        }
        m.rib_v4(10, "11.0.0.0/8", &[(1, [10, 0, 0, 2])]);
        let dump = m.parse().unwrap();
        assert_eq!(dump.full_feed_peers(5), vec![0]);
        assert_eq!(dump.full_feed_peers(1), vec![0, 1]);
    }

    #[test]
    fn duplicate_prefix_entries_dedup_in_view() {
        // The same prefix can appear in multiple RIB records for one peer
        // (add-path exports); the view keeps one.
        let mut m = MrtBuilder::new();
        m.peer_table(&[(1, [10, 0, 0, 1], 1)]);
        m.rib_v4(0, "10.0.0.0/8", &[(0, [10, 0, 0, 1])]);
        m.rib_v4(1, "10.0.0.0/8", &[(0, [10, 0, 0, 9])]);
        let view = m.parse().unwrap().peer_view(0).unwrap();
        assert_eq!(view.routes_v4.len(), 1);
    }

    #[test]
    fn parsed_routes_drive_a_fib() {
        // End-to-end: MRT bytes -> routes -> radix, consistent lookups.
        let mut m = MrtBuilder::new();
        m.peer_table(&[(1, [10, 0, 0, 1], 64500)]);
        m.rib_v4(0, "10.0.0.0/8", &[(0, [192, 0, 2, 1])]);
        m.rib_v4(1, "10.1.0.0/16", &[(0, [192, 0, 2, 2])]);
        let view = m.parse().unwrap().peer_view(0).unwrap();
        let rib = poptrie_rib::RadixTree::from_routes(view.routes_v4.clone());
        assert_eq!(rib.lookup(0x0A01_0001).copied(), Some(2));
        assert_eq!(rib.lookup(0x0A02_0001).copied(), Some(1));
        assert_eq!(
            view.next_hops[2],
            "192.0.2.2".parse::<std::net::IpAddr>().unwrap()
        );
    }
}

mod updates {
    use super::*;

    #[test]
    fn stream_has_requested_mix() {
        let base = small_spec(TableKind::RouteViews).generate();
        let stream = synthesize_update_stream(&base, 18_141, 5_305);
        assert_eq!(stream.len(), 18_141 + 5_305);
        let announces = stream
            .iter()
            .filter(|e| matches!(e, UpdateEvent::Announce(..)))
            .count();
        assert_eq!(announces, 18_141);
    }

    #[test]
    fn stream_is_deterministic() {
        let base = small_spec(TableKind::RouteViews).generate();
        assert_eq!(
            synthesize_update_stream(&base, 100, 30),
            synthesize_update_stream(&base, 100, 30)
        );
    }

    #[test]
    fn withdrawals_reference_present_prefixes() {
        let base = small_spec(TableKind::RouteViews).generate();
        let stream = synthesize_update_stream(&base, 500, 200);
        let mut present: std::collections::HashSet<Prefix<u32>> =
            base.routes.iter().map(|&(p, _)| p).collect();
        for e in stream {
            match e {
                UpdateEvent::Announce(p, _) => {
                    present.insert(p);
                }
                UpdateEvent::Withdraw(p) => {
                    assert!(present.remove(&p), "withdraw of absent prefix {p}");
                }
            }
        }
    }
}

mod churn {
    use crate::churn::{adversarial_pool, churn_stream, ChurnConfig, ChurnEvent};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let cfg = ChurnConfig {
            seed: 42,
            events: 2_000,
            ..ChurnConfig::default()
        };
        let a = churn_stream::<u32>(&cfg);
        let b = churn_stream::<u32>(&cfg);
        assert_eq!(a, b);
        let c = churn_stream::<u32>(&ChurnConfig { seed: 43, ..cfg });
        assert_ne!(a, c, "different seeds must diverge");
        assert_eq!(a.len(), 2_000);
    }

    #[test]
    fn pool_covers_the_adversarial_cases() {
        let cfg = ChurnConfig {
            seed: 7,
            direct_bits: 16,
            pool: 512,
            ..ChurnConfig::default()
        };
        for (w, lens) in [
            (
                32u32,
                adversarial_pool::<u32>(&cfg)
                    .iter()
                    .map(|p| p.len())
                    .collect::<Vec<_>>(),
            ),
            (
                128,
                adversarial_pool::<u128>(&cfg)
                    .iter()
                    .map(|p| p.len())
                    .collect::<Vec<_>>(),
            ),
        ] {
            // Extremes, the direct-pointing straddle and the first chunk
            // boundary below it must all be present.
            for want in [0, w as u8, 15, 16, 17, 21, 22, 23] {
                assert!(
                    lens.contains(&want),
                    "width {w}: pool misses length {want}: {lens:?}"
                );
            }
        }
    }

    #[test]
    fn prefixes_are_canonical_and_events_mix() {
        let cfg = ChurnConfig {
            seed: 99,
            events: 5_000,
            ..ChurnConfig::default()
        };
        let stream = churn_stream::<u128>(&cfg);
        let announces = stream
            .iter()
            .filter(|e| matches!(e, ChurnEvent::Announce(..)))
            .count();
        assert!(announces > stream.len() / 2 && announces < stream.len() * 7 / 10);
        for e in &stream {
            let p = e.prefix();
            // Construction canonicalizes even the deliberately sloppy
            // spellings the generator produces.
            let mask = <u128 as poptrie_bitops::Bits>::prefix_mask(p.len() as u32);
            assert_eq!(p.addr() & mask, p.addr());
        }
    }
}
