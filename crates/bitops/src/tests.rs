use crate::{mask_low, rank0, rank1, BitVec64, Bits};

#[test]
fn mask_low_matches_naive() {
    for n in 0..64u32 {
        let naive: u64 = (0..=n).fold(0, |acc, i| acc | (1u64 << i));
        assert_eq!(mask_low(n), naive, "n={n}");
    }
    assert_eq!(mask_low(63), u64::MAX);
    assert_eq!(mask_low(0), 1);
}

#[test]
fn rank_counts_low_bits() {
    let v = 0b1011_0101u64;
    assert_eq!(rank1(v, 0), 1);
    assert_eq!(rank1(v, 1), 1);
    assert_eq!(rank1(v, 2), 2);
    assert_eq!(rank1(v, 7), 5);
    assert_eq!(rank0(v, 7), 3);
    assert_eq!(rank1(u64::MAX, 63), 64);
    assert_eq!(rank0(0, 63), 64);
}

#[test]
fn rank1_plus_rank0_is_width() {
    let v = 0xdead_beef_cafe_f00du64;
    for n in 0..64 {
        assert_eq!(rank1(v, n) + rank0(v, n), n + 1);
    }
}

#[test]
fn extract_u32_basic() {
    let key: u32 = 0b1010_1100_0000_0000_0000_0000_0000_0000;
    assert_eq!(key.extract(0, 4), 0b1010);
    assert_eq!(key.extract(4, 4), 0b1100);
    assert_eq!(key.extract(0, 1), 1);
    assert_eq!(key.extract(1, 1), 0);
    assert_eq!(key.extract(0, 8), 0b1010_1100);
}

#[test]
fn extract_zero_pads_past_end() {
    // The paper's 64-ary trie with s = 18 extracts at offset 30 on a 32-bit
    // key: two real bits followed by four zero-padded bits.
    let key: u32 = 0x0000_0003; // low two bits set
    assert_eq!(key.extract(30, 6), 0b11_0000);
    assert_eq!(key.extract(32, 6), 0);
    assert_eq!(key.extract(100, 6), 0);
    let key: u32 = u32::MAX;
    assert_eq!(key.extract(30, 6), 0b11_0000);
}

#[test]
fn extract_boundary_chunks_mask_exactly() {
    // The boundary audit behind the batched walker's key-width assert:
    // the deepest legal chain on each key width ends with a chunk that
    // straddles the key end, and every bit past the end must read as 0 —
    // in release builds too, where the walker's debug_assert is gone.
    // u32, s = 18: chunk offsets 18, 24, 30; the offset-30 chunk holds
    // bits 30..32 then four pad bits.
    for key in [0u32, 1, 3, 0xFFFF_FFFF, 0xDEAD_BEEF] {
        let top2 = (key & 0b11) << 4;
        assert_eq!(key.extract(30, 6), top2, "key={key:#x}");
        assert_eq!(key.extract(30, 6) & 0b1111, 0, "pad bits must be zero");
        // One phantom level deeper (only reachable on a corrupt trie):
        // fully past the end, must be all-zero, not garbage.
        assert_eq!(key.extract(36, 6), 0);
    }
    // u128, s = 16: chunk offsets 16, 22, …, 124; the offset-124 chunk
    // holds bits 124..128 then two pad bits.
    for key in [
        0u128,
        1,
        0xF,
        u128::MAX,
        0x0123_4567_89AB_CDEF_FEDC_BA98_7654_3210,
    ] {
        let low4 = ((key & 0xF) as u32) << 2;
        assert_eq!(key.extract(124, 6), low4, "key={key:#x}");
        assert_eq!(key.extract(124, 6) & 0b11, 0, "pad bits must be zero");
        assert_eq!(key.extract(126, 6) & 0b1111, 0);
        assert_eq!(key.extract(130, 6), 0);
    }
}

#[test]
fn extract_full_width() {
    let key: u32 = 0xdead_beef;
    assert_eq!(key.extract(0, 32), 0xdead_beef);
    let key: u8 = 0xa5;
    assert_eq!(key.extract(0, 8), 0xa5);
}

#[test]
fn extract_u128_high_and_low() {
    let key: u128 = 0x2001_0db8_0000_0000_0000_0000_0000_0001;
    assert_eq!(key.extract(0, 16), 0x2001);
    assert_eq!(key.extract(16, 16), 0x0db8);
    assert_eq!(key.extract(112, 16), 0x0001);
    assert_eq!(key.extract(122, 6), 1);
    assert_eq!(key.extract(126, 6), 0b01_0000);
}

#[test]
fn bit_msb_first() {
    let key: u32 = 0x8000_0001;
    assert!(key.bit(0));
    assert!(!key.bit(1));
    assert!(!key.bit(30));
    assert!(key.bit(31));
    assert_eq!(u32::single_bit(0), 0x8000_0000);
    assert_eq!(u32::single_bit(31), 1);
}

#[test]
fn prefix_mask_widths() {
    assert_eq!(u32::prefix_mask(0), 0);
    assert_eq!(u32::prefix_mask(8), 0xff00_0000);
    assert_eq!(u32::prefix_mask(24), 0xffff_ff00);
    assert_eq!(u32::prefix_mask(32), u32::MAX);
    assert_eq!(u128::prefix_mask(128), u128::MAX);
    assert_eq!(u8::prefix_mask(3), 0b1110_0000);
}

#[test]
fn from_high_bits_roundtrip() {
    for len in 1..=8u32 {
        for v in 0..(1u32 << len) {
            let k = u8::from_high_bits(v, len);
            assert_eq!(k.extract(0, len), v, "len={len} v={v}");
        }
    }
    assert_eq!(u32::from_high_bits(0xc0, 8), 0xc000_0000);
    assert_eq!(u128::from_high_bits(0x20, 8), 0x20u128 << 120);
    assert_eq!(u32::from_high_bits(0, 0), 0);
}

#[test]
fn from_high_bits_masks_excess() {
    // Bits above `len` in `v` must be ignored.
    assert_eq!(u32::from_high_bits(0xffff_ffff, 4), 0xf000_0000);
}

#[test]
fn u128_conversions() {
    let v: u32 = 0xdead_beef;
    assert_eq!(u32::from_u128(v.to_u128()), v);
    let v: u128 = u128::MAX;
    assert_eq!(u128::from_u128(v.to_u128()), v);
}

#[test]
fn bitvec_set_get_clear() {
    let mut v = BitVec64::EMPTY;
    assert!(v.is_empty());
    v.set(0);
    v.set(63);
    v.set(17);
    assert!(v.get(0) && v.get(63) && v.get(17));
    assert!(!v.get(16));
    assert_eq!(v.count(), 3);
    v.clear(17);
    assert!(!v.get(17));
    assert_eq!(v.count(), 2);
}

#[test]
fn bitvec_rank_and_iter() {
    let mut v = BitVec64::EMPTY;
    for i in [3u32, 5, 40, 63] {
        v.set(i);
    }
    assert_eq!(v.rank1(3), 1);
    assert_eq!(v.rank1(5), 2);
    assert_eq!(v.rank1(63), 4);
    assert_eq!(v.rank0(5), 4);
    let ones: Vec<u32> = v.iter_ones().collect();
    assert_eq!(ones, vec![3, 5, 40, 63]);
    assert_eq!(v.iter_ones().len(), 4);
}

#[cfg(feature = "proptest")] // needs the proptest dev-dependency (see Cargo.toml)
mod prop {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn extract_matches_naive_u32(key: u32, off in 0u32..40, len in 1u32..=32) {
            let naive: u32 = (0..len)
                .map(|i| {
                    let pos = off + i;
                    let bit = if pos < 32 { (key >> (31 - pos)) & 1 } else { 0 };
                    bit << (len - 1 - i)
                })
                .fold(0, |a, b| a | b);
            prop_assert_eq!(key.extract(off, len), naive);
        }

        #[test]
        fn extract_matches_naive_u128(key: u128, off in 0u32..140, len in 1u32..=32) {
            let naive: u32 = (0..len)
                .map(|i| {
                    let pos = off + i;
                    let bit = if pos < 128 { ((key >> (127 - pos)) & 1) as u32 } else { 0 };
                    bit << (len - 1 - i)
                })
                .fold(0, |a, b| a | b);
            prop_assert_eq!(key.extract(off, len), naive);
        }

        #[test]
        fn rank1_matches_scan(v: u64, n in 0u32..64) {
            let naive = (0..=n).filter(|i| (v >> i) & 1 == 1).count() as u32;
            prop_assert_eq!(rank1(v, n), naive);
        }

        #[test]
        fn iter_ones_sorted_and_complete(v: u64) {
            let ones: Vec<u32> = BitVec64(v).iter_ones().collect();
            prop_assert!(ones.windows(2).all(|w| w[0] < w[1]));
            prop_assert_eq!(ones.len() as u32, v.count_ones());
            for i in &ones {
                prop_assert!((v >> i) & 1 == 1);
            }
        }

        #[test]
        fn prefix_mask_bit_pattern(len in 0u32..=32) {
            let m = u32::prefix_mask(len);
            for i in 0..32 {
                prop_assert_eq!(m.bit(i), i < len);
            }
        }
    }
}
