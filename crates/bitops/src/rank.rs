//! Population-count rank over 64-bit vectors.
//!
//! These three functions are the heart of Poptrie's node traversal
//! (Algorithm 1, lines 7 and 14): given the 6-bit chunk value `v` of the
//! current address chunk, the index of the next internal node is
//! `base1 + rank1(vector, v) - 1`, and the leaf index is
//! `base0 + rank1(leafvec, v) - 1` (or `rank0(vector, v)` without the
//! leafvec extension).

/// Mask with the least-significant `n + 1` bits set.
///
/// The paper computes `(2ULL << v) - 1`, which is undefined behaviour in C
/// when `v == 63`; we use a right-shift of the all-ones word instead, which
/// is well defined for every `n` in `0..64`.
#[inline(always)]
pub fn mask_low(n: u32) -> u64 {
    debug_assert!(n < 64);
    u64::MAX >> (63 - n)
}

/// Number of set bits among the least-significant `n + 1` bits of `vec`.
///
/// Compiles to `and` + `popcnt` on x86-64.
#[inline(always)]
pub fn rank1(vec: u64, n: u32) -> u32 {
    (vec & mask_low(n)).count_ones()
}

/// Number of clear bits among the least-significant `n + 1` bits of `vec`.
#[inline(always)]
pub fn rank0(vec: u64, n: u32) -> u32 {
    ((!vec) & mask_low(n)).count_ones()
}
