//! Runtime SIMD dispatch for the batched lookup kernels.
//!
//! The batched descent is memory-bound, but once the software prefetches
//! of [`prefetch_read`](crate::prefetch_read) keep
//! [`BATCH_LANES`](crate::BATCH_LANES) misses in flight, the per-round
//! *instruction*
//! cost starts to show: eight scalar node loads, eight data-dependent
//! branches (internal child vs leaf) that mispredict on random traffic,
//! and eight popcount ranks. The SIMD tiers replace the loads with wide
//! masked gathers and the branches with mask arithmetic; the popcount
//! rank stays scalar `popcnt` per lane (one cycle, branchless), which is
//! the same substitution the paper makes for CPUs without a vector
//! popcount.
//!
//! Dispatch is resolved **once, at FIB build time** — not per call —
//! with [`BatchBackend::detect`]. Every structure that owns a compiled
//! FIB records the chosen tier and its `lookup_batch` jumps straight to
//! the right kernel; the scalar kernel is always compiled (every tier of
//! the ladder must produce bit-identical results, and the differential
//! tests in `tests/cross_validation.rs` hold the tiers to that).
//!
//! The ladder, widest first:
//!
//! | tier | requirement | gather width |
//! |------|-------------|--------------|
//! | `Avx512` | `avx512f` + `avx2` + `popcnt` | 8 × u64 per instruction |
//! | `Avx2` | `avx2` + `popcnt` | 4 × u64 per instruction |
//! | `Scalar` | none | — |
//!
//! Setting the environment variable `POPTRIE_BACKEND` to `scalar`,
//! `avx2`, `avx512` or `auto` pins detection to that tier (falling back
//! to [`BatchBackend::Scalar`] when the pinned tier's ISA is missing) —
//! this is the knob the CI backend matrix and the differential fuzz use
//! to force the fallback path on hardware that would otherwise never
//! take it.

/// One tier of the batched-lookup dispatch ladder.
///
/// The discriminant order is the ladder order: a larger variant is a
/// wider (preferred) tier. The enum is defined on every architecture so
/// cross-platform code can name and compare tiers; on non-x86-64 targets
/// detection only ever yields [`BatchBackend::Scalar`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BatchBackend {
    /// The portable interleaved walker: scalar loads, software prefetch.
    Scalar,
    /// AVX2 masked 64-bit gathers (4 lanes per instruction).
    Avx2,
    /// AVX-512F masked 64-bit gathers (8 lanes per instruction).
    Avx512,
}

impl BatchBackend {
    /// Stable lower-case name, as printed in benchmark output and parsed
    /// from `POPTRIE_BACKEND`.
    pub fn name(self) -> &'static str {
        match self {
            BatchBackend::Scalar => "scalar",
            BatchBackend::Avx2 => "avx2",
            BatchBackend::Avx512 => "avx512",
        }
    }

    /// Whether this tier's ISA requirements are met on the running CPU.
    /// [`BatchBackend::Scalar`] is always available.
    pub fn is_available(self) -> bool {
        match self {
            BatchBackend::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            BatchBackend::Avx2 => {
                std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("popcnt")
            }
            // The AVX-512 kernels also use 256-bit ops (and are declared
            // `#[target_feature(enable = "avx512f", enable = "avx2")]`),
            // so AVX2 is part of the tier's contract even though every
            // known AVX-512F part implies it.
            #[cfg(target_arch = "x86_64")]
            BatchBackend::Avx512 => {
                std::arch::is_x86_feature_detected!("avx512f")
                    && std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("popcnt")
            }
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }

    /// Parse a `POPTRIE_BACKEND` value. `auto` (or anything
    /// unrecognized) means "widest available".
    fn from_knob(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(BatchBackend::Scalar),
            "avx2" => Some(BatchBackend::Avx2),
            "avx512" | "avx512f" => Some(BatchBackend::Avx512),
            _ => None,
        }
    }

    /// The widest tier the running CPU supports, honoring the
    /// `POPTRIE_BACKEND` override. A pinned tier whose ISA is missing
    /// degrades to [`BatchBackend::Scalar`] rather than erroring: a
    /// forced-AVX2 test run on non-AVX2 hardware should exercise the
    /// fallback story, not abort.
    pub fn detect() -> Self {
        if let Ok(v) = std::env::var("POPTRIE_BACKEND") {
            if let Some(forced) = Self::from_knob(&v) {
                return if forced.is_available() {
                    forced
                } else {
                    BatchBackend::Scalar
                };
            }
        }
        Self::widest_available()
    }

    /// The widest tier the running CPU supports, ignoring the override.
    pub fn widest_available() -> Self {
        if BatchBackend::Avx512.is_available() {
            BatchBackend::Avx512
        } else if BatchBackend::Avx2.is_available() {
            BatchBackend::Avx2
        } else {
            BatchBackend::Scalar
        }
    }

    /// Clamp to an available tier: `self` if the CPU supports it,
    /// [`BatchBackend::Scalar`] otherwise.
    pub fn clamp_available(self) -> Self {
        if self.is_available() {
            self
        } else {
            BatchBackend::Scalar
        }
    }
}

impl core::fmt::Display for BatchBackend {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// The AVX2 / AVX-512 gather primitives the trie kernels are built on.
///
/// Everything here is `unsafe` and `#[target_feature]`-gated: the caller
/// must have verified the ISA at dispatch time
/// ([`BatchBackend::is_available`]). The wrappers exist so the kernels in
/// `poptrie` read as "gather these node words for the live lanes" instead
/// of raw intrinsic soup, and so the masking convention (a clear lane
/// loads nothing and yields 0) is documented in exactly one place.
#[cfg(target_arch = "x86_64")]
pub mod x86 {
    use core::arch::x86_64::*;

    /// All sixteen 4-lane AVX2 gather masks, indexed by the 4-bit lane
    /// mask. A gather lane is enabled by the *sign bit* of its 64-bit
    /// mask element; materializing the vector from the bitmask with
    /// `_mm256_set_epi64x` costs a chain of scalar inserts on the
    /// kernel's hot path, while this 512-byte L1-resident table costs one
    /// load.
    static LANE_MASKS4: [[i64; 4]; 16] = {
        let mut t = [[0i64; 4]; 16];
        let mut m = 0;
        while m < 16 {
            let mut lane = 0;
            while lane < 4 {
                t[m][lane] = -(((m >> lane) & 1) as i64);
                lane += 1;
            }
            m += 1;
        }
        t
    };

    /// Gather four `u64` words from `base + byte_offset[lane]` for every
    /// lane whose bit is set in `lane_mask` (bits 0..4). Masked-off lanes
    /// perform **no memory access** (the hardware suppresses the load, so
    /// their offsets may be garbage) and yield 0.
    ///
    /// # Safety
    ///
    /// AVX2 must be available, and for every lane selected by
    /// `lane_mask`, `base + byte_offsets[lane] .. + 8` must be readable.
    #[inline]
    #[target_feature(enable = "avx2")]
    pub unsafe fn gather_u64x4(
        base: *const u8,
        byte_offsets: [i64; 4],
        lane_mask: u32,
    ) -> [u64; 4] {
        let off = _mm256_loadu_si256(byte_offsets.as_ptr() as *const __m256i);
        let m =
            _mm256_loadu_si256(LANE_MASKS4[(lane_mask & 0xF) as usize].as_ptr() as *const __m256i);
        let got =
            _mm256_mask_i64gather_epi64::<1>(_mm256_setzero_si256(), base as *const i64, off, m);
        let mut out = [0u64; 4];
        _mm256_storeu_si256(out.as_mut_ptr() as *mut __m256i, got);
        out
    }

    /// Gather eight `u64` words from `base + byte_offset[lane]` for every
    /// lane whose bit is set in the `k`-mask `lane_mask` (bits 0..8).
    /// Masked-off lanes perform no memory access and yield 0.
    ///
    /// # Safety
    ///
    /// AVX-512F must be available, and for every lane selected by
    /// `lane_mask`, `base + byte_offsets[lane] .. + 8` must be readable.
    #[inline]
    #[target_feature(enable = "avx512f")]
    pub unsafe fn gather_u64x8(
        base: *const u8,
        byte_offsets: [i64; 8],
        lane_mask: u32,
    ) -> [u64; 8] {
        let off = _mm512_loadu_si512(byte_offsets.as_ptr() as *const __m512i);
        let got = _mm512_mask_i64gather_epi64::<1>(
            _mm512_setzero_si512(),
            lane_mask as __mmask8,
            off,
            base as *const i64,
        );
        let mut out = [0u64; 8];
        _mm512_storeu_si512(out.as_mut_ptr() as *mut __m512i, got);
        out
    }

    /// Gather eight `u32` words from `base + 4 * index[lane]` for lanes
    /// set in `lane_mask` (bits 0..8) — the direct-table stage, where
    /// entries are `u32` and eight lanes fit one AVX2 gather. Masked-off
    /// lanes perform no memory access and yield 0.
    ///
    /// # Safety
    ///
    /// AVX2 must be available, and for every selected lane,
    /// `index[lane]` must be in bounds of the `u32` array at `base`.
    #[inline]
    #[target_feature(enable = "avx2")]
    pub unsafe fn gather_u32x8(base: *const u32, indices: [u32; 8], lane_mask: u32) -> [u32; 8] {
        let idx = _mm256_loadu_si256(indices.as_ptr() as *const __m256i);
        let mut mbits = [0u32; 8];
        for (i, m) in mbits.iter_mut().enumerate() {
            *m = 0u32.wrapping_sub((lane_mask >> i) & 1);
        }
        let m = _mm256_loadu_si256(mbits.as_ptr() as *const __m256i);
        let got =
            _mm256_mask_i32gather_epi32::<4>(_mm256_setzero_si256(), base as *const i32, idx, m);
        let mut out = [0u32; 8];
        _mm256_storeu_si256(out.as_mut_ptr() as *mut __m256i, got);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_ordered() {
        assert!(BatchBackend::Scalar < BatchBackend::Avx2);
        assert!(BatchBackend::Avx2 < BatchBackend::Avx512);
    }

    #[test]
    fn scalar_is_always_available() {
        assert!(BatchBackend::Scalar.is_available());
        assert_eq!(BatchBackend::Scalar.clamp_available(), BatchBackend::Scalar);
    }

    #[test]
    fn detect_yields_an_available_tier() {
        let b = BatchBackend::detect();
        assert!(b.is_available());
        assert!(b <= BatchBackend::widest_available());
    }

    #[test]
    fn knob_parsing() {
        assert_eq!(
            BatchBackend::from_knob("scalar"),
            Some(BatchBackend::Scalar)
        );
        assert_eq!(BatchBackend::from_knob(" AVX2 "), Some(BatchBackend::Avx2));
        assert_eq!(
            BatchBackend::from_knob("avx512"),
            Some(BatchBackend::Avx512)
        );
        assert_eq!(
            BatchBackend::from_knob("avx512f"),
            Some(BatchBackend::Avx512)
        );
        assert_eq!(BatchBackend::from_knob("auto"), None);
        assert_eq!(BatchBackend::from_knob("riscv-v"), None);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_gathers_match_scalar_loads() {
        if !BatchBackend::Avx2.is_available() {
            return;
        }
        let words: Vec<u64> = (0..64u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        let base = words.as_ptr() as *const u8;
        let offsets = [8i64, 0, 504, 256];
        // Full mask: every lane loads.
        let got = unsafe { x86::gather_u64x4(base, offsets, 0b1111) };
        for (lane, &off) in offsets.iter().enumerate() {
            assert_eq!(got[lane], words[off as usize / 8]);
        }
        // Partial mask: cleared lanes yield 0 even with wild offsets.
        let got = unsafe { x86::gather_u64x4(base, [16, i64::MAX, 24, -1], 0b0101) };
        assert_eq!(got, [words[2], 0, words[3], 0]);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx512_gathers_match_scalar_loads() {
        if !BatchBackend::Avx512.is_available() {
            return;
        }
        let words: Vec<u64> = (0..64u64).map(|i| i ^ 0xDEAD_BEEF_CAFE_F00D).collect();
        let base = words.as_ptr() as *const u8;
        let offsets = [0i64, 8, 16, 120, 128, 248, 256, 504];
        let got = unsafe { x86::gather_u64x8(base, offsets, 0xFF) };
        for (lane, &off) in offsets.iter().enumerate() {
            assert_eq!(got[lane], words[off as usize / 8]);
        }
        let got = unsafe { x86::gather_u64x8(base, [0, -5, 8, -7, 16, -9, 24, -11], 0b0101_0101) };
        assert_eq!(got, [words[0], 0, words[1], 0, words[2], 0, words[3], 0]);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_u32_gather_matches_scalar_loads() {
        if !BatchBackend::Avx2.is_available() {
            return;
        }
        let table: Vec<u32> = (0..256u32).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
        let idx = [0u32, 255, 17, 128, 3, 200, 64, 1];
        let got = unsafe { x86::gather_u32x8(table.as_ptr(), idx, 0xFF) };
        for lane in 0..8 {
            assert_eq!(got[lane], table[idx[lane] as usize]);
        }
        let got = unsafe { x86::gather_u32x8(table.as_ptr(), idx, 0b1010_1010) };
        for lane in 0..8 {
            let want = if lane % 2 == 1 {
                table[idx[lane] as usize]
            } else {
                0
            };
            assert_eq!(got[lane], want);
        }
    }
}
