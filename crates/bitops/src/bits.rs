//! The [`Bits`] key-width abstraction.

use core::fmt::Debug;
use core::hash::Hash;

/// An unsigned integer treated as a fixed-width, MSB-first bit string.
///
/// IP addresses are bit strings read from the most significant bit: the
/// first bit of `10.0.0.0` is `0`, the first bit of `192.0.2.0` is `1`.
/// Every lookup structure in this workspace walks keys in that order, so the
/// trait exposes MSB-first operations only.
///
/// Implementations exist for `u8`, `u16`, `u32` (IPv4), `u64` and `u128`
/// (IPv6). The narrow widths let property tests enumerate an entire address
/// space exhaustively.
pub trait Bits: Copy + Clone + Eq + Ord + Hash + Debug + Send + Sync + 'static {
    /// Width of the key in bits (32 for IPv4, 128 for IPv6).
    const BITS: u32;

    /// The all-zeros key (`0.0.0.0`, `::`).
    const ZERO: Self;

    /// The all-ones key (`255.255.255.255`).
    const ONES: Self;

    /// Extract `len` bits starting at MSB-first offset `off`, zero-padding
    /// past the end of the key, exactly like the paper's
    /// `extract(key, off, len)`.
    ///
    /// `len` must be at most 32; the result is returned in the low bits of a
    /// `u32`. Offsets at or beyond [`Bits::BITS`] yield zero bits, so a
    /// 64-ary trie may keep consuming 6-bit chunks past the end of a 32-bit
    /// key (offset 30 extracts bits 30..32 followed by four zero bits).
    fn extract(self, off: u32, len: u32) -> u32;

    /// The bit at MSB-first position `i` (`i < Self::BITS`).
    fn bit(self, i: u32) -> bool;

    /// Key with only the bit at MSB-first position `i` set.
    fn single_bit(i: u32) -> Self;

    /// Mask keeping the `len` most significant bits (prefix mask).
    /// `len` may be 0 (all zeros) through `Self::BITS` (all ones).
    fn prefix_mask(len: u32) -> Self;

    /// Bitwise AND, used to canonicalize prefixes.
    fn and(self, other: Self) -> Self;

    /// Bitwise OR.
    fn or(self, other: Self) -> Self;

    /// Build a key from the `len` low bits of `v` placed at the top
    /// (MSB-first) of the key; the inverse of `extract(_, 0, len)`.
    fn from_high_bits(v: u32, len: u32) -> Self;

    /// Lossy conversion to `u128` for display and arithmetic in generators.
    fn to_u128(self) -> u128;

    /// Construct from the low `Self::BITS` bits of a `u128`.
    fn from_u128(v: u128) -> Self;
}

macro_rules! impl_bits {
    ($t:ty, $bits:expr) => {
        impl Bits for $t {
            const BITS: u32 = $bits;
            const ZERO: Self = 0;
            const ONES: Self = <$t>::MAX;

            #[inline(always)]
            fn extract(self, off: u32, len: u32) -> u32 {
                debug_assert!(len <= 32 && len > 0);
                if off >= Self::BITS {
                    return 0;
                }
                // Shift the wanted field to the top, then down to the bottom.
                // When the field runs past the end of the key the right shift
                // is larger, which zero-pads the low bits — the `extract`
                // semantics of the paper.
                let shifted = self << off;
                let avail = Self::BITS - off;
                let take = len.min(avail);
                let out = (shifted >> (Self::BITS - take)) as u32;
                out << (len - take)
            }

            #[inline(always)]
            fn bit(self, i: u32) -> bool {
                debug_assert!(i < Self::BITS);
                (self >> (Self::BITS - 1 - i)) & 1 == 1
            }

            #[inline(always)]
            fn single_bit(i: u32) -> Self {
                debug_assert!(i < Self::BITS);
                (1 as $t) << (Self::BITS - 1 - i)
            }

            #[inline(always)]
            fn prefix_mask(len: u32) -> Self {
                debug_assert!(len <= Self::BITS);
                if len == 0 {
                    0
                } else {
                    <$t>::MAX << (Self::BITS - len)
                }
            }

            #[inline(always)]
            fn and(self, other: Self) -> Self {
                self & other
            }

            #[inline(always)]
            fn or(self, other: Self) -> Self {
                self | other
            }

            #[inline(always)]
            fn from_high_bits(v: u32, len: u32) -> Self {
                debug_assert!(len <= if Self::BITS < 32 { Self::BITS } else { 32 });
                if len == 0 {
                    return 0;
                }
                let v = v & (u32::MAX >> (32 - len));
                (v as $t) << (Self::BITS - len)
            }

            #[inline(always)]
            fn to_u128(self) -> u128 {
                self as u128
            }

            #[inline(always)]
            fn from_u128(v: u128) -> Self {
                v as $t
            }
        }
    };
}

impl_bits!(u8, 8);
impl_bits!(u16, 16);
impl_bits!(u32, 32);
impl_bits!(u64, 64);
impl_bits!(u128, 128);
