//! A thin, well-tested wrapper over a 64-bit vector with rank support.

use crate::rank::{rank0, rank1};

/// A 64-slot bit vector with population-count rank queries.
///
/// Used by the Poptrie builder while it assembles `vector` and `leafvec`
/// fields, and by the Tree BitMap baseline for its internal/external
/// bitmaps. The lookup hot paths operate on raw `u64`s; this type is the
/// ergonomic construction-side view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BitVec64(pub u64);

impl BitVec64 {
    /// The empty vector.
    pub const EMPTY: Self = BitVec64(0);

    /// Create from a raw word.
    #[inline]
    pub fn from_raw(raw: u64) -> Self {
        BitVec64(raw)
    }

    /// The raw word.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Set bit `i` (0 = least significant).
    #[inline]
    pub fn set(&mut self, i: u32) {
        debug_assert!(i < 64);
        self.0 |= 1u64 << i;
    }

    /// Clear bit `i`.
    #[inline]
    pub fn clear(&mut self, i: u32) {
        debug_assert!(i < 64);
        self.0 &= !(1u64 << i);
    }

    /// Test bit `i`.
    #[inline]
    pub fn get(self, i: u32) -> bool {
        debug_assert!(i < 64);
        (self.0 >> i) & 1 == 1
    }

    /// Total number of set bits.
    #[inline]
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Number of set bits among the least-significant `n + 1` bits.
    #[inline]
    pub fn rank1(self, n: u32) -> u32 {
        rank1(self.0, n)
    }

    /// Number of clear bits among the least-significant `n + 1` bits.
    #[inline]
    pub fn rank0(self, n: u32) -> u32 {
        rank0(self.0, n)
    }

    /// True when no bit is set.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterate over the indices of set bits, ascending.
    #[inline]
    pub fn iter_ones(self) -> IterOnes {
        IterOnes(self.0)
    }
}

/// Iterator over set-bit positions of a [`BitVec64`], ascending.
#[derive(Debug, Clone)]
pub struct IterOnes(u64);

impl Iterator for IterOnes {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.0 == 0 {
            None
        } else {
            let i = self.0.trailing_zeros();
            self.0 &= self.0 - 1;
            Some(i)
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for IterOnes {}
