//! Software prefetch for interleaved (batched) lookups.
//!
//! A single longest-prefix-match lookup is a chain of dependent memory
//! accesses — direct table, node, node, …, leaf — so its latency is bound
//! by DRAM round trips the out-of-order window cannot hide. Batching N
//! independent lookups and stepping them in lockstep turns that latency
//! into memory-level parallelism: while one key's next node line is in
//! flight, the other keys do their popcount arithmetic. Issuing an
//! explicit prefetch for the *next* round's line as soon as its address
//! is known (one round ahead of the demand load) is what makes the
//! overlap reliable across microarchitectures; the CRAM/cache-aware LPM
//! literature measures 2–4× random-traffic speedups from exactly this
//! shape.
//!
//! [`prefetch_read`] compiles to `prefetcht0` on x86-64 and `prfm
//! pldl1keep` on AArch64, and to nothing elsewhere — a prefetch is a
//! pure performance hint, so a no-op fallback is always correct.

/// Number of keys the batched lookup paths keep in flight at once.
///
/// Eight dependent-load chains saturate the miss-handling capacity (line
/// fill buffers) of current x86-64 cores without spilling the lane state
/// out of registers; larger batches are simply processed eight at a time.
/// Shared by every `lookup_batch` override in the workspace so that the
/// benchmarked algorithms interleave identically.
pub const BATCH_LANES: usize = 8;

/// Hint the CPU to pull the cache line containing `p` toward L1 for a
/// future read.
///
/// Safe for any pointer value, including dangling or null: prefetch
/// instructions do not fault, and the no-op fallback ignores `p`
/// entirely. (Callers in this workspace still only pass in-bounds
/// addresses — prefetching garbage wastes bandwidth.)
#[inline(always)]
pub fn prefetch_read<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `_mm_prefetch` is a hint; it never faults, for any address,
    // and `_MM_HINT_T0` is a valid constant. Baseline SSE is part of the
    // x86_64 ABI, so no target-feature gate is needed.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(p as *const i8);
    }
    #[cfg(target_arch = "aarch64")]
    // SAFETY: PRFM is architecturally defined never to fault.
    unsafe {
        core::arch::asm!(
            "prfm pldl1keep, [{0}]",
            in(reg) p,
            options(nostack, preserves_flags, readonly)
        );
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    let _ = p;
}

/// Prefetch element `i` of `slice` if it is in bounds; out-of-range
/// indices are ignored (the hint is dropped, nothing faults).
///
/// The bounds check keeps the *hint* honest — speculative lanes in a
/// batched lookup may compute indices for keys that already resolved —
/// while staying free of `unsafe` at call sites.
#[inline(always)]
pub fn prefetch_index<T>(slice: &[T], i: usize) {
    if let Some(v) = slice.get(i) {
        prefetch_read(v as *const T);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_is_harmless_for_any_address() {
        let v = [1u64, 2, 3];
        prefetch_read(&v[0] as *const u64);
        prefetch_read(core::ptr::null::<u64>());
        prefetch_read(usize::MAX as *const u64);
        prefetch_index(&v, 0);
        prefetch_index(&v, 2);
        prefetch_index(&v, 3); // out of bounds: ignored
        prefetch_index::<u64>(&[], 0);
    }
}
