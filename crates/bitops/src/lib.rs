//! Bit-vector primitives shared across the Poptrie reproduction.
//!
//! The Poptrie paper (SIGCOMM 2015) builds its entire lookup structure on two
//! operations over 64-bit vectors:
//!
//! * **MSB-first chunk extraction** — `extract(key, off, len)` in the paper's
//!   Algorithm 1 takes `len` bits starting `off` bits from the most
//!   significant end of the key address. Offsets may run past the end of the
//!   key (e.g. `s = 18`, `k = 6` on a 32-bit key reaches bit offset 30..36);
//!   the paper's C implementation zero-pads, and so do we.
//! * **Rank within a prefix of the vector** — the number of set bits in the
//!   least-significant `n + 1` bits, computed with the `popcnt` instruction.
//!   Rust's [`u64::count_ones`] compiles to `popcnt` on every x86-64 target
//!   with SSE4.2 and to the equivalent instruction elsewhere, which is the
//!   same fallback strategy the paper describes (§3.2).
//!
//! The [`Bits`] trait abstracts the key width so the same Poptrie, Tree
//! BitMap and radix-tree code serves IPv4 (`u32`), IPv6 (`u128`) and the
//! narrow widths (`u8`, `u16`) used by exhaustive property tests.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bits;
mod prefetch;
mod rank;
pub mod simd;
mod vec64;

pub use bits::Bits;
pub use prefetch::{prefetch_index, prefetch_read, BATCH_LANES};
pub use rank::{mask_low, rank0, rank1};
pub use simd::BatchBackend;
pub use vec64::BitVec64;

#[cfg(test)]
mod tests;
