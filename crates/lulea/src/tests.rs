use crate::{Lulea, LuleaError, MAX_CHUNKS};
#[cfg(feature = "proptest")] // the oracle is only used by the gated proptests
use poptrie_rib::LinearLpm;
use poptrie_rib::{Lpm, Prefix, RadixTree};
use poptrie_rng::prelude::*;

fn p4(s: &str) -> Prefix<u32> {
    s.parse().unwrap()
}

fn rib_from(routes: &[(&str, u16)]) -> RadixTree<u32, u16> {
    RadixTree::from_routes(routes.iter().map(|&(p, nh)| (p4(p), nh)))
}

#[test]
fn empty_table() {
    let rib: RadixTree<u32, u16> = RadixTree::new();
    let l = Lulea::from_rib(&rib).unwrap();
    assert_eq!(l.lookup(0), None);
    assert_eq!(l.lookup(u32::MAX), None);
    assert_eq!(l.chunk_counts(), (0, 0));
    // The whole empty table is one interval: a single stored pointer.
    assert_eq!(l.pointer_counts(), (1, 0, 0));
}

#[test]
fn interval_compression_is_effective() {
    // A /8 spans 256 level-1 slots but stores ~2 pointers (the interval
    // and the return to no-route) — the compression SAIL forgoes.
    let rib = rib_from(&[("10.0.0.0/8", 7)]);
    let l = Lulea::from_rib(&rib).unwrap();
    let (p1, _, _) = l.pointer_counts();
    assert!(p1 <= 3, "level-1 pointers: {p1}");
    assert_eq!(l.lookup(0x0A12_3456), Some(7));
    assert_eq!(l.lookup(0x0B00_0000), None);
}

#[test]
fn three_levels_resolve() {
    let rib = rib_from(&[
        ("0.0.0.0/0", 9),
        ("10.0.0.0/8", 1),
        ("10.1.0.0/16", 2),
        ("10.1.2.0/24", 3),
        ("10.1.2.128/25", 4),
        ("10.1.2.130/32", 5),
    ]);
    let l = Lulea::from_rib(&rib).unwrap();
    assert_eq!(l.lookup(0xDEAD_BEEF), Some(9));
    assert_eq!(l.lookup(0x0A02_0000), Some(1));
    assert_eq!(l.lookup(0x0A01_0300), Some(2));
    assert_eq!(l.lookup(0x0A01_0201), Some(3));
    assert_eq!(l.lookup(0x0A01_0281), Some(4));
    assert_eq!(l.lookup(0x0A01_0282), Some(5));
    assert_eq!(l.chunk_counts(), (1, 1));
}

#[test]
fn interval_boundaries_are_exact() {
    // Adjacent /16s with different next hops: head bits at exact slots.
    let rib = rib_from(&[("10.0.0.0/16", 1), ("10.1.0.0/16", 2), ("10.3.0.0/16", 3)]);
    let l = Lulea::from_rib(&rib).unwrap();
    assert_eq!(l.lookup(0x0A00_FFFF), Some(1));
    assert_eq!(l.lookup(0x0A01_0000), Some(2));
    assert_eq!(l.lookup(0x0A01_FFFF), Some(2));
    assert_eq!(l.lookup(0x0A02_0000), None); // gap
    assert_eq!(l.lookup(0x0A03_0000), Some(3));
    assert_eq!(l.lookup(0x0A04_0000), None);
}

#[test]
fn exhaustive_u32_slice_against_radix() {
    let mut rng = StdRng::seed_from_u64(71);
    let mut rib: RadixTree<u32, u16> = RadixTree::new();
    rib.insert(p4("10.1.0.0/16"), 1);
    for _ in 0..300 {
        let addr = 0x0A01_0000 | (rng.gen::<u32>() & 0xFFFF);
        rib.insert(
            Prefix::new(addr, rng.gen_range(17..=32)),
            rng.gen_range(1..=200),
        );
    }
    let l = Lulea::from_rib(&rib).unwrap();
    for low in 0..=0xFFFFu32 {
        let key = 0x0A01_0000 | low;
        assert_eq!(l.lookup(key), rib.lookup(key).copied(), "key={key:#010x}");
    }
}

#[test]
fn random_u32_against_radix() {
    let mut rng = StdRng::seed_from_u64(72);
    let mut rib: RadixTree<u32, u16> = RadixTree::new();
    for _ in 0..5000 {
        let len = *[8u8, 12, 16, 20, 24, 28, 32].choose(&mut rng).unwrap();
        rib.insert(Prefix::new(rng.gen(), len), rng.gen_range(1..=64));
    }
    let l = Lulea::from_rib(&rib).unwrap();
    for _ in 0..50_000 {
        let key: u32 = rng.gen();
        assert_eq!(l.lookup(key), rib.lookup(key).copied());
    }
}

#[test]
fn memory_is_smaller_than_sail_shape() {
    // Same structural family as SAIL but interval-compressed: on a
    // sparse-ish table Lulea's footprint must be far below SAIL's fully
    // expanded 2 x 2^16 + chunks.
    let mut rng = StdRng::seed_from_u64(73);
    let mut rib: RadixTree<u32, u16> = RadixTree::new();
    for _ in 0..20_000 {
        rib.insert(Prefix::new(rng.gen(), 24), rng.gen_range(1..=16));
    }
    let l = Lulea::from_rib(&rib).unwrap();
    let sail = poptrie_rib::Lpm::memory_bytes(&l);
    assert!(
        sail < (1 << 16) * 2 + l.chunk_counts().0 * 512,
        "lulea bytes {sail}"
    );
}

#[test]
fn chunk_overflow_reported() {
    let mut rib: RadixTree<u32, u16> = RadixTree::new();
    for i in 0..(MAX_CHUNKS as u32 + 4) {
        rib.insert(Prefix::new(i << 16, 24), 1);
    }
    let err = Lulea::from_rib(&rib).unwrap_err();
    assert!(
        matches!(err, LuleaError::ChunkOverflow { level: 2, .. }),
        "{err:?}"
    );
}

#[test]
fn next_hop_overflow_reported() {
    let rib = rib_from(&[("10.0.0.0/8", 0x8000)]);
    assert_eq!(
        Lulea::from_rib(&rib).unwrap_err(),
        LuleaError::NextHopOverflow
    );
    let rib = rib_from(&[("10.0.0.0/8", 0x7FFF)]);
    let l = Lulea::from_rib(&rib).unwrap();
    assert_eq!(l.lookup(0x0A00_0001), Some(0x7FFF));
    assert_eq!(Lpm::name(&l), "Lulea");
}

#[cfg(feature = "proptest")] // needs the proptest dev-dependency (see Cargo.toml)
mod prop {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn matches_oracle(
            routes in proptest::collection::vec((any::<u32>(), 0u8..=32, 1u16..=500), 0..40),
            keys in proptest::collection::vec(any::<u32>(), 128),
        ) {
            let routes: Vec<(Prefix<u32>, u16)> = routes
                .into_iter()
                .map(|(a, l, n)| (Prefix::new(a, l), n))
                .collect();
            let rib = RadixTree::from_routes(routes.clone());
            let lin = LinearLpm::new(rib.to_routes());
            let l = Lulea::from_rib(&rib).unwrap();
            for key in keys {
                prop_assert_eq!(l.lookup(key), Lpm::lookup(&lin, key));
            }
        }
    }
}

// The cross-crate Lpm conformance contract (rib crate).
poptrie_rib::lpm_contract_tests!(lulea_contract_v4, u32, |rib: &RadixTree<u32, u16>| {
    Lulea::from_rib(rib).unwrap()
});
