//! A Luleå-style level-compressed trie.
//!
//! Degermark, Brodnik, Carlsson and Pink, *Small Forwarding Tables for
//! Fast Routing Lookups*, SIGCOMM 1997 — reference \[8\] of the Poptrie
//! paper, cited as the origin of the compress-the-FIB-into-cache idea
//! Poptrie perfects: "The Lulea algorithm was proposed to reduce the
//! memory footprint for the routing table."
//!
//! Like the original, this implementation splits the address into levels
//! of 16, 8 and 8 bits. Within a level, the fully expanded slot array is
//! compressed to one stored pointer per *interval* of equal values: a
//! bitmap marks the slot where each interval starts (its *head*), and the
//! rank of a slot's preceding head — the count of set bits at or below it
//! — indexes a dense pointer array. A pointer is either a next hop or a
//! reference to the next level's chunk.
//!
//! One deliberate modernization, recorded here and in DESIGN.md: the 1997
//! design answered rank queries with the *maptable*, a precomputed table
//! over the 676 bit-masks reachable from complete prefix trees, because
//! 1997 CPUs had no cheap population count. This implementation keeps the
//! identical data layout but answers rank with `popcnt` over the bitmap
//! plus a per-word cumulative directory — the same instruction Poptrie
//! and the modernized Tree BitMap use (§4 of the paper applies the same
//! treatment to Tree BitMap's lookup table). Sizes and access patterns
//! match the original's within the directory overhead (6.25 %).
//!
//! The pointer is 16 bits with a level flag, so — exactly like SAIL's
//! chunk ids (§4.8) — the structure caps at 2^15 chunks per level,
//! surfaced as [`LuleaError::ChunkOverflow`].

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use poptrie_bitops::BATCH_LANES;
use poptrie_rib::radix::Node as RadixNode;
use poptrie_rib::{Lpm, NextHop, RadixTree, NO_ROUTE};

/// Pointer flag: the low 15 bits are a next-level chunk id.
const CHUNK_FLAG: u16 = 1 << 15;

/// Maximum chunks per level (15-bit ids).
pub const MAX_CHUNKS: usize = 1 << 15;

/// Luleå compilation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LuleaError {
    /// A level needs more chunks than the 15-bit pointer can address.
    ChunkOverflow {
        /// The level (2 or 3) that overflowed.
        level: u8,
        /// Chunks the table needs.
        needed: usize,
    },
    /// A next hop collides with the chunk flag (must be < 2^15).
    NextHopOverflow,
}

impl core::fmt::Display for LuleaError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LuleaError::ChunkOverflow { level, needed } => write!(
                f,
                "level {level} needs {needed} chunks, 15-bit pointers allow {MAX_CHUNKS}"
            ),
            LuleaError::NextHopOverflow => write!(f, "next hop exceeds 15 bits"),
        }
    }
}

impl std::error::Error for LuleaError {}

/// A head bitmap with a cumulative-popcount rank directory.
///
/// `rank(i)` — the number of interval heads at slots `0..=i` — indexes
/// the level's dense pointer array. The directory stores the running
/// count before each 64-bit word, so a rank query is one directory load
/// plus one masked `popcnt` (the modern stand-in for the maptable).
#[derive(Debug, Clone, Default)]
struct RankedBitmap {
    words: Vec<u64>,
    cum: Vec<u32>,
}

impl RankedBitmap {
    /// Build from a head bitmap given as words.
    fn new(words: Vec<u64>) -> Self {
        let mut cum = Vec::with_capacity(words.len());
        let mut running = 0u32;
        for &w in &words {
            cum.push(running);
            running += w.count_ones();
        }
        RankedBitmap { words, cum }
    }

    /// Number of set bits at positions `0..=i`.
    #[inline]
    fn rank(&self, i: usize) -> u32 {
        let word = i >> 6;
        let bit = (i & 63) as u32;
        debug_assert!(word < self.words.len());
        // SAFETY: callers index within the bitmap they built (2^16 or 256
        // slots); `cum` has one entry per word by construction.
        let (w, c) = unsafe {
            (
                *self.words.get_unchecked(word),
                *self.cum.get_unchecked(word),
            )
        };
        c + (w & (u64::MAX >> (63 - bit))).count_ones()
    }

    /// Hint the word and directory lines a `rank(i)` query will read.
    #[inline]
    fn prefetch(&self, i: usize) {
        let word = i >> 6;
        poptrie_bitops::prefetch_index(&self.words, word);
        poptrie_bitops::prefetch_index(&self.cum, word);
    }

    fn bytes(&self) -> usize {
        self.words.len() * 8 + self.cum.len() * 4
    }
}

/// One level-2 or level-3 chunk: 256 slots compressed to heads+pointers.
#[derive(Debug, Clone, Default)]
struct Chunk {
    heads: RankedBitmap,
    /// Index of this chunk's first pointer in the level's pointer array.
    base: u32,
}

/// A compiled Luleå-style forwarding table (IPv4).
///
/// ```
/// use poptrie_lulea::Lulea;
/// use poptrie_rib::RadixTree;
///
/// let mut rib: RadixTree<u32, u16> = RadixTree::new();
/// rib.insert("10.0.0.0/8".parse().unwrap(), 1);
/// rib.insert("10.1.2.0/24".parse().unwrap(), 2);
/// let l = Lulea::from_rib(&rib).unwrap();
/// assert_eq!(l.lookup(0x0A01_0203), Some(2));
/// assert_eq!(l.lookup(0x0A01_0303), Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct Lulea {
    /// Level 1: heads over 2^16 slots + dense pointers.
    l1_heads: RankedBitmap,
    l1_ptrs: Vec<u16>,
    /// Level 2: per-chunk heads, shared pointer array.
    l2_chunks: Vec<Chunk>,
    l2_ptrs: Vec<u16>,
    /// Level 3: per-chunk heads, shared pointer array (next hops only).
    l3_chunks: Vec<Chunk>,
    l3_ptrs: Vec<u16>,
}

/// Expansion of one level of the radix tree into `1 << bits` slot values:
/// each slot is either a terminal next hop or a deeper radix subtree.
enum Slot<'a> {
    Leaf(NextHop),
    Deeper(&'a RadixNode<NextHop>, NextHop),
}

fn expand_level<'a>(
    node: Option<&'a RadixNode<NextHop>>,
    inherited: NextHop,
    depth: u32,
    bits: u32,
    base: usize,
    out: &mut Vec<Option<Slot<'a>>>,
) {
    let Some(n) = node else {
        let width = 1usize << (bits - depth);
        for s in &mut out[base * width..(base + 1) * width] {
            *s = Some(Slot::Leaf(inherited));
        }
        return;
    };
    let inh = n.value().copied().unwrap_or(inherited);
    if depth == bits {
        out[base] = Some(if n.has_children() {
            Slot::Deeper(n, inh)
        } else {
            Slot::Leaf(inh)
        });
        return;
    }
    expand_level(n.child(false), inh, depth + 1, bits, base * 2, out);
    expand_level(n.child(true), inh, depth + 1, bits, base * 2 + 1, out);
}

/// Compress an expanded slot array into (head words, pointers), assigning
/// chunk ids for deeper slots through `alloc_chunk`.
fn compress<'a>(
    slots: &[Option<Slot<'a>>],
    mut alloc_chunk: impl FnMut(&'a RadixNode<NextHop>, NextHop) -> Result<u16, LuleaError>,
) -> Result<(Vec<u64>, Vec<u16>), LuleaError> {
    let mut words = vec![0u64; slots.len().div_ceil(64)];
    let mut ptrs: Vec<u16> = Vec::new();
    let mut last: Option<u16> = None;
    for (i, slot) in slots.iter().enumerate() {
        let ptr = match slot.as_ref().expect("expansion fills every slot") {
            Slot::Leaf(nh) => {
                if *nh & CHUNK_FLAG != 0 {
                    return Err(LuleaError::NextHopOverflow);
                }
                *nh
            }
            Slot::Deeper(node, inh) => CHUNK_FLAG | alloc_chunk(node, *inh)?,
        };
        // New interval iff the pointer differs from the previous slot's —
        // chunk pointers are unique per slot, so deeper slots always start
        // an interval.
        if last != Some(ptr) || ptr & CHUNK_FLAG != 0 {
            words[i >> 6] |= 1u64 << (i & 63);
            ptrs.push(ptr);
            last = Some(ptr);
        }
    }
    Ok((words, ptrs))
}

impl Lulea {
    /// Compile from a RIB radix tree.
    pub fn from_rib(rib: &RadixTree<u32, NextHop>) -> Result<Self, LuleaError> {
        // Level 1: expand bits 0..16.
        let mut slots: Vec<Option<Slot<'_>>> = Vec::new();
        slots.resize_with(1 << 16, || None);
        expand_level(rib.root(), NO_ROUTE, 0, 16, 0, &mut slots);

        // Collect deeper subtrees level by level, breadth-first, so all
        // of a level's chunks share one pointer array.
        let mut l2_pending: Vec<(&RadixNode<NextHop>, NextHop)> = Vec::new();
        let (w1, p1) = compress(&slots, |node, inh| {
            if l2_pending.len() >= MAX_CHUNKS {
                return Err(LuleaError::ChunkOverflow {
                    level: 2,
                    needed: l2_pending.len() + 1,
                });
            }
            l2_pending.push((node, inh));
            Ok((l2_pending.len() - 1) as u16)
        })?;

        let mut l2_chunks = Vec::with_capacity(l2_pending.len());
        let mut l2_ptrs = Vec::new();
        let mut l3_pending: Vec<(&RadixNode<NextHop>, NextHop)> = Vec::new();
        for &(node, inh) in &l2_pending {
            let mut slots: Vec<Option<Slot<'_>>> = Vec::new();
            slots.resize_with(256, || None);
            expand_level(Some(node), inh, 0, 8, 0, &mut slots);
            // The value at `node` itself was already folded into `inh` by
            // the parent level; expand_level re-applies it, which is
            // idempotent.
            let (w, p) = compress(&slots, |n3, i3| {
                if l3_pending.len() >= MAX_CHUNKS {
                    return Err(LuleaError::ChunkOverflow {
                        level: 3,
                        needed: l3_pending.len() + 1,
                    });
                }
                l3_pending.push((n3, i3));
                Ok((l3_pending.len() - 1) as u16)
            })?;
            l2_chunks.push(Chunk {
                heads: RankedBitmap::new(w),
                base: l2_ptrs.len() as u32,
            });
            l2_ptrs.extend_from_slice(&p);
        }

        let mut l3_chunks = Vec::with_capacity(l3_pending.len());
        let mut l3_ptrs = Vec::new();
        for &(node, inh) in &l3_pending {
            let mut slots: Vec<Option<Slot<'_>>> = Vec::new();
            slots.resize_with(256, || None);
            expand_level(Some(node), inh, 0, 8, 0, &mut slots);
            let (w, p) = compress(&slots, |_, _| {
                unreachable!("level 3 covers bits 24..32; nothing is deeper")
            })?;
            l3_chunks.push(Chunk {
                heads: RankedBitmap::new(w),
                base: l3_ptrs.len() as u32,
            });
            l3_ptrs.extend_from_slice(&p);
        }

        Ok(Lulea {
            l1_heads: RankedBitmap::new(w1),
            l1_ptrs: p1,
            l2_chunks,
            l2_ptrs,
            l3_chunks,
            l3_ptrs,
        })
    }

    /// Compile from a route list.
    pub fn from_routes<I: IntoIterator<Item = (poptrie_rib::Prefix<u32>, NextHop)>>(
        routes: I,
    ) -> Result<Self, LuleaError> {
        Self::from_rib(&RadixTree::from_routes(routes))
    }

    /// Longest-prefix-match lookup.
    pub fn lookup(&self, key: u32) -> Option<NextHop> {
        let nh = self.lookup_raw(key);
        (nh != NO_ROUTE).then_some(nh)
    }

    /// Raw lookup returning [`NO_ROUTE`] (0) on a miss.
    #[inline]
    pub fn lookup_raw(&self, key: u32) -> NextHop {
        let slot1 = (key >> 16) as usize;
        let r = self.l1_heads.rank(slot1);
        debug_assert!(r >= 1, "slot 0 is always a head");
        // SAFETY: rank is in 1..=l1_ptrs.len() by construction (slot 0 is
        // always a head and every head pushed one pointer).
        let ptr = unsafe { *self.l1_ptrs.get_unchecked((r - 1) as usize) };
        if ptr & CHUNK_FLAG == 0 {
            return ptr;
        }
        let chunk = &self.l2_chunks[(ptr & !CHUNK_FLAG) as usize];
        let slot2 = ((key >> 8) & 0xFF) as usize;
        let r = chunk.heads.rank(slot2);
        let ptr = self.l2_ptrs[(chunk.base + r - 1) as usize];
        if ptr & CHUNK_FLAG == 0 {
            return ptr;
        }
        let chunk = &self.l3_chunks[(ptr & !CHUNK_FLAG) as usize];
        let slot3 = (key & 0xFF) as usize;
        let r = chunk.heads.rank(slot3);
        self.l3_ptrs[(chunk.base + r - 1) as usize]
    }

    /// Batched lookup: `keys[i]` resolves into `out[i]` ([`NO_ROUTE`] on
    /// a miss). Each of Luleå's three levels is a short chain — bitmap
    /// word + rank directory, then the dense pointer array — so the batch
    /// advances [`BATCH_LANES`] keys through each level in waves: all
    /// lanes' bitmap lines are hinted before any rank runs, all pointer
    /// lines before any pointer is read, and lanes descending a level
    /// hint the next chunk's metadata before it is touched. Per-key
    /// semantics are exactly those of [`Lulea::lookup_raw`].
    ///
    /// # Panics
    /// If `keys.len() != out.len()`.
    pub fn lookup_batch(&self, keys: &[u32], out: &mut [NextHop]) {
        assert_eq!(keys.len(), out.len(), "keys/out length mismatch");
        for (keys, out) in keys.chunks(BATCH_LANES).zip(out.chunks_mut(BATCH_LANES)) {
            self.lookup_batch_chunk(keys, out);
        }
    }

    fn lookup_batch_chunk(&self, keys: &[u32], out: &mut [NextHop]) {
        debug_assert!(keys.len() <= BATCH_LANES && keys.len() == out.len());
        let n = keys.len();
        let mut pi = [0usize; BATCH_LANES]; // pointer index per lane
        let mut cid = [0usize; BATCH_LANES]; // chunk id per lane

        // Level 1: rank over the 2^16-slot bitmap, then the pointer.
        for &k in keys {
            self.l1_heads.prefetch((k >> 16) as usize);
        }
        for i in 0..n {
            let r = self.l1_heads.rank((keys[i] >> 16) as usize);
            debug_assert!(r >= 1, "slot 0 is always a head");
            pi[i] = (r - 1) as usize;
            poptrie_bitops::prefetch_index(&self.l1_ptrs, pi[i]);
        }
        let mut pending: u32 = 0;
        for i in 0..n {
            // SAFETY: rank is in 1..=l1_ptrs.len() by construction (slot 0
            // is always a head and every head pushed one pointer).
            let ptr = unsafe { *self.l1_ptrs.get_unchecked(pi[i]) };
            if ptr & CHUNK_FLAG == 0 {
                out[i] = ptr;
            } else {
                cid[i] = (ptr & !CHUNK_FLAG) as usize;
                pending |= 1 << i;
                poptrie_bitops::prefetch_index(&self.l2_chunks, cid[i]);
            }
        }

        // Level 2.
        let mut m = pending;
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            m &= m - 1;
            self.l2_chunks[cid[i]]
                .heads
                .prefetch(((keys[i] >> 8) & 0xFF) as usize);
        }
        let mut m = pending;
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            m &= m - 1;
            let chunk = &self.l2_chunks[cid[i]];
            let r = chunk.heads.rank(((keys[i] >> 8) & 0xFF) as usize);
            pi[i] = (chunk.base + r - 1) as usize;
            poptrie_bitops::prefetch_index(&self.l2_ptrs, pi[i]);
        }
        let mut m = pending;
        pending = 0;
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            m &= m - 1;
            let ptr = self.l2_ptrs[pi[i]];
            if ptr & CHUNK_FLAG == 0 {
                out[i] = ptr;
            } else {
                cid[i] = (ptr & !CHUNK_FLAG) as usize;
                pending |= 1 << i;
                poptrie_bitops::prefetch_index(&self.l3_chunks, cid[i]);
            }
        }

        // Level 3: next hops only.
        let mut m = pending;
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            m &= m - 1;
            self.l3_chunks[cid[i]]
                .heads
                .prefetch((keys[i] & 0xFF) as usize);
        }
        let mut m = pending;
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            m &= m - 1;
            let chunk = &self.l3_chunks[cid[i]];
            let r = chunk.heads.rank((keys[i] & 0xFF) as usize);
            pi[i] = (chunk.base + r - 1) as usize;
            poptrie_bitops::prefetch_index(&self.l3_ptrs, pi[i]);
        }
        let mut m = pending;
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            m &= m - 1;
            out[i] = self.l3_ptrs[pi[i]];
        }
    }

    /// Chunk counts at levels 2 and 3.
    pub fn chunk_counts(&self) -> (usize, usize) {
        (self.l2_chunks.len(), self.l3_chunks.len())
    }

    /// Stored pointers per level — the quantity Luleå's interval
    /// compression minimizes (compare with SAIL's fully expanded arrays).
    pub fn pointer_counts(&self) -> (usize, usize, usize) {
        (self.l1_ptrs.len(), self.l2_ptrs.len(), self.l3_ptrs.len())
    }
}

impl Lpm<u32> for Lulea {
    fn lookup(&self, key: u32) -> Option<NextHop> {
        Lulea::lookup(self, key)
    }

    fn lookup_batch(&self, keys: &[u32], out: &mut [NextHop]) {
        Lulea::lookup_batch(self, keys, out)
    }

    fn memory_bytes(&self) -> usize {
        let chunks =
            |cs: &Vec<Chunk>| -> usize { cs.iter().map(|c| c.heads.bytes() + 4).sum::<usize>() };
        self.l1_heads.bytes()
            + (self.l1_ptrs.len() + self.l2_ptrs.len() + self.l3_ptrs.len()) * 2
            + chunks(&self.l2_chunks)
            + chunks(&self.l3_chunks)
    }

    fn name(&self) -> String {
        "Lulea".into()
    }
}

#[cfg(test)]
mod tests;
