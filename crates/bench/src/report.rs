//! Plain-text table formatting for the `repro` binary.

/// A simple aligned text table, printed in the style of the paper's
/// tables.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (padded or truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as CSV (RFC-4180-style quoting for cells containing commas
    /// or quotes), for downstream plotting.
    pub fn to_csv(&self) -> String {
        let quote = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        for row in std::iter::once(&self.header).chain(self.rows.iter()) {
            let line: Vec<String> = row.iter().map(|c| quote(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        }
        out
    }

    /// Render with aligned columns: first column left-aligned (names),
    /// the rest right-aligned (numbers).
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                if i == 0 {
                    out.push_str(&format!("{:<width$}", cell, width = widths[i]));
                } else {
                    out.push_str(&format!("{:>width$}", cell, width = widths[i]));
                }
            }
            out.push('\n');
        };
        fmt_row(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &mut out);
        }
        out
    }
}

/// Format bytes as MiB with two decimals, the unit of Tables 2 and 3.
pub fn mib(bytes: usize) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

/// Format a `(mean, std)` pair the way the paper prints "rate (std.)".
pub fn mean_std_cell(pair: (f64, f64)) -> String {
    format!("{:.2} ({:.2})", pair.0, pair.1)
}
