//! Shared harness code for the `repro` binary and the Criterion benches.
//!
//! The library half of `poptrie-bench` knows how to build every algorithm
//! of the paper's evaluation from a dataset, measure lookup rates in Mlps
//! (the unit of Figures 8–9, Tables 2–3 and 5–6) and per-lookup cycle
//! distributions (§4.6), and format paper-style result tables.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod algorithms;
pub mod measure;
pub mod report;

pub use algorithms::{build_all_v4, build_v4, Algo, BuildOutcome};
pub use measure::{cycle_samples, measure_mlps, measure_mlps_keys, CycleSample, MeasureConfig};
pub use report::Table;

#[cfg(test)]
mod tests;
