//! Building the evaluated algorithms from a dataset.

use poptrie::{Builder, Poptrie};
use poptrie_dir248::Dir248;
use poptrie_dxr::{Dxr, DxrConfig};
use poptrie_lulea::Lulea;
use poptrie_rib::{Lpm, NextHop, RadixTree};
use poptrie_sail::Sail;
use poptrie_tablegen::Dataset;
use poptrie_treebitmap::{TreeBitmap4, TreeBitmap64};

/// The algorithms of Figure 9 (plus the Table 3 extras), in the paper's
/// plot order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// Binary radix tree (the paper's `Radix` baseline).
    Radix,
    /// Tree BitMap, original stride-4.
    TreeBitmap,
    /// Tree BitMap, 64-ary popcnt variant (Table 3).
    TreeBitmap64,
    /// SAIL_L.
    Sail,
    /// DXR with a 2^16 directory.
    D16r,
    /// Poptrie with `s = 16`.
    Poptrie16,
    /// DXR with a 2^18 directory.
    D18r,
    /// DXR with the §4.8 extended (2^20) range index.
    D18rModified,
    /// Poptrie with `s = 18`.
    Poptrie18,
    /// Poptrie without direct pointing.
    Poptrie0,
    /// DIR-24-8-BASIC (Gupta et al. 1998) — not in the paper's figures;
    /// included as the ancestor of direct pointing for the ablations.
    Dir248,
    /// Lulea-style level-compressed trie (Degermark et al. 1997) — not in
    /// the paper's figures; included as the compression ancestor for the
    /// ablations.
    Lulea,
}

impl Algo {
    /// The seven algorithms of Figure 9, in plot order.
    pub fn figure9() -> &'static [Algo] {
        &[
            Algo::Radix,
            Algo::TreeBitmap,
            Algo::Sail,
            Algo::D16r,
            Algo::Poptrie16,
            Algo::D18r,
            Algo::Poptrie18,
        ]
    }

    /// The Table 3 row set (Figure 9's plus 64-ary Tree BitMap and
    /// Poptrie0).
    pub fn table3() -> &'static [Algo] {
        &[
            Algo::Radix,
            Algo::TreeBitmap,
            Algo::TreeBitmap64,
            Algo::Sail,
            Algo::D16r,
            Algo::D18r,
            Algo::Poptrie0,
            Algo::Poptrie16,
            Algo::Poptrie18,
        ]
    }
}

/// The result of building one algorithm: the paper's Table 5 needs to
/// distinguish a working structure from a structural-limit failure
/// (`N/A`).
pub enum BuildOutcome {
    /// Structure built; boxed behind the common lookup trait.
    Ok(Box<dyn Lpm<u32> + Send + Sync>),
    /// The algorithm's structural limit was exceeded (SAIL's 15-bit chunk
    /// ids, DXR's 2^19/2^20 range index).
    StructuralLimit(String),
}

impl core::fmt::Debug for BuildOutcome {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BuildOutcome::Ok(fib) => write!(f, "Ok({})", fib.name()),
            BuildOutcome::StructuralLimit(e) => write!(f, "StructuralLimit({e})"),
        }
    }
}

/// Build one algorithm from a RIB.
pub fn build_v4(algo: Algo, rib: &RadixTree<u32, NextHop>) -> BuildOutcome {
    match algo {
        Algo::Radix => BuildOutcome::Ok(Box::new(rib.clone())),
        Algo::TreeBitmap => BuildOutcome::Ok(Box::new(TreeBitmap4::from_rib(rib))),
        Algo::TreeBitmap64 => BuildOutcome::Ok(Box::new(TreeBitmap64::from_rib(rib))),
        Algo::Sail => match Sail::from_rib(rib) {
            Ok(s) => BuildOutcome::Ok(Box::new(s)),
            Err(e) => BuildOutcome::StructuralLimit(e.to_string()),
        },
        Algo::D16r => match Dxr::from_rib(rib, DxrConfig::d16r()) {
            Ok(d) => BuildOutcome::Ok(Box::new(d)),
            Err(e) => BuildOutcome::StructuralLimit(e.to_string()),
        },
        Algo::D18r => match Dxr::from_rib(rib, DxrConfig::d18r()) {
            Ok(d) => BuildOutcome::Ok(Box::new(d)),
            Err(e) => BuildOutcome::StructuralLimit(e.to_string()),
        },
        Algo::D18rModified => {
            let cfg = DxrConfig {
                direct_bits: 18,
                extended_index: true,
            };
            match Dxr::from_rib(rib, cfg) {
                Ok(d) => BuildOutcome::Ok(Box::new(d)),
                Err(e) => BuildOutcome::StructuralLimit(e.to_string()),
            }
        }
        Algo::Dir248 => match Dir248::from_rib(rib) {
            Ok(d) => BuildOutcome::Ok(Box::new(d)),
            Err(e) => BuildOutcome::StructuralLimit(e.to_string()),
        },
        Algo::Lulea => match Lulea::from_rib(rib) {
            Ok(l) => BuildOutcome::Ok(Box::new(l)),
            Err(e) => BuildOutcome::StructuralLimit(e.to_string()),
        },
        Algo::Poptrie0 => BuildOutcome::Ok(Box::new(poptrie_with_s(rib, 0))),
        Algo::Poptrie16 => BuildOutcome::Ok(Box::new(poptrie_with_s(rib, 16))),
        Algo::Poptrie18 => BuildOutcome::Ok(Box::new(poptrie_with_s(rib, 18))),
    }
}

fn poptrie_with_s(rib: &RadixTree<u32, NextHop>, s: u8) -> Poptrie<u32> {
    Builder::new().direct_bits(s).aggregate(true).build(rib)
}

/// Build a set of algorithms from a dataset, returning
/// `(algo, outcome)` pairs.
pub fn build_all_v4(algos: &[Algo], dataset: &Dataset) -> Vec<(Algo, BuildOutcome)> {
    let rib = dataset.to_rib();
    algos.iter().map(|&a| (a, build_v4(a, &rib))).collect()
}
