use crate::algorithms::{build_all_v4, Algo, BuildOutcome};
use crate::measure::{
    batched_cycles_per_lookup, cycle_samples, mean_std, measure_mlps, measure_mlps_batch,
    measure_mlps_keys, measure_mlps_keys_batch, MeasureConfig,
};
use crate::report::{mean_std_cell, mib, Table};
use poptrie_rib::Lpm;
use poptrie_tablegen::{TableKind, TableSpec};

fn small_dataset() -> poptrie_tablegen::Dataset {
    TableSpec {
        name: "bench-test".into(),
        prefixes: 20_000,
        next_hops: 16,
        kind: TableKind::Real,
    }
    .generate()
}

#[test]
fn all_algorithms_build_and_agree() {
    let dataset = small_dataset();
    let rib = dataset.to_rib();
    let built = build_all_v4(Algo::table3(), &dataset);
    assert_eq!(built.len(), Algo::table3().len());
    let mut rng = poptrie_traffic::Xorshift128::new(77);
    for _ in 0..20_000 {
        let key = rng.next_u32();
        let want = Lpm::lookup(&rib, key);
        for (algo, outcome) in &built {
            let BuildOutcome::Ok(fib) = outcome else {
                panic!("{algo:?} hit a structural limit on a small table");
            };
            assert_eq!(fib.lookup(key), want, "{algo:?} key={key:#010x}");
        }
    }
}

#[test]
fn mlps_measurement_is_positive() {
    let dataset = small_dataset();
    let rib = dataset.to_rib();
    let built = build_all_v4(&[Algo::Poptrie18], &dataset);
    let BuildOutcome::Ok(fib) = &built[0].1 else {
        panic!("build failed")
    };
    let cfg = MeasureConfig {
        lookups: 1 << 16,
        reps: 2,
        cycle_samples: 1 << 10,
        batch: 64,
    };
    let (rate, std) = measure_mlps(fib.as_ref(), &cfg);
    assert!(rate > 0.0 && std >= 0.0);
    let (rate, _) = measure_mlps_batch(fib.as_ref(), &cfg);
    assert!(rate > 0.0);
    let keys: Vec<u32> = (0..1000).collect();
    let (rate, _) = measure_mlps_keys(fib.as_ref(), &keys, &cfg);
    assert!(rate > 0.0);
    let (rate, _) = measure_mlps_keys_batch(fib.as_ref(), &keys, &cfg);
    assert!(rate > 0.0);
    let cycles = batched_cycles_per_lookup(fib.as_ref(), 1 << 12, cfg.batch);
    assert!(cycles >= 0.0);
    let _ = rib;
}

#[test]
fn cycle_sampling_tags_keys() {
    let dataset = small_dataset();
    let built = build_all_v4(&[Algo::Poptrie16], &dataset);
    let BuildOutcome::Ok(fib) = &built[0].1 else {
        panic!("build failed")
    };
    let samples = cycle_samples(fib.as_ref(), 4096);
    assert_eq!(samples.len(), 4096);
    // Same seed across calls: identical key streams (the §4.6 requirement
    // for comparing algorithms).
    let again = cycle_samples(fib.as_ref(), 4096);
    assert!(samples.iter().zip(&again).all(|(a, b)| a.key == b.key));
}

#[test]
fn mean_std_math() {
    let (m, s) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
    assert!((m - 5.0).abs() < 1e-12);
    assert!((s - 2.138089935299395).abs() < 1e-9);
    let (m, s) = mean_std(&[3.0]);
    assert_eq!((m, s), (3.0, 0.0));
}

#[test]
fn table_rendering_aligns() {
    let mut t = Table::new(vec!["Name", "Rate"]);
    t.row(vec!["Poptrie18", "240.52"]);
    t.row(vec!["D18R", "179.92"]);
    let s = t.render();
    let lines: Vec<&str> = s.lines().collect();
    assert_eq!(lines.len(), 4);
    assert!(lines[0].contains("Name") && lines[0].contains("Rate"));
    assert!(lines[2].starts_with("Poptrie18"));
    assert!(lines[2].ends_with("240.52"));
    assert!(!t.is_empty() && t.len() == 2);
}

#[test]
fn csv_rendering() {
    let mut t = Table::new(vec!["Name", "Rate"]);
    t.row(vec!["Poptrie18", "240.52"]);
    t.row(vec!["with,comma", "a \"quoted\" cell"]);
    let csv = t.to_csv();
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines[0], "Name,Rate");
    assert_eq!(lines[1], "Poptrie18,240.52");
    assert_eq!(lines[2], "\"with,comma\",\"a \"\"quoted\"\" cell\"");
}

#[test]
fn format_helpers() {
    assert_eq!(mib(2 * 1024 * 1024), "2.00");
    assert_eq!(mean_std_cell((198.276, 5.29)), "198.28 (5.29)");
}
