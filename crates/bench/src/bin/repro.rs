//! `repro` — regenerate every table and figure of the Poptrie paper.
//!
//! ```text
//! repro <experiment> [--quick | --full] [--compare]
//! repro fig10 --live --threads N [--churn] [--quick]
//! repro slo [--threads N] [--quick]
//!
//! experiments:
//!   table1   dataset inventory (Table 1)
//!   table2   Poptrie options ablation on REAL-Tier1-A (Table 2)
//!   table3   memory + rate, all algorithms, REAL-Tier1-A/B (Table 3)
//!   table4   per-lookup CPU cycle percentiles (Table 4)
//!   table5   scalability on SYN1/SYN2 tables (Table 5)
//!   table6   IPv6 Poptrie (Table 6; --compare adds IPv6 DXR, §4.10)
//!   fig7     binary-radix-depth heat map (Figure 7)
//!   fig8     multi-thread scaling (Figure 8)
//!   fig9     lookup rate on all 35 datasets (Figure 9)
//!   fig10    CDF of CPU cycles per lookup (Figure 10); with --live:
//!            aggregate rate through the sharded forwarding engine,
//!            sweeping worker counts up to --threads N, optionally under
//!            concurrent control-plane churn (--churn)
//!   fig11    cycles vs binary radix depth candlesticks (Figure 11)
//!   fig12    real-trace lookup rate on REAL-RENET (Figure 12)
//!   updates  incremental update performance (§4.9)
//!   all      everything above
//! ```
//!
//! `--quick` shrinks workloads for smoke runs; `--full` uses paper-scale
//! 2^32-lookup measurements (slow).

use poptrie::{Builder, Fib, Poptrie, PoptrieConfig, UpdateStrategy};
use poptrie_bench::algorithms::{build_all_v4, build_v4, Algo, BuildOutcome};
use poptrie_bench::measure::{
    batched_cycles_per_lookup, cycle_percentiles, cycle_samples, mean_std, measure_mlps,
    measure_mlps_batch, measure_mlps_keys, measure_mlps_keys_batch, CycleSample, MeasureConfig,
};
use poptrie_bench::report::{mean_std_cell, mib, Table};
use poptrie_cycles::{Candlestick, Cdf, Heatmap};
use poptrie_dxr::Dxr6;
use poptrie_rib::Lpm;
use poptrie_rng::StdRng;
use poptrie_tablegen as tablegen;
use poptrie_tablegen::{churn_stream, ChurnConfig, ChurnEvent};
use poptrie_traffic::{random_v6_in_2000, RealTrace, TraceConfig, Xorshift128};
use std::collections::HashMap;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let full = args.iter().any(|a| a == "--full");
    let compare = args.iter().any(|a| a == "--compare");
    let live = args.iter().any(|a| a == "--live");
    let churn = args.iter().any(|a| a == "--churn");
    let cfg = if full {
        MeasureConfig::full()
    } else if quick {
        MeasureConfig::quick()
    } else {
        MeasureConfig::standard()
    };
    // `--threads` consumes the next token, so the command word is picked
    // from the positionals that remain after flag parsing.
    let mut threads: Option<usize> = None;
    let mut mrt: Option<String> = None;
    let mut write_fixture: Option<String> = None;
    let mut speedup: f64 = 0.0;
    let mut positional: Vec<&str> = Vec::new();
    let mut words = args.iter();
    while let Some(a) = words.next() {
        if a == "--threads" {
            threads = words.next().and_then(|v| v.parse().ok()).filter(|&n| n > 0);
            if threads.is_none() {
                eprintln!("--threads needs a positive integer");
                std::process::exit(2);
            }
        } else if a == "--mrt" {
            mrt = words.next().cloned();
            if mrt.is_none() {
                eprintln!("--mrt needs a file path");
                std::process::exit(2);
            }
        } else if a == "--write-fixture" {
            write_fixture = words.next().cloned();
            if write_fixture.is_none() {
                eprintln!("--write-fixture needs a file path");
                std::process::exit(2);
            }
        } else if a == "--speedup" {
            match words.next().and_then(|v| v.parse().ok()) {
                Some(s) => speedup = s,
                None => {
                    eprintln!("--speedup needs a number (0 = as fast as possible)");
                    std::process::exit(2);
                }
            }
        } else if !a.starts_with("--") {
            positional.push(a);
        }
    }
    let cmd = positional.first().copied().unwrap_or("help");
    let mut ctx = Ctx {
        cfg,
        quick,
        compare,
        datasets: HashMap::new(),
    };
    match cmd {
        "table1" => table1(&mut ctx),
        "table2" => table2(&mut ctx),
        "table3" => table3(&mut ctx),
        "table4" => table4(&mut ctx),
        "table5" => table5(&mut ctx),
        "table6" => table6(&mut ctx),
        "fig7" => fig7(&mut ctx),
        "fig8" => fig8(&mut ctx),
        "fig9" => fig9(&mut ctx),
        "fig10" if live => fig10_live(&mut ctx, threads.unwrap_or(2), churn),
        "fig10" => fig10(&mut ctx),
        "slo" => slo(&mut ctx, threads.unwrap_or(2)),
        "bgp" => bgp(
            &mut ctx,
            &BgpOpts {
                mrt,
                write_fixture,
                speedup,
                threads: threads.unwrap_or(2),
            },
        ),
        "trace" => trace_cmd(&mut ctx, threads.unwrap_or(2)),
        "vrf" => vrf_cmd(
            &mut ctx,
            threads.unwrap_or(2),
            if full { 4096 } else { 1024 },
        ),
        "fig11" => fig11(&mut ctx),
        "fig12" => fig12(&mut ctx),
        "updates" => updates(&mut ctx),
        "audit" => audit(&mut ctx),
        "stats" => stats(&mut ctx, &args),
        "serial" => serial(&mut ctx),
        "locality" => locality(&mut ctx),
        "batch" => batch(&mut ctx),
        "all" => {
            table1(&mut ctx);
            table2(&mut ctx);
            table3(&mut ctx);
            table4(&mut ctx);
            table5(&mut ctx);
            table6(&mut ctx);
            fig7(&mut ctx);
            fig8(&mut ctx);
            fig9(&mut ctx);
            fig10(&mut ctx);
            fig11(&mut ctx);
            fig12(&mut ctx);
            updates(&mut ctx);
        }
        _ => {
            eprint!("{}", HELP);
            std::process::exit(if cmd == "help" { 0 } else { 2 });
        }
    }
}

const HELP: &str = "\
repro — regenerate the tables and figures of the Poptrie paper (SIGCOMM 2015)

usage: repro <experiment> [--quick | --full] [--compare]
       repro fig10 --live --threads N [--churn] [--quick]
       repro slo [--threads N] [--quick]
       repro bgp [--quick] [--threads N] [--mrt FILE] [--speedup X]
       repro bgp --write-fixture FILE
       repro trace [--quick] [--threads N]
       repro vrf [--quick | --full] [--threads N]
       repro stats [--prometheus]

experiments: table1 table2 table3 table4 table5 table6
             fig7 fig8 fig9 fig10 fig11 fig12 updates all
             fig10 --live      drive the sharded forwarding engine:
                      N pinned workers draining bounded batch queues
                      against the RCU snapshot, sweeping worker counts
                      1..=N; --churn replays a seeded BGP update stream
                      through the control-plane writer concurrently;
                      writes results/BENCH_engine.json
             slo      tail-latency SLO matrix through the forwarding
                      engine under deadline QoS: traffic pattern (uniform,
                      zipf, microburst, worst-depth) x worker count
                      (1..=--threads N) x churn on/off, reporting
                      p50/p99/p99.9 queue-wait and service latency per
                      cell with exact drop accounting; writes
                      results/BENCH_slo.json and exits nonzero on an
                      accounting mismatch or malformed JSON
             bgp      BGP control-plane replay: drive wire-format UPDATE
                      messages (synthetic, or an MRT BGP4MP capture via
                      --mrt) through the RFC 4271 session FSM into the
                      engine's control plane, with a seeded mid-replay
                      session flap (reset, exponential-backoff reconnect,
                      full-table resend) while lookups keep serving the
                      last snapshot; gates on exact announce/withdraw
                      accounting and a FIB-vs-RIB-oracle match, writes
                      results/BENCH_bgp.json (updates/s, convergence-lag
                      p50/p99/p99.9, lookups/s), exits nonzero on any
                      mismatch. --speedup X paces the trace at X times
                      the recorded rate (0 = as fast as possible);
                      --write-fixture FILE emits the deterministic
                      BGP4MP fixture CI replays
             trace    flight-recorder run (requires building with
                      --features trace): per-lookup-phase perf-counter
                      attribution (direct-point hit vs trie descent, per
                      dispatch tier), a BGP->writer->replica->lookup
                      convergence-span replay exported as Perfetto-
                      loadable Chrome trace JSON
                      (results/BENCH_trace_events.json), and the
                      recorder's own overhead at 1-in-64 sampling;
                      writes results/BENCH_trace.json and exits nonzero
                      on a broken span chain or phase-counter mismatch
             vrf      multi-tenant VRF scale: compile 1024 tenant FIBs
                      (4096 under --full) from one base feed plus
                      per-tenant deltas into a shared leaf arena with
                      next-hop interning, against an unshared baseline;
                      then churn one tenant through the engine's control
                      plane while VRF-keyed lookups are served across
                      the whole group. Gates on exact cross-table
                      reference reconciliation, oracle-exact lookups on
                      an untouched tenant during churn, and a >= 25%
                      bytes/route reduction from interning; writes
                      results/BENCH_vrf.json and exits nonzero on any
                      violation
             stats    with no dataset argument: live-telemetry replay —
                      a seeded lookup + churn workload whose counters are
                      reconciled against the script, dumped as Prometheus
                      text and results/BENCH_telemetry.json (requires
                      building with --features telemetry); --prometheus
                      additionally exercises the engine and a BGP session
                      and merges their registries into the same scrape
             stats <dataset|SYN1-...|SYN2-...>   structural diagnostics
             audit    structural invariant audit: fresh builds, the §4.9
                      replay under both update strategies, and a seeded
                      churn-fuzz run cross-checked against the RIB
                      (--quick bounds it to a few seconds; CI runs that)
             serial   dependent-lookup latency comparison (ablation)
             locality sequential/repeated rates on REAL-Tier1-B (§4.5)
             batch    scalar vs batched+prefetch lookup rate (ablation)

fig8, fig9, fig10 and fig12 report both the scalar and the batched
(interleaved, software-prefetched) lookup modes side by side.
";

struct Ctx {
    cfg: MeasureConfig,
    quick: bool,
    compare: bool,
    datasets: HashMap<String, tablegen::Dataset>,
}

impl Ctx {
    fn dataset(&mut self, name: &str) -> &tablegen::Dataset {
        if !self.datasets.contains_key(name) {
            eprintln!("[gen] synthesizing {name} ...");
            let d = tablegen::dataset(name);
            self.datasets.insert(name.to_string(), d);
        }
        &self.datasets[name]
    }

    /// Dataset list for sweep experiments (fig9): all 35, or 6 in quick
    /// mode.
    fn sweep_names(&self) -> Vec<&'static str> {
        if self.quick {
            vec![
                "REAL-Tier1-A",
                "REAL-Tier1-B",
                "REAL-RENET",
                "RV-linx-p46",
                "RV-saopaulo-p2",
                "RV-sydney-p0",
            ]
        } else {
            tablegen::all_dataset_names()
        }
    }
}

fn section(title: &str) {
    println!("\n==============================================================");
    println!("{title}");
    println!("==============================================================");
}

// ---------------------------------------------------------------- table 1

fn table1(ctx: &mut Ctx) {
    section("Table 1: RIB datasets (name, # prefixes, # next hops)");
    let mut t = Table::new(vec!["Name", "# prefixes", "# nhops", "kind"]);
    if ctx.quick {
        for info in tablegen::table1() {
            t.row(vec![
                info.name.to_string(),
                info.prefixes.to_string(),
                info.next_hops.to_string(),
                format!("{:?} (spec)", info.kind),
            ]);
        }
    } else {
        for info in tablegen::table1() {
            let d = ctx.dataset(info.name);
            t.row(vec![
                info.name.to_string(),
                d.len().to_string(),
                d.next_hop_count().to_string(),
                format!("{:?}", info.kind),
            ]);
        }
    }
    print!("{}", t.render());
}

// ---------------------------------------------------------------- table 2

fn table2(ctx: &mut Ctx) {
    section("Table 2: Poptrie options on REAL-Tier1-A (s = 0, 16, 18)");
    let cfg = ctx.cfg;
    let rib = ctx.dataset("REAL-Tier1-A").to_rib();
    let mut t = Table::new(vec![
        "Variant",
        "s",
        "# inodes",
        "# leaves",
        "Mem [MiB]",
        "Compile (std.) [ms]",
        "Rate (std.) [Mlps]",
    ]);

    // Radix baseline row, as in the paper's Table 2 header row.
    let (rate, std) = measure_mlps(&rib, &cfg);
    t.row(vec![
        "Radix".to_string(),
        "-".into(),
        "-".into(),
        "-".into(),
        mib(Lpm::memory_bytes(&rib)),
        "-".into(),
        format!("{rate:.2} ({std:.2})"),
    ]);

    for s in [0u8, 16, 18] {
        // basic, no aggregation (§3.1)
        let (compile, trie) = timed_builds(3, || {
            Builder::<u32, poptrie::Node16>::new()
                .direct_bits(s)
                .aggregate(false)
                .build(&rib)
        });
        let st = trie.stats();
        t.row(vec![
            "Poptrie (basic), no aggregation".to_string(),
            s.to_string(),
            st.inodes.to_string(),
            st.leaves.to_string(),
            mib(st.memory_bytes),
            mean_std_cell(compile),
            mean_std_cell(measure_mlps(&trie, &cfg)),
        ]);
        drop(trie);
        // leafvec, no aggregation (§3.3)
        let (compile, trie) = timed_builds(3, || {
            Builder::<u32, poptrie::Node24>::new()
                .direct_bits(s)
                .aggregate(false)
                .build(&rib)
        });
        let st = trie.stats();
        t.row(vec![
            "Poptrie (leafvec), no aggregation".to_string(),
            s.to_string(),
            st.inodes.to_string(),
            st.leaves.to_string(),
            mib(st.memory_bytes),
            mean_std_cell(compile),
            mean_std_cell(measure_mlps(&trie, &cfg)),
        ]);
        drop(trie);
        // full Poptrie (leafvec + route aggregation)
        let (compile, trie) = timed_builds(3, || {
            Builder::<u32, poptrie::Node24>::new()
                .direct_bits(s)
                .aggregate(true)
                .build(&rib)
        });
        let st = trie.stats();
        t.row(vec![
            "Poptrie".to_string(),
            s.to_string(),
            st.inodes.to_string(),
            st.leaves.to_string(),
            mib(st.memory_bytes),
            mean_std_cell(compile),
            mean_std_cell(measure_mlps(&trie, &cfg)),
        ]);
    }
    print!("{}", t.render());
}

fn timed_builds<T>(reps: u32, mut f: impl FnMut() -> T) -> ((f64, f64), T) {
    let mut times = Vec::new();
    let mut out = None;
    for _ in 0..reps {
        let start = Instant::now();
        let t = f();
        times.push(start.elapsed().as_secs_f64() * 1e3);
        out = Some(t);
    }
    (mean_std(&times), out.expect("reps >= 1"))
}

// ---------------------------------------------------------------- table 3

fn table3(ctx: &mut Ctx) {
    section("Table 3: memory footprint and random lookup rate (REAL-Tier1-A/B)");
    let cfg = ctx.cfg;
    let mut t = Table::new(vec![
        "Algorithm",
        "A: Mem [MiB]",
        "A: Rate [Mlps]",
        "B: Mem [MiB]",
        "B: Rate [Mlps]",
    ]);
    let mut cells: HashMap<(usize, &'static str), (String, String)> = HashMap::new();
    for (i, ds) in ["REAL-Tier1-A", "REAL-Tier1-B"].iter().enumerate() {
        let dataset = ctx.dataset(ds).clone();
        for (algo, outcome) in build_all_v4(Algo::table3(), &dataset) {
            let key = (i, algo_label(algo));
            match outcome {
                BuildOutcome::Ok(fib) => {
                    let (rate, _) = measure_mlps(fib.as_ref(), &cfg);
                    cells.insert(key, (mib(fib.memory_bytes()), format!("{rate:.2}")));
                }
                BuildOutcome::StructuralLimit(e) => {
                    cells.insert(key, ("N/A".into(), format!("N/A ({e})")));
                }
            }
        }
    }
    for algo in Algo::table3() {
        let label = algo_label(*algo);
        let a = cells.get(&(0, label)).cloned().unwrap_or_default();
        let b = cells.get(&(1, label)).cloned().unwrap_or_default();
        t.row(vec![label.to_string(), a.0, a.1, b.0, b.1]);
    }
    print!("{}", t.render());
}

fn algo_label(algo: Algo) -> &'static str {
    match algo {
        Algo::Radix => "Radix",
        Algo::TreeBitmap => "Tree BitMap",
        Algo::TreeBitmap64 => "Tree BitMap (64-ary)",
        Algo::Sail => "SAIL",
        Algo::D16r => "D16R",
        Algo::D18r => "D18R",
        Algo::D18rModified => "D18R (modified)",
        Algo::Dir248 => "DIR-24-8",
        Algo::Lulea => "Lulea",
        Algo::Poptrie0 => "Poptrie0",
        Algo::Poptrie16 => "Poptrie16",
        Algo::Poptrie18 => "Poptrie18",
    }
}

// ---------------------------------------------------------------- table 4

const CYCLE_ALGOS: [Algo; 5] = [
    Algo::Sail,
    Algo::D16r,
    Algo::D18r,
    Algo::Poptrie16,
    Algo::Poptrie18,
];

fn table4(ctx: &mut Ctx) {
    section("Table 4: per-lookup CPU cycles, random traffic (mean / p50 / p75 / p95 / p99)");
    let n = ctx.cfg.cycle_samples;
    println!("(serialized-TSC sampling, {n} lookups per algorithm, bracket overhead subtracted)");
    let mut t = Table::new(vec![
        "Dataset",
        "Algorithm",
        "Mean",
        "50th",
        "75th",
        "95th",
        "99th",
    ]);
    for ds in ["REAL-Tier1-A", "REAL-Tier1-B"] {
        let dataset = ctx.dataset(ds).clone();
        let rib = dataset.to_rib();
        for algo in CYCLE_ALGOS {
            let BuildOutcome::Ok(fib) = build_v4(algo, &rib) else {
                t.row(vec![ds.to_string(), algo_label(algo).into(), "N/A".into()]);
                continue;
            };
            let samples = cycle_samples(fib.as_ref(), n);
            let p = cycle_percentiles(&samples).expect("non-empty");
            t.row(vec![
                ds.to_string(),
                algo_label(algo).to_string(),
                format!("{:.2}", p.mean),
                p.p50.to_string(),
                p.p75.to_string(),
                p.p95.to_string(),
                p.p99.to_string(),
            ]);
        }
    }
    print!("{}", t.render());
}

// ---------------------------------------------------------------- table 5

fn table5(ctx: &mut Ctx) {
    section("Table 5: scalability on synthetic large RIBs (random traffic)");
    let cfg = ctx.cfg;
    let mut t = Table::new(vec!["Algorithm", "Table", "# routes", "Rate [Mlps]"]);
    for base_name in ["REAL-Tier1-A", "REAL-Tier1-B"] {
        let base = ctx.dataset(base_name).clone();
        for (syn, d) in [
            ("SYN1", tablegen::expand_syn1(&base)),
            ("SYN2", tablegen::expand_syn2(&base)),
        ] {
            eprintln!("[gen] {} -> {} ({} routes)", base_name, d.name, d.len());
            let rib = d.to_rib();
            for algo in [Algo::Sail, Algo::D18r, Algo::D18rModified, Algo::Poptrie18] {
                let label = algo_label(algo);
                match build_v4(algo, &rib) {
                    BuildOutcome::Ok(fib) => {
                        let (rate, _) = measure_mlps(fib.as_ref(), &cfg);
                        t.row(vec![
                            label.to_string(),
                            d.name.clone(),
                            d.len().to_string(),
                            format!("{rate:.2}"),
                        ]);
                    }
                    BuildOutcome::StructuralLimit(e) => {
                        t.row(vec![
                            label.to_string(),
                            d.name.clone(),
                            d.len().to_string(),
                            format!("N/A ({e})"),
                        ]);
                    }
                }
            }
            let _ = syn;
        }
    }
    print!("{}", t.render());
    println!("(the paper's Table 5: SAIL is N/A on SYN2 — 15-bit chunk ids exceeded —");
    println!(" and DXR requires the modified 2^20-range encoding; Poptrie18 stays above");
    println!(" the 148.8 Mlps 100GbE wire rate)");
}

// ---------------------------------------------------------------- table 6

fn table6(ctx: &mut Ctx) {
    section("Table 6: IPv6 Poptrie (REAL-Tier1-A IPv6 table, random in 2000::/8)");
    let cfg = ctx.cfg;
    let d = tablegen::ipv6_dataset("REAL-Tier1-A-v6");
    println!("({} prefixes)", d.len());
    let rib = d.to_rib();
    let mut t = Table::new(vec![
        "s",
        "# inodes",
        "# leaves",
        "Mem [KiB]",
        "Compile (std.) [ms]",
        "Rate (std.) [Mlps]",
    ]);
    for s in [0u8, 16, 18] {
        let (compile, trie) = timed_builds(3, || {
            Builder::<u128, poptrie::Node24>::new()
                .direct_bits(s)
                .aggregate(true)
                .build(&rib)
        });
        let st = trie.stats();
        let rate = measure_v6_mlps(|k| trie.lookup(k), &cfg);
        t.row(vec![
            s.to_string(),
            st.inodes.to_string(),
            st.leaves.to_string(),
            format!("{:.0}", st.memory_bytes as f64 / 1024.0),
            mean_std_cell(compile),
            mean_std_cell(rate),
        ]);
    }
    print!("{}", t.render());

    if ctx.compare || !ctx.quick {
        println!("\n§4.10 comparison (IPv6 DXR, long-format ranges):");
        let mut t = Table::new(vec!["Algorithm", "Ranges", "Rate (std.) [Mlps]"]);
        for s in [16u8, 18] {
            match Dxr6::from_rib(&rib, s) {
                Ok(dxr) => {
                    let rate = measure_v6_mlps(|k| dxr.lookup(k), &cfg);
                    t.row(vec![
                        format!("D{s}R-IPv6"),
                        dxr.range_count().to_string(),
                        mean_std_cell(rate),
                    ]);
                }
                Err(e) => {
                    t.row(vec![
                        format!("D{s}R-IPv6"),
                        "-".into(),
                        format!("N/A ({e})"),
                    ]);
                }
            }
        }
        print!("{}", t.render());

        println!("\n§4.10 RouteViews-style IPv6 tables (Poptrie16/Poptrie18):");
        let mut t = Table::new(vec![
            "Table",
            "# prefixes",
            "Poptrie16 [Mlps]",
            "Poptrie18 [Mlps]",
        ]);
        let names = if ctx.quick {
            tablegen::ipv6_routeviews_names()[..3].to_vec()
        } else {
            tablegen::ipv6_routeviews_names()
        };
        for name in names {
            let d = tablegen::ipv6_dataset(&name);
            let rib = d.to_rib();
            let t16: Poptrie<u128> = Builder::new().direct_bits(16).build(&rib);
            let t18: Poptrie<u128> = Builder::new().direct_bits(18).build(&rib);
            let r16 = measure_v6_mlps(|k| t16.lookup(k), &cfg);
            let r18 = measure_v6_mlps(|k| t18.lookup(k), &cfg);
            t.row(vec![
                name,
                d.len().to_string(),
                format!("{:.2}", r16.0),
                format!("{:.2}", r18.0),
            ]);
        }
        print!("{}", t.render());
    }
}

fn measure_v6_mlps(lookup: impl Fn(u128) -> Option<u16>, cfg: &MeasureConfig) -> (f64, f64) {
    let mut rates = Vec::new();
    for rep in 0..cfg.reps {
        let start = Instant::now();
        let mut acc = 0u64;
        let mut it = random_v6_in_2000(0xBEEF + rep, cfg.lookups);
        for _ in 0..cfg.lookups {
            let key = it.next().expect("infinite");
            acc = acc.wrapping_add(lookup(key).unwrap_or(0) as u64);
        }
        std::hint::black_box(acc);
        rates.push(cfg.lookups as f64 / start.elapsed().as_secs_f64() / 1e6);
    }
    mean_std(&rates)
}

// ----------------------------------------------------------------- fig 7

fn fig7(ctx: &mut Ctx) {
    section("Figure 7: binary radix depth vs matched prefix length (REAL-Tier1-A)");
    let rib = ctx.dataset("REAL-Tier1-A").to_rib();
    let samples: u64 = if ctx.quick { 1 << 20 } else { 1 << 24 };
    println!("(stratified sample of {samples} addresses over the IPv4 space;");
    println!(" the paper scans all 2^32 — intensity scale is per decade either way)");
    let mut map = Heatmap::new(33, 33);
    let mut rng = Xorshift128::new(7);
    let stride = (u64::from(u32::MAX) + 1) / samples;
    for i in 0..samples {
        // Stratified: one random address per stride bucket.
        let key = (i * stride) as u32 | (rng.next_u32() % stride.max(1) as u32);
        let (_, depth, plen) = rib.lookup_with_depth(key);
        if let Some(plen) = plen {
            map.add(plen as usize, depth as usize, 1);
        }
    }
    println!(
        "{}",
        map.render("matched prefix length", "binary radix depth")
    );
}

// ----------------------------------------------------------------- fig 8

fn fig8(ctx: &mut Ctx) {
    section("Figure 8: aggregated lookup rate by thread count (Poptrie18)");
    println!("(scalar = the paper's per-thread loop; batched = lookup_batch with");
    println!(" software prefetch, {} keys per call)", ctx.cfg.batch);
    let cfg = ctx.cfg;
    let max_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8);
    let mut t = Table::new(vec![
        "Dataset",
        "Threads",
        "Scalar [Mlps]",
        "Batched [Mlps]",
    ]);
    for ds in ["REAL-Tier1-A", "REAL-Tier1-B"] {
        let rib = ctx.dataset(ds).to_rib();
        let trie: Poptrie<u32> = Builder::new().direct_bits(18).build(&rib);
        for threads in 1..=max_threads {
            let run = |batched: bool| -> f64 {
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..threads)
                        .map(|tid| {
                            let trie = &trie;
                            scope.spawn(move || {
                                if batched {
                                    let batch = cfg.batch.max(1);
                                    let mut src =
                                        poptrie_traffic::fill::RandomV4::new(0xF00D + tid as u32);
                                    let mut keys = vec![0u32; batch];
                                    let mut nhs = vec![0u16; batch];
                                    let start = Instant::now();
                                    let mut acc = 0u64;
                                    let mut done = 0u64;
                                    while done < cfg.lookups {
                                        let n = batch.min((cfg.lookups - done) as usize);
                                        src.fill(&mut keys[..n]);
                                        trie.lookup_batch(&keys[..n], &mut nhs[..n]);
                                        for &nh in &nhs[..n] {
                                            acc = acc.wrapping_add(nh as u64);
                                        }
                                        done += n as u64;
                                    }
                                    std::hint::black_box(acc);
                                    done as f64 / start.elapsed().as_secs_f64() / 1e6
                                } else {
                                    let mut rng = Xorshift128::new(0xF00D + tid as u32);
                                    let start = Instant::now();
                                    let mut acc = 0u64;
                                    for _ in 0..cfg.lookups {
                                        acc = acc.wrapping_add(
                                            trie.lookup(rng.next_u32()).unwrap_or(0) as u64,
                                        );
                                    }
                                    std::hint::black_box(acc);
                                    cfg.lookups as f64 / start.elapsed().as_secs_f64() / 1e6
                                }
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().expect("thread")).sum()
                })
            };
            let scalar = run(false);
            let batched = run(true);
            t.row(vec![
                ds.to_string(),
                threads.to_string(),
                format!("{scalar:.2}"),
                format!("{batched:.2}"),
            ]);
        }
    }
    print!("{}", t.render());
}

// ----------------------------------------------------------------- fig 9

fn fig9(ctx: &mut Ctx) {
    section("Figure 9: average lookup rate for random traffic, all datasets");
    println!("(each cell: scalar / batched+prefetch lookup rate [Mlps])");
    let cfg = ctx.cfg;
    let names = ctx.sweep_names();
    let algos = Algo::figure9();
    let mut header: Vec<String> = vec!["Dataset".into()];
    header.extend(algos.iter().map(|a| algo_label(*a).to_string()));
    let mut t = Table::new(header);
    for name in names {
        let dataset = ctx.dataset(name).clone();
        let mut row = vec![name.to_string()];
        for (_, outcome) in build_all_v4(algos, &dataset) {
            match outcome {
                BuildOutcome::Ok(fib) => {
                    let (rate, _) = measure_mlps(fib.as_ref(), &cfg);
                    let (brate, _) = measure_mlps_batch(fib.as_ref(), &cfg);
                    row.push(format!("{rate:.1} / {brate:.1}"));
                }
                BuildOutcome::StructuralLimit(_) => row.push("N/A".into()),
            }
        }
        t.row(row);
        // Free the cached dataset: the sweep touches all 35 and holding
        // them all costs gigabytes.
        ctx.datasets.remove(name);
    }
    print!("{}", t.render());
}

// ----------------------------------------------------------------- fig 10

fn fig10(ctx: &mut Ctx) {
    section("Figure 10: CDF of CPU cycles per lookup (REAL-Tier1-A, random)");
    let n = ctx.cfg.cycle_samples;
    let rib = ctx.dataset("REAL-Tier1-A").to_rib();
    let mut cdfs: Vec<(&'static str, Cdf)> = Vec::new();
    let mut means: Vec<(&'static str, f64, f64)> = Vec::new();
    for algo in CYCLE_ALGOS {
        let BuildOutcome::Ok(fib) = build_v4(algo, &rib) else {
            continue;
        };
        let samples = cycle_samples(fib.as_ref(), n);
        let raw: Vec<u64> = samples.iter().map(|s| s.cycles).collect();
        let scalar_mean = raw.iter().sum::<u64>() as f64 / raw.len().max(1) as f64;
        let batched_mean = batched_cycles_per_lookup(fib.as_ref(), n, ctx.cfg.batch);
        means.push((algo_label(algo), scalar_mean, batched_mean));
        cdfs.push((algo_label(algo), Cdf::from_samples(&raw)));
    }
    let mut header = vec!["cycles".to_string()];
    header.extend(cdfs.iter().map(|(l, _)| l.to_string()));
    let mut t = Table::new(header);
    for x in (0..=500u64).step_by(20) {
        let mut row = vec![x.to_string()];
        for (_, cdf) in &cdfs {
            row.push(format!("{:.3}", cdf.at(x)));
        }
        t.row(row);
    }
    print!("{}", t.render());

    // Batched mode has no per-lookup distribution (one TSC bracket spans
    // a whole batch), so its column is the amortized mean next to the
    // scalar mean from the samples above.
    println!(
        "\nmean cycles per lookup, scalar vs batched+prefetch ({} keys/batch):",
        ctx.cfg.batch
    );
    let mut t = Table::new(vec!["Algorithm", "Scalar mean", "Batched mean"]);
    for (label, s, b) in means {
        t.row(vec![
            label.to_string(),
            format!("{s:.1}"),
            format!("{b:.1}"),
        ]);
    }
    print!("{}", t.render());
}

// ---------------------------------------------------------- fig 10 --live

/// One engine run: feed pre-generated packet batches round-robin into the
/// worker queues for `duration` (non-blocking; full queues shed load and
/// are counted as drops), optionally replaying a churn stream through the
/// control channel, then drain-shutdown and report the aggregate rate.
fn live_run(
    fib: &std::sync::Arc<poptrie::sync::SharedFib<u32>>,
    workers: usize,
    pool: &[std::sync::Arc<[u32]>],
    churn: &[ChurnEvent<u32>],
    duration: std::time::Duration,
) -> (f64, poptrie_engine::EngineReport) {
    use poptrie::sync::RouteUpdate;
    use poptrie_engine::{Engine, EngineConfig};
    use std::sync::Arc;
    use std::time::Duration;

    let engine = Engine::start(
        Arc::clone(fib),
        // Engine defaults: workers pinned round-robin (pinning degrades
        // to a no-op for worker indices beyond the core count), 64-batch
        // queues. The feeder below floats — it bursts and sleeps, so the
        // scheduler slots it into whichever core has slack.
        EngineConfig::new(workers).queue_capacity(64),
    );
    let ingress = engine.ingress();
    let control = engine.control();
    let deadline = Instant::now() + duration;
    let (mut i, mut ev) = (0usize, 0usize);
    'feed: loop {
        // Burst-submit between clock checks: keeping the 64-deep queues
        // topped up (not the clock) paces this loop, and a drained queue
        // would park its worker on the condvar — the expensive case.
        for _ in 0..256 {
            // ~1 control-plane event per 64 data batches keeps the
            // writer busy without dominating the run.
            if !churn.is_empty() && i % 64 == 0 {
                let update = match churn[ev % churn.len()] {
                    ChurnEvent::Announce(p, nh) => RouteUpdate::Announce(p, nh),
                    ChurnEvent::Withdraw(p) => RouteUpdate::Withdraw(p),
                };
                let _ = control.send(update); // full channel: shed, counted
                ev += 1;
            }
            i += 1;
            if ingress
                .try_submit(Arc::clone(&pool[i % pool.len()]))
                .is_err()
            {
                // Every queue is full: the workers are saturated with
                // ~400 µs of buffered work each. Sleep it off rather
                // than burn a core the workers could use.
                std::thread::sleep(Duration::from_micros(200));
            }
        }
        if Instant::now() >= deadline {
            break 'feed;
        }
    }
    let report = engine.shutdown(Duration::from_secs(30));
    let mlps = report.packets as f64 / report.elapsed.as_secs_f64() / 1e6;
    (mlps, report)
}

/// `repro fig10 --live --threads N [--churn]`: the §4.8 multi-core
/// experiment through the real forwarding engine instead of bare
/// per-thread loops — bounded ingress queues, RCU snapshot re-acquired
/// per batch, and (with `--churn`) a concurrent seeded BGP stream through
/// the single control-plane writer.
fn fig10_live(ctx: &mut Ctx, threads: usize, churn: bool) {
    use poptrie::sync::SharedFib;
    use std::sync::Arc;
    use std::time::Duration;

    let threads = threads.max(1);
    section(&format!(
        "Figure 10 (live engine): aggregate rate by worker count, 1..={threads}{}",
        if churn { ", under churn" } else { "" }
    ));
    let ds_name = if ctx.quick {
        "RV-sydney-p0"
    } else {
        "REAL-Tier1-A"
    };
    let dataset = ctx.dataset(ds_name).clone();
    let pcfg = PoptrieConfig::new().direct_bits(18).build().unwrap();

    // Pre-generate the traffic: a pool of random packet batches the
    // feeder recycles, so the hot loop only clones `Arc`s. An ingress
    // batch is an rx-burst of many lookup_batch calls (64x the
    // measurement batch): each queue handoff costs a mutex and possibly
    // a futex wake, and on a small host the feeder shares cores with the
    // workers, so a handoff has to carry enough lookup work that the
    // feeder's core share stays negligible.
    let batch = ctx.cfg.batch.max(1) * 64;
    let mut src = poptrie_traffic::fill::RandomV4::new(0x000F_1610);
    let pool: Vec<Arc<[u32]>> = (0..256)
        .map(|_| {
            let mut keys = vec![0u32; batch];
            src.fill(&mut keys);
            Arc::from(keys)
        })
        .collect();
    let events = if churn {
        churn_stream::<u32>(&ChurnConfig {
            seed: 0x16F1,
            events: if ctx.quick { 2_000 } else { 20_000 },
            direct_bits: 18,
            ..ChurnConfig::default()
        })
    } else {
        Vec::new()
    };

    let duration = if ctx.quick {
        Duration::from_millis(250)
    } else {
        Duration::from_millis(1500)
    };
    let reps = if ctx.quick { 2 } else { 3 };
    let mut counts: Vec<usize> = [1usize, 2, 4]
        .into_iter()
        .filter(|&n| n <= threads)
        .collect();
    if !counts.contains(&threads) {
        counts.push(threads);
    }

    // Dispatch-tier comparison on identical table and traffic: the
    // scalar batched walker against the widest SIMD tier this CPU runs.
    // The backend is forced on the FIB before the engine starts so the
    // engine's NUMA replicas inherit it.
    let widest = poptrie::BatchBackend::widest_available();
    let backends: Vec<poptrie::BatchBackend> = if widest == poptrie::BatchBackend::Scalar {
        vec![widest]
    } else {
        vec![poptrie::BatchBackend::Scalar, widest]
    };

    let mut t = Table::new(vec![
        "Workers",
        "Backend",
        "Rate [Mlps]",
        "Batches",
        "Dropped",
        "Publishes",
        "Coalesced",
        "Respawns",
        "FIB ver.",
    ]);
    let mut runs = Vec::new();
    // Per worker count: scalar and SIMD rates, for the summary line.
    let mut compare: Vec<(usize, f64, f64)> = Vec::new();
    for &workers in &counts {
        let mut rates: Vec<f64> = Vec::new();
        for &backend in &backends {
            // Fresh FIB per sweep point so every cell replays the same
            // churn against the same starting table.
            let fib: Arc<SharedFib<u32>> = Arc::new(SharedFib::compile(dataset.to_rib(), pcfg));
            assert_eq!(fib.set_batch_backend(backend), backend);
            // Best of `reps`: on a small host the feeder competes with
            // the workers for cores, so a single run is noisy.
            let mut best: Option<(f64, poptrie_engine::EngineReport)> = None;
            for _ in 0..reps {
                let run = live_run(&fib, workers, &pool, &events, duration);
                match &best {
                    Some((b, _)) if run.0 <= *b => {}
                    _ => best = Some(run),
                }
            }
            let (mlps, report) = best.expect("reps >= 1");
            assert!(report.drained_clean, "engine failed to drain on shutdown");
            assert_eq!(report.leaked_threads, 0, "engine leaked threads");
            rates.push(mlps);
            let respawns: u64 = report.workers.iter().map(|w| w.respawns).sum();
            let version = fib.version();
            t.row(vec![
                workers.to_string(),
                backend.to_string(),
                format!("{mlps:.2}"),
                report.batches.to_string(),
                report.dropped_batches.to_string(),
                report.publishes.to_string(),
                report.updates_coalesced.to_string(),
                respawns.to_string(),
                version.to_string(),
            ]);
            runs.push(format!(
                "    {{\"workers\": {workers}, \"backend\": \"{backend}\", \
                 \"mlps\": {mlps:.3}, \"packets\": {}, \
                 \"batches\": {}, \"dropped_batches\": {}, \"publishes\": {}, \
                 \"update_events\": {}, \"updates_coalesced\": {}, \"control_dropped\": {}, \
                 \"respawns\": {respawns}, \"fib_version\": {version}, \
                 \"fib_replicas\": {}, \"drained_clean\": {}}}",
                report.packets,
                report.batches,
                report.dropped_batches,
                report.publishes,
                report.update_events,
                report.updates_coalesced,
                report.control_dropped,
                report.fib_replicas,
                report.drained_clean,
            ));
        }
        if rates.len() == 2 {
            compare.push((workers, rates[0], rates[1]));
        }
    }
    print!("{}", t.render());
    println!(
        "(best of {reps} runs of {} ms each; drops are shed ingress batches)",
        duration.as_millis()
    );
    for &(workers, scalar, simd) in &compare {
        println!(
            "  {workers} worker(s): {widest} {simd:.2} Mlps vs scalar {scalar:.2} Mlps \
             (x{:.2})",
            simd / scalar.max(1e-9)
        );
    }

    let json = format!(
        "{{\n  \"experiment\": \"fig10_live\",\n  \"dataset\": \"{ds_name}\",\n  \
         \"batch\": {batch},\n  \"duration_ms\": {},\n  \"reps\": {reps},\n  \
         \"churn\": {churn},\n  \"runs\": [\n{}\n  ]\n}}\n",
        duration.as_millis(),
        runs.join(",\n"),
    );
    let path = std::path::Path::new("results");
    if let Err(e) = std::fs::create_dir_all(path)
        .and_then(|()| std::fs::write(path.join("BENCH_engine.json"), &json))
    {
        eprintln!("warning: could not write results/BENCH_engine.json: {e}");
    } else {
        println!("wrote results/BENCH_engine.json");
    }
}

// -------------------------------------------------------------------- slo

/// Driver-side tallies of one SLO cell run, alongside the engine's own
/// report. The driver counts everything it *offered* (including batches
/// the full queues refused), so the accounting identity
/// `offered == delivered + deadline-dropped + refused` can be checked
/// against ground truth rather than against the engine's bookkeeping
/// alone.
struct SloTally {
    offered_batches: u64,
    offered_packets: u64,
    refused_batches: u64,
    refused_packets: u64,
    report: poptrie_engine::EngineReport,
}

/// One SLO cell: feed pre-generated batches for `duration` into an
/// engine running the deadline-drop QoS policy, optionally gating the
/// feeder through a microburst schedule and replaying churn through the
/// control plane. Refused batches are counted and shed, never retried —
/// under a deadline policy a refusal is a loss the accounting must
/// explain, not something to block the feeder on.
fn slo_run(
    fib: &std::sync::Arc<poptrie::sync::SharedFib<u32>>,
    workers: usize,
    pool: &[std::sync::Arc<[u32]>],
    churn: &[ChurnEvent<u32>],
    duration: std::time::Duration,
    deadline: std::time::Duration,
    burst: Option<poptrie_traffic::MicroburstSchedule>,
) -> SloTally {
    use poptrie::sync::RouteUpdate;
    use poptrie_engine::{Engine, EngineConfig, QosPolicy};
    use std::sync::Arc;
    use std::time::Duration;

    let engine = Engine::start(
        Arc::clone(fib),
        EngineConfig::new(workers)
            .queue_capacity(64)
            .qos(QosPolicy::Deadline(deadline)),
    );
    let ingress = engine.ingress();
    let control = engine.control();
    let start = Instant::now();
    let end = start + duration;
    let (mut i, mut ev) = (0usize, 0usize);
    let mut offered_batches = 0u64;
    let mut offered_packets = 0u64;
    let mut refused_batches = 0u64;
    let mut refused_packets = 0u64;
    'feed: loop {
        if let Some(schedule) = &burst {
            if !schedule.is_on(start.elapsed()) {
                // Quiet gap of the microburst schedule: the feeder goes
                // fully idle, so the queues drain and the next burst
                // lands on an empty engine — the tail-latency shape this
                // pattern exists to produce.
                std::thread::sleep(Duration::from_micros(100));
                if Instant::now() >= end {
                    break 'feed;
                }
                continue;
            }
        }
        for _ in 0..64 {
            if !churn.is_empty() && i % 64 == 0 {
                let update = match churn[ev % churn.len()] {
                    ChurnEvent::Announce(p, nh) => RouteUpdate::Announce(p, nh),
                    ChurnEvent::Withdraw(p) => RouteUpdate::Withdraw(p),
                };
                let _ = control.send(update); // full channel: shed, counted
                ev += 1;
            }
            i += 1;
            let batch = Arc::clone(&pool[i % pool.len()]);
            let keys = batch.len() as u64;
            offered_batches += 1;
            offered_packets += keys;
            if ingress.try_submit(batch).is_err() {
                refused_batches += 1;
                refused_packets += keys;
                std::thread::sleep(Duration::from_micros(50));
            }
        }
        if Instant::now() >= end {
            break 'feed;
        }
    }
    let report = engine.shutdown(Duration::from_secs(30));
    SloTally {
        offered_batches,
        offered_packets,
        refused_batches,
        refused_packets,
        report,
    }
}

/// A [`poptrie_engine::LatencySummary`] as a JSON object fragment. Both
/// unit systems are emitted: nanoseconds (host-independent) and
/// calibrated TSC cycles (comparable to the paper's per-lookup figures).
/// `repro vrf [--quick | --full] [--threads N]`: the multi-tenant VRF
/// scale benchmark and its CI gate.
///
/// Provisions a family of tenant FIBs — one dense base feed plus a small
/// per-tenant delta, the VPN regime where tables are overwhelmingly
/// byte-identical — twice: into a `VrfTable` sharing one interned leaf
/// arena, and into an unshared baseline. Reports bytes/route for both
/// (shared storage counted once) and the reduction interning buys. Then
/// attaches the shared registry to the forwarding engine and, while
/// VRF-keyed lookup batches fan out across the whole group, churns one
/// tenant through the control plane, probing an untouched tenant's
/// snapshot for oracle-exact answers and a stable version throughout.
///
/// Hard gates (nonzero exit): exact cross-table reference reconciliation
/// (every table's leaf-block references sum to the interner's total, and
/// the interner's own invariants hold), zero isolation mismatches, an
/// oracle-exact churned tenant, and a >= 25% bytes/route reduction.
fn vrf_cmd(ctx: &mut Ctx, threads: usize, tenants: usize) {
    use poptrie::sync::SharedFib;
    use poptrie::VrfId;
    use poptrie_engine::{Engine, EngineConfig, VrfTable};
    use poptrie_rib::{NextHop, Prefix, RadixTree};
    use std::sync::Arc;
    use std::time::Duration;

    let (groups, delta_routes, churn_updates, lookup_batches) = if ctx.quick {
        (12usize, 12usize, 200u64, 128usize)
    } else {
        (32, 24, 1_000, 1024)
    };
    let batch_keys = 256usize;
    let probe_count = 4096usize;

    println!("== repro vrf: {tenants} tenant FIBs over a shared interned leaf arena ==\n");

    // The tenant family. Each base group is 64 consecutive /26es on a
    // /20-aligned base with next hops cycling through a small pool (a
    // per-group phase keeps the patterns from collapsing to one block):
    // adjacent leaves always differ, so every group compiles to one full
    // 64-leaf chunk — the leaf-heavy shape whose redundancy across
    // tenants is exactly what interning collapses. Deltas are sparse
    // tenant-private /26es.
    let mut rng = StdRng::seed_from_u64(0x7e4a_11f0);
    let mut base: RadixTree<u32, NextHop> = RadixTree::new();
    let mut group_bases: Vec<u32> = Vec::with_capacity(groups);
    while group_bases.len() < groups {
        let g: u32 = rng.gen::<u32>() & (!0u32 << 12); // /20-aligned
        if group_bases.contains(&g) {
            continue;
        }
        group_bases.push(g);
        let phase = group_bases.len() % 8;
        for i in 0..64u32 {
            let nh = ((i as usize + phase) % 8 + 1) as NextHop;
            base.insert(Prefix::new(g | (i << 6), 26), nh);
        }
    }
    let deltas: Vec<Vec<(Prefix<u32>, NextHop)>> = (0..tenants)
        .map(|_| {
            (0..delta_routes)
                .map(|_| {
                    let addr = rng.gen::<u32>() & (!0u32 << 6);
                    (Prefix::new(addr, 26), rng.gen_range(1..=64u32) as NextHop)
                })
                .collect()
        })
        .collect();
    let rib_of = |i: usize| -> RadixTree<u32, NextHop> {
        let mut rib = base.clone();
        for &(p, nh) in &deltas[i] {
            rib.insert(p, nh);
        }
        rib
    };
    // Probe keys for the oracle checks: half inside base groups (where
    // the answers are nontrivial), half uniform.
    let probes: Vec<u32> = (0..probe_count)
        .map(|i| {
            if i % 2 == 0 {
                group_bases[rng.gen_range(0..groups)] | rng.gen_range(0..1u32 << 12)
            } else {
                rng.gen()
            }
        })
        .collect();

    let config = PoptrieConfig::new().direct_bits(8).build().unwrap();

    // Unshared baseline first: its measured leaf total sizes the shared
    // arena (with generous margin for churn and per-tenant deltas).
    let t0 = Instant::now();
    let private: VrfTable<u32> = VrfTable::private(config);
    for i in 0..tenants {
        private.create_from(rib_of(i));
    }
    let private_build = t0.elapsed();
    let pm = private.memory();

    let per_table_slots = pm.private_leaf_bytes / 2 / tenants.max(1);
    let capacity =
        (per_table_slots * 4 + tenants * delta_routes * 8 + (1 << 17)).next_power_of_two() as u32;
    let t0 = Instant::now();
    let shared: Arc<VrfTable<u32>> = Arc::new(VrfTable::shared(config, capacity));
    for i in 0..tenants {
        shared.create_from(rib_of(i));
    }
    let shared_build = t0.elapsed();
    let sm = shared.memory();
    let intern = shared.intern_stats().expect("shared registry");

    let reduction = 1.0 - sm.bytes_per_route() / pm.bytes_per_route();

    // Phase 2: the engine. VRF-keyed lookups fan out over every tenant
    // while the control plane churns tenant 0; tenant 1 must stay
    // byte-for-byte untouched (stable snapshot version, oracle-exact
    // answers) the whole time — isolation is structural, not scheduled.
    let vrf_churned = VrfId::new(0);
    let vrf_untouched = VrfId::new(1);
    let untouched_oracle = rib_of(1);
    let untouched_version = shared.snapshot(vrf_untouched).expect("tenant 1").version();
    let mut churn_oracle = rib_of(0);

    let fib: Arc<SharedFib<u32>> = Arc::new(SharedFib::with_config(config));
    let engine = Engine::start(
        Arc::clone(&fib),
        EngineConfig::new(threads)
            .pin_workers(false)
            .queue_capacity(256)
            .control_capacity(8192)
            .vrfs(Arc::clone(&shared)),
    );
    let control = engine.control();
    let ingress = engine.ingress();
    let telemetry = engine.telemetry();

    // Churn tenant 0: announces/withdraws of sparse /26es, mirrored
    // into a RIB oracle, with an isolation probe of tenant 1 after
    // every drained chunk.
    let mut isolation_checked = 0u64;
    let mut isolation_mismatches = 0u64;
    let mut sent = 0u64;
    let chunk = (churn_updates / 10).max(1);
    while sent < churn_updates {
        for _ in 0..chunk.min(churn_updates - sent) {
            let addr = rng.gen::<u32>() & (!0u32 << 6);
            let p = Prefix::new(addr, 26);
            let mut u = if rng.gen_bool(0.75) {
                let nh = rng.gen_range(1..=64u32) as NextHop;
                churn_oracle.insert(p, nh);
                poptrie::sync::RouteUpdate::Announce(p, nh)
            } else {
                churn_oracle.remove(p);
                poptrie::sync::RouteUpdate::Withdraw(p)
            };
            loop {
                match control.send_vrf(vrf_churned, u) {
                    Ok(()) => break,
                    Err(back) => {
                        u = back;
                        std::thread::sleep(Duration::from_micros(50));
                    }
                }
            }
            sent += 1;
        }
        let drain_deadline = Instant::now() + Duration::from_secs(10);
        while telemetry.update_events.get() < sent && Instant::now() < drain_deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        let snap = shared.snapshot(vrf_untouched).expect("tenant 1");
        for &k in &probes {
            isolation_checked += 1;
            if snap.lookup(k) != untouched_oracle.lookup(k).copied() {
                isolation_mismatches += 1;
            }
        }
    }
    let untouched_stable =
        shared.snapshot(vrf_untouched).expect("tenant 1").version() == untouched_version;

    // The churned tenant itself must be oracle-exact after the storm.
    let mut churn_mismatches = 0u64;
    let churn_snap = shared.snapshot(vrf_churned).expect("tenant 0");
    for &k in &probes {
        if churn_snap.lookup(k) != churn_oracle.lookup(k).copied() {
            churn_mismatches += 1;
        }
    }

    // Aggregate VRF-keyed lookup throughput across the whole group.
    let batches: Vec<Arc<[u32]>> = (0..8)
        .map(|_| (0..batch_keys).map(|_| rng.gen::<u32>()).collect())
        .collect();
    let t0 = Instant::now();
    let mut submitted_packets = 0u64;
    for b in 0..lookup_batches {
        let vrf = VrfId::new((b % tenants) as u32);
        let mut batch = Arc::clone(&batches[b % batches.len()]);
        loop {
            match ingress.try_submit_vrf(vrf, batch) {
                Ok(_) => break,
                Err(back) => {
                    batch = back;
                    std::thread::yield_now();
                }
            }
        }
        submitted_packets += batch_keys as u64;
    }
    let serve_deadline = Instant::now() + Duration::from_secs(30);
    while telemetry.vrf_packets.get() < submitted_packets && Instant::now() < serve_deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    let lookup_elapsed = t0.elapsed();
    let agg_mlps = submitted_packets as f64 / lookup_elapsed.as_secs_f64() / 1e6;

    let report = engine.shutdown(Duration::from_secs(30));
    let intern_after = shared.intern_stats().expect("shared registry");

    // Exact reconciliation, after everything: every table's leaf-block
    // references must sum to the interner's total and both registries'
    // structural audits must pass.
    let shared_audit = shared.audit();
    let private_audit = private.audit();

    let mut t = Table::new(vec!["Metric", "Private", "Shared"]);
    t.row(vec![
        "tables x routes".into(),
        format!("{} x {}", pm.tables, pm.routes / pm.tables.max(1)),
        format!("{} x {}", sm.tables, sm.routes / sm.tables.max(1)),
    ]);
    t.row(vec![
        "build time".into(),
        format!("{:.2}s", private_build.as_secs_f64()),
        format!("{:.2}s", shared_build.as_secs_f64()),
    ]);
    t.row(vec![
        "node bytes".into(),
        mib(pm.node_bytes),
        mib(sm.node_bytes),
    ]);
    t.row(vec![
        "direct bytes".into(),
        mib(pm.direct_bytes),
        mib(sm.direct_bytes),
    ]);
    t.row(vec![
        "leaf bytes".into(),
        mib(pm.private_leaf_bytes),
        format!("{} (store, once)", mib(sm.shared_store_bytes)),
    ]);
    t.row(vec![
        "total bytes".into(),
        mib(pm.total_bytes()),
        mib(sm.total_bytes()),
    ]);
    t.row(vec![
        "bytes/route".into(),
        format!("{:.1}", pm.bytes_per_route()),
        format!("{:.1}", sm.bytes_per_route()),
    ]);
    print!("{}", t.render());
    println!(
        "bytes/route reduction from interning: {:.1}% (gate: >= 25%)",
        reduction * 100.0
    );
    println!(
        "interning: {} live extents, {} dedup hits vs {} fresh allocs, {} of {} slots used",
        intern.live_extents,
        intern.dedup_hits,
        intern.fresh_allocs,
        intern.live_slots_rounded,
        intern.capacity
    );
    println!(
        "churn: {sent} updates to tenant 0 ({} applied), convergence p50/p99 {:.1}/{:.1} us",
        report.vrf_updates,
        report.convergence.p50_ns as f64 / 1e3,
        report.convergence.p99_ns as f64 / 1e3,
    );
    println!(
        "isolation: {isolation_checked} probes of tenant 1 during churn, \
         {isolation_mismatches} mismatches, version stable: {untouched_stable}"
    );
    println!(
        "lookups: {} VRF-keyed packets across {tenants} tenants, {agg_mlps:.2} aggregate Mlps",
        report.vrf_packets
    );

    let mut failures: Vec<String> = Vec::new();
    if let Err(e) = &shared_audit {
        failures.push(format!("shared registry audit failed: {e}"));
    }
    if let Err(e) = &private_audit {
        failures.push(format!("private registry audit failed: {e}"));
    }
    if reduction < 0.25 {
        failures.push(format!(
            "interning reduced bytes/route by only {:.1}% (< 25%)",
            reduction * 100.0
        ));
    }
    if isolation_mismatches != 0 {
        failures.push(format!(
            "{isolation_mismatches} oracle mismatches on the untouched tenant during churn"
        ));
    }
    if !untouched_stable {
        failures.push("untouched tenant's snapshot version moved during churn".into());
    }
    if churn_mismatches != 0 {
        failures.push(format!(
            "{churn_mismatches} oracle mismatches on the churned tenant"
        ));
    }
    if telemetry.update_events.get() < sent {
        failures.push(format!(
            "writer drained {} of {sent} churn updates",
            telemetry.update_events.get()
        ));
    }
    if report.vrf_packets < submitted_packets {
        failures.push(format!(
            "served {} of {submitted_packets} VRF-keyed packets",
            report.vrf_packets
        ));
    }
    if intern.dedup_hits == 0 {
        failures.push("no dedup hits: interning did nothing".into());
    }
    if report.convergence.samples == 0 {
        failures.push("convergence-lag histogram is empty".into());
    }

    let json = format!(
        "{{\n  \"experiment\": \"vrf\",\n  \"quick\": {},\n  \"tenants\": {tenants},\n  \
         \"routes\": {},\n  \"threads\": {threads},\n  \
         \"private\": {{\"node_bytes\": {}, \"direct_bytes\": {}, \"leaf_bytes\": {}, \
         \"total_bytes\": {}, \"bytes_per_route\": {:.2}, \"build_ms\": {:.1}}},\n  \
         \"shared\": {{\"node_bytes\": {}, \"direct_bytes\": {}, \"store_bytes\": {}, \
         \"store_used_bytes\": {}, \"total_bytes\": {}, \"bytes_per_route\": {:.2}, \
         \"build_ms\": {:.1}}},\n  \
         \"reduction\": {reduction:.4},\n  \
         \"intern\": {{\"live_extents\": {}, \"live_slots_rounded\": {}, \"total_refs\": {}, \
         \"dedup_hits\": {}, \"fresh_allocs\": {}, \"pending_blocks\": {}, \"epoch\": {}, \
         \"capacity\": {}}},\n  \
         \"churn\": {{\"sent\": {sent}, \"vrf_updates_applied\": {}, \
         \"convergence_ns\": {}}},\n  \
         \"isolation\": {{\"probes\": {isolation_checked}, \
         \"mismatches\": {isolation_mismatches}, \
         \"untouched_version_stable\": {untouched_stable}, \
         \"churned_tenant_mismatches\": {churn_mismatches}}},\n  \
         \"lookup\": {{\"vrf_packets\": {}, \"agg_mlps\": {agg_mlps:.3}}},\n  \
         \"reconciliation\": {{\"shared_audit_ok\": {}, \"private_audit_ok\": {}, \
         \"interner_refs\": {}}}\n}}\n",
        ctx.quick,
        sm.routes,
        pm.node_bytes,
        pm.direct_bytes,
        pm.private_leaf_bytes,
        pm.total_bytes(),
        pm.bytes_per_route(),
        private_build.as_secs_f64() * 1e3,
        sm.node_bytes,
        sm.direct_bytes,
        sm.shared_store_bytes,
        sm.shared_used_bytes,
        sm.total_bytes(),
        sm.bytes_per_route(),
        shared_build.as_secs_f64() * 1e3,
        intern_after.live_extents,
        intern_after.live_slots_rounded,
        intern_after.total_refs,
        intern_after.dedup_hits,
        intern_after.fresh_allocs,
        intern_after.pending_blocks,
        intern_after.epoch,
        intern_after.capacity,
        report.vrf_updates,
        latency_json(&report.convergence),
        report.vrf_packets,
        shared_audit.is_ok(),
        private_audit.is_ok(),
        intern_after.total_refs,
    );
    let dir = std::path::Path::new("results");
    let path = dir.join("BENCH_vrf.json");
    if let Err(e) =
        std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, json.as_bytes()))
    {
        eprintln!("error: could not write results/BENCH_vrf.json: {e}");
        std::process::exit(1);
    }
    let landed = std::fs::read_to_string(&path).unwrap_or_default();
    if let Err(e) = validate_json(
        &landed,
        &[
            "experiment",
            "tenants",
            "reduction",
            "bytes_per_route",
            "intern",
            "isolation",
            "reconciliation",
            "agg_mlps",
            "convergence_ns",
        ],
    ) {
        eprintln!("error: results/BENCH_vrf.json is malformed: {e}");
        std::process::exit(1);
    }
    println!("wrote results/BENCH_vrf.json");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("error: {f}");
        }
        std::process::exit(1);
    }
    println!(
        "[vrf] OK: {tenants} tenants, {:.1}% bytes/route reduction, exact reconciliation, \
         isolation oracle-exact",
        reduction * 100.0
    );
}

fn latency_json(l: &poptrie_engine::LatencySummary) -> String {
    format!(
        "{{\"samples\": {}, \"mean_ns\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}, \
         \"mean_cycles\": {}, \"p50_cycles\": {}, \"p99_cycles\": {}, \"p999_cycles\": {}}}",
        l.samples,
        l.mean_ns,
        l.p50_ns,
        l.p99_ns,
        l.p999_ns,
        l.mean_cycles,
        l.p50_cycles,
        l.p99_cycles,
        l.p999_cycles
    )
}

/// Minimal structural validation of a handwritten JSON document:
/// brackets balance outside string literals and every `required` key is
/// present. Catches a truncated or mangled write (the failure mode of
/// hand-assembled JSON) without needing a parser.
fn validate_json(text: &str, required: &[&str]) -> Result<(), String> {
    let mut stack: Vec<char> = Vec::new();
    let mut in_str = false;
    let mut escaped = false;
    for (at, c) in text.char_indices() {
        if in_str {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' | '[' => stack.push(c),
            '}' if stack.pop() != Some('{') => return Err(format!("unbalanced '}}' at byte {at}")),
            ']' if stack.pop() != Some('[') => return Err(format!("unbalanced ']' at byte {at}")),
            _ => {}
        }
    }
    if in_str {
        return Err("unterminated string literal".into());
    }
    if !stack.is_empty() {
        return Err(format!("{} unclosed bracket(s)", stack.len()));
    }
    for key in required {
        if !text.contains(&format!("\"{key}\"")) {
            return Err(format!("missing key \"{key}\""));
        }
    }
    Ok(())
}

/// `repro slo [--threads N] [--quick]`: the tail-latency SLO matrix.
///
/// Sweeps traffic pattern (uniform, Zipf flow mix, microburst,
/// adversarial worst-depth) x worker count x churn on/off through the
/// forwarding engine under the deadline-drop QoS policy, and reports
/// p50/p99/p99.9 queue-wait and service latency per cell from the
/// engine's per-worker `Log2Histogram`s. Every cell is reconciled
/// against the driver's own offered-load tallies — an accounting
/// mismatch or a malformed `results/BENCH_slo.json` exits nonzero, so CI
/// can run `repro slo --quick` as a smoke gate.
fn slo(ctx: &mut Ctx, threads: usize) {
    use poptrie::sync::SharedFib;
    use poptrie_traffic::{MicroburstSchedule, WorstDepth, ZipfFlows};
    use std::sync::Arc;
    use std::time::Duration;

    let threads = threads.max(1);
    section(&format!(
        "SLO matrix: pattern x workers (1..={threads}) x churn, deadline QoS"
    ));
    let ds_name = if ctx.quick {
        "RV-sydney-p0"
    } else {
        "REAL-Tier1-A"
    };
    let dataset = ctx.dataset(ds_name).clone();
    let pcfg = PoptrieConfig::new().direct_bits(18).build().unwrap();

    // Pre-generated key pools, one per pattern (the microburst pattern
    // reuses the uniform keys — it differs in *timing*, not content).
    // Sized as in fig10 --live: an ingress batch is an rx-burst of 64
    // measurement batches so each queue handoff carries enough work.
    let batch = ctx.cfg.batch.max(1) * 64;
    let pool_of = |fill: &mut dyn FnMut(&mut [u32])| -> Vec<Arc<[u32]>> {
        (0..256)
            .map(|_| {
                let mut keys = vec![0u32; batch];
                fill(&mut keys);
                Arc::from(keys)
            })
            .collect()
    };
    let mut uniform_src = poptrie_traffic::fill::RandomV4::new(0x510_F00D);
    let uniform_pool = pool_of(&mut |k| uniform_src.fill(k));
    let mut zipf_src = ZipfFlows::random(4096, 1.0, 0x0510_21FF);
    let zipf_pool = pool_of(&mut |k| zipf_src.fill(k));
    let mut worst_src = WorstDepth::synthesize(&dataset.routes, 4096, 0x0510_DEEF);
    let worst_pool = pool_of(&mut |k| worst_src.fill(k));
    let worst_chain = worst_src.max_chain_depth();

    let events = churn_stream::<u32>(&ChurnConfig {
        seed: 0x510C,
        events: if ctx.quick { 2_000 } else { 20_000 },
        direct_bits: 18,
        ..ChurnConfig::default()
    });

    let duration = if ctx.quick {
        Duration::from_millis(150)
    } else {
        Duration::from_millis(600)
    };
    // Deadline on the order of a full 64-deep queue's worth of service:
    // mostly-idle cells serve everything, saturated cells must shed.
    let deadline = Duration::from_millis(1);
    let burst_schedule = MicroburstSchedule::new(Duration::from_millis(10), 0.3);

    let mut counts: Vec<usize> = [1usize, 2, 4]
        .into_iter()
        .filter(|&n| n <= threads)
        .collect();
    if !counts.contains(&threads) {
        counts.push(threads);
    }

    // Churn rewrites the FIB, so churn cells compile a fresh table each;
    // churn-free cells share one immutable build.
    let base_fib: Arc<SharedFib<u32>> = Arc::new(SharedFib::compile(dataset.to_rib(), pcfg));

    type Pattern<'a> = (&'a str, &'a [Arc<[u32]>], Option<MicroburstSchedule>);
    let patterns: [Pattern; 4] = [
        ("uniform", &uniform_pool, None),
        ("zipf", &zipf_pool, None),
        ("microburst", &uniform_pool, Some(burst_schedule)),
        ("worst_depth", &worst_pool, None),
    ];

    let mut t = Table::new(vec![
        "Pattern",
        "Workers",
        "Churn",
        "Rate [Mlps]",
        "Wait p50 [us]",
        "Wait p99 [us]",
        "Wait p99.9 [us]",
        "DL-dropped",
        "Refused",
    ]);
    let mut cells: Vec<String> = Vec::new();
    let mut failures = 0u32;
    // Run-level aggregates for the trajectory history (see below).
    let mut agg_packets = 0u64;
    let mut agg_elapsed = 0f64;
    let mut agg_deadline_dropped = 0u64;
    let mut agg_refused = 0u64;
    let mut max_wait_p999 = 0u64;
    let mut max_wait_p99 = 0u64;
    let mut max_service_p99 = 0u64;
    for (pattern, pool, burst) in patterns {
        for &workers in &counts {
            for churn_on in [false, true] {
                let fib = if churn_on {
                    Arc::new(SharedFib::compile(dataset.to_rib(), pcfg))
                } else {
                    Arc::clone(&base_fib)
                };
                let churn_slice: &[ChurnEvent<u32>] = if churn_on { &events } else { &[] };
                let run = slo_run(&fib, workers, pool, churn_slice, duration, deadline, burst);
                let r = &run.report;

                // The accounting identity, against the driver's tallies.
                let batches_ok = run.offered_batches
                    == r.batches + r.deadline_dropped_batches + r.dropped_batches;
                let packets_ok = run.offered_packets
                    == r.packets + r.deadline_dropped_packets + r.dropped_packets;
                let refused_ok = run.refused_batches == r.dropped_batches
                    && run.refused_packets == r.dropped_packets;
                let clean = r.drained_clean && r.leaked_threads == 0;
                if !(batches_ok && packets_ok && refused_ok && clean) {
                    eprintln!(
                        "FAIL {pattern}/{workers}w/churn={churn_on}: offered {}b/{}p, \
                         delivered {}b/{}p, deadline-dropped {}b/{}p, engine-refused {}b/{}p, \
                         driver-refused {}b/{}p, drained_clean={}, leaked={}",
                        run.offered_batches,
                        run.offered_packets,
                        r.batches,
                        r.packets,
                        r.deadline_dropped_batches,
                        r.deadline_dropped_packets,
                        r.dropped_batches,
                        r.dropped_packets,
                        run.refused_batches,
                        run.refused_packets,
                        r.drained_clean,
                        r.leaked_threads,
                    );
                    failures += 1;
                }

                let mlps = r.packets as f64 / r.elapsed.as_secs_f64() / 1e6;
                agg_packets += r.packets;
                agg_elapsed += r.elapsed.as_secs_f64();
                agg_deadline_dropped += r.deadline_dropped_batches;
                agg_refused += r.dropped_batches;
                max_wait_p999 = max_wait_p999.max(r.queue_wait.p999_ns);
                max_wait_p99 = max_wait_p99.max(r.queue_wait.p99_ns);
                max_service_p99 = max_service_p99.max(r.service.p99_ns);
                t.row(vec![
                    pattern.to_string(),
                    workers.to_string(),
                    if churn_on { "yes" } else { "no" }.to_string(),
                    format!("{mlps:.2}"),
                    format!("{:.1}", r.queue_wait.p50_ns as f64 / 1e3),
                    format!("{:.1}", r.queue_wait.p99_ns as f64 / 1e3),
                    format!("{:.1}", r.queue_wait.p999_ns as f64 / 1e3),
                    r.deadline_dropped_batches.to_string(),
                    r.dropped_batches.to_string(),
                ]);

                let per_worker: Vec<String> = r
                    .workers
                    .iter()
                    .enumerate()
                    .map(|(w, wr)| {
                        format!(
                            "{{\"worker\": {w}, \"batches\": {}, \"packets\": {}, \
                             \"deadline_dropped_batches\": {}, \"queue_wait_ns\": {}, \
                             \"service_ns\": {}}}",
                            wr.batches,
                            wr.packets,
                            wr.deadline_dropped_batches,
                            latency_json(&wr.queue_wait),
                            latency_json(&wr.service),
                        )
                    })
                    .collect();
                cells.push(format!(
                    "    {{\"pattern\": \"{pattern}\", \"workers\": {workers}, \
                     \"churn\": {churn_on},\n     \"offered_batches\": {}, \
                     \"offered_packets\": {}, \"delivered_batches\": {}, \
                     \"delivered_packets\": {},\n     \"deadline_dropped_batches\": {}, \
                     \"deadline_dropped_packets\": {}, \"refused_batches\": {}, \
                     \"refused_packets\": {},\n     \"mlps\": {mlps:.3}, \
                     \"publishes\": {}, \"update_events\": {},\n     \
                     \"queue_wait_ns\": {}, \"service_ns\": {},\n     \
                     \"per_worker\": [{}]}}",
                    run.offered_batches,
                    run.offered_packets,
                    r.batches,
                    r.packets,
                    r.deadline_dropped_batches,
                    r.deadline_dropped_packets,
                    r.dropped_batches,
                    r.dropped_packets,
                    r.publishes,
                    r.update_events,
                    latency_json(&r.queue_wait),
                    latency_json(&r.service),
                    per_worker.join(", "),
                ));
            }
        }
    }
    print!("{}", t.render());
    println!(
        "({} cells of {} ms each, deadline {} us; DL-dropped batches \
         exceeded their queue-wait deadline, refused batches found every \
         queue full)",
        cells.len(),
        duration.as_millis(),
        deadline.as_micros(),
    );

    let json = format!(
        "{{\n  \"experiment\": \"slo\",\n  \"dataset\": \"{ds_name}\",\n  \
         \"batch\": {batch},\n  \"duration_ms\": {},\n  \"deadline_us\": {},\n  \
         \"quick\": {},\n  \"worst_depth_chain\": {worst_chain},\n  \
         \"cells\": [\n{}\n  ]\n}}\n",
        duration.as_millis(),
        deadline.as_micros(),
        ctx.quick,
        cells.join(",\n"),
    );
    let dir = std::path::Path::new("results");
    let path = dir.join("BENCH_slo.json");
    if let Err(e) =
        std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, json.as_bytes()))
    {
        eprintln!("error: could not write results/BENCH_slo.json: {e}");
        std::process::exit(1);
    }
    // Re-read what actually landed on disk and validate it structurally:
    // the CI smoke gate fails on a truncated or malformed artifact.
    let landed = std::fs::read_to_string(&path).unwrap_or_default();
    if let Err(e) = validate_json(
        &landed,
        &[
            "experiment",
            "cells",
            "pattern",
            "queue_wait_ns",
            "service_ns",
            "p50_ns",
            "p99_ns",
            "p999_ns",
        ],
    ) {
        eprintln!("error: results/BENCH_slo.json is malformed: {e}");
        std::process::exit(1);
    }
    println!("wrote results/BENCH_slo.json");

    // Trajectory history: `BENCH_slo.json` is a snapshot that every run
    // overwrites, so regressions between runs were invisible. Append a
    // one-line summary per run to `BENCH_slo_history.jsonl` (never
    // truncated), compare against the last comparable entry, and — when
    // `SLO_GATE_FACTOR` is set (the CI smoke gate) — fail the run if
    // aggregate throughput fell by more than that factor. The factor is
    // generous because CI hosts are virtualized and noisy; the gate is
    // for cliffs, not percent-level drift.
    let agg_mlps = if agg_elapsed > 0.0 {
        agg_packets as f64 / agg_elapsed / 1e6
    } else {
        0.0
    };
    let history_path = dir.join("BENCH_slo_history.jsonl");
    let fingerprint = format!(
        "\"quick\": {}, \"dataset\": \"{ds_name}\", \"threads\": {threads}",
        ctx.quick
    );
    // The last comparable history line, kept whole so the gate can read
    // both the throughput and the latency fields out of it.
    let previous_line = std::fs::read_to_string(&history_path).ok().and_then(|h| {
        h.lines()
            .rfind(|l| l.contains(&fingerprint))
            .map(str::to_string)
    });
    let previous = previous_line
        .as_deref()
        .and_then(|l| json_field_f64(l, "agg_mlps"));
    let ts = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let entry = format!(
        "{{\"ts\": {ts}, {fingerprint}, \"cells\": {}, \"agg_mlps\": {agg_mlps:.3}, \
         \"deadline_dropped_batches\": {agg_deadline_dropped}, \
         \"refused_batches\": {agg_refused}, \"max_wait_p999_ns\": {max_wait_p999}, \
         \"wait_p99_ns\": {max_wait_p99}, \"service_p99_ns\": {max_service_p99}}}\n",
        cells.len(),
    );
    use std::io::Write as _;
    if let Err(e) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&history_path)
        .and_then(|mut f| f.write_all(entry.as_bytes()))
    {
        eprintln!("error: could not append results/BENCH_slo_history.jsonl: {e}");
        std::process::exit(1);
    }
    match previous {
        Some(prev) => {
            let ratio = if prev > 0.0 { agg_mlps / prev } else { 1.0 };
            println!(
                "appended results/BENCH_slo_history.jsonl: {agg_mlps:.2} aggregate Mlps \
                 (previous comparable run {prev:.2}, x{ratio:.2})"
            );
            if let Some(factor) = std::env::var("SLO_GATE_FACTOR")
                .ok()
                .and_then(|v| v.parse::<f64>().ok())
            {
                if factor > 1.0 && prev > 0.0 && agg_mlps * factor < prev {
                    eprintln!(
                        "error: aggregate throughput fell more than {factor}x below the \
                         previous comparable run ({agg_mlps:.2} vs {prev:.2} Mlps)"
                    );
                    std::process::exit(1);
                }
                // The latency side of the same gate: the worst per-cell
                // p99 queue wait and p99 service time must not *rise*
                // past factor x the previous comparable run. Throughput
                // can hold steady while tail latency cliffs (a stalled
                // worker still serves batches late); tracking both
                // catches that class of regression.
                if factor > 1.0 {
                    let worse = |name: &str, now: u64, prev: Option<f64>| {
                        if let Some(prev) = prev.filter(|&p| p > 0.0) {
                            if now as f64 > prev * factor {
                                eprintln!(
                                    "error: {name} p99 rose more than {factor}x above the \
                                     previous comparable run ({now} ns vs {prev:.0} ns)"
                                );
                                return true;
                            }
                        }
                        false
                    };
                    let prev_wait = previous_line
                        .as_deref()
                        .and_then(|l| json_field_f64(l, "wait_p99_ns"));
                    let prev_service = previous_line
                        .as_deref()
                        .and_then(|l| json_field_f64(l, "service_p99_ns"));
                    let bad = worse("queue-wait", max_wait_p99, prev_wait)
                        | worse("service", max_service_p99, prev_service);
                    if bad {
                        std::process::exit(1);
                    }
                }
            }
        }
        None => println!(
            "appended results/BENCH_slo_history.jsonl: {agg_mlps:.2} aggregate Mlps \
             (no previous comparable run)"
        ),
    }

    if failures > 0 {
        eprintln!("error: {failures} cell(s) failed accounting reconciliation");
        std::process::exit(1);
    }
}

// ------------------------------------------------------------------ bgp

struct BgpOpts {
    mrt: Option<String>,
    write_fixture: Option<String>,
    speedup: f64,
    threads: usize,
}

/// Deterministically synthesize a BGP4MP update trace: a full-table
/// announcement of `n_base` random prefixes followed by `n_churn`
/// churn events (path-change re-announcements and withdrawals), one
/// UPDATE message per event, timestamped at 10k updates/s recorded
/// rate.
fn synth_bgp_trace(n_base: usize, n_churn: usize, seed: u64) -> tablegen::mrt::UpdateTrace {
    use poptrie_bgp::wire::{Message, UpdateMsg};
    use poptrie_rib::Prefix;
    use poptrie_rng::prelude::*;
    use std::net::Ipv4Addr;

    let mut rng = StdRng::seed_from_u64(seed);
    let nh_pool: Vec<Ipv4Addr> = (1u32..=8)
        .map(|i| Ipv4Addr::from(0xC633_6400 + i))
        .collect();
    let mut seen = std::collections::HashSet::new();
    let mut base: Vec<Prefix<u32>> = Vec::with_capacity(n_base);
    while base.len() < n_base {
        let len = rng.gen_range(8..=24u8);
        let p = Prefix::new(rng.gen::<u32>(), len);
        if seen.insert(p) {
            base.push(p);
        }
    }
    let mut records = Vec::with_capacity(n_base + n_churn);
    let mut push = |i: usize, msg: Message| {
        records.push(tablegen::mrt::UpdateRecord {
            timestamp_us: 1_700_000_000_000_000 + i as u64 * 100,
            peer_asn: 65_001,
            peer_address: std::net::IpAddr::V4(Ipv4Addr::new(192, 0, 2, 1)),
            message: msg.encode(),
        });
    };
    let mut present = base.clone();
    for (i, p) in base.iter().enumerate() {
        push(
            i,
            Message::Update(UpdateMsg {
                announced_v4: vec![*p],
                next_hop_v4: Some(nh_pool[i % nh_pool.len()]),
                ..UpdateMsg::default()
            }),
        );
    }
    for i in 0..n_churn {
        let withdraw = !present.is_empty() && rng.gen_bool(0.3);
        let msg = if withdraw {
            let at = rng.gen_range(0..present.len());
            let p = present.swap_remove(at);
            Message::Update(UpdateMsg {
                withdrawn_v4: vec![p],
                ..UpdateMsg::default()
            })
        } else {
            let p = *base.choose(&mut rng).expect("non-empty base");
            if !present.contains(&p) {
                present.push(p);
            }
            Message::Update(UpdateMsg {
                announced_v4: vec![p],
                next_hop_v4: Some(*nh_pool.choose(&mut rng).expect("non-empty pool")),
                ..UpdateMsg::default()
            })
        };
        push(n_base + i, msg);
    }
    tablegen::mrt::UpdateTrace { records }
}

/// `repro bgp`: replay a BGP4MP update trace through the RFC 4271
/// session FSM into the engine's control plane, with a seeded
/// mid-replay session flap, while a feeder thread keeps lookups flowing
/// against the served snapshots.
///
/// The run gates hard (nonzero exit) on: exact announce/withdraw
/// accounting against the trace, zero parse errors, lookups served
/// during the flap's down window, a non-empty convergence-lag
/// histogram, and the final FIB matching a RIB oracle built from the
/// parsed trace — route for route.
fn bgp(ctx: &mut Ctx, opts: &BgpOpts) {
    use poptrie::sync::{RouteUpdate, SharedFib};
    use poptrie_bgp::wire::{Message, OpenMsg};
    use poptrie_bgp::{Event, NextHopInterner, RouteEvent, Session, SessionConfig, State};
    use poptrie_engine::{Engine, EngineConfig};
    use poptrie_rib::{NextHop, Prefix, RadixTree, NO_ROUTE};
    use std::net::IpAddr;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    // Fixture emission is its own mode: write the deterministic trace CI
    // replays and exit.
    if let Some(path) = &opts.write_fixture {
        let trace = synth_bgp_trace(48, 36, 0xB9F0_57A6);
        let (a, w) = trace.accounting();
        if let Err(e) = std::fs::write(path, trace.encode()) {
            eprintln!("error: could not write {path}: {e}");
            std::process::exit(1);
        }
        println!(
            "wrote {path}: {} BGP4MP records ({a} announced, {w} withdrawn)",
            trace.records.len()
        );
        return;
    }

    section("BGP control-plane replay: session FSM -> engine writer, with mid-replay flap");
    let (source, trace) = match &opts.mrt {
        Some(path) => {
            let bytes = match std::fs::read(path) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("error: could not read {path}: {e}");
                    std::process::exit(1);
                }
            };
            match tablegen::mrt::parse_bgp4mp(&bytes) {
                Ok(t) => (path.clone(), t),
                Err(e) => {
                    eprintln!("error: {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
        None => {
            let (n_base, n_churn) = if ctx.quick {
                (2_000, 1_000)
            } else {
                (20_000, 10_000)
            };
            (
                "synthetic".to_string(),
                synth_bgp_trace(n_base, n_churn, 0xB9F0_0001),
            )
        }
    };
    if trace.records.is_empty() {
        eprintln!("error: trace has no BGP4MP message records");
        std::process::exit(1);
    }
    let (expect_announced, expect_withdrawn) = trace.accounting();
    println!(
        "[bgp] {source}: {} records, {expect_announced} announces, {expect_withdrawn} withdraws",
        trace.records.len()
    );

    // The RIB oracle: every parseable v4 route applied in trace order,
    // with next hops densified exactly as the replay does.
    let mut oracle: RadixTree<u32, NextHop> = RadixTree::new();
    let mut oracle_interner = NextHopInterner::new();
    let mut touched: std::collections::HashSet<Prefix<u32>> = std::collections::HashSet::new();
    let mut v6_routes = 0u64;
    for r in &trace.records {
        if let Ok(Message::Update(u)) = r.parse() {
            v6_routes += (u.announced_v6.len() + u.withdrawn_v6.len()) as u64;
            if let Some(nh) = u.next_hop_v4 {
                let id = oracle_interner.intern(IpAddr::V4(nh));
                for p in &u.announced_v4 {
                    oracle.insert(*p, id);
                    touched.insert(*p);
                }
            }
            for p in &u.withdrawn_v4 {
                oracle.remove(*p);
                touched.insert(*p);
            }
        }
    }
    if v6_routes > 0 {
        println!("[bgp] note: {v6_routes} IPv6 routes in the trace are not replayed (v4 engine)");
    }

    // Engine over an initially empty FIB: the trace's full-table
    // announcement *is* the table.
    let pcfg = PoptrieConfig::new().direct_bits(18).build().unwrap();
    let fib: Arc<SharedFib<u32>> = Arc::new(SharedFib::compile(RadixTree::new(), pcfg));
    let engine = Engine::start(
        Arc::clone(&fib),
        EngineConfig::new(opts.threads.max(1))
            .pin_workers(false)
            .control_capacity(8192)
            .coalesce_window(512),
    );
    let control = engine.control();
    let telemetry = engine.telemetry();

    // Lookup feeder: keeps the dataplane busy for the whole replay,
    // including the flap's down window.
    let stop = Arc::new(AtomicBool::new(false));
    let feeder = {
        let ingress = engine.ingress();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut x = 0x9E37_79B9_u32;
            let pool: Vec<Arc<[u32]>> = (0..64)
                .map(|_| {
                    let keys: Vec<u32> = (0..4096)
                        .map(|_| {
                            x ^= x << 13;
                            x ^= x >> 17;
                            x ^= x << 5;
                            x
                        })
                        .collect();
                    Arc::from(keys)
                })
                .collect();
            let mut i = 0usize;
            while !stop.load(Ordering::Relaxed) {
                if ingress
                    .try_submit(Arc::clone(&pool[i % pool.len()]))
                    .is_err()
                {
                    std::thread::sleep(Duration::from_micros(20));
                }
                i += 1;
            }
        })
    };

    // The session under test. Short, test-scale retry timers so the
    // flap's backoff costs milliseconds, not seconds.
    let retry_base = if ctx.quick { 5_000_000 } else { 20_000_000 };
    let mut session = Session::new(SessionConfig {
        retry_base,
        retry_max: retry_base * 16,
        jitter_seed: 0x51F0_0D11,
        ..SessionConfig::default()
    });
    let stats = session.stats();
    let started = Instant::now();
    let now_ns = |started: &Instant| started.elapsed().as_nanos() as u64;
    let peer_open = Message::Open(OpenMsg {
        version: 4,
        asn: 65_001,
        hold_time: 90,
        bgp_id: 0xC000_0201,
        params: Vec::new(),
    })
    .encode();
    let keepalive = Message::Keepalive.encode();

    let mut interner = NextHopInterner::new();
    let mut sent_updates = 0u64;
    // Drain session events and forward route events into the engine's
    // control channel, retrying when the bounded channel pushes back
    // (correctness needs every update to land).
    let mut pump = |session: &mut Session, sent: &mut u64| {
        session.drain_actions(); // OPEN/KEEPALIVE/NOTIFICATION tx: no wire to write to
        for ev in session.drain_events() {
            if let Event::Routes { span, routes } = ev {
                for r in routes {
                    let update = match r {
                        RouteEvent::AnnounceV4(p, nh) => {
                            RouteUpdate::Announce(p, interner.intern(IpAddr::V4(nh)))
                        }
                        RouteEvent::WithdrawV4(p) => RouteUpdate::Withdraw(p),
                        RouteEvent::AnnounceV6(..) | RouteEvent::WithdrawV6(..) => continue,
                    };
                    let mut u = update;
                    loop {
                        // Carry the session's span ID so a trace-enabled
                        // engine can attribute the apply to this UPDATE.
                        match control.send_spanned(span, u) {
                            Ok(()) => break,
                            Err(back) => {
                                u = back;
                                std::thread::sleep(Duration::from_micros(50));
                            }
                        }
                    }
                    *sent += 1;
                }
            }
        }
    };
    let handshake = |session: &mut Session, started: &Instant| {
        session.connected(now_ns(started));
        session.recv(now_ns(started), &peer_open);
        session.recv(now_ns(started), &keepalive);
        assert_eq!(session.state(), State::Established, "handshake failed");
    };

    session.start(now_ns(&started));
    handshake(&mut session, &started);
    pump(&mut session, &mut sent_updates);

    // Replay phase 1: messages up to the flap point, then tear the wire
    // mid-message.
    let offsets = trace.replay_offsets_us(opts.speedup);
    let cut = if trace.records.len() >= 8 {
        trace.records.len() / 2
    } else {
        trace.records.len() // too short to flap
    };
    let deliver = |session: &mut Session,
                   sent: &mut u64,
                   pump: &mut dyn FnMut(&mut Session, &mut u64),
                   range: std::ops::Range<usize>,
                   started: &Instant| {
        for i in range {
            if opts.speedup > 0.0 {
                let due = Duration::from_micros(offsets[i]);
                while started.elapsed() < due {
                    std::hint::spin_loop();
                }
            }
            session.recv(now_ns(started), &trace.records[i].message);
            session.tick(now_ns(started));
            pump(session, sent);
        }
    };
    deliver(&mut session, &mut sent_updates, &mut pump, 0..cut, &started);

    let mut flapped = false;
    let mut staleness_ns_max = 0u64;
    let mut down_window_lookups = 0u64;
    if cut < trace.records.len() {
        flapped = true;
        // Half the cut record arrives, then the transport dies.
        let msg = &trace.records[cut].message;
        session.recv(now_ns(&started), &msg[..msg.len() / 2]);
        assert!(session.mid_message(), "flap must land mid-message");
        let packets_at_cut = telemetry.total_packets();
        let down_at = Instant::now();
        session.disconnected(now_ns(&started));
        pump(&mut session, &mut sent_updates);
        // Honor the ConnectRetry backoff on the real clock, publishing
        // staleness while the FIB serves the pre-flap snapshot. The
        // down window is held open for at least 50ms so the bench can
        // observe lookups served against the stale snapshot.
        let min_down = Duration::from_millis(50);
        loop {
            let stale = down_at.elapsed().as_nanos() as u64;
            stats.staleness_ns.set(stale);
            staleness_ns_max = staleness_ns_max.max(stale);
            session.tick(now_ns(&started));
            if session.state() == State::Connect && down_at.elapsed() >= min_down {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        handshake(&mut session, &started);
        pump(&mut session, &mut sent_updates);
        down_window_lookups = telemetry.total_packets() - packets_at_cut;
        // Replay phase 2: the peer (per RFC 4271) re-sends everything
        // from the first message the flap swallowed.
        deliver(
            &mut session,
            &mut sent_updates,
            &mut pump,
            cut..trace.records.len(),
            &started,
        );
        stats.staleness_ns.set(0);
    }
    let replay_elapsed = started.elapsed();
    assert_eq!(session.state(), State::Established);

    // Let the writer drain everything we sent, then stop.
    let drain_deadline = Instant::now() + Duration::from_secs(10);
    while telemetry.update_events.get() < sent_updates && Instant::now() < drain_deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    stop.store(true, Ordering::Relaxed);
    let _ = feeder.join();
    let report = engine.shutdown(Duration::from_secs(30));

    // Oracle check: every touched prefix plus a seeded probe sweep must
    // agree between the served FIB and the RIB oracle.
    let mut mismatches = 0u64;
    let mut checked = 0u64;
    let mut probe = 0xDEAD_BEEF_u32;
    let probes = (0..4096).map(|_| {
        probe ^= probe << 13;
        probe ^= probe >> 17;
        probe ^= probe << 5;
        probe
    });
    for key in touched.iter().map(|p| p.first_addr()).chain(probes) {
        let want = oracle.lookup(key).copied().unwrap_or(NO_ROUTE);
        let got = fib.lookup(key).unwrap_or(NO_ROUTE);
        checked += 1;
        if want != got {
            if mismatches < 8 {
                eprintln!("FAIL oracle mismatch at {key:#010x}: fib {got}, oracle {want}");
            }
            mismatches += 1;
        }
    }

    let announced = stats.routes_announced.get();
    let withdrawn = stats.routes_withdrawn.get();
    let updates_per_sec = stats.updates_rx.get() as f64 / replay_elapsed.as_secs_f64();
    let lookups_per_sec = report.packets as f64 / report.elapsed.as_secs_f64();
    let mut t = Table::new(vec!["Metric", "Value"]);
    t.row(vec![
        "updates replayed".into(),
        stats.updates_rx.get().to_string(),
    ]);
    t.row(vec![
        "updates/s sustained".into(),
        format!("{updates_per_sec:.0}"),
    ]);
    t.row(vec![
        "convergence p50/p99/p99.9 [us]".into(),
        format!(
            "{:.1} / {:.1} / {:.1}",
            report.convergence.p50_ns as f64 / 1e3,
            report.convergence.p99_ns as f64 / 1e3,
            report.convergence.p999_ns as f64 / 1e3
        ),
    ]);
    t.row(vec!["lookups served".into(), report.packets.to_string()]);
    t.row(vec!["lookups/s".into(), format!("{:.0}", lookups_per_sec)]);
    t.row(vec![
        "lookups in down window".into(),
        down_window_lookups.to_string(),
    ]);
    t.row(vec![
        "session resets / reconnects".into(),
        format!("{} / {}", stats.resets.get(), stats.to_established.get()),
    ]);
    t.row(vec![
        "backoff applied [ms]".into(),
        format!("{:.1}", stats.backoff_ns.get() as f64 / 1e6),
    ]);
    t.row(vec![
        "staleness max [ms]".into(),
        format!("{:.1}", staleness_ns_max as f64 / 1e6),
    ]);
    t.row(vec!["oracle prefixes checked".into(), checked.to_string()]);
    print!("{}", t.render());
    print!("{}", stats.registry().render_prometheus());

    // The gates. Every one is a hard failure: this subcommand is the CI
    // smoke proof that the BGP path is lossless end to end.
    let mut failures: Vec<String> = Vec::new();
    if announced != expect_announced || withdrawn != expect_withdrawn {
        failures.push(format!(
            "accounting: session saw {announced}a/{withdrawn}w, trace has \
             {expect_announced}a/{expect_withdrawn}w"
        ));
    }
    if stats.parse_errors.get() != 0 {
        failures.push(format!("{} parse errors", stats.parse_errors.get()));
    }
    if telemetry.update_events.get() != sent_updates {
        failures.push(format!(
            "writer drained {} of {sent_updates} updates",
            telemetry.update_events.get()
        ));
    }
    if report.convergence.samples == 0 {
        failures.push("convergence-lag histogram is empty".into());
    }
    if mismatches != 0 {
        failures.push(format!(
            "{mismatches} oracle mismatches of {checked} checked"
        ));
    }
    if report.packets == 0 {
        failures.push("no lookups served during replay".into());
    }
    if flapped {
        if stats.resets.get() != 1 || stats.to_established.get() != 2 {
            failures.push(format!(
                "flap shape: {} resets, {} establishments (want 1 and 2)",
                stats.resets.get(),
                stats.to_established.get()
            ));
        }
        if down_window_lookups == 0 {
            failures.push("no lookups served during the down window".into());
        }
    }

    let json = format!(
        "{{\n  \"experiment\": \"bgp\",\n  \"source\": \"{source}\",\n  \
         \"quick\": {},\n  \"records\": {},\n  \"speedup\": {},\n  \
         \"expected\": {{\"announced\": {expect_announced}, \"withdrawn\": {expect_withdrawn}}},\n  \
         \"observed\": {{\"announced\": {announced}, \"withdrawn\": {withdrawn}, \
         \"updates\": {}}},\n  \
         \"updates_per_sec\": {updates_per_sec:.1},\n  \
         \"convergence_ns\": {},\n  \
         \"lookups\": {},\n  \"lookups_per_sec\": {lookups_per_sec:.1},\n  \
         \"flap\": {{\"enabled\": {flapped}, \"cut_record\": {cut}, \"resets\": {}, \
         \"reconnects\": {}, \"backoff_ns\": {}, \"staleness_ns_max\": {staleness_ns_max}, \
         \"down_window_lookups\": {down_window_lookups}}},\n  \
         \"oracle\": {{\"checked\": {checked}, \"mismatches\": {mismatches}}},\n  \
         \"engine\": {{\"publishes\": {}, \"update_events\": {}, \"updates_coalesced\": {}, \
         \"writer_respawns\": {}}}\n}}\n",
        ctx.quick,
        trace.records.len(),
        opts.speedup,
        stats.updates_rx.get(),
        latency_json(&report.convergence),
        report.packets,
        stats.resets.get(),
        stats.to_established.get(),
        stats.backoff_ns.get(),
        report.publishes,
        report.update_events,
        report.updates_coalesced,
        report.writer_respawns,
    );
    let dir = std::path::Path::new("results");
    let path = dir.join("BENCH_bgp.json");
    if let Err(e) =
        std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, json.as_bytes()))
    {
        eprintln!("error: could not write results/BENCH_bgp.json: {e}");
        std::process::exit(1);
    }
    let landed = std::fs::read_to_string(&path).unwrap_or_default();
    if let Err(e) = validate_json(
        &landed,
        &[
            "experiment",
            "updates_per_sec",
            "convergence_ns",
            "p50_ns",
            "p99_ns",
            "p999_ns",
            "lookups_per_sec",
            "flap",
            "oracle",
        ],
    ) {
        eprintln!("error: results/BENCH_bgp.json is malformed: {e}");
        std::process::exit(1);
    }
    println!("wrote results/BENCH_bgp.json");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("error: {f}");
        }
        std::process::exit(1);
    }
    println!(
        "[bgp] OK: lossless replay, {} updates, flap survived with exact reconvergence",
        sent_updates
    );
}

/// Extract a numeric field from a single-line JSON object without a JSON
/// parser: finds `"key": <number>` and parses the number. Good enough
/// for the history lines this binary writes itself.
fn json_field_f64(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

// ----------------------------------------------------------------- fig 11

fn fig11(ctx: &mut Ctx) {
    section("Figure 11: per-lookup cycles by binary radix depth (REAL-Tier1-A)");
    let n = ctx.cfg.cycle_samples;
    let rib = ctx.dataset("REAL-Tier1-A").to_rib();
    for algo in CYCLE_ALGOS {
        let BuildOutcome::Ok(fib) = build_v4(algo, &rib) else {
            continue;
        };
        let samples = cycle_samples(fib.as_ref(), n);
        // Bucket by the binary radix depth of each key.
        let mut buckets: HashMap<u32, Vec<u64>> = HashMap::new();
        for CycleSample { key, cycles } in samples {
            let (_, depth, _) = rib.lookup_with_depth(key);
            buckets.entry(depth).or_default().push(cycles);
        }
        println!("\n{}:", algo_label(algo));
        let mut t = Table::new(vec!["depth", "n", "5%", "q1", "median", "q3", "95%"]);
        let mut depths: Vec<u32> = buckets.keys().copied().collect();
        depths.sort_unstable();
        for d in depths {
            let b = &buckets[&d];
            if b.len() < 16 {
                continue; // too few samples for stable quartiles
            }
            let c = Candlestick::from_samples(b).expect("non-empty");
            t.row(vec![
                d.to_string(),
                b.len().to_string(),
                c.p5.to_string(),
                c.q1.to_string(),
                c.median.to_string(),
                c.q3.to_string(),
                c.p95.to_string(),
            ]);
        }
        print!("{}", t.render());
    }
}

// ----------------------------------------------------------------- fig 12

fn fig12(ctx: &mut Ctx) {
    section("Figure 12: average lookup rate for real-trace on REAL-RENET");
    let cfg = ctx.cfg;
    let dataset = ctx.dataset("REAL-RENET").clone();
    let trace = RealTrace::synthesize(&dataset, TraceConfig::default());
    let packets = trace.packet_array(if ctx.quick { 1 << 20 } else { 1 << 24 });
    let rib = dataset.to_rib();
    let mut t = Table::new(vec![
        "Algorithm",
        "Scalar (std.) [Mlps]",
        "Batched (std.) [Mlps]",
    ]);
    for algo in [
        Algo::TreeBitmap,
        Algo::Sail,
        Algo::D16r,
        Algo::Poptrie16,
        Algo::D18r,
        Algo::Poptrie18,
    ] {
        match build_v4(algo, &rib) {
            BuildOutcome::Ok(fib) => {
                let rate = measure_mlps_keys(fib.as_ref(), &packets, &cfg);
                let brate = measure_mlps_keys_batch(fib.as_ref(), &packets, &cfg);
                t.row(vec![
                    algo_label(algo).to_string(),
                    mean_std_cell(rate),
                    mean_std_cell(brate),
                ]);
            }
            BuildOutcome::StructuralLimit(e) => {
                t.row(vec![
                    algo_label(algo).to_string(),
                    format!("N/A ({e})"),
                    "N/A".into(),
                ]);
            }
        }
    }
    print!("{}", t.render());
}

// --------------------------------------------------------- §4.5 locality

/// The §4.5 locality-pattern numbers: "For REAL-Tier1-B where Poptrie
/// performed worse, the average lookup rate for sequential of SAIL,
/// D16R, D18R, Poptrie16, and Poptrie18 were 1264, 628, 911, 955, and
/// 1122 Mlps ... for repeated ... 492, 382, 454, 470, and 480 Mlps."
fn locality(ctx: &mut Ctx) {
    use poptrie_traffic::{repeated_v4, sequential_v4};
    section("§4.5: lookup rate under locality patterns (REAL-Tier1-B)");
    let cfg = ctx.cfg;
    let dataset = ctx.dataset("REAL-Tier1-B").clone();
    // Materialized key arrays, as the paper feeds them.
    let seq: Vec<u32> = sequential_v4(0, 1 << 22).collect();
    let rep: Vec<u32> = repeated_v4(0xBEEF, 1 << 22, 16).collect();
    let mut t = Table::new(vec![
        "Algorithm",
        "sequential [Mlps]",
        "repeated [Mlps]",
        "random [Mlps]",
    ]);
    for (algo, outcome) in build_all_v4(
        &[
            Algo::Sail,
            Algo::D16r,
            Algo::D18r,
            Algo::Poptrie16,
            Algo::Poptrie18,
        ],
        &dataset,
    ) {
        let BuildOutcome::Ok(fib) = outcome else {
            t.row(vec![algo_label(algo).to_string(), "N/A".into()]);
            continue;
        };
        let (s, _) = measure_mlps_keys(fib.as_ref(), &seq, &cfg);
        let (r, _) = measure_mlps_keys(fib.as_ref(), &rep, &cfg);
        let (x, _) = measure_mlps(fib.as_ref(), &cfg);
        t.row(vec![
            algo_label(algo).to_string(),
            format!("{s:.2}"),
            format!("{r:.2}"),
            format!("{x:.2}"),
        ]);
    }
    print!("{}", t.render());
    println!("(paper, same order — sequential: 1264/628/911/955/1122;");
    println!(" repeated: 492/382/454/470/480; both far above random — locality");
    println!(" lets every structure ride its caches)");
}

// ------------------------------------------------------- serial ablation

/// Dependent-lookup comparison (not a paper figure — an ablation): each
/// key is perturbed by the previous result, so lookups cannot overlap in
/// the memory pipeline. This is the latency-bound regime of a
/// run-to-completion forwarding loop, and the regime where structure
/// depth (Poptrie's advantage) matters most; the paper's single-task-OS
/// cycle analysis (§4.6) measures the same effect differently.
fn serial(ctx: &mut Ctx) {
    use poptrie_bench::measure::measure_mlps_serial;
    section("Ablation: independent vs dependent (serialized) lookup rate");
    let cfg = ctx.cfg;
    let mut t = Table::new(vec!["Algorithm", "independent [Mlps]", "dependent [Mlps]"]);
    let dataset = ctx.dataset("REAL-Tier1-A").clone();
    let mut algos: Vec<Algo> = Algo::table3().to_vec();
    algos.push(Algo::Dir248);
    algos.push(Algo::Lulea);
    for (algo, outcome) in build_all_v4(&algos, &dataset) {
        let BuildOutcome::Ok(fib) = outcome else {
            t.row(vec![
                algo_label(algo).to_string(),
                "N/A".into(),
                "N/A".into(),
            ]);
            continue;
        };
        let (ind, _) = measure_mlps(fib.as_ref(), &cfg);
        let (dep, _) = measure_mlps_serial(fib.as_ref(), &cfg);
        t.row(vec![
            algo_label(algo).to_string(),
            format!("{ind:.2}"),
            format!("{dep:.2}"),
        ]);
    }
    print!("{}", t.render());
}

// ------------------------------------------------------- batch ablation

/// Scalar vs batched+prefetch lookup rate (not a paper figure — an
/// ablation for this reproduction's batched mode): random traffic on
/// REAL-Tier1-A across every algorithm in the workspace. Algorithms
/// without an interleaved override (the radix tree's pointer-chasing
/// nodes give a prefetch nothing to run ahead of) fall back to the
/// scalar loop, so their two columns should agree within noise.
fn batch(ctx: &mut Ctx) {
    section("Ablation: scalar vs batched+prefetch lookup rate (REAL-Tier1-A, random)");
    let cfg = ctx.cfg;
    println!(
        "({} keys per lookup_batch call, 8 interleaved lanes)",
        cfg.batch
    );
    let mut t = Table::new(vec![
        "Algorithm",
        "Scalar [Mlps]",
        "Batched [Mlps]",
        "Speedup",
    ]);
    let dataset = ctx.dataset("REAL-Tier1-A").clone();
    let mut algos: Vec<Algo> = Algo::table3().to_vec();
    algos.push(Algo::Dir248);
    algos.push(Algo::Lulea);
    for (algo, outcome) in build_all_v4(&algos, &dataset) {
        let BuildOutcome::Ok(fib) = outcome else {
            t.row(vec![
                algo_label(algo).to_string(),
                "N/A".into(),
                "N/A".into(),
                "-".into(),
            ]);
            continue;
        };
        let (scalar, _) = measure_mlps(fib.as_ref(), &cfg);
        let (batched, _) = measure_mlps_batch(fib.as_ref(), &cfg);
        t.row(vec![
            algo_label(algo).to_string(),
            format!("{scalar:.2}"),
            format!("{batched:.2}"),
            format!("{:.2}x", batched / scalar),
        ]);
    }
    print!("{}", t.render());
}

// ------------------------------------------------------------ diagnostics

/// `repro stats`: with a dataset argument, structural diagnostics of the
/// dataset; with none, the live-telemetry replay (`telemetry` feature).
/// `repro trace [--quick] [--threads N]`: the flight-recorder run.
///
/// Three phases:
///
/// 1. **Perf attribution.** Traffic against REAL-Tier1-A is partitioned
///    by [`poptrie::phase::LookupPhase`] (direct-point hit vs. trie
///    descent) and each partition is measured per dispatch tier under a
///    `perf_event_open` counter group, attributing cycles,
///    instructions, L1d/LLC read misses and branch misses per lookup to
///    each phase. The partition is cross-checked against the live phase
///    counters — a mismatch means the instrumentation lies, and exits
///    nonzero.
/// 2. **Convergence spans.** A BGP session replays a synthetic UPDATE
///    trace into a recorder-equipped engine (2 NUMA replicas); every
///    accepted span must surface as writer apply, per-replica publish
///    and a worker snapshot adoption covering its version. The drained
///    rings export as Chrome trace-event JSON
///    (`results/BENCH_trace_events.json`, loadable in Perfetto).
/// 3. **Overhead.** The same lookup workload runs with the recorder
///    absent and attached at 1-in-64 sampling; the throughput delta is
///    the price of leaving the recorder on.
///
/// Everything lands in `results/BENCH_trace.json`; a malformed document
/// or a broken span chain exits nonzero so CI can gate on it.
#[cfg(feature = "trace")]
fn trace_cmd(ctx: &mut Ctx, threads: usize) {
    use poptrie::phase;
    use poptrie::sync::{RouteUpdate, SharedFib};
    use poptrie::BatchBackend;
    use poptrie_bgp::wire::{Message, OpenMsg};
    use poptrie_bgp::{Event, NextHopInterner, RouteEvent, Session, SessionConfig, State};
    use poptrie_engine::{Engine, EngineConfig};
    use poptrie_rib::RadixTree;
    use poptrie_trace::{
        chrome_trace_json, EventKind, PerfCounts, PerfGroup, Recorder,
        TraceConfig as RecorderConfig,
    };
    use std::collections::{HashMap, HashSet};
    use std::net::IpAddr;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    section("Flight recorder: perf attribution, convergence spans, recorder overhead");
    let mut gate_failures = 0u32;

    // ------------------------------------------------- phase attribution
    let dataset = ctx.dataset("REAL-Tier1-A").clone();
    let pcfg = PoptrieConfig::new().direct_bits(18).build().unwrap();
    let mut fib = Fib::compile(dataset.to_rib(), pcfg);
    let trace = RealTrace::synthesize(&dataset, TraceConfig::default());
    let packets = trace.packet_array(if ctx.quick { 1 << 16 } else { 1 << 19 });

    let mut direct_keys: Vec<u32> = Vec::new();
    let mut descent_keys: Vec<u32> = Vec::new();
    for &k in &packets {
        match fib.poptrie().lookup_phase(k) {
            phase::LookupPhase::Direct => direct_keys.push(k),
            phase::LookupPhase::Descent(_) => descent_keys.push(k),
        }
    }
    println!(
        "[trace] {} packets: {} direct-point hits, {} trie descents",
        packets.len(),
        direct_keys.len(),
        descent_keys.len()
    );

    let mut tiers = vec![BatchBackend::Scalar];
    for t in [BatchBackend::Avx2, BatchBackend::Avx512] {
        if t.is_available() {
            tiers.push(t);
        }
    }

    // Cross-check the live phase counters against the static partition
    // on every tier: each key must be counted exactly once, on the same
    // side `lookup_phase` predicted, by scalar and SIMD walkers alike.
    for &tier in &tiers {
        fib.set_batch_backend(tier);
        phase::reset();
        let mut out = vec![0 as poptrie::NextHop; packets.len()];
        fib.poptrie().lookup_batch(&packets, &mut out);
        let ps = phase::snapshot();
        let ok =
            ps.direct_hits == direct_keys.len() as u64 && ps.descents == descent_keys.len() as u64;
        println!(
            "[trace] phase counters on {:<6}: {} direct, {} descents (mean depth {:.2})  {}",
            tier.name(),
            ps.direct_hits,
            ps.descents,
            ps.mean_descent_depth(),
            if ok { "ok" } else { "MISMATCH" }
        );
        if !ok {
            gate_failures += 1;
        }
    }
    let mean_descent_depth = {
        fib.set_batch_backend(BatchBackend::Scalar);
        phase::reset();
        let mut out = vec![0 as poptrie::NextHop; packets.len()];
        fib.poptrie().lookup_batch(&packets, &mut out);
        phase::snapshot().mean_descent_depth()
    };

    // One measured cell: `rounds` batched passes over `keys` under the
    // perf counter group, timed with the monotonic clock as well so a
    // PMU-less host still reports cycles via the TSC calibration.
    fn measure_cell(fib: &Fib<u32>, keys: &[u32], target: usize) -> (u64, f64, Option<PerfCounts>) {
        let rounds = (target / keys.len().max(1)).max(1);
        let mut out = vec![0 as poptrie::NextHop; keys.len()];
        let t0 = Instant::now();
        let ((), counts) = PerfGroup::measure(|| {
            for _ in 0..rounds {
                fib.poptrie().lookup_batch(keys, &mut out);
            }
        });
        let ns = t0.elapsed().as_nanos() as f64;
        ((keys.len() * rounds) as u64, ns, counts)
    }
    fn cell_json(lookups: u64, ns: f64, counts: &Option<PerfCounts>) -> String {
        let per = |v: Option<u64>| match v {
            Some(v) => format!("{:.4}", v as f64 / lookups as f64),
            None => "null".to_string(),
        };
        let ns_per = ns / lookups as f64;
        let cycles = match counts.as_ref().and_then(|c| c.cycles) {
            Some(c) => format!("{:.2}", c as f64 / lookups as f64),
            // No PMU: fall back to wall time times the TSC calibration.
            None => format!("{:.2}", ns_per * poptrie_cycles::tsc::cycles_per_ns()),
        };
        format!(
            "{{\"lookups\": {lookups}, \"ns_per_lookup\": {ns_per:.4}, \
             \"cycles_per_lookup\": {cycles}, \
             \"instructions_per_lookup\": {}, \"l1d_misses_per_lookup\": {}, \
             \"llc_misses_per_lookup\": {}, \"branch_misses_per_lookup\": {}, \
             \"perf_counters\": {}}}",
            per(counts.as_ref().and_then(|c| c.instructions)),
            per(counts.as_ref().and_then(|c| c.l1d_misses)),
            per(counts.as_ref().and_then(|c| c.llc_misses)),
            per(counts.as_ref().and_then(|c| c.branch_misses)),
            counts.is_some()
        )
    }

    let target = if ctx.quick { 1 << 18 } else { 1 << 21 };
    let mut phase_json = String::from("{");
    println!(
        "\n{:<10} {:<8} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "phase", "tier", "lookups", "ns/lkp", "cyc/lkp", "L1d/lkp", "LLC/lkp"
    );
    for (pi, (pname, keys)) in [("direct", &direct_keys), ("descent", &descent_keys)]
        .iter()
        .enumerate()
    {
        if pi > 0 {
            phase_json.push(',');
        }
        phase_json.push_str(&format!("\"{pname}\": {{"));
        for (ti, &tier) in tiers.iter().enumerate() {
            fib.set_batch_backend(tier);
            let (lookups, ns, counts) = if keys.is_empty() {
                (0, 0.0, None)
            } else {
                measure_cell(&fib, keys, target)
            };
            if ti > 0 {
                phase_json.push(',');
            }
            if lookups == 0 {
                phase_json.push_str(&format!("\"{}\": null", tier.name()));
                continue;
            }
            phase_json.push_str(&format!(
                "\"{}\": {}",
                tier.name(),
                cell_json(lookups, ns, &counts)
            ));
            let f = |v: Option<u64>| match v {
                Some(v) => format!("{:.3}", v as f64 / lookups as f64),
                None => "-".to_string(),
            };
            println!(
                "{:<10} {:<8} {:>12} {:>10.2} {:>10} {:>10} {:>10}",
                pname,
                tier.name(),
                lookups,
                ns / lookups as f64,
                f(counts.as_ref().and_then(|c| c.cycles)),
                f(counts.as_ref().and_then(|c| c.l1d_misses)),
                f(counts.as_ref().and_then(|c| c.llc_misses)),
            );
        }
        phase_json.push('}');
    }
    phase_json.push('}');
    if PerfGroup::open().is_none() {
        println!(
            "[trace] note: no PMU access (perf_event_paranoid/container); cycles are TSC-derived"
        );
    }

    // --------------------------------------------- cross-layer span run
    println!();
    let rec = Recorder::new(RecorderConfig {
        capacity: 1 << 15,
        sample: 1,
    });
    let bgp_ring = rec.register("bgp");
    let replicas = 2usize;
    let span_fib: Arc<SharedFib<u32>> = Arc::new(SharedFib::compile(RadixTree::new(), pcfg));
    let engine = Engine::start(
        Arc::clone(&span_fib),
        EngineConfig::new(threads.max(1))
            .pin_workers(false)
            .control_capacity(8192)
            .coalesce_window(64)
            .numa_replicas(replicas)
            .recorder(rec.clone()),
    );
    let control = engine.control();

    let stop = Arc::new(AtomicBool::new(false));
    let feeder = {
        let ingress = engine.ingress();
        let stop = Arc::clone(&stop);
        let keys: Arc<[u32]> = Arc::from(packets[..packets.len().min(4096)].to_vec());
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                if ingress.try_submit(Arc::clone(&keys)).is_err() {
                    std::thread::sleep(Duration::from_micros(50));
                }
            }
        })
    };

    fn state_code(s: State) -> u64 {
        match s {
            State::Idle => 0,
            State::Connect => 1,
            State::OpenSent => 2,
            State::OpenConfirm => 3,
            State::Established => 4,
        }
    }

    let (n_base, n_churn) = if ctx.quick {
        (400, 300)
    } else {
        (4_000, 2_000)
    };
    let bgp_trace = synth_bgp_trace(n_base, n_churn, 0xF11C_47B1);
    let mut session = Session::new(SessionConfig::default());
    let started = Instant::now();
    let now_ns = |s: &Instant| s.elapsed().as_nanos() as u64;
    let mut last_state = session.state();
    let mut interner = NextHopInterner::new();
    let mut accepted_routes = 0u64;

    {
        let mut step = |session: &mut Session| {
            session.drain_actions();
            let s = session.state();
            if s != last_state {
                bgp_ring.record(
                    EventKind::BgpTransition,
                    0,
                    state_code(s),
                    state_code(last_state) as u32,
                );
                last_state = s;
            }
            for ev in session.drain_events() {
                if let Event::Routes { span, routes } = ev {
                    bgp_ring.record(EventKind::SpanAccept, span, routes.len() as u64, 0);
                    for r in routes {
                        let update = match r {
                            RouteEvent::AnnounceV4(p, nh) => {
                                RouteUpdate::Announce(p, interner.intern(IpAddr::V4(nh)))
                            }
                            RouteEvent::WithdrawV4(p) => RouteUpdate::Withdraw(p),
                            RouteEvent::AnnounceV6(..) | RouteEvent::WithdrawV6(..) => continue,
                        };
                        let mut u = update;
                        loop {
                            match control.send_spanned(span, u) {
                                Ok(()) => break,
                                Err(back) => {
                                    u = back;
                                    std::thread::sleep(Duration::from_micros(50));
                                }
                            }
                        }
                        accepted_routes += 1;
                    }
                }
            }
        };
        session.start(now_ns(&started));
        session.connected(now_ns(&started));
        step(&mut session);
        session.recv(
            now_ns(&started),
            &Message::Open(OpenMsg {
                version: 4,
                asn: 65_001,
                hold_time: 90,
                bgp_id: 0xC000_0201,
                params: Vec::new(),
            })
            .encode(),
        );
        step(&mut session);
        session.recv(now_ns(&started), &Message::Keepalive.encode());
        step(&mut session);
        assert_eq!(session.state(), State::Established, "handshake failed");
        for r in &bgp_trace.records {
            session.recv(now_ns(&started), &r.message);
            step(&mut session);
        }
    }
    let spans_allocated = session.spans_allocated();

    // Let the writer drain, then touch every worker so each adopts the
    // final snapshot version (the last link of every span chain).
    while control.pending() > 0 {
        std::thread::sleep(Duration::from_micros(200));
    }
    std::thread::sleep(Duration::from_millis(20));
    let tail: Arc<[u32]> = Arc::from(packets[..packets.len().min(1024)].to_vec());
    for w in 0..engine.workers() {
        let mut batch = Arc::clone(&tail);
        while let Err(back) = engine.ingress().try_submit_to(w, batch) {
            batch = back;
            std::thread::sleep(Duration::from_micros(50));
        }
    }
    std::thread::sleep(Duration::from_millis(20));
    stop.store(true, Ordering::Relaxed);
    feeder.join().expect("feeder panicked");
    let span_report = engine.shutdown(Duration::from_secs(30));

    let rings = rec.drain();
    let (mut recorded, mut overwritten, mut sampled_out) = (0u64, 0u64, 0u64);
    for r in &rings {
        recorded += r.recorded;
        overwritten += r.overwritten;
        sampled_out += r.sampled_out;
    }
    let mut accepted: HashSet<u64> = HashSet::new();
    let mut applied: HashMap<u64, u64> = HashMap::new();
    let mut adopted_max = 0u64;
    let mut replica_publishes = 0u64;
    for ring in &rings {
        for ev in &ring.events {
            match ev.event_kind() {
                Some(EventKind::SpanAccept) => {
                    accepted.insert(ev.span);
                }
                Some(EventKind::UpdateApply) => {
                    applied.insert(ev.span, ev.arg);
                }
                Some(EventKind::ReplicaPublish) => replica_publishes += 1,
                Some(EventKind::SnapshotAdopt) => adopted_max = adopted_max.max(ev.arg),
                _ => {}
            }
        }
    }
    let applied_of_accepted = accepted.iter().filter(|s| applied.contains_key(s)).count();
    let served = applied.values().filter(|&&v| v <= adopted_max).count();
    println!(
        "[trace] spans: {spans_allocated} allocated, {} accepted, {applied_of_accepted} applied, \
         {served} covered by an adopted snapshot (max adopted version {adopted_max}, \
         {replica_publishes} replica publishes over {} replicas)",
        accepted.len(),
        span_report.fib_replicas
    );
    println!(
        "[trace] rings: {} rings, {recorded} events recorded, {overwritten} overwritten, \
         {sampled_out} sampled out",
        rings.len()
    );
    // The continuity gate only holds when nothing was overwritten (the
    // rings are sized for this workload, so overwrite means a bug or a
    // --full-scale rerun with undersized rings — warn, don't lie).
    if overwritten == 0 {
        let complete = accepted.len() as u64 == spans_allocated
            && applied_of_accepted == accepted.len()
            && served == applied.len();
        println!(
            "[trace] span continuity (accept -> apply -> publish -> adopt): {}",
            if complete { "ok" } else { "BROKEN" }
        );
        if !complete {
            gate_failures += 1;
        }
    } else {
        println!("[trace] span continuity: skipped ({overwritten} events overwritten)");
    }

    let chrome = chrome_trace_json(&rings);
    let results = std::path::Path::new("results");
    if let Err(e) = std::fs::create_dir_all(results)
        .and_then(|()| std::fs::write(results.join("BENCH_trace_events.json"), &chrome))
    {
        eprintln!("error: could not write results/BENCH_trace_events.json: {e}");
        std::process::exit(1);
    }
    if let Err(e) = validate_json(
        &chrome,
        &["traceEvents", "trace/lookup_batch", "trace/span_accept"],
    ) {
        eprintln!("error: results/BENCH_trace_events.json is malformed: {e}");
        std::process::exit(1);
    }
    println!(
        "wrote results/BENCH_trace_events.json ({} bytes; load in https://ui.perfetto.dev)",
        chrome.len()
    );

    // ------------------------------------------------- recorder overhead
    fn engine_mlps(
        fib: &Arc<SharedFib<u32>>,
        threads: usize,
        recorder: Option<Recorder>,
        batches: usize,
        pool: &[Arc<[u32]>],
    ) -> f64 {
        let mut cfg = EngineConfig::new(threads).pin_workers(false);
        if let Some(r) = recorder {
            cfg = cfg.recorder(r);
        }
        let engine = Engine::start(Arc::clone(fib), cfg);
        let ingress = engine.ingress();
        let t0 = Instant::now();
        for i in 0..batches {
            let mut batch = Arc::clone(&pool[i % pool.len()]);
            while let Err(back) = ingress.try_submit(batch) {
                batch = back;
                std::thread::sleep(Duration::from_micros(20));
            }
        }
        let report = engine.shutdown(Duration::from_secs(120));
        report.packets as f64 / t0.elapsed().as_secs_f64() / 1e6
    }

    let overhead_sample = 64u64;
    let bench_fib: Arc<SharedFib<u32>> = Arc::new(SharedFib::compile(dataset.to_rib(), pcfg));
    let pool: Vec<Arc<[u32]>> = packets
        .chunks(4096)
        .take(16)
        .map(|c| Arc::from(c.to_vec()))
        .collect();
    let batches = if ctx.quick { 500 } else { 4_000 };
    // One discarded warmup (page cache, thread spawn, frequency ramp),
    // then best-of-two per configuration: engine start/stop noise at
    // this scale otherwise dwarfs the effect being measured.
    engine_mlps(&bench_fib, threads.max(1), None, batches / 4, &pool);
    let run_traced = || {
        engine_mlps(
            &bench_fib,
            threads.max(1),
            Some(Recorder::new(RecorderConfig {
                capacity: 4096,
                sample: overhead_sample,
            })),
            batches,
            &pool,
        )
    };
    let run_base = || engine_mlps(&bench_fib, threads.max(1), None, batches, &pool);
    let baseline_mlps = run_base().max(run_base());
    let traced_mlps = run_traced().max(run_traced());
    let overhead_pct = (1.0 - traced_mlps / baseline_mlps) * 100.0;
    println!(
        "\n[trace] recorder overhead at 1-in-{overhead_sample} sampling: \
         {baseline_mlps:.2} Mlps untraced vs {traced_mlps:.2} Mlps traced ({overhead_pct:+.2}%)"
    );

    // ------------------------------------------------------ the artifact
    let json = format!(
        "{{\n  \"schema\": \"poptrie-trace/1\",\n  \"quick\": {},\n  \"threads\": {},\n  \
         \"phases\": {phase_json},\n  \"mean_descent_depth\": {mean_descent_depth:.3},\n  \
         \"spans\": {{\"allocated\": {spans_allocated}, \"accepted\": {}, \"applied\": \
         {applied_of_accepted}, \"served\": {served}, \"replicas\": {}, \
         \"replica_publishes\": {replica_publishes}, \"routes\": {accepted_routes}}},\n  \
         \"events\": {{\"rings\": {}, \"recorded\": {recorded}, \"overwritten\": \
         {overwritten}, \"sampled_out\": {sampled_out}}},\n  \
         \"overhead\": {{\"sample\": {overhead_sample}, \"baseline_mlps\": \
         {baseline_mlps:.3}, \"traced_mlps\": {traced_mlps:.3}, \"overhead_pct\": \
         {overhead_pct:.3}}}\n}}\n",
        ctx.quick,
        threads.max(1),
        accepted.len(),
        span_report.fib_replicas,
        rings.len(),
    );
    if let Err(e) = std::fs::write(results.join("BENCH_trace.json"), &json) {
        eprintln!("error: could not write results/BENCH_trace.json: {e}");
        std::process::exit(1);
    }
    if let Err(e) = validate_json(
        &json,
        &[
            "phases",
            "cycles_per_lookup",
            "l1d_misses_per_lookup",
            "spans",
            "overhead",
        ],
    ) {
        eprintln!("error: results/BENCH_trace.json is malformed: {e}");
        std::process::exit(1);
    }
    println!("wrote results/BENCH_trace.json");

    if gate_failures > 0 {
        eprintln!("{gate_failures} trace gate failure(s)");
        std::process::exit(1);
    }
}

/// Without the `trace` feature there is no recorder to run; say how to
/// get one.
#[cfg(not(feature = "trace"))]
fn trace_cmd(_ctx: &mut Ctx, _threads: usize) {
    eprintln!(
        "repro trace needs the flight recorder compiled in:\n\
         \n    cargo run --release -p poptrie-bench --features trace --bin repro -- trace --quick\n\
         \nThe default build deliberately contains no recorder code (see DESIGN.md §12)."
    );
    std::process::exit(2);
}

fn stats(ctx: &mut Ctx, args: &[String]) {
    let unified = args.iter().any(|a| a == "--prometheus");
    match args.iter().filter(|a| !a.starts_with("--")).nth(1).cloned() {
        Some(name) => dataset_stats(ctx, &name),
        None => telemetry_stats(ctx, unified),
    }
}

/// Structural statistics of a dataset: prefix-length histogram, SAIL
/// chunk pressure, DXR range pressure. Not a paper artifact — a tool for
/// verifying that synthesized tables sit on the right side of each
/// algorithm's structural limits.
fn dataset_stats(ctx: &mut Ctx, name: &str) {
    let dataset = if let Some(base) = name.strip_prefix("SYN1-") {
        tablegen::expand_syn1(ctx.dataset(&format!("REAL-{base}")))
    } else if let Some(base) = name.strip_prefix("SYN2-") {
        tablegen::expand_syn2(ctx.dataset(&format!("REAL-{base}")))
    } else {
        ctx.dataset(name).clone()
    };
    section(&format!("Structural statistics: {}", dataset.name));
    println!(
        "routes: {}   next hops: {}",
        dataset.len(),
        dataset.next_hop_count()
    );
    let mut hist = [0usize; 33];
    let mut chunks16 = std::collections::HashSet::new();
    let mut chunks24 = std::collections::HashSet::new();
    for (p, _) in &dataset.routes {
        hist[p.len() as usize] += 1;
        if p.len() > 16 {
            chunks16.insert(p.addr() >> 16);
        }
        if p.len() > 24 {
            chunks24.insert(p.addr() >> 8);
        }
    }
    for (len, n) in hist.iter().enumerate() {
        if *n > 0 {
            println!("  /{len:<2} {n}");
        }
    }
    println!(
        "SAIL chunk pressure: level-24 {} / 32768, level-32 {} / 32768",
        chunks16.len(),
        chunks24.len()
    );
    let rib = dataset.to_rib();
    for (label, cfg) in [
        ("D16R", poptrie_dxr::DxrConfig::d16r()),
        ("D18R", poptrie_dxr::DxrConfig::d18r()),
        (
            "D18R (modified)",
            poptrie_dxr::DxrConfig {
                direct_bits: 18,
                extended_index: true,
            },
        ),
    ] {
        match poptrie_dxr::Dxr::from_rib(&rib, cfg) {
            Ok(d) => println!("{label} ranges: {}", d.range_count()),
            Err(e) => println!("{label}: N/A ({e})"),
        }
    }
    match poptrie_sail::Sail::from_rib(&rib) {
        Ok(s) => {
            let (c24, c32) = s.chunk_counts();
            println!("SAIL: ok ({c24} level-24 chunks, {c32} level-32 chunks)");
        }
        Err(e) => println!("SAIL: N/A ({e})"),
    }
}

/// The live-telemetry replay: a seeded lookup + churn workload against a
/// `SharedFib`, with every process-wide counter reconciled against what
/// the script did, a Prometheus-format dump, and a machine-readable
/// `results/BENCH_telemetry.json`. The churn phase is the Fig. 12 regime
/// (lookups served while updates land); the reconciliation is the
/// acceptance check that the instrumentation counts what it claims to.
///
/// With `--prometheus` the dump additionally exercises the forwarding
/// engine and a BGP session and merges their registries into the core
/// FIB registry, so one scrape covers the whole stack
/// (`poptrie_*` + `poptrie_engine_*` + `poptrie_bgp_*`).
#[cfg(feature = "telemetry")]
fn telemetry_stats(ctx: &mut Ctx, unified: bool) {
    use poptrie::sync::SharedFib;
    use poptrie::telemetry;

    section("Live telemetry: seeded lookup + churn replay (REAL-RENET)");
    telemetry::reset();
    let dataset = ctx.dataset("REAL-RENET").clone();
    let shared = SharedFib::compile(
        dataset.to_rib(),
        PoptrieConfig::new()
            .direct_bits(18)
            .aggregate(false)
            .build()
            .unwrap(),
    );

    // Lookup phase: half the trace scalar, half batched, one snapshot.
    let trace = RealTrace::synthesize(&dataset, TraceConfig::default());
    let packets = trace.packet_array(if ctx.quick { 1 << 16 } else { 1 << 20 });
    let half = packets.len() / 2;
    let snap = shared.snapshot();
    let mut acc = 0u64;
    for &k in &packets[..half] {
        acc = acc.wrapping_add(snap.lookup_raw(k) as u64);
    }
    let mut out = vec![0 as poptrie::NextHop; packets.len() - half];
    snap.lookup_batch(&packets[half..], &mut out);
    acc = acc.wrapping_add(out.iter().map(|&nh| nh as u64).sum::<u64>());
    drop(snap);

    // Churn phase: an adversarial seeded stream through the RCU writer,
    // with a reader parked on a pre-churn snapshot for the first half so
    // the outstanding-snapshot gauge sees real pinning.
    let events = churn_stream::<u32>(&ChurnConfig {
        seed: 0xF1612,
        events: if ctx.quick { 2_000 } else { 20_000 },
        direct_bits: 18,
        ..ChurnConfig::default()
    });
    let parked = shared.snapshot();
    let (mut announces, mut withdraws, mut publishes) = (0u64, 0u64, 0u64);
    for (i, ev) in events.iter().enumerate() {
        if i == events.len() / 2 {
            drop(shared.snapshot()); // touch, then release
        }
        match *ev {
            ChurnEvent::Announce(p, nh) => {
                // `SharedFib::insert` publishes unconditionally; the
                // update counter moves only when the RIB changed.
                if shared.insert(p, nh).unwrap().changed() {
                    announces += 1;
                }
                publishes += 1;
            }
            ChurnEvent::Withdraw(p) => {
                // A withdraw of an absent prefix publishes nothing.
                if shared.remove(p).unwrap().changed() {
                    withdraws += 1;
                    publishes += 1;
                }
            }
        }
    }
    drop(parked);

    // Reconcile every scripted total against the counters.
    let snap = telemetry::snapshot().attach_structure(&*shared.snapshot());
    let mut failures = 0u32;
    let mut check = |label: &str, got: u64, want: u64| {
        let ok = got == want;
        println!(
            "  {:<38} {:>12} want {:>12}  {}",
            label,
            got,
            want,
            if ok { "ok" } else { "MISMATCH" }
        );
        if !ok {
            failures += 1;
        }
    };
    println!("reconciliation (counter vs script):");
    check("lookups (scalar)", snap.lookups_scalar, half as u64);
    check(
        "lookups (batched)",
        snap.lookups_batched,
        (packets.len() - half) as u64,
    );
    check(
        "depth histogram mass",
        snap.depth.iter().sum::<u64>(),
        packets.len() as u64,
    );
    check(
        "direct hits + leaf resolutions",
        snap.direct_hits + snap.leafvec_resolutions + snap.vector_resolutions,
        packets.len() as u64,
    );
    check("applied announces", snap.announces, announces);
    check("applied withdraws", snap.withdraws, withdraws);
    check(
        "update latency histogram mass",
        snap.update_latency.iter().sum::<u64>(),
        announces + withdraws,
    );
    check("rcu publishes", snap.rcu_publishes, publishes);
    println!(
        "  (lookup checksum {acc:#x}, peak outstanding snapshots {})",
        snap.rcu_outstanding_peak
    );

    println!();
    let mut reg = snap.registry();
    if unified {
        println!("[stats] --prometheus: merging engine and BGP registries into the scrape");
        reg.merge(whole_stack_registry(ctx.quick));
    }
    print!("{}", reg.render_prometheus());

    let json = reg.render_json();
    let path = std::path::Path::new("results");
    if let Err(e) = std::fs::create_dir_all(path)
        .and_then(|()| std::fs::write(path.join("BENCH_telemetry.json"), &json))
    {
        eprintln!("warning: could not write results/BENCH_telemetry.json: {e}");
    } else {
        println!("\nwrote results/BENCH_telemetry.json");
    }

    if failures > 0 {
        eprintln!("{failures} reconciliation mismatch(es)");
        std::process::exit(1);
    }
}

/// One scrape for the whole stack: briefly exercise the forwarding
/// engine (lookups + one control-plane announce) and a BGP session
/// (handshake + one UPDATE), then return their telemetry registries
/// merged, so `repro stats --prometheus` emits core, engine and BGP
/// metric families in a single Prometheus document.
#[cfg(feature = "telemetry")]
fn whole_stack_registry(quick: bool) -> poptrie_telemetry::TelemetryRegistry {
    use poptrie::sync::SharedFib;
    use poptrie_bgp::wire::{Message, OpenMsg, UpdateMsg};
    use poptrie_bgp::{Session, SessionConfig, State};
    use poptrie_engine::{Engine, EngineConfig};
    use poptrie_rib::{Prefix, RadixTree};
    use std::net::Ipv4Addr;
    use std::sync::Arc;
    use std::time::Duration;

    // A small FIB is enough: the point is populating every metric
    // family, not load-testing.
    let mut rib: RadixTree<u32, poptrie::NextHop> = RadixTree::new();
    for i in 0..64u32 {
        rib.insert(Prefix::new(i << 24, 8), (i % 8 + 1) as poptrie::NextHop);
    }
    let pcfg = PoptrieConfig::new().direct_bits(18).build().unwrap();
    let fib: Arc<SharedFib<u32>> = Arc::new(SharedFib::compile(rib, pcfg));
    let engine = Engine::start(Arc::clone(&fib), EngineConfig::new(2).pin_workers(false));
    let ingress = engine.ingress();
    let keys: Arc<[u32]> = Arc::from(
        (0..1024u32)
            .map(|i| i.wrapping_mul(0x9E37_79B9))
            .collect::<Vec<u32>>(),
    );
    for _ in 0..(if quick { 8 } else { 64 }) {
        let mut batch = Arc::clone(&keys);
        while let Err(back) = ingress.try_submit(batch) {
            batch = back;
            std::thread::sleep(Duration::from_micros(20));
        }
    }
    let control = engine.control();
    let mut u = poptrie::sync::RouteUpdate::Announce(Prefix::new(0xC633_6400, 24), 3);
    while let Err(back) = control.send(u) {
        u = back;
        std::thread::sleep(Duration::from_micros(20));
    }
    let engine_telemetry = engine.telemetry();
    engine.shutdown(Duration::from_secs(10));
    let mut reg = engine_telemetry.registry();

    // The BGP side: an in-memory handshake plus one UPDATE populates the
    // session, message and route counters.
    let mut session = Session::new(SessionConfig::default());
    let session_stats = session.stats();
    session.start(0);
    session.connected(1);
    session.recv(
        2,
        &Message::Open(OpenMsg {
            version: 4,
            asn: 65_001,
            hold_time: 90,
            bgp_id: 0xC000_0201,
            params: Vec::new(),
        })
        .encode(),
    );
    session.recv(3, &Message::Keepalive.encode());
    debug_assert_eq!(session.state(), State::Established);
    session.recv(
        4,
        &Message::Update(UpdateMsg {
            announced_v4: vec![Prefix::new(0xCB00_7100, 24)],
            next_hop_v4: Some(Ipv4Addr::new(192, 0, 2, 9)),
            ..UpdateMsg::default()
        })
        .encode(),
    );
    session.drain_actions();
    session.drain_events();
    reg.merge(session_stats.registry());
    reg
}

/// Without the `telemetry` feature the counters do not exist; point at
/// the feature and fall back to the structural diagnostics.
#[cfg(not(feature = "telemetry"))]
fn telemetry_stats(ctx: &mut Ctx, _unified: bool) {
    eprintln!(
        "repro stats with no dataset argument is the live-telemetry replay, which\n\
         needs the counters compiled in:\n\
         \n    cargo run --release -p poptrie-bench --features telemetry --bin repro -- stats\n\
         \nfalling back to structural diagnostics of REAL-Tier1-A.\n"
    );
    dataset_stats(ctx, "REAL-Tier1-A");
}

// ----------------------------------------------------------------- §4.9

fn updates(ctx: &mut Ctx) {
    section("§4.9: update performance (Poptrie18, incremental)");
    // BGP update replay against RV-linx-p52 (the paper's dataset), with
    // the paper's announce/withdraw mix.
    let base = ctx.dataset("RV-linx-p52").clone();
    let stream = tablegen::synthesize_update_stream(&base, 18_141, 5_305);
    let pcfg = PoptrieConfig::new()
        .direct_bits(18)
        .aggregate(false)
        .build()
        .unwrap();
    let mut fib = Fib::compile(base.to_rib(), pcfg);
    let before = fib.stats();
    let start = Instant::now();
    for ev in &stream {
        match *ev {
            tablegen::UpdateEvent::Announce(p, nh) => {
                fib.insert(p, nh).unwrap();
            }
            tablegen::UpdateEvent::Withdraw(p) => {
                fib.remove(p).unwrap();
            }
        }
    }
    let elapsed = start.elapsed();
    let after = fib.stats();
    let n = stream.len() as f64;
    println!(
        "replayed {} updates (18,141 announce / 5,305 withdraw) in {:.2} ms",
        stream.len(),
        elapsed.as_secs_f64() * 1e3
    );
    println!(
        "  {:.2} us/update; per update: {:.3} direct slots, {:.2} nodes built, {:.2} leaves built",
        elapsed.as_secs_f64() * 1e6 / n,
        (after.direct_replacements - before.direct_replacements) as f64 / n,
        (after.nodes_allocated - before.nodes_allocated) as f64 / n,
        (after.leaves_allocated - before.leaves_allocated) as f64 / n,
    );

    // Full-route insertion in randomized order (the paper's second
    // §4.9 input).
    for ds in ["REAL-Tier1-A", "REAL-Tier1-B"] {
        let dataset = ctx.dataset(ds).clone();
        let mut routes = dataset.routes.clone();
        // Deterministic shuffle ("the order of the entries is randomized").
        let mut rng = Xorshift128::new(0x5405);
        for i in (1..routes.len()).rev() {
            routes.swap(i, rng.next_u32() as usize % (i + 1));
        }
        let mut fib: Fib<u32> = Fib::with_config(pcfg);
        let start = Instant::now();
        for (p, nh) in routes {
            fib.insert(p, nh).unwrap();
        }
        let dt = start.elapsed().as_secs_f64();
        println!(
            "full-route randomized insertion, {}: {:.2} s total, {:.2} us/prefix",
            ds,
            dt,
            dt * 1e6 / dataset.len() as f64
        );
    }
}

// --------------------------------------------------------------- audit

fn print_report(label: &str, r: poptrie::AuditReport) {
    println!(
        "  {label}: audit ok — {} inodes / {} leaves in {} node + {} leaf blocks \
         ({} + {} rounded slots), depth {}",
        r.inodes,
        r.leaves,
        r.node_blocks,
        r.leaf_blocks,
        r.node_slots_rounded,
        r.leaf_slots_rounded,
        r.max_depth
    );
}

/// Replay a seeded adversarial churn stream against a fresh FIB and a
/// RIB oracle, probing the touched prefix's address range after every
/// event and auditing the structure periodically.
fn churn_audit<K: poptrie_bitops::Bits>(label: &str, cfg: &ChurnConfig, audit_every: usize) {
    let stream = churn_stream::<K>(cfg);
    let mut oracle: poptrie_rib::RadixTree<K, poptrie_rib::NextHop> = poptrie_rib::RadixTree::new();
    let mut fib: Fib<K> = Fib::with_config(
        PoptrieConfig::new()
            .direct_bits(cfg.direct_bits)
            .aggregate(false)
            .build()
            .unwrap(),
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x0b5e_55ed);
    let (mut effective, mut checked) = (0u64, 0u64);
    let start = Instant::now();
    for (i, ev) in stream.iter().enumerate() {
        match *ev {
            ChurnEvent::Announce(p, nh) => {
                if fib.insert(p, nh).unwrap().changed() {
                    effective += 1;
                }
                oracle.insert(p, nh);
            }
            ChurnEvent::Withdraw(p) => {
                if fib.remove(p).unwrap().changed() {
                    effective += 1;
                }
                oracle.remove(p);
            }
        }
        let p = ev.prefix();
        let inside = K::from_u128(
            p.first_addr().to_u128()
                | (rng.gen::<u128>() & !K::prefix_mask(p.len() as u32).to_u128()),
        );
        for key in [p.first_addr(), p.last_addr(), inside] {
            let want = Lpm::lookup(&oracle, key);
            assert_eq!(
                fib.lookup(key),
                want,
                "seed {} event {i}: key {:#x} diverged from the RIB oracle",
                cfg.seed,
                key.to_u128()
            );
            checked += 1;
        }
        if (i + 1) % audit_every == 0 {
            fib.poptrie()
                .audit()
                .unwrap_or_else(|e| panic!("seed {} event {i}: {e}", cfg.seed));
        }
    }
    let r = fib
        .poptrie()
        .audit()
        .unwrap_or_else(|e| panic!("seed {}: final audit: {e}", cfg.seed));
    println!(
        "  {label}: {} events ({} effective), {} oracle-checked lookups in {:.2} s",
        stream.len(),
        effective,
        checked,
        start.elapsed().as_secs_f64()
    );
    print_report(label, r);
}

fn audit(ctx: &mut Ctx) {
    section("structural audit: fresh builds, §4.9 replay, churn fuzz");

    // 1. Fresh compilations must audit clean, IPv4 and IPv6.
    let names: &[&str] = if ctx.quick {
        &["RV-sydney-p0"]
    } else {
        &["REAL-Tier1-A", "RV-linx-p52"]
    };
    for name in names {
        let rib = ctx.dataset(name).clone().to_rib();
        let t: Poptrie<u32> = Builder::new().direct_bits(18).aggregate(false).build(&rib);
        print_report(name, t.audit().expect("fresh v4 build must audit clean"));
    }
    let d6 = tablegen::ipv6_dataset("RV6-linx-p0");
    let t6: Poptrie<u128> = Builder::new()
        .direct_bits(16)
        .aggregate(false)
        .build(&d6.to_rib());
    print_report(
        "RV6-linx-p0",
        t6.audit().expect("fresh v6 build must audit clean"),
    );

    // 2. The §4.9 update replay, audited every 2k events, under both
    // update strategies.
    let base = ctx
        .dataset(if ctx.quick {
            "RV-sydney-p0"
        } else {
            "RV-linx-p52"
        })
        .clone();
    let (ann, wd) = if ctx.quick {
        (2_000, 600)
    } else {
        (18_141, 5_305)
    };
    let stream = tablegen::synthesize_update_stream(&base, ann, wd);
    for (label, strategy) in [
        ("replay/NodeRefresh", UpdateStrategy::NodeRefresh),
        ("replay/SubtreeRebuild", UpdateStrategy::SubtreeRebuild),
    ] {
        let mut fib = Fib::compile(
            base.to_rib(),
            PoptrieConfig::new()
                .direct_bits(18)
                .aggregate(false)
                .build()
                .unwrap(),
        );
        fib.set_update_strategy(strategy);
        for (i, ev) in stream.iter().enumerate() {
            match *ev {
                tablegen::UpdateEvent::Announce(p, nh) => {
                    fib.insert(p, nh).unwrap();
                }
                tablegen::UpdateEvent::Withdraw(p) => {
                    fib.remove(p).unwrap();
                }
            }
            if (i + 1) % 2_000 == 0 {
                fib.poptrie()
                    .audit()
                    .unwrap_or_else(|e| panic!("{label} event {i}: {e}"));
            }
        }
        print_report(label, fib.poptrie().audit().expect("post-replay audit"));
    }

    // 3. Seeded adversarial churn, cross-checked against the RIB oracle
    // on every event (the bounded CI variant of tests/churn_fuzz.rs).
    let events = if ctx.quick { 10_000 } else { 100_000 };
    churn_audit::<u32>(
        "churn/u32",
        &ChurnConfig {
            seed: 0x0417_0001,
            events,
            direct_bits: 8,
            pool: 256,
            max_nh: 13,
        },
        2_000,
    );
    churn_audit::<u128>(
        "churn/u128",
        &ChurnConfig {
            seed: 0x0417_0002,
            events,
            direct_bits: 8,
            pool: 256,
            max_nh: 13,
        },
        2_000,
    );
}
