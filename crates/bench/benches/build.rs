//! Criterion benches for FIB compilation — the Table 2 "compilation"
//! column and the build-time side of Table 3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use poptrie::{Builder, Node16, Node24};
use poptrie_dxr::{Dxr, DxrConfig};
use poptrie_sail::Sail;
use poptrie_tablegen::{TableKind, TableSpec};
use poptrie_treebitmap::{TreeBitmap4, TreeBitmap64};

fn bench_rib(n: usize) -> poptrie_rib::RadixTree<u32, u16> {
    TableSpec {
        name: format!("criterion-build-{n}"),
        prefixes: n,
        next_hops: 16,
        kind: TableKind::Real,
    }
    .generate()
    .to_rib()
}

/// Table 2: Poptrie compilation across the option matrix.
fn build_poptrie_variants(c: &mut Criterion) {
    let rib = bench_rib(100_000);
    let mut group = c.benchmark_group("build_poptrie");
    group.sample_size(10);
    for s in [0u8, 16, 18] {
        group.bench_with_input(BenchmarkId::new("basic", s), &s, |b, &s| {
            b.iter(|| {
                Builder::<u32, Node16>::new()
                    .direct_bits(s)
                    .aggregate(false)
                    .build(&rib)
            })
        });
        group.bench_with_input(BenchmarkId::new("leafvec", s), &s, |b, &s| {
            b.iter(|| {
                Builder::<u32, Node24>::new()
                    .direct_bits(s)
                    .aggregate(false)
                    .build(&rib)
            })
        });
        group.bench_with_input(BenchmarkId::new("leafvec_aggregated", s), &s, |b, &s| {
            b.iter(|| {
                Builder::<u32, Node24>::new()
                    .direct_bits(s)
                    .aggregate(true)
                    .build(&rib)
            })
        });
    }
    group.finish();
}

/// Build times of the baselines, for context against Table 2.
fn build_baselines(c: &mut Criterion) {
    let rib = bench_rib(100_000);
    let mut group = c.benchmark_group("build_baselines");
    group.sample_size(10);
    group.bench_function("treebitmap4", |b| b.iter(|| TreeBitmap4::from_rib(&rib)));
    group.bench_function("treebitmap64", |b| b.iter(|| TreeBitmap64::from_rib(&rib)));
    group.bench_function("sail", |b| b.iter(|| Sail::from_rib(&rib).expect("ok")));
    group.bench_function("d16r", |b| {
        b.iter(|| Dxr::from_rib(&rib, DxrConfig::d16r()).expect("ok"))
    });
    group.bench_function("d18r", |b| {
        b.iter(|| Dxr::from_rib(&rib, DxrConfig::d18r()).expect("ok"))
    });
    group.finish();
}

/// §3's route aggregation on its own (it dominates aggregated builds).
fn aggregate_rib(c: &mut Criterion) {
    let rib = bench_rib(100_000);
    let mut group = c.benchmark_group("route_aggregation");
    group.sample_size(10);
    group.bench_function("aggregated_100k", |b| b.iter(|| rib.aggregated()));
    group.finish();
}

criterion_group!(
    benches,
    build_poptrie_variants,
    build_baselines,
    aggregate_rib
);
criterion_main!(benches);
