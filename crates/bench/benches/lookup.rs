//! Criterion benches for lookup rates — the statistically-rigorous
//! companion to `repro table3` / `fig9` / `fig12` (§4.5, §4.7).
//!
//! Criterion's methodology (warm-up, outlier rejection, confidence
//! intervals) doesn't scale to the paper's 35-dataset sweep, so these
//! benches run every algorithm on one production-shaped table and on the
//! paper's three synthetic traffic patterns; the `repro` binary covers
//! the full sweeps.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use poptrie_bench::algorithms::{build_all_v4, Algo, BuildOutcome};
use poptrie_tablegen::{TableKind, TableSpec};
use poptrie_traffic::{repeated_v4, sequential_v4, RealTrace, TraceConfig, Xorshift128};
use std::hint::black_box;

fn bench_table(n: usize) -> poptrie_tablegen::Dataset {
    TableSpec {
        name: format!("criterion-{n}"),
        prefixes: n,
        next_hops: 16,
        kind: TableKind::Real,
    }
    .generate()
}

/// Table 3 / Figure 9: random-pattern lookup rate per algorithm.
fn lookup_random(c: &mut Criterion) {
    let dataset = bench_table(100_000);
    let mut algos = Algo::table3().to_vec();
    algos.push(Algo::Dir248);
    algos.push(Algo::Lulea);
    let built = build_all_v4(&algos, &dataset);
    let mut group = c.benchmark_group("lookup_random");
    group.throughput(Throughput::Elements(1));
    for (algo, outcome) in &built {
        let BuildOutcome::Ok(fib) = outcome else {
            continue;
        };
        group.bench_function(format!("{algo:?}"), |b| {
            let mut rng = Xorshift128::new(0xBEEF);
            b.iter(|| fib.lookup(black_box(rng.next_u32())))
        });
    }
    group.finish();
}

/// §4.5's locality patterns: sequential and repeated, on the algorithms
/// the paper discusses there.
fn lookup_locality(c: &mut Criterion) {
    let dataset = bench_table(100_000);
    let built = build_all_v4(
        &[Algo::Sail, Algo::D18r, Algo::Poptrie16, Algo::Poptrie18],
        &dataset,
    );
    let sequential: Vec<u32> = sequential_v4(0x0A00_0000, 1 << 16).collect();
    let repeated: Vec<u32> = repeated_v4(7, 1 << 16, 16).collect();
    for (pattern_name, keys) in [("sequential", &sequential), ("repeated", &repeated)] {
        let mut group = c.benchmark_group(format!("lookup_{pattern_name}"));
        group.throughput(Throughput::Elements(keys.len() as u64));
        for (algo, outcome) in &built {
            let BuildOutcome::Ok(fib) = outcome else {
                continue;
            };
            group.bench_function(format!("{algo:?}"), |b| {
                b.iter(|| {
                    let mut acc = 0u64;
                    for &k in keys.iter() {
                        acc = acc.wrapping_add(fib.lookup(k).unwrap_or(0) as u64);
                    }
                    acc
                })
            });
        }
        group.finish();
    }
}

/// Figure 12: the real-trace pattern (synthetic MAWI stand-in).
fn lookup_trace(c: &mut Criterion) {
    let dataset = bench_table(100_000);
    let trace = RealTrace::synthesize(
        &dataset,
        TraceConfig {
            destinations: 64_000,
            ..TraceConfig::default()
        },
    );
    let packets = trace.packet_array(1 << 16);
    let built = build_all_v4(
        &[
            Algo::TreeBitmap,
            Algo::Sail,
            Algo::D16r,
            Algo::Poptrie16,
            Algo::D18r,
            Algo::Poptrie18,
        ],
        &dataset,
    );
    let mut group = c.benchmark_group("lookup_real_trace");
    group.throughput(Throughput::Elements(packets.len() as u64));
    for (algo, outcome) in &built {
        let BuildOutcome::Ok(fib) = outcome else {
            continue;
        };
        group.bench_function(format!("{algo:?}"), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for &k in packets.iter() {
                    acc = acc.wrapping_add(fib.lookup(k).unwrap_or(0) as u64);
                }
                acc
            })
        });
    }
    group.finish();
}

/// Table 6: IPv6 lookup, Poptrie s = 0/16/18 and the IPv6 DXR baseline.
fn lookup_v6(c: &mut Criterion) {
    let table = poptrie_tablegen::ipv6_dataset("REAL-Tier1-A-v6");
    let rib = table.to_rib();
    let mut group = c.benchmark_group("lookup_v6_random");
    group.throughput(Throughput::Elements(1));
    for s in [0u8, 16, 18] {
        let fib: poptrie::Poptrie<u128> = poptrie::Builder::new().direct_bits(s).build(&rib);
        group.bench_function(format!("Poptrie{s}"), |b| {
            let mut rng = Xorshift128::new(0xBEEF);
            b.iter(|| fib.lookup(black_box((0x20u128 << 120) | (rng.next_u128() >> 8))))
        });
    }
    let dxr = poptrie_dxr::Dxr6::from_rib(&rib, 18).expect("within limits");
    group.bench_function("D18R-IPv6", |b| {
        let mut rng = Xorshift128::new(0xBEEF);
        b.iter(|| dxr.lookup(black_box((0x20u128 << 120) | (rng.next_u128() >> 8))))
    });
    group.finish();
}

/// Ablation (DESIGN.md): cost of the `Option` wrapper vs `lookup_raw` vs
/// a batched materializing loop.
fn lookup_call_style(c: &mut Criterion) {
    let dataset = bench_table(100_000);
    let rib = dataset.to_rib();
    let fib: poptrie::Poptrie<u32> = poptrie::Builder::new().direct_bits(18).build(&rib);
    let keys: Vec<u32> = Xorshift128::new(3).take(1 << 14).collect();
    let mut group = c.benchmark_group("poptrie18_call_style");
    group.throughput(Throughput::Elements(keys.len() as u64));
    group.bench_function("lookup_option", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &k in &keys {
                acc = acc.wrapping_add(fib.lookup(k).unwrap_or(0) as u64);
            }
            acc
        })
    });
    group.bench_function("lookup_raw", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &k in &keys {
                acc = acc.wrapping_add(fib.lookup_raw(k) as u64);
            }
            acc
        })
    });
    group.bench_function("lookup_batched_materialize", |b| {
        b.iter_batched(
            || Vec::with_capacity(keys.len()),
            |mut out: Vec<u16>| {
                out.extend(keys.iter().map(|&k| fib.lookup_raw(k)));
                out
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    lookup_random,
    lookup_locality,
    lookup_trace,
    lookup_v6,
    lookup_call_style
);
criterion_main!(benches);
