//! Criterion micro-benches for the measurement substrate itself:
//! the xorshift generator whose ~1.2 ns overhead the paper measures and
//! deliberately leaves inside its results (§4.2), the `extract`/popcount
//! primitives of Algorithm 1, and trace generation.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use poptrie_bitops::{rank1, Bits};
use poptrie_traffic::{RealTrace, TraceConfig, Xorshift128, Xorshift32};
use std::hint::black_box;

/// §4.2: "The measured average overhead of the random number generator
/// was 1.22 nanoseconds per generation."
fn xorshift(c: &mut Criterion) {
    let mut group = c.benchmark_group("xorshift");
    group.throughput(Throughput::Elements(1));
    group.bench_function("xorshift32", |b| {
        let mut rng = Xorshift32::new(1);
        b.iter(|| rng.next_u32())
    });
    group.bench_function("xorshift128", |b| {
        let mut rng = Xorshift128::new(1);
        b.iter(|| rng.next_u32())
    });
    group.bench_function("xorshift128_u128", |b| {
        let mut rng = Xorshift128::new(1);
        b.iter(|| rng.next_u128())
    });
    group.finish();
}

/// The two primitives in Poptrie's inner loop (Algorithm 1, lines 4, 7).
fn primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("primitives");
    group.throughput(Throughput::Elements(1));
    group.bench_function("extract_u32", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(0x9E37_79B9);
            black_box(i).extract(18, 6)
        })
    });
    group.bench_function("extract_u128", |b| {
        let mut i = 0u128;
        b.iter(|| {
            i = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
            black_box(i).extract(60, 6)
        })
    });
    group.bench_function("rank1", |b| {
        let mut v = 0xDEAD_BEEF_CAFE_F00Du64;
        b.iter(|| {
            v = v.rotate_left(7);
            rank1(black_box(v), 37)
        })
    });
    group.finish();
}

/// Trace synthesis and replay (Figure 12 preprocessing).
fn trace(c: &mut Criterion) {
    let dataset = poptrie_tablegen::TableSpec {
        name: "criterion-trace".into(),
        prefixes: 50_000,
        next_hops: 16,
        kind: poptrie_tablegen::TableKind::Real,
    }
    .generate();
    let mut group = c.benchmark_group("trace");
    group.sample_size(10);
    group.bench_function("synthesize_64k_destinations", |b| {
        b.iter(|| {
            RealTrace::synthesize(
                &dataset,
                TraceConfig {
                    destinations: 64_000,
                    ..TraceConfig::default()
                },
            )
        })
    });
    let trace = RealTrace::synthesize(
        &dataset,
        TraceConfig {
            destinations: 64_000,
            ..TraceConfig::default()
        },
    );
    group.throughput(Throughput::Elements(1 << 16));
    group.bench_function("replay_64k_packets", |b| {
        b.iter(|| trace.packets(1 << 16).map(u64::from).sum::<u64>())
    });
    group.finish();
}

criterion_group!(benches, xorshift, primitives, trace);
criterion_main!(benches);
