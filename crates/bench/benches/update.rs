//! Criterion benches for incremental update (§3.5 / §4.9): single-route
//! announce/withdraw latency and update-stream replay, plus the buddy
//! allocator that absorbs the churn.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use poptrie::{Fib, PoptrieConfig};
use poptrie_buddy::Buddy;
use poptrie_rib::Prefix;
use poptrie_tablegen::{synthesize_update_stream, TableKind, TableSpec, UpdateEvent};
use poptrie_traffic::Xorshift128;

fn base_fib(n: usize) -> (poptrie_tablegen::Dataset, Fib<u32>) {
    let dataset = TableSpec {
        name: format!("criterion-update-{n}"),
        prefixes: n,
        next_hops: 16,
        kind: TableKind::RouteViews,
    }
    .generate();
    let cfg = PoptrieConfig::new()
        .direct_bits(18)
        .aggregate(false)
        .build()
        .unwrap();
    let fib = Fib::compile(dataset.to_rib(), cfg);
    (dataset, fib)
}

/// §4.9's core number: microseconds per route update on a full FIB.
fn single_update(c: &mut Criterion) {
    let (_, mut fib) = base_fib(100_000);
    let mut group = c.benchmark_group("incremental_update");
    let mut rng = Xorshift128::new(0x0bad);
    group.bench_function("announce_replace_24", |b| {
        b.iter(|| {
            let p = Prefix::new(rng.next_u32(), 24);
            fib.insert(p, (rng.next_u32() % 16 + 1) as u16);
            p
        })
    });
    group.bench_function("announce_then_withdraw_32", |b| {
        b.iter(|| {
            let p = Prefix::new(rng.next_u32(), 32);
            fib.insert(p, 5);
            fib.remove(p)
        })
    });
    // Short prefixes touch 2^(s-len) direct slots (§3.5).
    group.bench_function("announce_then_withdraw_12", |b| {
        b.iter(|| {
            let p = Prefix::new(rng.next_u32(), 12);
            fib.insert(p, 5);
            fib.remove(p)
        })
    });
    group.finish();
}

/// Replay of a BGP-mix stream (announce-heavy, as §4.9's archive).
fn stream_replay(c: &mut Criterion) {
    let (dataset, fib) = base_fib(100_000);
    let stream = synthesize_update_stream(&dataset, 800, 200);
    let mut group = c.benchmark_group("update_stream");
    group.sample_size(10);
    group.bench_function("replay_1000_events", |b| {
        b.iter_batched(
            || fib.clone(),
            |mut fib| {
                for ev in &stream {
                    match *ev {
                        UpdateEvent::Announce(p, nh) => {
                            fib.insert(p, nh);
                        }
                        UpdateEvent::Withdraw(p) => {
                            fib.remove(p);
                        }
                    }
                }
                fib
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

/// Ablation (DESIGN.md): the §3.5 node-reuse refresh vs tearing down and
/// recompiling the affected slot subtree.
fn strategy_ablation(c: &mut Criterion) {
    use poptrie::update::UpdateStrategy;
    let (_, fib) = base_fib(100_000);
    let mut group = c.benchmark_group("update_strategy");
    for (label, strategy) in [
        ("node_refresh", UpdateStrategy::NodeRefresh),
        ("subtree_rebuild", UpdateStrategy::SubtreeRebuild),
    ] {
        let mut fib = fib.clone();
        fib.set_update_strategy(strategy);
        let mut rng = Xorshift128::new(0xab1a);
        group.bench_function(label, |b| {
            b.iter(|| {
                let p = Prefix::new(rng.next_u32(), 24);
                fib.insert(p, (rng.next_u32() % 16 + 1) as u16)
            })
        });
    }
    group.finish();
}

/// The buddy allocator under FIB-update-like churn.
fn buddy_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("buddy_allocator");
    group.bench_function("alloc_free_sibling_runs", |b| {
        let mut buddy = Buddy::with_capacity(1 << 16);
        let mut rng = Xorshift128::new(9);
        let mut live: Vec<(u32, u32)> = Vec::new();
        b.iter(|| {
            if live.len() < 256 && rng.next_u32().is_multiple_of(2) {
                let n = rng.next_u32() % 64 + 1;
                live.push((buddy.alloc(n), n));
            } else if let Some((off, n)) = live.pop() {
                buddy.free(off, n);
            }
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    single_update,
    stream_replay,
    strategy_ablation,
    buddy_churn
);
criterion_main!(benches);
