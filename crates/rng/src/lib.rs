//! Deterministic pseudo-random generation for the Poptrie workspace.
//!
//! The paper's evaluation generates traffic with Marsaglia's xorshift
//! (reference \[22\]): "each random number is generated just before the
//! lookup routine using the xorshift, which allocates only four 32-bit
//! variables". This crate holds those generators ([`Xorshift32`],
//! [`Xorshift128`]) plus a thin `rand`-flavoured convenience layer
//! ([`StdRng`], [`prelude`]) so the dataset synthesizer and the test
//! suites need no external crates — the whole workspace builds and tests
//! with `cargo --offline`.
//!
//! The convenience API deliberately mirrors the subset of `rand` the
//! workspace used (`seed_from_u64`, `gen`, `gen_range`, `gen_bool`,
//! `choose`, `shuffle`) so call sites read the same; the distributions are
//! *not* bit-compatible with the `rand` crate, only deterministic per
//! seed across runs and platforms.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod xorshift;

pub use xorshift::{Xorshift128, Xorshift32};

/// The subset of the `rand` prelude the workspace uses.
pub mod prelude {
    pub use crate::{IteratorRandom, SliceRandom, StdRng};
}

/// A seedable deterministic generator built on [`Xorshift128`] — the
/// workspace stand-in for `rand::rngs::StdRng`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StdRng {
    core: Xorshift128,
}

impl StdRng {
    /// Seed deterministically from a `u64` (same call shape as
    /// `rand::SeedableRng::seed_from_u64`).
    pub fn seed_from_u64(seed: u64) -> Self {
        // Fold the two halves through the xorshift128 seeder so distinct
        // 64-bit seeds give distinct states.
        let mut core = Xorshift128::new((seed as u32) ^ 0xA511_E9B3);
        let hi = (seed >> 32) as u32;
        core = Xorshift128::new(core.next_u32() ^ hi);
        StdRng { core }
    }

    /// Next 32 random bits.
    #[inline(always)]
    pub fn next_u32(&mut self) -> u32 {
        self.core.next_u32()
    }

    /// Next 64 random bits (two 32-bit draws).
    #[inline(always)]
    pub fn next_u64(&mut self) -> u64 {
        let hi = self.core.next_u32() as u64;
        (hi << 32) | self.core.next_u32() as u64
    }

    /// A uniform value of type `T` over its full domain (`f64` in
    /// `[0, 1)`), mirroring `rand::Rng::gen`.
    #[inline]
    pub fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value in `range` (half-open or inclusive integer
    /// ranges), mirroring `rand::Rng::gen_range`. Panics on an empty
    /// range.
    #[inline]
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p` (`0.0 ..= 1.0`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.gen::<f64>() < p
    }

    /// A uniform index in `0..n`. `n` must be non-zero.
    #[inline]
    fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        // Widening multiply avoids modulo bias without a rejection loop;
        // determinism per seed is what the workspace needs.
        (((self.next_u64() as u128) * (n as u128)) >> 64) as usize
    }
}

/// Types [`StdRng::gen`] can produce uniformly.
pub trait Standard: Sized {
    /// Draw one uniform value.
    fn sample(rng: &mut StdRng) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty => $draw:expr),* $(,)?) => {$(
        impl Standard for $t {
            #[inline]
            fn sample(rng: &mut StdRng) -> Self {
                #[allow(clippy::redundant_closure_call)]
                ($draw)(rng)
            }
        }
    )*};
}

impl_standard_uint! {
    u8   => |r: &mut StdRng| r.next_u32() as u8,
    u16  => |r: &mut StdRng| r.next_u32() as u16,
    u32  => |r: &mut StdRng| r.next_u32(),
    u64  => |r: &mut StdRng| r.next_u64(),
    usize => |r: &mut StdRng| r.next_u64() as usize,
    u128 => |r: &mut StdRng| ((r.next_u64() as u128) << 64) | r.next_u64() as u128,
}

impl Standard for bool {
    #[inline]
    fn sample(rng: &mut StdRng) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample(rng: &mut StdRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges [`StdRng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one uniform value from the range.
    fn sample(self, rng: &mut StdRng) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u128;
                let draw = (((rng.next_u64() as u128)
                    .wrapping_mul(span))
                    >> 64) as $t;
                // For spans wider than 64 bits (u128 only) fall back to
                // modulo; the workspace never samples such spans.
                let draw = if span > u64::MAX as u128 {
                    ((((rng.next_u64() as u128) << 64) | rng.next_u64() as u128) % span) as $t
                } else {
                    draw
                };
                self.start + draw
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return Standard::sample(rng);
                }
                (start..end + 1).sample(rng)
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize, u128);

macro_rules! impl_sample_range_int {
    ($($t:ty as $u:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                let draw = (0..span).sample(rng);
                self.start.wrapping_add(draw as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    let v: $u = Standard::sample(rng);
                    return v as $t;
                }
                (start..end.wrapping_add(1)).sample(rng)
            }
        }
    )*};
}

impl_sample_range_int!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

impl Standard for i8 {
    #[inline]
    fn sample(rng: &mut StdRng) -> Self {
        rng.next_u32() as i8
    }
}
impl Standard for i16 {
    #[inline]
    fn sample(rng: &mut StdRng) -> Self {
        rng.next_u32() as i16
    }
}
impl Standard for i32 {
    #[inline]
    fn sample(rng: &mut StdRng) -> Self {
        rng.next_u32() as i32
    }
}
impl Standard for i64 {
    #[inline]
    fn sample(rng: &mut StdRng) -> Self {
        rng.next_u64() as i64
    }
}

/// Random selection from slices, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// A uniformly random element, or `None` when empty.
    fn choose(&self, rng: &mut StdRng) -> Option<&Self::Item>;

    /// Fisher–Yates shuffle in place.
    fn shuffle(&mut self, rng: &mut StdRng);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    #[inline]
    fn choose(&self, rng: &mut StdRng) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.index(self.len())])
        }
    }

    fn shuffle(&mut self, rng: &mut StdRng) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.index(i + 1));
        }
    }
}

/// Random selection from iterators (reservoir sampling), mirroring
/// `rand::seq::IteratorRandom`.
pub trait IteratorRandom: Iterator + Sized {
    /// A uniformly random element of the iterator, or `None` when empty.
    fn choose(mut self, rng: &mut StdRng) -> Option<Self::Item> {
        let mut picked = self.next()?;
        let mut seen = 1usize;
        for item in self {
            seen += 1;
            if rng.index(seen) == 0 {
                picked = item;
            }
        }
        Some(picked)
    }
}

impl<I: Iterator> IteratorRandom for I {}

#[cfg(test)]
mod tests;
