use super::prelude::*;
use super::{Xorshift128, Xorshift32};

#[test]
fn xorshift32_is_deterministic_and_nonzero() {
    let a: Vec<u32> = Xorshift32::new(7).take(100).collect();
    let b: Vec<u32> = Xorshift32::new(7).take(100).collect();
    assert_eq!(a, b);
    assert!(a.iter().all(|&x| x != 0), "xorshift never emits 0");
}

#[test]
fn xorshift128_seed_zero_is_remapped() {
    let mut r = Xorshift128::new(0);
    // Must not get stuck at zero.
    assert!((0..16).any(|_| r.next_u32() != 0));
}

#[test]
fn stdrng_same_seed_same_stream() {
    let mut a = StdRng::seed_from_u64(0xDEAD_BEEF_CAFE_F00D);
    let mut b = StdRng::seed_from_u64(0xDEAD_BEEF_CAFE_F00D);
    for _ in 0..100 {
        assert_eq!(a.next_u64(), b.next_u64());
    }
}

#[test]
fn stdrng_seeds_differing_only_in_high_half_diverge() {
    let mut a = StdRng::seed_from_u64(1);
    let mut b = StdRng::seed_from_u64(1 | (1 << 40));
    let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
    let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
    assert_ne!(va, vb);
}

#[test]
fn gen_range_stays_in_bounds() {
    let mut rng = StdRng::seed_from_u64(42);
    for _ in 0..10_000 {
        let v = rng.gen_range(3..17u32);
        assert!((3..17).contains(&v));
        let v = rng.gen_range(1..=64u16);
        assert!((1..=64).contains(&v));
        let v = rng.gen_range(0..5usize);
        assert!(v < 5);
        let v = rng.gen_range(17..=32u8);
        assert!((17..=32).contains(&v));
    }
}

#[test]
fn gen_range_covers_every_value_of_a_small_range() {
    let mut rng = StdRng::seed_from_u64(9);
    let mut seen = [false; 8];
    for _ in 0..1_000 {
        seen[rng.gen_range(0..8usize)] = true;
    }
    assert!(seen.iter().all(|&s| s), "all 8 values drawn: {seen:?}");
}

#[test]
fn full_domain_inclusive_range_works() {
    let mut rng = StdRng::seed_from_u64(10);
    // Would overflow `end + 1` without the full-domain special case.
    let _: u8 = rng.gen_range(0..=u8::MAX);
    let _: u32 = rng.gen_range(0..=u32::MAX);
}

#[test]
fn gen_f64_is_unit_interval() {
    let mut rng = StdRng::seed_from_u64(3);
    let mut sum = 0.0;
    for _ in 0..10_000 {
        let x: f64 = rng.gen();
        assert!((0.0..1.0).contains(&x));
        sum += x;
    }
    let mean = sum / 10_000.0;
    assert!((0.4..0.6).contains(&mean), "mean {mean} implausible");
}

#[test]
fn gen_bool_tracks_probability() {
    let mut rng = StdRng::seed_from_u64(4);
    let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
    assert!((2_000..3_000).contains(&hits), "{hits} hits for p=0.25");
}

#[test]
fn choose_and_shuffle_are_uniformish() {
    let mut rng = StdRng::seed_from_u64(5);
    let items = [1u32, 2, 3, 4];
    let mut counts = [0usize; 4];
    for _ in 0..4_000 {
        let &v = items.choose(&mut rng).unwrap();
        counts[v as usize - 1] += 1;
    }
    assert!(counts.iter().all(|&c| c > 700), "{counts:?}");

    let empty: [u32; 0] = [];
    assert_eq!(empty.choose(&mut rng), None);

    let mut v: Vec<u32> = (0..32).collect();
    let orig = v.clone();
    v.shuffle(&mut rng);
    let mut sorted = v.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, orig, "shuffle is a permutation");
    assert_ne!(v, orig, "32 elements virtually never shuffle to identity");
}

#[test]
fn iterator_choose_sees_every_element() {
    let mut rng = StdRng::seed_from_u64(6);
    let mut seen = [false; 5];
    for _ in 0..1_000 {
        let v = (0..5usize).choose(&mut rng).unwrap();
        seen[v] = true;
    }
    assert!(seen.iter().all(|&s| s), "{seen:?}");
    assert_eq!((0..0).choose(&mut rng), None);
}

#[test]
fn signed_ranges_work() {
    let mut rng = StdRng::seed_from_u64(8);
    for _ in 0..1_000 {
        let v = rng.gen_range(-5..5i32);
        assert!((-5..5).contains(&v));
        let v = rng.gen_range(-3..=3i64);
        assert!((-3..=3).contains(&v));
    }
}
