//! Marsaglia xorshift generators (reference \[22\] of the paper).
//!
//! The paper generates "each random number … just before the lookup
//! routine using the xorshift, which allocates only four 32-bit
//! variables" — i.e. the xorshift128 generator below. A 128-bit IPv6
//! address costs "four xorshift 32-bit random number generation" (§4.10).

/// The classic 32-bit xorshift (13, 17, 5) — one word of state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Xorshift32 {
    state: u32,
}

impl Xorshift32 {
    /// Seed the generator. A zero seed is remapped (xorshift has no zero
    /// state).
    pub fn new(seed: u32) -> Self {
        Xorshift32 {
            state: if seed == 0 { 0x9E37_79B9 } else { seed },
        }
    }

    /// Next 32-bit value.
    #[inline(always)]
    pub fn next_u32(&mut self) -> u32 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        self.state = x;
        x
    }
}

impl Iterator for Xorshift32 {
    type Item = u32;

    #[inline(always)]
    fn next(&mut self) -> Option<u32> {
        Some(self.next_u32())
    }
}

/// Marsaglia's xorshift128: four 32-bit words of state, the generator the
/// paper cites for its random traffic pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Xorshift128 {
    x: u32,
    y: u32,
    z: u32,
    w: u32,
}

impl Xorshift128 {
    /// Seed from a single word (expanded with splitmix-style mixing so
    /// nearby seeds diverge immediately).
    pub fn new(seed: u32) -> Self {
        let mut s = seed.wrapping_add(0x9E37_79B9);
        let mut next = || {
            s = s.wrapping_mul(0x85EB_CA6B) ^ (s >> 13);
            s = s.wrapping_add(0xC2B2_AE35);
            if s == 0 {
                s = 1;
            }
            s
        };
        Xorshift128 {
            x: next(),
            y: next(),
            z: next(),
            w: next(),
        }
    }

    /// Next 32-bit value (Marsaglia's xor128).
    #[inline(always)]
    pub fn next_u32(&mut self) -> u32 {
        let t = self.x ^ (self.x << 11);
        self.x = self.y;
        self.y = self.z;
        self.z = self.w;
        self.w = (self.w ^ (self.w >> 19)) ^ (t ^ (t >> 8));
        self.w
    }

    /// Next 128-bit value from four 32-bit draws (the §4.10 recipe for a
    /// random IPv6 address).
    #[inline(always)]
    pub fn next_u128(&mut self) -> u128 {
        let a = self.next_u32() as u128;
        let b = self.next_u32() as u128;
        let c = self.next_u32() as u128;
        let d = self.next_u32() as u128;
        (a << 96) | (b << 64) | (c << 32) | d
    }
}

impl Iterator for Xorshift128 {
    type Item = u32;

    #[inline(always)]
    fn next(&mut self) -> Option<u32> {
        Some(self.next_u32())
    }
}
