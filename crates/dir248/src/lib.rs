//! DIR-24-8-BASIC — the ancestor of direct pointing.
//!
//! Gupta, Lin and McKeown, *Routing Lookups in Hardware at Memory Access
//! Speeds*, INFOCOM 1998 — reference \[13\] of the Poptrie paper, cited
//! as the origin of the technique Poptrie calls *direct pointing* (§3.4:
//! "These days, it is common to conduct such an optimization technique;
//! examples can be seen in DIR-24-8-BASIC, DXR and SAIL").
//!
//! The structure is two flat arrays:
//!
//! * **TBL24** — `2^24` 16-bit entries, one per /24 block. The top bit
//!   says whether the low 15 bits are a next hop (prefixes ≤ /24,
//!   expanded) or an index into…
//! * **TBLlong** — one 256-entry block of next hops per /24 block that
//!   contains longer-than-/24 prefixes.
//!
//! Lookup is one memory access for prefixes up to /24 and exactly two
//! otherwise — O(1), at the price of 32 MiB of TBL24. Poptrie's §3.4
//! makes the same trade at s = 16/18 for a table 32–128× smaller; this
//! crate exists so the workspace contains the scheme the paper's
//! optimization descends from, as a fourth baseline.
//!
//! Structural limits mirror the original: 15-bit next hops, and at most
//! 2^15 deep blocks (the index shares the 15-bit field).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use poptrie_bitops::BATCH_LANES;
use poptrie_rib::radix::Node as RadixNode;
use poptrie_rib::{Lpm, NextHop, RadixTree, NO_ROUTE};

/// Entry flag: the low 15 bits index a TBLlong block.
const LONG_FLAG: u16 = 1 << 15;

/// Maximum TBLlong blocks (the index lives in 15 bits).
pub const MAX_LONG_BLOCKS: usize = 1 << 15;

/// DIR-24-8 compilation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Dir248Error {
    /// More than [`MAX_LONG_BLOCKS`] /24 blocks hold longer prefixes.
    LongBlockOverflow {
        /// Blocks the table needs.
        needed: usize,
    },
    /// A next hop exceeds the 15-bit field.
    NextHopOverflow,
}

impl core::fmt::Display for Dir248Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Dir248Error::LongBlockOverflow { needed } => write!(
                f,
                "table needs {needed} TBLlong blocks, 15-bit indices allow {MAX_LONG_BLOCKS}"
            ),
            Dir248Error::NextHopOverflow => write!(f, "next hop exceeds 15 bits"),
        }
    }
}

impl std::error::Error for Dir248Error {}

/// A compiled DIR-24-8-BASIC table.
///
/// ```
/// use poptrie_dir248::Dir248;
/// use poptrie_rib::RadixTree;
///
/// let mut rib: RadixTree<u32, u16> = RadixTree::new();
/// rib.insert("10.0.0.0/8".parse().unwrap(), 1);
/// rib.insert("10.1.2.128/25".parse().unwrap(), 2);
/// let d = Dir248::from_rib(&rib).unwrap();
/// assert_eq!(d.lookup(0x0A01_0203), Some(1));
/// assert_eq!(d.lookup(0x0A01_0290), Some(2));
/// ```
#[derive(Debug, Clone)]
pub struct Dir248 {
    /// TBL24: `2^24` entries.
    tbl24: Vec<u16>,
    /// TBLlong: 256-entry blocks for deep /24s.
    tbllong: Vec<u16>,
}

impl Dir248 {
    /// Compile from a RIB radix tree.
    pub fn from_rib(rib: &RadixTree<u32, NextHop>) -> Result<Self, Dir248Error> {
        let mut d = Dir248 {
            tbl24: vec![0; 1 << 24],
            tbllong: Vec::new(),
        };
        d.fill24(rib.root(), NO_ROUTE, 0, 0)?;
        Ok(d)
    }

    /// Compile from a route list.
    pub fn from_routes<I: IntoIterator<Item = (poptrie_rib::Prefix<u32>, NextHop)>>(
        routes: I,
    ) -> Result<Self, Dir248Error> {
        Self::from_rib(&RadixTree::from_routes(routes))
    }

    /// Fill TBL24: `node` is `depth` bits deep covering entries
    /// `[base << (24 - depth), (base + 1) << (24 - depth))`.
    fn fill24(
        &mut self,
        node: Option<&RadixNode<NextHop>>,
        inherited: NextHop,
        depth: u32,
        base: usize,
    ) -> Result<(), Dir248Error> {
        let Some(n) = node else {
            let width = 1usize << (24 - depth);
            self.tbl24[base * width..(base + 1) * width].fill(encode_nh(inherited)?);
            return Ok(());
        };
        let inh = n.value().copied().unwrap_or(inherited);
        if depth == 24 {
            if n.has_children() {
                let block = self.tbllong.len() / 256;
                if block >= MAX_LONG_BLOCKS {
                    return Err(Dir248Error::LongBlockOverflow { needed: block + 1 });
                }
                self.tbllong.resize(self.tbllong.len() + 256, 0);
                self.tbl24[base] = LONG_FLAG | block as u16;
                self.fill_long(Some(n), inh, 0, block * 256)?;
            } else {
                self.tbl24[base] = encode_nh(inh)?;
            }
            return Ok(());
        }
        self.fill24(n.child(false), inh, depth + 1, base << 1)?;
        self.fill24(n.child(true), inh, depth + 1, (base << 1) | 1)
    }

    /// Fill one TBLlong block: `node` is `depth` bits below the /24
    /// boundary, covering `slot .. slot + (1 << (8 - depth))`.
    fn fill_long(
        &mut self,
        node: Option<&RadixNode<NextHop>>,
        inherited: NextHop,
        depth: u32,
        slot: usize,
    ) -> Result<(), Dir248Error> {
        let Some(n) = node else {
            let width = 1usize << (8 - depth);
            self.tbllong[slot..slot + width].fill(encode_nh(inherited)?);
            return Ok(());
        };
        let inh = if depth == 0 {
            inherited // applied by the caller at the /24 node
        } else {
            n.value().copied().unwrap_or(inherited)
        };
        if depth == 8 {
            self.tbllong[slot] = encode_nh(inh)?;
            return Ok(());
        }
        let width = 1usize << (8 - depth - 1);
        self.fill_long(n.child(false), inh, depth + 1, slot)?;
        self.fill_long(n.child(true), inh, depth + 1, slot + width)
    }

    /// Longest-prefix-match lookup: one access for ≤ /24 matches, two
    /// otherwise.
    pub fn lookup(&self, key: u32) -> Option<NextHop> {
        let nh = self.lookup_raw(key);
        (nh != NO_ROUTE).then_some(nh)
    }

    /// Raw lookup returning [`NO_ROUTE`] (0) on a miss.
    #[inline]
    pub fn lookup_raw(&self, key: u32) -> NextHop {
        // SAFETY: `key >> 8 < 2^24 == tbl24.len()`.
        let v = unsafe { *self.tbl24.get_unchecked((key >> 8) as usize) };
        if v & LONG_FLAG == 0 {
            return v;
        }
        let idx = (((v & !LONG_FLAG) as usize) << 8) | (key & 0xFF) as usize;
        debug_assert!(idx < self.tbllong.len());
        // SAFETY: block indices stored in tbl24 address fully allocated
        // 256-entry blocks.
        unsafe { *self.tbllong.get_unchecked(idx) }
    }

    /// Batched lookup: `keys[i]` resolves into `out[i]` ([`NO_ROUTE`] on
    /// a miss). DIR-24-8 has at most two dependent reads per key, so the
    /// batch runs in two waves over [`BATCH_LANES`]-key chunks: all
    /// lanes' TBL24 lines are prefetched before any is read (the 32 MiB
    /// TBL24 misses cache on random traffic — exactly the case the
    /// overlap targets), then the lanes that need TBLlong prefetch those
    /// lines before any reads them. Per-key semantics are exactly those
    /// of [`Dir248::lookup_raw`].
    ///
    /// # Panics
    /// If `keys.len() != out.len()`.
    pub fn lookup_batch(&self, keys: &[u32], out: &mut [NextHop]) {
        assert_eq!(keys.len(), out.len(), "keys/out length mismatch");
        for (keys, out) in keys.chunks(BATCH_LANES).zip(out.chunks_mut(BATCH_LANES)) {
            self.lookup_batch_chunk(keys, out);
        }
    }

    fn lookup_batch_chunk(&self, keys: &[u32], out: &mut [NextHop]) {
        debug_assert!(keys.len() <= BATCH_LANES && keys.len() == out.len());
        let n = keys.len();
        let mut idx = [0usize; BATCH_LANES];
        for (i, &k) in keys.iter().enumerate() {
            idx[i] = (k >> 8) as usize;
            poptrie_bitops::prefetch_index(&self.tbl24, idx[i]);
        }
        let mut pending: u32 = 0;
        for i in 0..n {
            // SAFETY: `key >> 8 < 2^24 == tbl24.len()`.
            let v = unsafe { *self.tbl24.get_unchecked(idx[i]) };
            if v & LONG_FLAG == 0 {
                out[i] = v;
            } else {
                let j = (((v & !LONG_FLAG) as usize) << 8) | (keys[i] & 0xFF) as usize;
                idx[i] = j;
                pending |= 1 << i;
                poptrie_bitops::prefetch_index(&self.tbllong, j);
            }
        }
        let mut m = pending;
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            m &= m - 1;
            debug_assert!(idx[i] < self.tbllong.len());
            // SAFETY: block indices stored in tbl24 address fully
            // allocated 256-entry blocks.
            out[i] = unsafe { *self.tbllong.get_unchecked(idx[i]) };
        }
    }

    /// Number of TBLlong blocks in use.
    pub fn long_blocks(&self) -> usize {
        self.tbllong.len() / 256
    }
}

/// Validate that a next hop fits the 15-bit field next to the flag.
#[inline]
fn encode_nh(nh: NextHop) -> Result<u16, Dir248Error> {
    if nh & LONG_FLAG != 0 {
        Err(Dir248Error::NextHopOverflow)
    } else {
        Ok(nh)
    }
}

impl Lpm<u32> for Dir248 {
    fn lookup(&self, key: u32) -> Option<NextHop> {
        Dir248::lookup(self, key)
    }

    fn lookup_batch(&self, keys: &[u32], out: &mut [NextHop]) {
        Dir248::lookup_batch(self, keys, out)
    }

    fn memory_bytes(&self) -> usize {
        (self.tbl24.len() + self.tbllong.len()) * 2
    }

    fn name(&self) -> String {
        "DIR-24-8".into()
    }
}

#[cfg(test)]
mod tests;
