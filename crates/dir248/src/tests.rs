use crate::{Dir248, Dir248Error, MAX_LONG_BLOCKS};
#[cfg(feature = "proptest")] // the oracle is only used by the gated proptests
use poptrie_rib::LinearLpm;
use poptrie_rib::{Lpm, Prefix, RadixTree};
use poptrie_rng::prelude::*;

fn p4(s: &str) -> Prefix<u32> {
    s.parse().unwrap()
}

fn rib_from(routes: &[(&str, u16)]) -> RadixTree<u32, u16> {
    RadixTree::from_routes(routes.iter().map(|&(p, nh)| (p4(p), nh)))
}

#[test]
fn empty_table() {
    let rib: RadixTree<u32, u16> = RadixTree::new();
    let d = Dir248::from_rib(&rib).unwrap();
    assert_eq!(d.lookup(0), None);
    assert_eq!(d.lookup(u32::MAX), None);
    assert_eq!(d.long_blocks(), 0);
    // TBL24 alone is 32 MiB — the cost the paper's s = 16/18 avoids.
    assert_eq!(Lpm::memory_bytes(&d), (1 << 24) * 2);
}

#[test]
fn shallow_prefixes_are_one_access() {
    let rib = rib_from(&[("0.0.0.0/0", 9), ("10.0.0.0/8", 1), ("10.1.2.0/24", 2)]);
    let d = Dir248::from_rib(&rib).unwrap();
    assert_eq!(d.lookup(0x0A01_0203), Some(2));
    assert_eq!(d.lookup(0x0A01_0303), Some(1));
    assert_eq!(d.lookup(0x0B01_0303), Some(9));
    assert_eq!(d.long_blocks(), 0, "no deep routes, no TBLlong");
}

#[test]
fn deep_prefixes_allocate_long_blocks() {
    let rib = rib_from(&[
        ("10.1.2.0/24", 1),
        ("10.1.2.128/25", 2),
        ("10.1.2.130/32", 3),
    ]);
    let d = Dir248::from_rib(&rib).unwrap();
    assert_eq!(d.long_blocks(), 1);
    assert_eq!(d.lookup(0x0A01_0201), Some(1));
    assert_eq!(d.lookup(0x0A01_0281), Some(2));
    assert_eq!(d.lookup(0x0A01_0282), Some(3));
    assert_eq!(d.lookup(0x0A01_0301), None);
}

#[test]
fn exhaustive_u32_slice_against_radix() {
    let mut rng = StdRng::seed_from_u64(51);
    let mut rib: RadixTree<u32, u16> = RadixTree::new();
    rib.insert(p4("10.1.0.0/16"), 1);
    for _ in 0..300 {
        let addr = 0x0A01_0000 | (rng.gen::<u32>() & 0xFFFF);
        rib.insert(
            Prefix::new(addr, rng.gen_range(17..=32)),
            rng.gen_range(1..=200),
        );
    }
    let d = Dir248::from_rib(&rib).unwrap();
    for low in 0..=0xFFFFu32 {
        let key = 0x0A01_0000 | low;
        assert_eq!(d.lookup(key), rib.lookup(key).copied(), "key={key:#010x}");
    }
}

#[test]
fn random_u32_against_radix() {
    let mut rng = StdRng::seed_from_u64(52);
    let mut rib: RadixTree<u32, u16> = RadixTree::new();
    for _ in 0..5000 {
        let len = *[8u8, 12, 16, 20, 24, 28, 32].choose(&mut rng).unwrap();
        rib.insert(Prefix::new(rng.gen(), len), rng.gen_range(1..=64));
    }
    let d = Dir248::from_rib(&rib).unwrap();
    for _ in 0..50_000 {
        let key: u32 = rng.gen();
        assert_eq!(d.lookup(key), rib.lookup(key).copied());
    }
}

#[test]
fn long_block_overflow_reported() {
    // > 2^15 deep /24 blocks.
    let mut rib: RadixTree<u32, u16> = RadixTree::new();
    for hi in 0..200u32 {
        for mid in 0..170u32 {
            rib.insert(Prefix::new((10 << 24) | (hi << 16) | (mid << 8), 25), 1);
        }
    }
    const _: () = assert!(200 * 170 > MAX_LONG_BLOCKS);
    let err = Dir248::from_rib(&rib).unwrap_err();
    assert!(
        matches!(err, Dir248Error::LongBlockOverflow { .. }),
        "{err:?}"
    );
}

#[test]
fn next_hop_limits() {
    let rib = rib_from(&[("10.0.0.0/8", 0x7FFF)]);
    let d = Dir248::from_rib(&rib).unwrap();
    assert_eq!(d.lookup(0x0A00_0001), Some(0x7FFF));
    let rib = rib_from(&[("10.0.0.0/8", 0x8000)]);
    assert_eq!(
        Dir248::from_rib(&rib).unwrap_err(),
        Dir248Error::NextHopOverflow
    );
    assert_eq!(
        Lpm::name(&Dir248::from_rib(&rib_from(&[])).unwrap()),
        "DIR-24-8"
    );
}

#[cfg(feature = "proptest")] // needs the proptest dev-dependency (see Cargo.toml)
mod prop {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn matches_oracle(
            routes in proptest::collection::vec((any::<u32>(), 0u8..=32, 1u16..=500), 0..40),
            keys in proptest::collection::vec(any::<u32>(), 128),
        ) {
            let routes: Vec<(Prefix<u32>, u16)> = routes
                .into_iter()
                .map(|(a, l, n)| (Prefix::new(a, l), n))
                .collect();
            let rib = RadixTree::from_routes(routes.clone());
            let lin = LinearLpm::new(rib.to_routes());
            let d = Dir248::from_rib(&rib).unwrap();
            for key in keys {
                prop_assert_eq!(d.lookup(key), Lpm::lookup(&lin, key));
            }
        }
    }
}

// The cross-crate Lpm conformance contract (rib crate).
poptrie_rib::lpm_contract_tests!(dir248_contract_v4, u32, |rib: &RadixTree<u32, u16>| {
    Dir248::from_rib(rib).unwrap()
});
