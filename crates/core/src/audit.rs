//! Structural invariant auditor for compiled Poptries.
//!
//! [`PoptrieImpl::check_invariants`] verifies what a *lookup* needs:
//! indices in bounds, ranks inside each node's leaf block, counts matching
//! reachability. The §3.5 incremental-update path can violate subtler
//! invariants long before a lookup goes wrong — a leaf block freed but
//! still referenced keeps returning stale (plausible!) next hops until the
//! allocator hands the slots to someone else. [`PoptrieImpl::audit`]
//! therefore cross-checks the compiled structure against the buddy
//! allocators' own allocation maps:
//!
//! * **`vector`/`leafvec` disjointness** — a chunk slot is either an
//!   internal child or part of a leaf run, never both (§3.3: leafvec bits
//!   are only set on leaf slots; internal slots are the punched holes).
//! * **Block liveness** — every child block `[base1, base1+popcnt(vector))`
//!   and leaf block `[base0, base0+leaf_count)` the trie references must be
//!   a *live* allocation in the corresponding buddy allocator
//!   ([`Buddy::is_live_block`]), i.e. not freed, not dangling into a hole.
//! * **Block disjointness** — no two referenced blocks may share rounded
//!   extents (aliasing: one node's refresh would corrupt another's data).
//! * **Leak / double-free accounting** — the number and rounded size of
//!   reachable blocks must equal the allocators' `live_blocks()` /
//!   `allocated_slots()` exactly: more means a leak, fewer means the trie
//!   references freed space.
//! * **Count reconciliation** — `inode_count` / `leaf_count` must match a
//!   full traversal, and direct leaf entries must carry no stray bits
//!   above the 16-bit next hop.
//!
//! The auditor only applies to tries whose allocators carry real
//! provenance — ones produced by [`Builder`](crate::Builder) or churned
//! through [`Fib`](crate::Fib). Deserialized tries
//! ([`PoptrieImpl::from_bytes`](crate::Poptrie::from_bytes)) use a single
//! opaque covering allocation and are validated with
//! [`PoptrieImpl::check_invariants`] instead.

use poptrie_bitops::Bits;
use poptrie_buddy::Buddy;

use crate::node::NodeRepr;
use crate::serial::node_leafvec;
use crate::trie::{PoptrieImpl, DIRECT_LEAF_BIT};

/// What a successful [`PoptrieImpl::audit`] run verified, for reporting
/// (the `repro audit` subcommand prints these numbers).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// Internal nodes reached by the traversal.
    pub inodes: usize,
    /// Leaves reached by the traversal.
    pub leaves: usize,
    /// Live node blocks (root/direct-slot singles plus child runs).
    pub node_blocks: usize,
    /// Live leaf blocks (distinct extents).
    pub leaf_blocks: usize,
    /// References to leaf blocks from this table's nodes. Equals
    /// [`leaf_blocks`](AuditReport::leaf_blocks) for a private table; for
    /// a shared-leaves (VRF) table it may exceed it — several nodes of the
    /// same table can intern byte-identical blocks into one extent — and
    /// summing it across every table of a VRF group must reproduce the
    /// interner's `total_refs()` exactly.
    pub leaf_block_refs: usize,
    /// Node slots reserved, after buddy power-of-two rounding.
    pub node_slots_rounded: u64,
    /// Leaf slots reserved, after buddy power-of-two rounding.
    pub leaf_slots_rounded: u64,
    /// Deepest node level reached (0 = a root node).
    pub max_depth: u32,
}

/// Rounded extents of the blocks a traversal reached, per allocator.
struct BlockSet {
    /// `(offset, rounded_len)` of every referenced block.
    blocks: Vec<(u32, u32)>,
}

impl BlockSet {
    fn new() -> Self {
        BlockSet { blocks: Vec::new() }
    }

    /// Record a referenced block and check it is live in `buddy`.
    fn record(&mut self, buddy: &Buddy, off: u32, n: u32, what: &str) -> Result<(), String> {
        if !buddy.is_live_block(off, n) {
            return Err(format!(
                "{what} [{off}, {off}+{n}) is not a live allocation (freed, unaligned or out of range)"
            ));
        }
        self.blocks.push((off, Buddy::rounded(n)));
        Ok(())
    }

    /// Verify the recorded blocks are pairwise disjoint and account for
    /// `buddy`'s entire outstanding allocation.
    fn reconcile(mut self, buddy: &Buddy, what: &str) -> Result<(usize, u64), String> {
        self.blocks.sort_unstable();
        for w in self.blocks.windows(2) {
            let (a_off, a_len) = w[0];
            let (b_off, _) = w[1];
            if a_off + a_len > b_off {
                return Err(format!(
                    "aliased {what} blocks: [{a_off}, {a_off}+{a_len}) overlaps one at {b_off}"
                ));
            }
        }
        let count = self.blocks.len();
        let rounded: u64 = self.blocks.iter().map(|&(_, l)| l as u64).sum();
        if count as u32 != buddy.live_blocks() {
            return Err(format!(
                "{what} block leak: traversal reached {count} blocks, allocator has {} outstanding",
                buddy.live_blocks()
            ));
        }
        if rounded != buddy.allocated_slots() as u64 {
            return Err(format!(
                "{what} slot accounting: traversal covers {rounded} rounded slots, allocator says {}",
                buddy.allocated_slots()
            ));
        }
        Ok((count, rounded))
    }

    /// The shared-leaves variant of [`BlockSet::reconcile`]: several nodes
    /// of the table may legitimately reference the *same* interned extent,
    /// so duplicates are collapsed before the disjointness check, and
    /// there is no per-table allocator to reconcile totals against (the
    /// arena is group-wide; `NextHopIntern::check_invariants` reconciles
    /// it exactly, and summed [`AuditReport::leaf_block_refs`] cross-check
    /// `total_refs()`). Returns `(distinct_blocks, rounded_slots)`.
    fn reconcile_shared(mut self, what: &str) -> Result<(usize, u64), String> {
        self.blocks.sort_unstable();
        self.blocks.dedup();
        for w in self.blocks.windows(2) {
            let (a_off, a_len) = w[0];
            let (b_off, _) = w[1];
            if a_off + a_len > b_off {
                return Err(format!(
                    "aliased {what} extents: [{a_off}, {a_off}+{a_len}) overlaps one at {b_off}"
                ));
            }
        }
        let count = self.blocks.len();
        let rounded: u64 = self.blocks.iter().map(|&(_, l)| l as u64).sum();
        Ok((count, rounded))
    }
}

impl<K: Bits, N: NodeRepr> PoptrieImpl<K, N> {
    /// Audit the full set of structural invariants (see the module docs):
    /// `vector`/`leafvec` disjointness, buddy-allocator block liveness,
    /// disjointness and leak accounting, and count reconciliation. Returns
    /// a summary of what was verified, or the first violation found.
    ///
    /// This is the correctness backstop for the §3.5 incremental-update
    /// path; the churn-fuzz harness calls it after every batch of
    /// randomized announce/withdraw events. Not a hot path.
    pub fn audit(&self) -> Result<AuditReport, String> {
        self.node_buddy
            .check_invariants()
            .map_err(|e| format!("node allocator: {e}"))?;
        self.leaf_buddy
            .check_invariants()
            .map_err(|e| format!("leaf allocator: {e}"))?;

        let mut report = AuditReport::default();
        let mut node_blocks = BlockSet::new();
        let mut leaf_blocks = BlockSet::new();

        let mut roots: Vec<u32> = Vec::new();
        if self.s == 0 {
            roots.push(self.root);
        } else {
            if self.direct.len() != 1usize << self.s {
                return Err(format!(
                    "direct table length {} != 2^{}",
                    self.direct.len(),
                    self.s
                ));
            }
            for (di, &e) in self.direct.iter().enumerate() {
                if e & DIRECT_LEAF_BIT == 0 {
                    roots.push(e);
                } else if (e & !DIRECT_LEAF_BIT) > u16::MAX as u32 {
                    return Err(format!(
                        "direct slot {di}: leaf entry {e:#010x} has stray bits above the 16-bit next hop"
                    ));
                }
            }
        }
        for root in roots {
            // Every root node occupies its own single-slot block.
            node_blocks.record(&self.node_buddy, root, 1, "root node block")?;
            self.audit_node(root, 0, &mut report, &mut node_blocks, &mut leaf_blocks)?;
        }

        if report.inodes != self.inode_count {
            return Err(format!(
                "inode count mismatch: reachable {}, recorded {}",
                report.inodes, self.inode_count
            ));
        }
        if report.leaves != self.leaf_count {
            return Err(format!(
                "leaf count mismatch: reachable {}, recorded {}",
                report.leaves, self.leaf_count
            ));
        }
        report.leaf_block_refs = leaf_blocks.blocks.len();
        let (nb, ns) = node_blocks.reconcile(&self.node_buddy, "node")?;
        let (lb, ls) = if self.shared_leaves.is_some() {
            leaf_blocks.reconcile_shared("leaf")?
        } else {
            leaf_blocks.reconcile(&self.leaf_buddy, "leaf")?
        };
        report.node_blocks = nb;
        report.node_slots_rounded = ns;
        report.leaf_blocks = lb;
        report.leaf_slots_rounded = ls;
        Ok(report)
    }

    fn audit_node(
        &self,
        idx: u32,
        depth: u32,
        report: &mut AuditReport,
        node_blocks: &mut BlockSet,
        leaf_blocks: &mut BlockSet,
    ) -> Result<(), String> {
        if depth > K::BITS.div_ceil(6) {
            return Err(format!(
                "node {idx} at depth {depth}: trie deeper than the key width allows"
            ));
        }
        report.max_depth = report.max_depth.max(depth);
        let Some(node) = self.nodes.get(idx as usize) else {
            return Err(format!("node index {idx} out of bounds"));
        };
        report.inodes += 1;
        let vector = node.vector();
        let leafvec = node_leafvec(node);
        if N::COMPRESSES_LEAVES && vector & leafvec != 0 {
            return Err(format!(
                "node {idx}: vector and leafvec share slots {:#018x} (an internal child cannot start a leaf run)",
                vector & leafvec
            ));
        }
        let nleaves = node.leaf_count();
        report.leaves += nleaves as usize;
        if nleaves > 0 {
            if node.base0() as usize + nleaves as usize > self.leaf_slots() {
                return Err(format!("node {idx}: leaf block out of bounds"));
            }
            match &self.shared_leaves {
                Some(h) => {
                    // Liveness probe goes to the group interner; the
                    // same extent may be recorded by several nodes
                    // (collapsed in `reconcile_shared`).
                    if !h.is_live_block(node.base0(), nleaves) {
                        return Err(format!(
                            "node {idx}: leaf extent [{}, {}+{nleaves}) is not live in the shared arena",
                            node.base0(),
                            node.base0()
                        ));
                    }
                    leaf_blocks
                        .blocks
                        .push((node.base0(), Buddy::rounded(nleaves)));
                }
                None => {
                    leaf_blocks.record(&self.leaf_buddy, node.base0(), nleaves, "leaf block")?
                }
            }
        }
        // Every relevant (leaf) slot must resolve inside the node's own
        // leaf block: rank in 1..=nleaves.
        for v in 0..64u32 {
            if vector & (1u64 << v) == 0 {
                let r = node.leaf_rank(v);
                if r == 0 || r > nleaves {
                    return Err(format!(
                        "node {idx}: slot {v} has leaf rank {r} outside 1..={nleaves}"
                    ));
                }
            }
        }
        let nchildren = vector.count_ones();
        if nchildren > 0 {
            node_blocks.record(&self.node_buddy, node.base1(), nchildren, "child block")?;
            for i in 0..nchildren {
                self.audit_node(
                    node.base1() + i,
                    depth + 1,
                    report,
                    node_blocks,
                    leaf_blocks,
                )?;
            }
        }
        Ok(())
    }
}
