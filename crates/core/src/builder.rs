//! Compilation of a RIB radix tree into a Poptrie.
//!
//! The builder walks the binary radix tree and, for every Poptrie node,
//! expands the next six radix levels into 64 slots. A slot whose radix
//! subtree holds longer prefixes becomes an internal child (bit set in
//! `vector`); every other slot resolves to the longest prefix seen on its
//! path — the *prefix expansion* of §3.1. With the leafvec layout, runs of
//! identical adjacent leaves collapse into one stored leaf (§3.3), with
//! slots hidden behind internal children never breaking a run (the hole
//! punching recovery of Figure 3).

use poptrie_bitops::Bits;
use poptrie_buddy::Buddy;
use poptrie_rib::radix::Node as RadixNode;
use poptrie_rib::{NextHop, RadixTree, NO_ROUTE};

use crate::node::{Node24, NodeRepr};
use crate::trie::{PoptrieImpl, DIRECT_LEAF_BIT};

/// A radix subtree paired with the next hop inherited from above it.
pub(crate) type ChildRef<'a> = (&'a RadixNode<NextHop>, NextHop);

/// Configures and runs Poptrie compilation.
///
/// ```
/// use poptrie::{Poptrie, Builder};
/// use poptrie_rib::RadixTree;
///
/// let mut rib = RadixTree::new();
/// rib.insert("192.0.2.0/24".parse().unwrap(), 3u16);
/// let fib: Poptrie = Poptrie::builder()
///     .direct_bits(16)      // the paper's Poptrie16
///     .aggregate(false)     // disable §3 route aggregation
///     .build(&rib);
/// assert_eq!(fib.lookup(0xC000_0205), Some(3));
/// ```
#[derive(Debug, Clone)]
pub struct Builder<K: Bits, N: NodeRepr = Node24> {
    s: u8,
    aggregate: bool,
    node_capacity: u32,
    leaf_capacity: u32,
    shared_leaves: Option<crate::shared_leaves::LeafStoreHandle>,
    _marker: core::marker::PhantomData<(K, N)>,
}

impl<K: Bits, N: NodeRepr> Default for Builder<K, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Bits, N: NodeRepr> Builder<K, N> {
    /// Default configuration: `s = 18` (the paper's best performer) with
    /// route aggregation enabled.
    pub fn new() -> Self {
        Builder {
            s: 18,
            aggregate: true,
            node_capacity: 0,
            leaf_capacity: 0,
            shared_leaves: None,
            _marker: core::marker::PhantomData,
        }
    }

    /// A builder shaped by a validated [`PoptrieConfig`](crate::PoptrieConfig)
    /// (direct-pointing size, aggregation, arena reservations).
    ///
    /// ```
    /// use poptrie::{Poptrie, Builder, PoptrieConfig};
    /// use poptrie_rib::RadixTree;
    ///
    /// let cfg = PoptrieConfig::new().direct_bits(16).aggregate(false).build()?;
    /// let mut rib = RadixTree::new();
    /// rib.insert("192.0.2.0/24".parse().unwrap(), 3u16);
    /// let fib: Poptrie = Builder::from_config(&cfg).build(&rib);
    /// assert_eq!(fib.lookup(0xC000_0205), Some(3));
    /// # Ok::<(), poptrie::ConfigError>(())
    /// ```
    ///
    /// # Panics
    ///
    /// Panics when `config.direct_bits >= K::BITS` (the key-width rule a
    /// width-agnostic config cannot check itself).
    pub fn from_config(config: &crate::config::PoptrieConfig) -> Self {
        let mut b = Self::new()
            .direct_bits(config.direct_bits)
            .aggregate(config.aggregate);
        b.node_capacity = config.node_capacity;
        b.leaf_capacity = config.leaf_capacity;
        b
    }

    /// Set the direct-pointing size `s` (§3.4): the top-level array has
    /// `2^s` entries and lookups on prefixes no longer than `s` finish in
    /// one access. `0` disables direct pointing. Values of 16 and 18 match
    /// the paper's Poptrie16/Poptrie18.
    ///
    /// # Panics
    ///
    /// Panics when `s > 24` (the top-level array would exceed 64 MiB,
    /// defeating the cache-residency design) or `s >= K::BITS`.
    pub fn direct_bits(mut self, s: u8) -> Self {
        assert!(s <= 24, "direct-pointing size {s} > 24 is unsupported");
        assert!((s as u32) < K::BITS, "direct bits must be below key width");
        self.s = s;
        self
    }

    /// Enable or disable the route aggregation of §3 (on by default, as in
    /// the paper's evaluation).
    pub fn aggregate(mut self, on: bool) -> Self {
        self.aggregate = on;
        self
    }

    /// Resolve leaves out of a cross-table shared store instead of a
    /// private array: every leaf block becomes a content-interned extent
    /// of the handle's fixed arena, deduplicated against every other
    /// table in the same VRF group (see [`crate::shared_leaves`]).
    ///
    /// # Panics (at [`Builder::build`] time)
    ///
    /// Compilation panics if the shared arena cannot fit a new extent —
    /// size the arena for the provisioned tenant set.
    pub fn shared_leaves(mut self, handle: crate::shared_leaves::LeafStoreHandle) -> Self {
        self.shared_leaves = Some(handle);
        self
    }

    /// Compile `rib` into a Poptrie.
    pub fn build(&self, rib: &RadixTree<K, NextHop>) -> PoptrieImpl<K, N> {
        let aggregated;
        let rib = if self.aggregate {
            aggregated = rib.aggregated();
            &aggregated
        } else {
            rib
        };
        let mut trie = PoptrieImpl {
            direct: Vec::new(),
            nodes: Vec::new(),
            leaves: Vec::new(),
            node_buddy: Buddy::with_capacity(self.node_capacity),
            // In shared mode the private leaf allocator stays empty: leaf
            // extents come from the shared handle's arena instead.
            leaf_buddy: if self.shared_leaves.is_some() {
                Buddy::new()
            } else {
                Buddy::with_capacity(self.leaf_capacity)
            },
            shared_leaves: self.shared_leaves.clone(),
            root: 0,
            inode_count: 0,
            leaf_count: 0,
            s: self.s,
            backend: poptrie_bitops::BatchBackend::detect(),
            _key: core::marker::PhantomData,
        };
        if self.s == 0 {
            let root = alloc_nodes(&mut trie, 1);
            trie.root = root;
            fill_node(&mut trie, root, rib.root(), NO_ROUTE);
        } else {
            trie.direct = vec![DIRECT_LEAF_BIT; 1usize << self.s];
            fill_direct(&mut trie, rib.root(), NO_ROUTE, 0, 0);
        }
        trie
    }
}

/// Apply a radix node's own value on top of the inherited next hop.
#[inline]
fn apply(value: Option<&NextHop>, inherited: NextHop) -> NextHop {
    value.copied().unwrap_or(inherited)
}

/// Allocate a run of `n` node slots, growing the backing array to the
/// allocator's capacity. Freshly exposed slots hold an inert placeholder
/// that is never reachable until overwritten. Growth goes through
/// [`poptrie_buddy::first_touch::grow`] so every fresh page is faulted by
/// the calling thread — on a NUMA machine this places the array on the
/// builder/writer thread's memory node (the basis of the engine's
/// per-socket replicas).
pub(crate) fn alloc_nodes<K: Bits, N: NodeRepr>(trie: &mut PoptrieImpl<K, N>, n: u32) -> u32 {
    let off = trie.node_buddy.alloc(n);
    let cap = trie.node_buddy.capacity() as usize;
    poptrie_buddy::first_touch::grow(&mut trie.nodes, cap, N::new(0, 1, 0, 0));
    off
}

/// Allocate a run of `n` leaf slots (first-touched like [`alloc_nodes`]).
/// Private-mode only; shared-mode callers go through [`install_leaves`].
pub(crate) fn alloc_leaves<K: Bits, N: NodeRepr>(trie: &mut PoptrieImpl<K, N>, n: u32) -> u32 {
    debug_assert!(trie.shared_leaves.is_none());
    let off = trie.leaf_buddy.alloc(n);
    let cap = trie.leaf_buddy.capacity() as usize;
    poptrie_buddy::first_touch::grow(&mut trie.leaves, cap, NO_ROUTE);
    off
}

/// Install the leaf block `vals` and return its offset: a private buddy
/// allocation + copy, or (shared mode) a content-interned extent of the
/// shared arena. Updates `leaf_count`.
///
/// # Panics
///
/// Panics when a shared arena cannot fit a new extent: the arena is
/// provisioned for the tenant set, so exhaustion is a deployment sizing
/// error, not a recoverable per-route condition.
pub(crate) fn install_leaves<K: Bits, N: NodeRepr>(
    trie: &mut PoptrieImpl<K, N>,
    vals: &[NextHop],
) -> u32 {
    debug_assert!(!vals.is_empty());
    let interned = trie.shared_leaves.as_ref().map(|h| {
        h.intern(vals).unwrap_or_else(|| {
            panic!(
                "shared leaf arena exhausted interning a {}-leaf block; \
                 provision a larger arena for this VRF group",
                vals.len()
            )
        })
    });
    let off = match interned {
        Some(off) => off,
        None => {
            let off = alloc_leaves(trie, vals.len() as u32);
            trie.leaves[off as usize..off as usize + vals.len()].copy_from_slice(vals);
            off
        }
    };
    trie.leaf_count += vals.len();
    off
}

/// Release the leaf block `[off, off + len)` previously installed with
/// [`install_leaves`]: a private buddy free, or (shared mode) one
/// interner reference dropped. Updates `leaf_count`.
pub(crate) fn release_leaves<K: Bits, N: NodeRepr>(
    trie: &mut PoptrieImpl<K, N>,
    off: u32,
    len: u32,
) {
    debug_assert!(len > 0);
    match &trie.shared_leaves {
        Some(h) => h.release(off, len),
        None => trie.leaf_buddy.free(off, len),
    }
    trie.leaf_count -= len as usize;
}

/// Expand six radix levels below `node` into 64 slots.
///
/// `leaf[v]` receives the longest-match next hop for chunk value `v`;
/// `child[v]` receives the radix node (plus its inherited next hop) when
/// the subtree below slot `v` holds longer prefixes and therefore needs an
/// internal child.
fn expand_chunk<'a>(
    node: Option<&'a RadixNode<NextHop>>,
    inherited: NextHop,
    depth: u32,
    base: usize,
    leaf: &mut [NextHop; 64],
    child: &mut [Option<ChildRef<'a>>; 64],
) {
    let Some(n) = node else {
        let width = 1usize << (6 - depth);
        leaf[base * width..(base + 1) * width].fill(inherited);
        return;
    };
    if depth == 6 {
        if n.has_children() {
            // The slot is "irrelevant" (Figure 3): a descendant internal
            // node exists, so the lookup never reads this leaf slot.
            child[base] = Some((n, inherited));
        } else {
            leaf[base] = apply(n.value(), inherited);
        }
        return;
    }
    let inh = apply(n.value(), inherited);
    expand_chunk(n.child(false), inh, depth + 1, base * 2, leaf, child);
    expand_chunk(n.child(true), inh, depth + 1, base * 2 + 1, leaf, child);
}

/// The computed contents of one Poptrie node before placement: the two
/// bit-vectors, the (compressed) leaf values, and the radix subtrees of
/// its internal children in slot order.
pub(crate) struct ChunkSpec<'a> {
    pub(crate) vector: u64,
    pub(crate) leafvec: u64,
    pub(crate) leaf_vals: Vec<NextHop>,
    pub(crate) children: Vec<ChildRef<'a>>,
}

/// Compute a node's contents from the radix subtree at `radix` (whose
/// covering prefix carries the next hop `inherited` from above). Shared
/// by the from-scratch builder and the §3.5 incremental refresh.
pub(crate) fn compute_chunk<'a, N: NodeRepr>(
    radix: Option<&'a RadixNode<NextHop>>,
    inherited: NextHop,
) -> ChunkSpec<'a> {
    let mut leaf_slot = [NO_ROUTE; 64];
    let mut child_slot: [Option<ChildRef<'a>>; 64] = [None; 64];
    expand_chunk(radix, inherited, 0, 0, &mut leaf_slot, &mut child_slot);

    let mut spec = ChunkSpec {
        vector: 0,
        leafvec: 0,
        leaf_vals: Vec::with_capacity(64),
        children: Vec::with_capacity(8),
    };
    let mut last: Option<NextHop> = None;
    for v in 0..64usize {
        if let Some(cref) = child_slot[v] {
            spec.vector |= 1u64 << v;
            spec.children.push(cref);
            // An internal slot never breaks a leaf run (hole punching
            // recovery, §3.3) — so `last` is deliberately left alone.
        } else {
            let val = leaf_slot[v];
            if N::COMPRESSES_LEAVES {
                if last != Some(val) {
                    spec.leafvec |= 1u64 << v;
                    spec.leaf_vals.push(val);
                    last = Some(val);
                }
            } else {
                spec.leaf_vals.push(val);
            }
        }
    }
    spec
}

/// Write a computed node into slot `idx`, allocating its leaf block, then
/// build its children. The caller owns the block containing `idx` itself.
pub(crate) fn place_node<K: Bits, N: NodeRepr>(
    trie: &mut PoptrieImpl<K, N>,
    idx: u32,
    spec: ChunkSpec<'_>,
) {
    let base0 = if spec.leaf_vals.is_empty() {
        0
    } else {
        install_leaves(trie, &spec.leaf_vals)
    };
    let base1 = if spec.children.is_empty() {
        0
    } else {
        alloc_nodes(trie, spec.children.len() as u32)
    };
    trie.nodes[idx as usize] = N::new(spec.vector, spec.leafvec, base0, base1);
    trie.inode_count += 1;
    for (i, (cnode, cinh)) in spec.children.into_iter().enumerate() {
        fill_node(trie, base1 + i as u32, Some(cnode), cinh);
    }
}

/// Build the node at index `idx` from the radix subtree rooted at `radix`,
/// then recurse into its internal children.
pub(crate) fn fill_node<K: Bits, N: NodeRepr>(
    trie: &mut PoptrieImpl<K, N>,
    idx: u32,
    radix: Option<&RadixNode<NextHop>>,
    inherited: NextHop,
) {
    let spec = compute_chunk::<N>(radix, inherited);
    place_node(trie, idx, spec);
}

/// Fill the direct-pointing table (§3.4) for the radix subtree at `node`,
/// which sits `depth` bits below the root and covers direct slots
/// `[base << (s - depth), (base + 1) << (s - depth))`.
pub(crate) fn fill_direct<K: Bits, N: NodeRepr>(
    trie: &mut PoptrieImpl<K, N>,
    node: Option<&RadixNode<NextHop>>,
    inherited: NextHop,
    depth: u32,
    base: usize,
) {
    let s = trie.s as u32;
    let Some(n) = node else {
        let width = 1usize << (s - depth);
        trie.direct[base * width..(base + 1) * width].fill(DIRECT_LEAF_BIT | inherited as u32);
        return;
    };
    if depth == s {
        if n.has_children() {
            let idx = alloc_nodes(trie, 1);
            trie.direct[base] = idx;
            debug_assert_eq!(
                idx & DIRECT_LEAF_BIT,
                0,
                "node index overflows direct entry"
            );
            fill_node(trie, idx, Some(n), inherited);
        } else {
            trie.direct[base] = DIRECT_LEAF_BIT | apply(n.value(), inherited) as u32;
        }
        return;
    }
    let inh = apply(n.value(), inherited);
    fill_direct(trie, n.child(false), inh, depth + 1, base * 2);
    fill_direct(trie, n.child(true), inh, depth + 1, base * 2 + 1);
}
