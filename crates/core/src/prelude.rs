//! One-line import of the Poptrie vocabulary.
//!
//! The workspace's public surface spans several modules (the trie itself,
//! the config builder, the fallible update API, the concurrent wrapper,
//! and the `poptrie-rib` vocabulary types it builds on). The prelude
//! re-exports the names nearly every consumer touches, so application
//! code starts with a single glob:
//!
//! ```
//! use poptrie::prelude::*;
//!
//! let cfg = PoptrieConfig::new().direct_bits(16).build()?;
//! let mut fib: Fib<u32> = Fib::with_config(cfg);
//! fib.insert("10.0.0.0/8".parse()?, 1)?;
//! assert_eq!(fib.poptrie().lookup(0x0A00_0001), Some(1));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Deliberately excluded: internal node representations
//! ([`Node16`](crate::Node16)/[`Node24`](crate::Node24)), the audit and
//! serialization modules, and anything deprecated — the prelude is the
//! blessed surface, not the whole crate.

pub use crate::builder::Builder;
pub use crate::config::{ConfigError, PoptrieConfig, PoptrieConfigBuilder};
pub use crate::sync::{BatchOutcome, FibSnapshot, RouteUpdate, SharedFib};
pub use crate::trie::{Poptrie, PoptrieBasic, PoptrieStats};
pub use crate::update::{Applied, Fib, UpdateError, UpdateStats, UpdateStrategy};

pub use poptrie_rib::{Bits, Lpm, NextHop, Prefix, PrefixError, RadixTree, NO_ROUTE};
