//! Validated construction parameters for Poptrie structures.
//!
//! Before this module, the knobs that shape a Poptrie — the
//! direct-pointing size `s` of §3.4, the §3.5 update strategy, §3's route
//! aggregation, and the buddy-arena reservations — were positional
//! parameters scattered across constructors (`Fib::from_rib(rib, 18,
//! false)` read as "18 what? false what?"). [`PoptrieConfig`] gathers them
//! into one validated, self-describing value:
//!
//! ```
//! use poptrie::{PoptrieConfig, UpdateStrategy};
//!
//! let cfg = PoptrieConfig::new()
//!     .direct_bits(18)
//!     .strategy(UpdateStrategy::NodeRefresh)
//!     .aggregate(false)
//!     .build()?;
//! assert_eq!(cfg.direct_bits, 18);
//! # Ok::<(), poptrie::ConfigError>(())
//! ```
//!
//! Validation happens once, in [`PoptrieConfigBuilder::build`]; every
//! consumer ([`Fib`](crate::Fib), [`SharedFib`](crate::sync::SharedFib),
//! [`Builder`](crate::Builder)) can then trust the value. The struct is
//! `#[non_exhaustive]` so future knobs (say, a §3.3 leafvec toggle) arrive
//! without breaking callers.

use core::fmt;

use crate::trie::DIRECT_LEAF_BIT;
use crate::update::UpdateStrategy;

/// Validated Poptrie construction parameters. Build one with
/// [`PoptrieConfig::new`]; read the fields directly.
///
/// The config is key-width-agnostic: the same value can compile a `u32`
/// (IPv4) and a `u128` (IPv6) structure. The one width-dependent rule —
/// `direct_bits` must be strictly below the key width — is checked where
/// the key type is known (e.g. [`Fib::with_config`](crate::Fib::with_config)).
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoptrieConfig {
    /// Direct-pointing size `s` (§3.4): the top-level array has `2^s`
    /// entries. `0` disables direct pointing. The paper evaluates 16 and
    /// 18.
    pub direct_bits: u8,
    /// How incremental updates repair the structure (§3.5).
    pub strategy: UpdateStrategy,
    /// Apply §3's route aggregation during full compilation. Incremental
    /// patches always work from the unaggregated RIB either way (the
    /// transform is semantics-preserving).
    pub aggregate: bool,
    /// Initial buddy-arena reservation for internal nodes, in slots
    /// (`0` = grow on demand). Pre-sizing avoids reallocation stalls when
    /// the final table size is known, e.g. before loading a full BGP
    /// table.
    pub node_capacity: u32,
    /// Initial buddy-arena reservation for leaves, in slots (`0` = grow
    /// on demand).
    pub leaf_capacity: u32,
}

impl PoptrieConfig {
    /// Start building a config from the paper's defaults: `s = 18`,
    /// [`UpdateStrategy::NodeRefresh`], aggregation on, on-demand arenas.
    // `new` deliberately returns the builder: a config can only exist
    // validated (`build()` is the sole constructor), so the fluent entry
    // point is the misuse-resistant front door, not a `Self` ctor.
    #[allow(clippy::new_ret_no_self)]
    pub fn new() -> PoptrieConfigBuilder {
        PoptrieConfigBuilder {
            cfg: PoptrieConfig {
                direct_bits: 18,
                strategy: UpdateStrategy::NodeRefresh,
                aggregate: true,
                node_capacity: 0,
                leaf_capacity: 0,
            },
        }
    }
}

impl Default for PoptrieConfig {
    /// The paper's defaults (always valid).
    fn default() -> Self {
        PoptrieConfig::new().build().expect("defaults are valid")
    }
}

/// Builder for [`PoptrieConfig`]; see [`PoptrieConfig::new`].
///
/// ```
/// use poptrie::{ConfigError, PoptrieConfig};
///
/// assert!(matches!(
///     PoptrieConfig::new().direct_bits(25).build(),
///     Err(ConfigError::DirectBitsTooLarge(25))
/// ));
/// ```
#[derive(Debug, Clone)]
pub struct PoptrieConfigBuilder {
    cfg: PoptrieConfig,
}

impl PoptrieConfigBuilder {
    /// Set the direct-pointing size `s` (§3.4). Validated in
    /// [`build`](Self::build): at most 24 (a larger top-level array would
    /// leave the CPU cache, defeating the design).
    pub fn direct_bits(mut self, s: u8) -> Self {
        self.cfg.direct_bits = s;
        self
    }

    /// Select the incremental-update strategy (§3.5).
    pub fn strategy(mut self, strategy: UpdateStrategy) -> Self {
        self.cfg.strategy = strategy;
        self
    }

    /// Enable or disable §3's route aggregation for full compilation.
    pub fn aggregate(mut self, on: bool) -> Self {
        self.cfg.aggregate = on;
        self
    }

    /// Reserve `slots` internal-node arena slots up front.
    pub fn node_capacity(mut self, slots: u32) -> Self {
        self.cfg.node_capacity = slots;
        self
    }

    /// Reserve `slots` leaf arena slots up front.
    pub fn leaf_capacity(mut self, slots: u32) -> Self {
        self.cfg.leaf_capacity = slots;
        self
    }

    /// Validate and produce the config.
    pub fn build(self) -> Result<PoptrieConfig, ConfigError> {
        let cfg = self.cfg;
        if cfg.direct_bits > 24 {
            return Err(ConfigError::DirectBitsTooLarge(cfg.direct_bits));
        }
        // Node indices carry the DIRECT_LEAF_BIT tag in direct slots, so
        // the arenas must stay below 2^31 slots.
        if cfg.node_capacity >= DIRECT_LEAF_BIT || cfg.leaf_capacity >= DIRECT_LEAF_BIT {
            return Err(ConfigError::CapacityTooLarge(
                cfg.node_capacity.max(cfg.leaf_capacity),
            ));
        }
        Ok(cfg)
    }
}

/// Rejected [`PoptrieConfig`] parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `direct_bits` exceeds 24: the `2^s`-entry top-level array would
    /// exceed 64 MiB and fall out of cache.
    DirectBitsTooLarge(u8),
    /// An arena reservation reaches 2^31 slots, colliding with the
    /// direct-entry tag bit that distinguishes leaves from node indices.
    CapacityTooLarge(u32),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::DirectBitsTooLarge(s) => {
                write!(f, "direct-pointing size {s} > 24 is unsupported")
            }
            ConfigError::CapacityTooLarge(n) => {
                write!(f, "arena reservation {n} reaches the 2^31 index limit")
            }
        }
    }
}

impl std::error::Error for ConfigError {}
